//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal deterministic PRNG behind the same names (`Rng`, `SeedableRng`,
//! `rngs::StdRng`, `seq::SliceRandom`). The generator is SplitMix64 — *not*
//! cryptographic and *not* bit-compatible with the real `rand` crate, but
//! fully deterministic per seed, which is all the simulator and the
//! randomized tests require. If the real `rand` crate ever becomes available
//! again, deleting the `shims/` path entries restores it without code changes.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from the generator's full output.
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn uniformly from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// User-facing random-value methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Draws a value of type `T` from the generator's full output range.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The SplitMix64 step shared by every generator in this shim.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                // XOR with a constant so seed 0 does not start from the
                // all-zero state; SplitMix64's output mixing does the rest.
                state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
            }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
