//! Offline stand-in for `rand_chacha`, providing the `ChaCha12Rng` type name
//! the simulator uses.
//!
//! The generator is xoshiro256++-style only in spirit: it is a SplitMix64
//! stream, deterministic per seed, which is what the discrete-event simulator
//! needs for reproducible interleavings. It is **not** the real ChaCha stream
//! cipher; see `shims/rand` for the rationale.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// Deterministic per-seed generator standing in for the real `ChaCha12Rng`.
#[derive(Clone, Debug)]
pub struct ChaCha12Rng {
    state: u64,
}

impl RngCore for ChaCha12Rng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for ChaCha12Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // A different seed mix than StdRng so the two never share streams.
        ChaCha12Rng {
            state: seed.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0x6A09_E667_F3BC_C909,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        let mut c = ChaCha12Rng::seed_from_u64(43);
        let sa: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let sb: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        let sc: Vec<u64> = (0..32).map(|_| c.gen()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }
}
