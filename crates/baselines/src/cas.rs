//! The CAS and CASGC algorithms (Cadambe, Lynch, Médard, Musial), used as the
//! erasure-coded baseline.
//!
//! CAS uses an `[n, k = n − 2f]` MDS code and quorums of size `n − f` (any two
//! such quorums intersect in at least `k` servers). Servers store coded
//! elements for **multiple versions**, each labelled `pre` (pre-written) or
//! `fin` (finalized):
//!
//! * **write**: query the highest finalized tag from a quorum → pre-write the
//!   coded elements to a quorum → finalize at a quorum.
//! * **read**: query the highest finalized tag `t_r` from a quorum → request
//!   `t_r` from all servers (each responds with its stored element for `t_r`
//!   if it has one) → decode from `k` elements.
//!
//! CASGC adds garbage collection: after a finalize, a server keeps coded
//! elements only for the `δ + 1` highest finalized versions, which bounds the
//! total storage cost at `n/(n−2f) · (δ + 1)` — the rigid bound SODA's elastic
//! per-read cost is compared against in Table I and Section I-B.

use soda_protocol::{value_from, Layout, QuorumTracker, Tag, Value};
use soda_rs_code::{CodedElement, MdsCode, VandermondeCode};
use soda_simnet::{
    Context, Message, NetworkConfig, Process, ProcessId, RunOutcome, SimTime, Simulation, Stats,
};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Messages of the CAS / CASGC protocol.
#[derive(Clone, Debug)]
pub enum CasMsg {
    /// Ask a client to write a value.
    InvokeWrite(Value),
    /// Ask a client to read.
    InvokeRead,
    /// Query the highest finalized tag.
    QueryTag {
        /// Client-local operation sequence number.
        seq: u64,
    },
    /// Response to [`CasMsg::QueryTag`].
    QueryTagResp {
        /// The queried operation.
        seq: u64,
        /// Highest finalized tag at the responding server.
        tag: Tag,
    },
    /// Pre-write of one coded element.
    PreWrite {
        /// The write operation.
        seq: u64,
        /// Tag being written.
        tag: Tag,
        /// The destination server's coded element.
        element: CodedElement,
    },
    /// Acknowledgement of a pre-write.
    PreWriteAck {
        /// The acknowledged operation.
        seq: u64,
    },
    /// Finalize a tag (from a writer).
    Finalize {
        /// The write operation.
        seq: u64,
        /// Tag to finalize.
        tag: Tag,
    },
    /// Acknowledgement of a finalize.
    FinalizeAck {
        /// The acknowledged operation.
        seq: u64,
    },
    /// Read request for a particular finalized tag.
    ReadFinalize {
        /// The read operation.
        seq: u64,
        /// The tag the reader wants.
        tag: Tag,
    },
    /// Response to [`CasMsg::ReadFinalize`]: the element if the server has it.
    ReadFinalizeResp {
        /// The read operation.
        seq: u64,
        /// The tag requested.
        tag: Tag,
        /// The responding server's element for that tag, if stored.
        element: Option<CodedElement>,
    },
    /// Full-replica state pull from a replacement server (server-to-server).
    RepairPull {
        /// Incarnation number of the pulling replacement.
        seq: u64,
    },
    /// Response to [`CasMsg::RepairPull`]: every version the responder knows,
    /// with its stored coded element (if retained) and finalization flag.
    RepairState {
        /// The pull this responds to.
        seq: u64,
        /// `(tag, element-if-stored, finalized)` triples.
        versions: Vec<(Tag, Option<CodedElement>, bool)>,
    },
}

impl Message for CasMsg {
    fn data_bytes(&self) -> usize {
        match self {
            CasMsg::PreWrite { element, .. } => element.data.len(),
            CasMsg::ReadFinalizeResp {
                element: Some(e), ..
            } => e.data.len(),
            CasMsg::RepairState { versions, .. } => versions
                .iter()
                .filter_map(|(_, e, _)| e.as_ref())
                .map(|e| e.data.len())
                .sum(),
            _ => 0,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            CasMsg::InvokeWrite(_) => "invoke-write",
            CasMsg::InvokeRead => "invoke-read",
            CasMsg::QueryTag { .. } => "query-tag",
            CasMsg::QueryTagResp { .. } => "query-tag-resp",
            CasMsg::PreWrite { .. } => "pre-write",
            CasMsg::PreWriteAck { .. } => "pre-write-ack",
            CasMsg::Finalize { .. } => "finalize",
            CasMsg::FinalizeAck { .. } => "finalize-ack",
            CasMsg::ReadFinalize { .. } => "read-finalize",
            CasMsg::ReadFinalizeResp { .. } => "read-finalize-resp",
            CasMsg::RepairPull { .. } => "repair-pull",
            CasMsg::RepairState { .. } => "repair-state",
        }
    }
}

/// Version label in a server's store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Label {
    Pre,
    Fin,
}

/// Shared configuration of a CAS / CASGC deployment.
pub struct CasConfig {
    layout: Layout,
    code: VandermondeCode,
    /// `Some(δ + 1)` keeps at most that many finalized versions with elements
    /// (CASGC); `None` never garbage-collects (plain CAS).
    gc_versions: Option<usize>,
}

impl CasConfig {
    /// Creates the configuration. `f` is the number of tolerated crashes; the
    /// code dimension is `k = n − 2f`.
    ///
    /// # Panics
    /// Panics if `n − 2f < 1`.
    pub fn new(layout: Layout, gc_versions: Option<usize>) -> Arc<Self> {
        let n = layout.n();
        let f = layout.f();
        assert!(n > 2 * f, "CAS requires n > 2f");
        let code = VandermondeCode::new(n, n - 2 * f).expect("valid CAS code parameters");
        Arc::new(CasConfig {
            layout,
            code,
            gc_versions,
        })
    }

    /// The quorum size `n − f`.
    pub fn quorum(&self) -> usize {
        self.layout.n() - self.layout.f()
    }

    /// Code dimension `k = n − 2f`.
    pub fn k(&self) -> usize {
        self.code.k()
    }

    /// The system layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The erasure code.
    pub fn code(&self) -> &VandermondeCode {
        &self.code
    }
}

/// A completed CAS operation.
#[derive(Clone, Debug)]
pub struct CasOpRecord {
    /// Per-client sequence number.
    pub seq: u64,
    /// True if this was a read.
    pub is_read: bool,
    /// Invocation time.
    pub invoked_at: SimTime,
    /// Response time.
    pub completed_at: SimTime,
    /// Tag associated with the operation.
    pub tag: Tag,
    /// Written or returned value.
    pub value: Vec<u8>,
}

/// In-flight full-replica state transfer of a replacement CAS server.
struct CasRepair {
    seq: u64,
    responses: QuorumTracker<()>,
    /// Union of survivor state: tag → (elements by index, finalized).
    collected: BTreeMap<Tag, (BTreeMap<usize, CodedElement>, bool)>,
    started_at: SimTime,
    completed_at: Option<SimTime>,
    traffic_bytes: u64,
    /// Fan-out attempts so far (the initial send counts as one).
    attempts: u32,
    /// The retry budget ran out with the survivors unreachable; the
    /// replacement halted itself and the rank is plain dead again.
    failed: bool,
}

/// A CAS / CASGC server.
pub struct CasServer {
    config: Arc<CasConfig>,
    my_rank: usize,
    /// All known versions: tag → (element if stored, label).
    versions: BTreeMap<Tag, (Option<CodedElement>, Label)>,
    repair: Option<CasRepair>,
}

impl CasServer {
    /// Creates a server holding the initial value's coded element, finalized.
    pub fn new(config: Arc<CasConfig>, my_rank: usize, initial: &Value) -> Self {
        let element = config
            .code
            .encode_one(initial, my_rank)
            .expect("rank within range");
        let mut versions = BTreeMap::new();
        versions.insert(Tag::INITIAL, (Some(element), Label::Fin));
        CasServer {
            config,
            my_rank,
            versions,
            repair: None,
        }
    }

    /// Creates a **replacement** server with empty state that repairs itself
    /// on start by *full-replica state transfer*: it pulls every survivor's
    /// version store, merges labels (`fin` wins) across a quorum of `n − f`
    /// responses, and re-encodes its own coded element for every tag with at
    /// least `k` distinct survivor elements. A finalized write pre-wrote its
    /// elements to a quorum, which intersects the repair quorum in at least
    /// `k = n − 2f` full replicas — so every finalized version is recovered
    /// with both its label and its element.
    ///
    /// Until the repair completes the replacement answers no `query-tag` or
    /// `read-finalize` requests (a missing `fin` label could hide a
    /// finalized write from a reader's quorum maximum), but it applies and
    /// acknowledges pre-writes and finalizes — those are durable and are
    /// preserved by the merge. `epoch` distinguishes incarnations.
    pub fn replacement(config: Arc<CasConfig>, my_rank: usize, epoch: u64) -> Self {
        let quorum = config.quorum();
        CasServer {
            config,
            my_rank,
            versions: BTreeMap::new(),
            repair: Some(CasRepair {
                seq: epoch,
                responses: QuorumTracker::new(quorum),
                collected: BTreeMap::new(),
                started_at: SimTime::ZERO,
                completed_at: None,
                traffic_bytes: 0,
                attempts: 0,
                failed: false,
            }),
        }
    }

    /// Whether this server is a replacement whose repair has not finished.
    pub fn is_repairing(&self) -> bool {
        matches!(&self.repair, Some(r) if r.completed_at.is_none() && !r.failed)
    }

    /// Whether this replacement gave up (retry budget exhausted with the
    /// survivors unreachable) and halted itself.
    pub fn repair_failed(&self) -> bool {
        matches!(&self.repair, Some(r) if r.failed)
    }

    /// Repair progress, if this server is (or was) a replacement.
    pub fn repair_status(&self) -> Option<crate::RepairStatus> {
        self.repair.as_ref().map(|r| crate::RepairStatus {
            started_at: r.started_at,
            completed_at: r.completed_at,
            traffic_bytes: r.traffic_bytes,
            failed: r.failed,
        })
    }

    /// Sends (or re-sends) the repair pull fan-out to every peer.
    fn send_repair_pulls(&mut self, ctx: &mut Context<'_, CasMsg>) {
        let Some(repair) = self.repair.as_ref() else {
            return;
        };
        let seq = repair.seq;
        let peers: Vec<ProcessId> = self
            .config
            .layout()
            .servers()
            .iter()
            .copied()
            .filter(|&p| p != ctx.self_id())
            .collect();
        for peer in peers {
            ctx.send(peer, CasMsg::RepairPull { seq });
        }
    }

    /// Merges the collected survivor state into the local store once a
    /// quorum of `repair-state` responses has arrived.
    fn finish_repair(&mut self, now: SimTime) {
        let Some(repair) = self.repair.as_mut() else {
            return;
        };
        repair.completed_at = Some(now);
        let collected = std::mem::take(&mut repair.collected);
        let k = self.config.k();
        for (tag, (elements, fin)) in collected {
            let entry = self.versions.entry(tag).or_insert((None, Label::Pre));
            if fin {
                entry.1 = Label::Fin;
            }
            // Concurrent pre-writes during the repair already stored this
            // rank's own element; never overwrite it.
            if entry.0.is_none() && elements.len() >= k {
                let elems: Vec<CodedElement> = elements.into_values().collect();
                if let Ok(value) = self.config.code.decode(&elems) {
                    entry.0 = self.config.code.encode_one(&value, self.my_rank).ok();
                }
            }
        }
        self.garbage_collect();
    }

    /// Bytes of coded-element data currently stored (across all versions).
    pub fn stored_bytes(&self) -> usize {
        self.versions
            .values()
            .filter_map(|(e, _)| e.as_ref())
            .map(|e| e.data.len())
            .sum()
    }

    /// Number of versions whose coded element is still stored.
    pub fn stored_versions(&self) -> usize {
        self.versions.values().filter(|(e, _)| e.is_some()).count()
    }

    /// The highest finalized tag.
    fn max_fin_tag(&self) -> Tag {
        self.versions
            .iter()
            .filter(|(_, (_, label))| *label == Label::Fin)
            .map(|(tag, _)| *tag)
            .max()
            .unwrap_or(Tag::INITIAL)
    }

    /// CASGC garbage collection: keep elements only for the `δ + 1` highest
    /// finalized versions (and any pre-written versions newer than the cutoff).
    fn garbage_collect(&mut self) {
        let Some(keep) = self.config.gc_versions else {
            return;
        };
        let mut fin_tags: Vec<Tag> = self
            .versions
            .iter()
            .filter(|(_, (_, label))| *label == Label::Fin)
            .map(|(tag, _)| *tag)
            .collect();
        fin_tags.sort_unstable_by(|a, b| b.cmp(a));
        let Some(&cutoff) =
            fin_tags.get(keep.saturating_sub(1).min(fin_tags.len().saturating_sub(1)))
        else {
            return;
        };
        if fin_tags.len() < keep {
            return;
        }
        for (tag, (element, _)) in self.versions.iter_mut() {
            if *tag < cutoff {
                *element = None;
            }
        }
    }
}

impl Process<CasMsg> for CasServer {
    fn on_start(&mut self, ctx: &mut Context<'_, CasMsg>) {
        {
            let Some(repair) = self.repair.as_mut() else {
                return;
            };
            repair.started_at = ctx.now();
            repair.attempts = 1;
        }
        self.send_repair_pulls(ctx);
        ctx.set_timer(crate::REPAIR_RETRY_INTERVAL, crate::REPAIR_RETRY_TOKEN);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, CasMsg>) {
        if token != crate::REPAIR_RETRY_TOKEN {
            return;
        }
        {
            let Some(repair) = self.repair.as_mut() else {
                return;
            };
            if repair.completed_at.is_some() || repair.failed {
                return;
            }
            if repair.attempts >= crate::REPAIR_MAX_ATTEMPTS {
                // Survivors unreachable for the whole retry budget: give up
                // and halt, reverting the rank to plain dead so the
                // crash-budget slot can be reclaimed by a later repair.
                repair.failed = true;
                ctx.halt();
                return;
            }
            repair.attempts += 1;
        }
        // Duplicate pulls are idempotent for state (the collected map merges
        // by tag and element index; the quorum tracker records each
        // responder once), though re-transferred elements are charged to
        // `traffic_bytes` — retried repairs genuinely cost that bandwidth.
        self.send_repair_pulls(ctx);
        ctx.set_timer(crate::REPAIR_RETRY_INTERVAL, crate::REPAIR_RETRY_TOKEN);
    }

    fn on_message(&mut self, from: ProcessId, msg: CasMsg, ctx: &mut Context<'_, CasMsg>) {
        match msg {
            // A replacement under repair answers no tag queries and serves no
            // reads: its missing `fin` labels could hide a finalized write
            // from a quorum maximum. With at most `f` dead-or-repairing
            // servers the `n − f` full replicas still form a quorum.
            CasMsg::QueryTag { seq } => {
                if self.is_repairing() {
                    return;
                }
                ctx.send(
                    from,
                    CasMsg::QueryTagResp {
                        seq,
                        tag: self.max_fin_tag(),
                    },
                );
            }
            CasMsg::PreWrite { seq, tag, element } => {
                let entry = self.versions.entry(tag).or_insert((None, Label::Pre));
                if entry.0.is_none() {
                    entry.0 = Some(element);
                }
                ctx.send(from, CasMsg::PreWriteAck { seq });
            }
            CasMsg::Finalize { seq, tag } => {
                let entry = self.versions.entry(tag).or_insert((None, Label::Pre));
                entry.1 = Label::Fin;
                self.garbage_collect();
                ctx.send(from, CasMsg::FinalizeAck { seq });
            }
            CasMsg::ReadFinalize { seq, tag } => {
                if self.is_repairing() {
                    return;
                }
                let entry = self.versions.entry(tag).or_insert((None, Label::Pre));
                entry.1 = Label::Fin;
                let element = entry.0.clone();
                self.garbage_collect();
                ctx.send(from, CasMsg::ReadFinalizeResp { seq, tag, element });
            }
            CasMsg::RepairPull { seq } => {
                // A repairing server has no authoritative state to transfer.
                if self.is_repairing() {
                    return;
                }
                let versions: Vec<(Tag, Option<CodedElement>, bool)> = self
                    .versions
                    .iter()
                    .map(|(&tag, (element, label))| (tag, element.clone(), *label == Label::Fin))
                    .collect();
                ctx.send(from, CasMsg::RepairState { seq, versions });
            }
            CasMsg::RepairState { seq, versions } => {
                {
                    let Some(repair) = self.repair.as_mut() else {
                        return;
                    };
                    if repair.completed_at.is_some() || seq != repair.seq {
                        return;
                    }
                    for (tag, element, fin) in versions {
                        let entry = repair.collected.entry(tag).or_default();
                        entry.1 |= fin;
                        if let Some(element) = element {
                            repair.traffic_bytes += element.data.len() as u64;
                            entry.0.insert(element.index, element);
                        }
                    }
                    repair.responses.record(from, ());
                    if !repair.responses.is_complete() {
                        return;
                    }
                }
                self.finish_repair(ctx.now());
            }
            _ => {}
        }
        let _ = self.my_rank;
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CasPhase {
    Idle,
    QueryTag,
    PreWrite,
    Finalize,
    ReadValue,
}

enum PendingOp {
    Write(Value),
    Read,
}

/// A CAS / CASGC client performing both writes and reads.
pub struct CasClient {
    config: Arc<CasConfig>,
    self_id: ProcessId,
    phase: CasPhase,
    pending: VecDeque<PendingOp>,
    seq: u64,
    current_is_read: bool,
    current_value: Option<Value>,
    current_tag: Option<Tag>,
    invoked_at: SimTime,
    tag_tracker: QuorumTracker<Tag>,
    ack_tracker: QuorumTracker<()>,
    read_elements: BTreeMap<usize, CodedElement>,
    read_responses: QuorumTracker<()>,
    completed: Vec<CasOpRecord>,
}

impl CasClient {
    /// Creates a client.
    pub fn new(config: Arc<CasConfig>, self_id: ProcessId) -> Self {
        let q = config.quorum();
        CasClient {
            config,
            self_id,
            phase: CasPhase::Idle,
            pending: VecDeque::new(),
            seq: 0,
            current_is_read: false,
            current_value: None,
            current_tag: None,
            invoked_at: SimTime::ZERO,
            tag_tracker: QuorumTracker::new(q),
            ack_tracker: QuorumTracker::new(q),
            read_elements: BTreeMap::new(),
            read_responses: QuorumTracker::new(q),
            completed: Vec::new(),
        }
    }

    /// Completed operations in completion order.
    pub fn completed_ops(&self) -> &[CasOpRecord] {
        &self.completed
    }

    /// The in-flight *write*, if one exists: `(seq, invoked_at, tag, value)`
    /// where the tag is `None` until the pre-write phase starts (before
    /// that, no server has seen the value, so no read can have observed it).
    /// Needed to close operation histories under crash/network faults.
    pub fn in_flight_write(&self) -> Option<(u64, SimTime, Option<Tag>, Vec<u8>)> {
        if self.phase == CasPhase::Idle || self.current_is_read {
            return None;
        }
        let value = self
            .current_value
            .as_ref()
            .expect("an in-flight write always carries its value")
            .to_vec();
        Some((self.seq, self.invoked_at, self.current_tag, value))
    }

    fn servers(&self) -> Vec<ProcessId> {
        self.config.layout().servers().to_vec()
    }

    fn start_next(&mut self, ctx: &mut Context<'_, CasMsg>) {
        if self.phase != CasPhase::Idle {
            return;
        }
        let Some(op) = self.pending.pop_front() else {
            return;
        };
        self.seq += 1;
        self.invoked_at = ctx.now();
        match op {
            PendingOp::Write(value) => {
                self.current_is_read = false;
                self.current_value = Some(value);
            }
            PendingOp::Read => {
                self.current_is_read = true;
                self.current_value = None;
            }
        }
        self.current_tag = None;
        self.phase = CasPhase::QueryTag;
        self.tag_tracker = QuorumTracker::new(self.config.quorum());
        for server in self.servers() {
            ctx.send(server, CasMsg::QueryTag { seq: self.seq });
        }
    }

    fn after_tag_query(&mut self, ctx: &mut Context<'_, CasMsg>) {
        let max_tag = self
            .tag_tracker
            .max_response()
            .copied()
            .unwrap_or(Tag::INITIAL);
        if self.current_is_read {
            self.current_tag = Some(max_tag);
            self.phase = CasPhase::ReadValue;
            self.read_elements.clear();
            self.read_responses = QuorumTracker::new(self.config.quorum());
            for server in self.servers() {
                ctx.send(
                    server,
                    CasMsg::ReadFinalize {
                        seq: self.seq,
                        tag: max_tag,
                    },
                );
            }
        } else {
            let tag = max_tag.next(self.self_id);
            self.current_tag = Some(tag);
            self.phase = CasPhase::PreWrite;
            self.ack_tracker = QuorumTracker::new(self.config.quorum());
            let value = self.current_value.clone().expect("write has a value");
            let elements = self
                .config
                .code()
                .encode(&value)
                .expect("encoding never fails for valid parameters");
            for (rank, server) in self.servers().into_iter().enumerate() {
                ctx.send(
                    server,
                    CasMsg::PreWrite {
                        seq: self.seq,
                        tag,
                        element: elements[rank].clone(),
                    },
                );
            }
        }
    }

    fn begin_finalize(&mut self, ctx: &mut Context<'_, CasMsg>) {
        self.phase = CasPhase::Finalize;
        self.ack_tracker = QuorumTracker::new(self.config.quorum());
        let tag = self.current_tag.expect("finalize requires a tag");
        for server in self.servers() {
            ctx.send(server, CasMsg::Finalize { seq: self.seq, tag });
        }
    }

    fn try_complete_read(&mut self, ctx: &mut Context<'_, CasMsg>) {
        if !self.read_responses.is_complete() || self.read_elements.len() < self.config.k() {
            return;
        }
        let elements: Vec<CodedElement> = self.read_elements.values().cloned().collect();
        let value = self
            .config
            .code()
            .decode(&elements)
            .expect("quorum intersection provides k consistent elements");
        self.complete(value, ctx);
    }

    fn complete(&mut self, value: Vec<u8>, ctx: &mut Context<'_, CasMsg>) {
        let record = CasOpRecord {
            seq: self.seq,
            is_read: self.current_is_read,
            invoked_at: self.invoked_at,
            completed_at: ctx.now(),
            tag: self.current_tag.expect("tag set"),
            value,
        };
        self.completed.push(record);
        self.phase = CasPhase::Idle;
        self.current_value = None;
        self.current_tag = None;
        self.read_elements.clear();
        self.start_next(ctx);
    }
}

impl Process<CasMsg> for CasClient {
    fn on_message(&mut self, from: ProcessId, msg: CasMsg, ctx: &mut Context<'_, CasMsg>) {
        match msg {
            CasMsg::InvokeWrite(value) => {
                self.pending.push_back(PendingOp::Write(value));
                self.start_next(ctx);
            }
            CasMsg::InvokeRead => {
                self.pending.push_back(PendingOp::Read);
                self.start_next(ctx);
            }
            CasMsg::QueryTagResp { seq, tag }
                if self.phase == CasPhase::QueryTag && seq == self.seq =>
            {
                self.tag_tracker.record(from, tag);
                if self.tag_tracker.is_complete() {
                    self.after_tag_query(ctx);
                }
            }
            CasMsg::PreWriteAck { seq } if self.phase == CasPhase::PreWrite && seq == self.seq => {
                self.ack_tracker.record(from, ());
                if self.ack_tracker.is_complete() {
                    self.begin_finalize(ctx);
                }
            }
            CasMsg::FinalizeAck { seq } if self.phase == CasPhase::Finalize && seq == self.seq => {
                self.ack_tracker.record(from, ());
                if self.ack_tracker.is_complete() {
                    let value = self
                        .current_value
                        .clone()
                        .map(|v| v.to_vec())
                        .unwrap_or_default();
                    self.complete(value, ctx);
                }
            }
            CasMsg::ReadFinalizeResp { seq, tag, element }
                if self.phase == CasPhase::ReadValue
                    && seq == self.seq
                    && Some(tag) == self.current_tag =>
            {
                self.read_responses.record(from, ());
                if let Some(element) = element {
                    self.read_elements.insert(element.index, element);
                }
                self.try_complete_read(ctx);
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Parameters of a CAS / CASGC deployment.
///
/// This replaces the former seven-positional-argument `CasCluster::build`
/// signature. Application code should not use it directly: build clusters
/// through `soda_registry::ClusterBuilder`, which validates parameters and
/// returns the protocol-agnostic `RegisterCluster` facade.
#[derive(Clone, Debug)]
pub struct CasParams {
    /// Number of servers.
    pub n: usize,
    /// Tolerated server crashes (the code dimension is `k = n − 2f`).
    pub f: usize,
    /// `Some(δ + 1)` keeps at most that many finalized versions with elements
    /// (CASGC); `None` never garbage-collects (plain CAS).
    pub gc_versions: Option<usize>,
    /// Number of clients (each performs both writes and reads).
    pub num_clients: usize,
    /// RNG seed controlling message delays.
    pub seed: u64,
    /// Network delay configuration.
    pub network: NetworkConfig,
    /// The initial object value `v0`.
    pub initial_value: Vec<u8>,
}

impl CasParams {
    /// Parameters for an `(n, f)` CAS cluster (no garbage collection) with
    /// two clients, seed 0, uniform delays in `[1, 10]` and an empty initial
    /// value.
    pub fn new(n: usize, f: usize) -> Self {
        CasParams {
            n,
            f,
            gc_versions: None,
            num_clients: 2,
            seed: 0,
            network: NetworkConfig::uniform(10),
            initial_value: Vec::new(),
        }
    }
}

/// A complete simulated CAS / CASGC deployment.
pub struct CasCluster {
    sim: Simulation<CasMsg>,
    config: Arc<CasConfig>,
    servers: Vec<ProcessId>,
    clients: Vec<ProcessId>,
    /// Per-rank incarnation counter for replacement servers.
    epochs: Vec<u64>,
}

impl CasCluster {
    /// Builds the cluster described by `params`.
    pub fn build(params: CasParams) -> Self {
        let CasParams {
            n,
            f,
            gc_versions,
            num_clients,
            seed,
            network,
            initial_value,
        } = params;
        let mut sim = Simulation::new(seed, network);
        let server_ids: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
        let layout = Layout::new(server_ids.clone(), f);
        let config = CasConfig::new(layout, gc_versions);
        let initial = value_from(initial_value);
        for rank in 0..n {
            sim.add_process(Box::new(CasServer::new(config.clone(), rank, &initial)));
        }
        let mut clients = Vec::new();
        for _ in 0..num_clients {
            let id = ProcessId(sim.num_processes() as u32);
            sim.add_process(Box::new(CasClient::new(config.clone(), id)));
            clients.push(id);
        }
        let epochs = vec![0; n];
        CasCluster {
            sim,
            config,
            servers: server_ids,
            clients,
            epochs,
        }
    }

    /// Client process ids.
    pub fn clients(&self) -> &[ProcessId] {
        &self.clients
    }

    /// The shared configuration.
    pub fn config(&self) -> &Arc<CasConfig> {
        &self.config
    }

    /// Queues a write.
    pub fn invoke_write(&mut self, client: ProcessId, value: Vec<u8>) {
        self.sim
            .send_external(client, CasMsg::InvokeWrite(value_from(value)));
    }

    /// Queues a write at a given time.
    pub fn invoke_write_at(&mut self, at: SimTime, client: ProcessId, value: Vec<u8>) {
        self.sim
            .send_external_at(at, client, CasMsg::InvokeWrite(value_from(value)));
    }

    /// Queues a read.
    pub fn invoke_read(&mut self, client: ProcessId) {
        self.sim.send_external(client, CasMsg::InvokeRead);
    }

    /// Queues a read at a given time.
    pub fn invoke_read_at(&mut self, at: SimTime, client: ProcessId) {
        self.sim.send_external_at(at, client, CasMsg::InvokeRead);
    }

    /// Crashes the server with the given rank.
    pub fn crash_server_at(&mut self, at: SimTime, rank: usize) {
        let id = self.servers[rank];
        self.sim.schedule_crash(at, id);
    }

    /// Crashes an arbitrary process (e.g. a client) at time `at`.
    pub fn crash_process_at(&mut self, at: SimTime, id: ProcessId) {
        self.sim.schedule_crash(at, id);
    }

    /// Schedules the repair of the server with the given rank at time `at`:
    /// a fresh replacement pulls every survivor's version store and
    /// re-encodes its own elements (see [`CasServer::replacement`]).
    pub fn repair_server_at(&mut self, at: SimTime, rank: usize) {
        self.epochs[rank] += 1;
        let replacement = CasServer::replacement(self.config.clone(), rank, self.epochs[rank]);
        self.sim
            .schedule_recovery(at, self.servers[rank], Box::new(replacement));
    }

    /// Number of servers currently dead **or under repair**.
    pub fn dead_or_repairing(&self) -> usize {
        self.servers
            .iter()
            .filter(|&&id| {
                self.sim.is_crashed(id)
                    || self
                        .sim
                        .process_as::<CasServer>(id)
                        .is_some_and(|s| s.is_repairing())
            })
            .count()
    }

    /// Repair status of each rank's current incarnation (`None` for servers
    /// that were never replaced).
    pub fn repair_statuses(&self) -> Vec<Option<crate::RepairStatus>> {
        self.servers
            .iter()
            .map(|&id| {
                self.sim
                    .process_as::<CasServer>(id)
                    .and_then(|s| s.repair_status())
            })
            .collect()
    }

    /// Runs until quiescent.
    pub fn run_to_quiescence(&mut self) -> RunOutcome {
        self.sim.run_to_quiescence()
    }

    /// Runs the simulation until the given deadline.
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        self.sim.run_until(deadline)
    }

    /// Message statistics.
    pub fn stats(&self) -> Stats {
        self.sim.stats()
    }

    /// All completed operations, ordered by completion time.
    pub fn completed_ops(&self) -> Vec<CasOpRecord> {
        let mut ops: Vec<CasOpRecord> = self
            .clients
            .iter()
            .filter_map(|&c| self.sim.process_as::<CasClient>(c))
            .flat_map(|c| c.completed_ops().iter().cloned())
            .collect();
        ops.sort_by_key(|op| op.completed_at);
        ops
    }

    /// Bytes of coded-element data stored at each server, by rank (across all
    /// retained versions).
    pub fn stored_bytes_per_server(&self) -> Vec<u64> {
        self.servers
            .iter()
            .map(|&s| {
                self.sim
                    .process_as::<CasServer>(s)
                    .map(|s| s.stored_bytes() as u64)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Total bytes of coded-element data stored across all servers and all
    /// retained versions.
    pub fn total_stored_bytes(&self) -> u64 {
        self.stored_bytes_per_server().iter().sum()
    }

    /// Immutable access to the underlying simulation.
    pub fn sim(&self) -> &Simulation<CasMsg> {
        &self.sim
    }

    /// Mutable access to the underlying simulation.
    pub fn sim_mut(&mut self) -> &mut Simulation<CasMsg> {
        &mut self.sim
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// In-flight writes of every client, as `(client, seq, invoked_at, tag,
    /// value)` tuples (see [`CasClient::in_flight_write`]).
    pub fn pending_writes(&self) -> Vec<crate::PendingWriteInfo> {
        self.clients
            .iter()
            .filter_map(|&c| {
                let client = self.sim.process_as::<CasClient>(c)?;
                let (seq, invoked_at, tag, value) = client.in_flight_write()?;
                Some((c, seq, invoked_at, tag, value))
            })
            .collect()
    }

    /// The completed operations of one particular client.
    pub fn client_records(&self, client: ProcessId) -> Vec<CasOpRecord> {
        self.sim
            .process_as::<CasClient>(client)
            .map(|c| c.completed_ops().to_vec())
            .unwrap_or_default()
    }

    /// Maximum number of versions with stored elements at any single server.
    pub fn max_stored_versions(&self) -> usize {
        self.servers
            .iter()
            .filter_map(|&s| self.sim.process_as::<CasServer>(s))
            .map(|s| s.stored_versions())
            .max()
            .unwrap_or(0)
    }
}
