//! Baseline atomic-register algorithms the paper compares SODA against
//! (Table I and Section I-B):
//!
//! * [`abd`] — the replication-based ABD algorithm (Attiya, Bar-Noy, Dolev):
//!   every server stores the full value; writes and reads are two majority
//!   phases; the read writes the value back. Write cost, read cost and total
//!   storage cost are all `n`.
//! * [`cas`] — the erasure-coded CAS algorithm and its garbage-collected
//!   variant CASGC (Cadambe, Lynch, Médard, Musial): servers store coded
//!   elements for multiple versions with `pre`/`fin` labels; quorums of size
//!   `n − f` intersect in `k = n − 2f` elements. Per-operation communication
//!   cost is `n/(n−2f)`; CASGC bounds storage to `δ + 1` versions,
//!   i.e. `n/(n−2f)·(δ+1)`.
//!
//! Both are implemented over the same [`soda_simnet`] substrate and the same
//! cost model as SODA, so the experiment harness can regenerate the paper's
//! comparison table by running all three side by side.
//!
//! Application code should not build `AbdCluster` / `CasCluster` directly:
//! the `soda-registry` crate's `ClusterBuilder` (with `ProtocolKind::Abd`,
//! `ProtocolKind::Cas` or `ProtocolKind::Casgc { gc }`) validates parameters
//! and returns the protocol-agnostic `RegisterCluster` facade; the
//! [`abd::AbdParams`] / [`cas::CasParams`] constructors here are the backend
//! it wraps.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod abd;
pub mod cas;

/// An in-flight (invoked but not completed) write, as reported by
/// [`abd::AbdCluster::pending_writes`] and [`cas::CasCluster::pending_writes`]:
/// `(client, seq, invoked_at, tag-once-assigned, value)`. The tag is `None`
/// while the write is still in its query phase, i.e. before any server has
/// seen the value.
pub type PendingWriteInfo = (
    soda_simnet::ProcessId,
    u64,
    soda_simnet::SimTime,
    Option<soda_protocol::Tag>,
    Vec<u8>,
);

/// Progress of a replacement server's state re-acquisition after a
/// crash–recovery (see [`abd::AbdServer::replacement`] and
/// [`cas::CasServer::replacement`]). Until `completed_at` is set the
/// replacement counts against the crash budget `f` and answers no queries
/// whose staleness could violate atomicity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RepairStatus {
    /// When the replacement started pulling state from survivors.
    pub started_at: soda_simnet::SimTime,
    /// When the repair finished (`None` while still in progress).
    pub completed_at: Option<soda_simnet::SimTime>,
    /// Bytes of value / coded-element data received during the repair.
    pub traffic_bytes: u64,
    /// Whether the repair gave up: its retry budget ran out with the
    /// survivors unreachable (e.g. a partition that outlived every retry).
    /// The replacement halted itself, so the rank is plain dead again and
    /// can be repaired anew.
    pub failed: bool,
}

/// Ticks between repair retries, shared by the ABD and CAS replacement
/// servers (the SODA server uses the same cadence). Comfortably above one
/// network round trip, so a clean-path repair completes before the first
/// retry fires.
pub(crate) const REPAIR_RETRY_INTERVAL: u64 = 400;
/// Total repair attempts (first fan-out + retries) before giving up.
pub(crate) const REPAIR_MAX_ATTEMPTS: u32 = 8;
/// Timer token of the repair retry loop.
pub(crate) const REPAIR_RETRY_TOKEN: u64 = u64::MAX;
