//! The ABD algorithm (Attiya–Bar-Noy–Dolev), multi-writer multi-reader
//! variant, used as the replication baseline.
//!
//! Every server stores the full `(tag, value)` pair. A write queries a
//! majority for tags, picks the next tag, and stores the value at a majority.
//! A read queries a majority for `(tag, value)` pairs, picks the highest, and
//! *writes it back* to a majority before returning (the write-back is what
//! makes concurrent reads atomic rather than merely regular).
//!
//! Costs (Table I): write cost `n`, read cost `n` (the value travels to/from
//! every server in the worst case), total storage cost `n`.

use soda_protocol::{value_from, Layout, QuorumTracker, Tag, Value};
use soda_simnet::{
    Context, Message, NetworkConfig, Process, ProcessId, RunOutcome, SimTime, Simulation, Stats,
};
use std::collections::VecDeque;
use std::sync::Arc;

/// Messages of the ABD protocol.
#[derive(Clone, Debug)]
pub enum AbdMsg {
    /// Ask a writer to write a value.
    InvokeWrite(Value),
    /// Ask a reader to read.
    InvokeRead,
    /// Phase-1 query (from writers and readers alike).
    Query {
        /// Operation sequence number local to the client.
        seq: u64,
    },
    /// Server response to a query: its stored tag and value.
    QueryResp {
        /// The queried operation.
        seq: u64,
        /// Stored tag.
        tag: Tag,
        /// Stored value (this is what makes ABD reads cost `n`).
        value: Value,
    },
    /// Phase-2 store request carrying the full value.
    Store {
        /// The operation this store belongs to.
        seq: u64,
        /// Tag to store under.
        tag: Tag,
        /// Full replicated value.
        value: Value,
    },
    /// Server acknowledgement of a store.
    StoreAck {
        /// The operation being acknowledged.
        seq: u64,
    },
}

impl Message for AbdMsg {
    fn data_bytes(&self) -> usize {
        match self {
            AbdMsg::QueryResp { value, .. } | AbdMsg::Store { value, .. } => value.len(),
            _ => 0,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            AbdMsg::InvokeWrite(_) => "invoke-write",
            AbdMsg::InvokeRead => "invoke-read",
            AbdMsg::Query { .. } => "query",
            AbdMsg::QueryResp { .. } => "query-resp",
            AbdMsg::Store { .. } => "store",
            AbdMsg::StoreAck { .. } => "store-ack",
        }
    }
}

/// A completed ABD operation (mirrors `soda::OpRecord` but lives here to keep
/// the baseline crate independent of the SODA core).
#[derive(Clone, Debug)]
pub struct AbdOpRecord {
    /// Per-client sequence number.
    pub seq: u64,
    /// True if this was a read.
    pub is_read: bool,
    /// Invocation time.
    pub invoked_at: SimTime,
    /// Response time.
    pub completed_at: SimTime,
    /// The tag associated with the operation.
    pub tag: Tag,
    /// Written or returned value.
    pub value: Vec<u8>,
}

/// In-flight state re-acquisition of a replacement ABD server.
struct AbdRepair {
    layout: Layout,
    seq: u64,
    tracker: QuorumTracker<(Tag, Value)>,
    started_at: SimTime,
    completed_at: Option<SimTime>,
    traffic_bytes: u64,
    /// Fan-out attempts so far (the initial send counts as one).
    attempts: u32,
    /// The retry budget ran out with the survivors unreachable; the
    /// replacement halted itself and the rank is plain dead again.
    failed: bool,
}

/// The ABD server: stores the full `(tag, value)` pair.
pub struct AbdServer {
    tag: Tag,
    value: Value,
    repair: Option<AbdRepair>,
}

impl AbdServer {
    /// Creates a server holding the initial value.
    pub fn new(initial: &Value) -> Self {
        AbdServer {
            tag: Tag::INITIAL,
            value: initial.clone(),
            repair: None,
        }
    }

    /// Creates a **replacement** server with empty state that repairs itself
    /// on start: it queries every peer, waits for a majority of responses and
    /// adopts the maximum `(tag, value)` pair. A majority of survivors
    /// intersects every completed write's store quorum in at least one full
    /// replica, so the adopted pair is at least as new as any completed
    /// write — the same argument that makes ABD reads atomic.
    ///
    /// Until the repair completes the replacement answers no queries (its
    /// `Tag::INITIAL` could otherwise stand in for the crashed server in a
    /// reader's majority and hide a completed write), but it applies and
    /// acknowledges stores — a stored pair is durable from that moment on.
    /// `epoch` distinguishes successive incarnations of the same rank.
    pub fn replacement(layout: Layout, epoch: u64) -> Self {
        let majority = layout.majority();
        AbdServer {
            tag: Tag::INITIAL,
            value: value_from(Vec::new()),
            repair: Some(AbdRepair {
                layout,
                seq: epoch,
                tracker: QuorumTracker::new(majority),
                started_at: SimTime::ZERO,
                completed_at: None,
                traffic_bytes: 0,
                attempts: 0,
                failed: false,
            }),
        }
    }

    /// Bytes of value data stored (storage-cost contribution).
    pub fn stored_bytes(&self) -> usize {
        self.value.len()
    }

    /// The stored tag.
    pub fn stored_tag(&self) -> Tag {
        self.tag
    }

    /// Whether this server is a replacement whose repair has not finished.
    pub fn is_repairing(&self) -> bool {
        matches!(&self.repair, Some(r) if r.completed_at.is_none() && !r.failed)
    }

    /// Whether this replacement gave up (retry budget exhausted with the
    /// survivors unreachable) and halted itself.
    pub fn repair_failed(&self) -> bool {
        matches!(&self.repair, Some(r) if r.failed)
    }

    /// Repair progress, if this server is (or was) a replacement.
    pub fn repair_status(&self) -> Option<crate::RepairStatus> {
        self.repair.as_ref().map(|r| crate::RepairStatus {
            started_at: r.started_at,
            completed_at: r.completed_at,
            traffic_bytes: r.traffic_bytes,
            failed: r.failed,
        })
    }

    /// Sends (or re-sends) the repair query fan-out to every peer.
    fn send_repair_queries(&mut self, ctx: &mut Context<'_, AbdMsg>) {
        let Some(repair) = self.repair.as_ref() else {
            return;
        };
        let seq = repair.seq;
        let peers: Vec<ProcessId> = repair
            .layout
            .servers()
            .iter()
            .copied()
            .filter(|&p| p != ctx.self_id())
            .collect();
        for peer in peers {
            ctx.send(peer, AbdMsg::Query { seq });
        }
    }
}

impl Process<AbdMsg> for AbdServer {
    fn on_start(&mut self, ctx: &mut Context<'_, AbdMsg>) {
        {
            let Some(repair) = self.repair.as_mut() else {
                return;
            };
            repair.started_at = ctx.now();
            repair.attempts = 1;
        }
        self.send_repair_queries(ctx);
        ctx.set_timer(crate::REPAIR_RETRY_INTERVAL, crate::REPAIR_RETRY_TOKEN);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, AbdMsg>) {
        if token != crate::REPAIR_RETRY_TOKEN {
            return;
        }
        {
            let Some(repair) = self.repair.as_mut() else {
                return;
            };
            if repair.completed_at.is_some() || repair.failed {
                return;
            }
            if repair.attempts >= crate::REPAIR_MAX_ATTEMPTS {
                // Survivors unreachable for the whole retry budget: give up
                // and halt, reverting the rank to plain dead so the
                // crash-budget slot can be reclaimed by a later repair.
                repair.failed = true;
                ctx.halt();
                return;
            }
            repair.attempts += 1;
        }
        // Duplicate queries are idempotent: the quorum tracker records each
        // responder once.
        self.send_repair_queries(ctx);
        ctx.set_timer(crate::REPAIR_RETRY_INTERVAL, crate::REPAIR_RETRY_TOKEN);
    }

    fn on_message(&mut self, from: ProcessId, msg: AbdMsg, ctx: &mut Context<'_, AbdMsg>) {
        match msg {
            AbdMsg::Query { seq } => {
                if self.is_repairing() {
                    return;
                }
                ctx.send(
                    from,
                    AbdMsg::QueryResp {
                        seq,
                        tag: self.tag,
                        value: self.value.clone(),
                    },
                );
            }
            AbdMsg::Store { seq, tag, value } => {
                if tag > self.tag {
                    self.tag = tag;
                    self.value = value;
                }
                ctx.send(from, AbdMsg::StoreAck { seq });
            }
            // Peers' responses to this server's own repair query.
            AbdMsg::QueryResp { seq, tag, value } => {
                let Some(repair) = self.repair.as_mut() else {
                    return;
                };
                if repair.completed_at.is_some() || seq != repair.seq {
                    return;
                }
                repair.traffic_bytes += value.len() as u64;
                repair.tracker.record(from, (tag, value));
                if !repair.tracker.is_complete() {
                    return;
                }
                let (max_tag, max_value) = repair
                    .tracker
                    .responses()
                    .max_by_key(|(_, (tag, _))| *tag)
                    .map(|(_, (tag, value))| (*tag, value.clone()))
                    .expect("a complete quorum is non-empty");
                repair.completed_at = Some(ctx.now());
                // Monotone adoption: a concurrent write's store may already
                // have installed a newer pair.
                if max_tag > self.tag {
                    self.tag = max_tag;
                    self.value = max_value;
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Phase of an in-flight ABD client operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AbdPhase {
    Idle,
    Query,
    Store,
}

enum PendingOp {
    Write(Value),
    Read,
}

/// An ABD client: performs both writes and reads (the two differ only in how
/// the phase-2 tag/value are chosen and in what is recorded on completion).
pub struct AbdClient {
    layout: Layout,
    self_id: ProcessId,
    /// Responses each phase waits for. Always `layout.majority()` in correct
    /// deployments; see [`AbdClient::with_quorum`].
    quorum: usize,
    phase: AbdPhase,
    pending: VecDeque<PendingOp>,
    seq: u64,
    current_is_read: bool,
    current_value: Option<Value>,
    invoked_at: SimTime,
    store_tag: Option<Tag>,
    store_value: Option<Value>,
    query_tracker: QuorumTracker<(Tag, Value)>,
    ack_tracker: QuorumTracker<()>,
    completed: Vec<AbdOpRecord>,
}

impl AbdClient {
    /// Creates a client for the given layout.
    pub fn new(layout: Layout, self_id: ProcessId) -> Self {
        let majority = layout.majority();
        AbdClient {
            layout,
            self_id,
            quorum: majority,
            phase: AbdPhase::Idle,
            pending: VecDeque::new(),
            seq: 0,
            current_is_read: false,
            current_value: None,
            invoked_at: SimTime::ZERO,
            store_tag: None,
            store_value: None,
            query_tracker: QuorumTracker::new(majority),
            ack_tracker: QuorumTracker::new(majority),
            completed: Vec::new(),
        }
    }

    /// **Test-only.** Overrides the number of responses each phase waits
    /// for. Anything below `layout.majority()` breaks the quorum-intersection
    /// argument ABD's atomicity rests on; the schedule-exploration harness
    /// uses this deliberately broken configuration to verify that the
    /// atomicity checker catches non-atomic executions.
    pub fn with_quorum(mut self, quorum: usize) -> Self {
        self.quorum = quorum.clamp(1, self.layout.n());
        self
    }

    /// Completed operations in completion order.
    pub fn completed_ops(&self) -> &[AbdOpRecord] {
        &self.completed
    }

    /// The in-flight *write*, if one exists: `(seq, invoked_at, tag, value)`
    /// where the tag is `None` until the store phase starts (before that, no
    /// server has seen the value, so no read can have observed it). Needed to
    /// close operation histories under crash/network faults. In-flight reads
    /// are not reported: an unfinished read returns nothing.
    pub fn in_flight_write(&self) -> Option<(u64, SimTime, Option<Tag>, Vec<u8>)> {
        if self.phase == AbdPhase::Idle || self.current_is_read {
            return None;
        }
        let value = self
            .current_value
            .as_ref()
            .expect("an in-flight write always carries its value")
            .to_vec();
        Some((self.seq, self.invoked_at, self.store_tag, value))
    }

    fn start_next(&mut self, ctx: &mut Context<'_, AbdMsg>) {
        if self.phase != AbdPhase::Idle {
            return;
        }
        let Some(op) = self.pending.pop_front() else {
            return;
        };
        self.seq += 1;
        self.invoked_at = ctx.now();
        match op {
            PendingOp::Write(value) => {
                self.current_is_read = false;
                self.current_value = Some(value);
            }
            PendingOp::Read => {
                self.current_is_read = true;
                self.current_value = None;
            }
        }
        self.phase = AbdPhase::Query;
        self.query_tracker = QuorumTracker::new(self.quorum);
        for &server in self.layout.servers() {
            ctx.send(server, AbdMsg::Query { seq: self.seq });
        }
    }

    fn begin_store(&mut self, ctx: &mut Context<'_, AbdMsg>) {
        let (max_tag, max_value) = self
            .query_tracker
            .responses()
            .max_by_key(|(_, (tag, _))| *tag)
            .map(|(_, (tag, value))| (*tag, value.clone()))
            .unwrap_or((Tag::INITIAL, value_from(Vec::new())));
        let (tag, value) = if self.current_is_read {
            (max_tag, max_value)
        } else {
            (
                max_tag.next(self.self_id),
                self.current_value.clone().expect("write has a value"),
            )
        };
        self.store_tag = Some(tag);
        self.store_value = Some(value.clone());
        self.phase = AbdPhase::Store;
        self.ack_tracker = QuorumTracker::new(self.quorum);
        for &server in self.layout.servers() {
            ctx.send(
                server,
                AbdMsg::Store {
                    seq: self.seq,
                    tag,
                    value: value.clone(),
                },
            );
        }
    }

    fn complete(&mut self, ctx: &mut Context<'_, AbdMsg>) {
        let record = AbdOpRecord {
            seq: self.seq,
            is_read: self.current_is_read,
            invoked_at: self.invoked_at,
            completed_at: ctx.now(),
            tag: self.store_tag.take().expect("store tag set"),
            value: self
                .store_value
                .take()
                .map(|v| v.to_vec())
                .unwrap_or_default(),
        };
        self.completed.push(record);
        self.phase = AbdPhase::Idle;
        self.current_value = None;
        self.start_next(ctx);
    }
}

impl Process<AbdMsg> for AbdClient {
    fn on_message(&mut self, from: ProcessId, msg: AbdMsg, ctx: &mut Context<'_, AbdMsg>) {
        match msg {
            AbdMsg::InvokeWrite(value) => {
                self.pending.push_back(PendingOp::Write(value));
                self.start_next(ctx);
            }
            AbdMsg::InvokeRead => {
                self.pending.push_back(PendingOp::Read);
                self.start_next(ctx);
            }
            AbdMsg::QueryResp { seq, tag, value }
                if self.phase == AbdPhase::Query && seq == self.seq =>
            {
                self.query_tracker.record(from, (tag, value));
                if self.query_tracker.is_complete() {
                    self.begin_store(ctx);
                }
            }
            AbdMsg::StoreAck { seq } if self.phase == AbdPhase::Store && seq == self.seq => {
                self.ack_tracker.record(from, ());
                if self.ack_tracker.is_complete() {
                    self.complete(ctx);
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Parameters of an ABD deployment.
///
/// This replaces the former six-positional-argument `AbdCluster::build`
/// signature. Application code should not use it directly: build clusters
/// through `soda_registry::ClusterBuilder`, which validates parameters and
/// returns the protocol-agnostic `RegisterCluster` facade.
#[derive(Clone, Debug)]
pub struct AbdParams {
    /// Number of servers.
    pub n: usize,
    /// Number of server crashes the experiments inject (ABD itself always
    /// uses majority quorums regardless of `f`).
    pub f: usize,
    /// Number of clients (each performs both writes and reads).
    pub num_clients: usize,
    /// RNG seed controlling message delays.
    pub seed: u64,
    /// Network delay configuration.
    pub network: NetworkConfig,
    /// The initial object value `v0`.
    pub initial_value: Vec<u8>,
    /// **Test-only.** Overrides the per-phase quorum size of every client
    /// (see [`AbdClient::with_quorum`]). `None` (the default) uses the
    /// correct majority quorum.
    pub quorum_override: Option<usize>,
}

impl AbdParams {
    /// Parameters for an `(n, f)` cluster with two clients, seed 0, uniform
    /// delays in `[1, 10]` and an empty initial value.
    pub fn new(n: usize, f: usize) -> Self {
        AbdParams {
            n,
            f,
            num_clients: 2,
            seed: 0,
            network: NetworkConfig::uniform(10),
            initial_value: Vec::new(),
            quorum_override: None,
        }
    }
}

/// A complete simulated ABD deployment.
pub struct AbdCluster {
    sim: Simulation<AbdMsg>,
    layout: Layout,
    servers: Vec<ProcessId>,
    clients: Vec<ProcessId>,
    /// Per-rank incarnation counter for replacement servers.
    epochs: Vec<u64>,
}

impl AbdCluster {
    /// Builds the cluster described by `params`.
    pub fn build(params: AbdParams) -> Self {
        let AbdParams {
            n,
            f,
            num_clients,
            seed,
            network,
            initial_value,
            quorum_override,
        } = params;
        let mut sim = Simulation::new(seed, network);
        let server_ids: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
        let layout = Layout::new(server_ids.clone(), f);
        let initial = value_from(initial_value);
        for _ in 0..n {
            sim.add_process(Box::new(AbdServer::new(&initial)));
        }
        let mut clients = Vec::new();
        for _ in 0..num_clients {
            let id = ProcessId(sim.num_processes() as u32);
            let mut client = AbdClient::new(layout.clone(), id);
            if let Some(q) = quorum_override {
                client = client.with_quorum(q);
            }
            sim.add_process(Box::new(client));
            clients.push(id);
        }
        let epochs = vec![0; n];
        AbdCluster {
            sim,
            layout,
            servers: server_ids,
            clients,
            epochs,
        }
    }

    /// Client process ids.
    pub fn clients(&self) -> &[ProcessId] {
        &self.clients
    }

    /// Server process ids.
    pub fn servers(&self) -> &[ProcessId] {
        &self.servers
    }

    /// Queues a write at client `client`.
    pub fn invoke_write(&mut self, client: ProcessId, value: Vec<u8>) {
        self.sim
            .send_external(client, AbdMsg::InvokeWrite(value_from(value)));
    }

    /// Queues a write at a given simulated time.
    pub fn invoke_write_at(&mut self, at: SimTime, client: ProcessId, value: Vec<u8>) {
        self.sim
            .send_external_at(at, client, AbdMsg::InvokeWrite(value_from(value)));
    }

    /// Queues a read at client `client`.
    pub fn invoke_read(&mut self, client: ProcessId) {
        self.sim.send_external(client, AbdMsg::InvokeRead);
    }

    /// Queues a read at a given simulated time.
    pub fn invoke_read_at(&mut self, at: SimTime, client: ProcessId) {
        self.sim.send_external_at(at, client, AbdMsg::InvokeRead);
    }

    /// Crashes the server with the given rank.
    pub fn crash_server_at(&mut self, at: SimTime, rank: usize) {
        let id = self.servers[rank];
        self.sim.schedule_crash(at, id);
    }

    /// Crashes an arbitrary process (e.g. a client) at time `at`.
    pub fn crash_process_at(&mut self, at: SimTime, id: ProcessId) {
        self.sim.schedule_crash(at, id);
    }

    /// Schedules the repair of the server with the given rank at time `at`:
    /// a fresh replacement adopts the majority-maximum `(tag, value)` pair
    /// from survivors (see [`AbdServer::replacement`]).
    pub fn repair_server_at(&mut self, at: SimTime, rank: usize) {
        self.epochs[rank] += 1;
        let replacement = AbdServer::replacement(self.layout.clone(), self.epochs[rank]);
        self.sim
            .schedule_recovery(at, self.servers[rank], Box::new(replacement));
    }

    /// Number of servers currently dead **or under repair**.
    pub fn dead_or_repairing(&self) -> usize {
        self.servers
            .iter()
            .filter(|&&id| {
                self.sim.is_crashed(id)
                    || self
                        .sim
                        .process_as::<AbdServer>(id)
                        .is_some_and(|s| s.is_repairing())
            })
            .count()
    }

    /// Repair status of each rank's current incarnation (`None` for servers
    /// that were never replaced).
    pub fn repair_statuses(&self) -> Vec<Option<crate::RepairStatus>> {
        self.servers
            .iter()
            .map(|&id| {
                self.sim
                    .process_as::<AbdServer>(id)
                    .and_then(|s| s.repair_status())
            })
            .collect()
    }

    /// Runs until quiescent.
    pub fn run_to_quiescence(&mut self) -> RunOutcome {
        self.sim.run_to_quiescence()
    }

    /// Runs the simulation until the given deadline.
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        self.sim.run_until(deadline)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Message statistics.
    pub fn stats(&self) -> Stats {
        self.sim.stats()
    }

    /// All completed operations across clients, ordered by completion time.
    pub fn completed_ops(&self) -> Vec<AbdOpRecord> {
        let mut ops: Vec<AbdOpRecord> = self
            .clients
            .iter()
            .filter_map(|&c| self.sim.process_as::<AbdClient>(c))
            .flat_map(|c| c.completed_ops().iter().cloned())
            .collect();
        ops.sort_by_key(|op| op.completed_at);
        ops
    }

    /// In-flight writes of every client, as `(client, seq, invoked_at, tag,
    /// value)` tuples (see [`AbdClient::in_flight_write`]).
    pub fn pending_writes(&self) -> Vec<crate::PendingWriteInfo> {
        self.clients
            .iter()
            .filter_map(|&c| {
                let client = self.sim.process_as::<AbdClient>(c)?;
                let (seq, invoked_at, tag, value) = client.in_flight_write()?;
                Some((c, seq, invoked_at, tag, value))
            })
            .collect()
    }

    /// The completed operations of one particular client.
    pub fn client_records(&self, client: ProcessId) -> Vec<AbdOpRecord> {
        self.sim
            .process_as::<AbdClient>(client)
            .map(|c| c.completed_ops().to_vec())
            .unwrap_or_default()
    }

    /// Bytes of value data stored at each server, by rank.
    pub fn stored_bytes_per_server(&self) -> Vec<u64> {
        self.servers
            .iter()
            .map(|&s| {
                self.sim
                    .process_as::<AbdServer>(s)
                    .map(|s| s.stored_bytes() as u64)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Total bytes of value data stored across all servers.
    pub fn total_stored_bytes(&self) -> u64 {
        self.stored_bytes_per_server().iter().sum()
    }

    /// Immutable access to the underlying simulation.
    pub fn sim(&self) -> &Simulation<AbdMsg> {
        &self.sim
    }

    /// Mutable access to the underlying simulation.
    pub fn sim_mut(&mut self) -> &mut Simulation<AbdMsg> {
        &mut self.sim
    }
}

/// Shared-pointer alias used by the workload adapters.
pub type SharedLayout = Arc<Layout>;
