//! Version tags.
//!
//! A tag `t = (z, w)` pairs an integer version number with the id of the
//! writer that produced it. Tags are totally ordered lexicographically:
//! `t2 > t1` iff `t2.z > t1.z`, or `t2.z == t1.z` and `t2.w > t1.w`
//! (Section IV). The initial tag `t0` is smaller than every tag a real writer
//! can produce.

use soda_simnet::ProcessId;
use std::fmt;

/// A version tag `(z, writer)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tag {
    /// Monotonically increasing version number.
    pub z: u64,
    /// Id of the writer that created this version (ties broken by writer id).
    pub writer: ProcessId,
}

impl Tag {
    /// The initial tag `t0` associated with the initial value `v0`. It uses
    /// `z = 0` and the smallest possible writer id, so every tag created by
    /// [`Tag::next`] compares strictly greater.
    pub const INITIAL: Tag = Tag {
        z: 0,
        writer: ProcessId(0),
    };

    /// Creates a tag.
    pub fn new(z: u64, writer: ProcessId) -> Self {
        Tag { z, writer }
    }

    /// The tag a writer creates after observing `self` as the highest tag:
    /// `(z + 1, writer)` (write-get / write-put phase of SODA, and the
    /// analogous phase of ABD and CAS).
    pub fn next(&self, writer: ProcessId) -> Tag {
        Tag {
            z: self.z + 1,
            writer,
        }
    }

    /// Whether this is the initial tag.
    pub fn is_initial(&self) -> bool {
        *self == Tag::INITIAL
    }
}

impl Default for Tag {
    fn default() -> Self {
        Tag::INITIAL
    }
}

impl fmt::Debug for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.z, self.writer)
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.z, self.writer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_lexicographic() {
        let w1 = ProcessId(10);
        let w2 = ProcessId(20);
        assert!(Tag::new(2, w1) > Tag::new(1, w2));
        assert!(Tag::new(1, w2) > Tag::new(1, w1));
        assert_eq!(Tag::new(3, w1), Tag::new(3, w1));
        assert!(Tag::new(1, w1) < Tag::new(1, w2));
    }

    #[test]
    fn next_is_strictly_greater() {
        let w = ProcessId(5);
        let t0 = Tag::INITIAL;
        let t1 = t0.next(w);
        assert!(t1 > t0);
        assert_eq!(t1.z, 1);
        assert_eq!(t1.writer, w);
        let t2 = t1.next(ProcessId(0));
        assert!(t2 > t1, "higher z wins even with smaller writer id");
    }

    #[test]
    fn initial_tag_is_minimal_among_created_tags() {
        assert!(Tag::INITIAL.is_initial());
        assert!(!Tag::new(1, ProcessId(0)).is_initial());
        for w in 0..5u32 {
            assert!(Tag::INITIAL.next(ProcessId(w)) > Tag::INITIAL);
        }
    }

    #[test]
    fn max_of_tags_selects_highest() {
        let tags = [
            Tag::new(1, ProcessId(3)),
            Tag::new(2, ProcessId(1)),
            Tag::new(2, ProcessId(2)),
            Tag::INITIAL,
        ];
        assert_eq!(
            tags.iter().max().copied().unwrap(),
            Tag::new(2, ProcessId(2))
        );
    }

    #[test]
    fn display_and_debug() {
        let t = Tag::new(4, ProcessId(7));
        assert_eq!(format!("{t}"), "(4, p7)");
        assert_eq!(format!("{t:?}"), "(4, p7)");
    }
}
