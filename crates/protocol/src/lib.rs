//! Shared protocol substrate for the SODA family of atomic-register
//! algorithms.
//!
//! This crate contains the pieces that SODA, SODAerr and the baselines
//! (ABD, CAS, CASGC) have in common:
//!
//! * [`Tag`] — the `(z, writer-id)` version identifiers with the total order
//!   defined in Section IV of the paper.
//! * [`Layout`] — the static system layout (which simulated processes are the
//!   `n` servers, which are clients, what `f` is), including the majority
//!   quorum size and the ordered "first `f + 1` servers" set `D` used by the
//!   message-disperse primitives.
//! * [`QuorumTracker`] — response collection until a quorum is reached.
//! * [`md`] — the **message-disperse primitives** MD-VALUE and MD-META
//!   (Section III): pure state machines that, given a received message,
//!   produce the relays and local deliveries the IO Automata specification
//!   prescribes. The protocol processes in `soda` drive these over the
//!   simulated network.
//! * [`cost`] — normalization helpers implementing the paper's cost model
//!   (everything is measured in units of the object-value size; metadata is
//!   free).
//! * [`Value`] — cheaply clonable object values (`Arc<Vec<u8>>`), since the
//!   simulator clones messages on every hop.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cost;
pub mod md;

mod layout;
mod quorum;
mod tag;
mod value;

pub use layout::Layout;
pub use quorum::QuorumTracker;
pub use soda_rs_code::{CodeCacheStats, MdsCode};
pub use tag::Tag;
pub use value::{value_from, value_len, Value};
