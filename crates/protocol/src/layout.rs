//! Static system layout.
//!
//! Protocol processes need to know which simulated processes are the `n`
//! servers (in their agreed total order), how many crashes `f` must be
//! tolerated, and derived quantities such as the majority quorum size and the
//! set `D` of the first `f + 1` servers used by the message-disperse
//! primitives.

use soda_simnet::ProcessId;

/// The static layout of one emulated atomic object: the ordered server list
/// and the fault-tolerance parameter `f`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Layout {
    servers: Vec<ProcessId>,
    f: usize,
}

impl Layout {
    /// Creates a layout.
    ///
    /// # Panics
    /// Panics if `f > (n - 1) / 2` (SODA requires `f ≤ (n−1)/2` so that
    /// majorities intersect) or if the server list is empty.
    pub fn new(servers: Vec<ProcessId>, f: usize) -> Self {
        assert!(!servers.is_empty(), "layout requires at least one server");
        let n = servers.len();
        assert!(
            f <= (n - 1) / 2,
            "SODA requires f <= (n-1)/2, got f={f} with n={n}"
        );
        Layout { servers, f }
    }

    /// Number of servers `n`.
    pub fn n(&self) -> usize {
        self.servers.len()
    }

    /// Maximum number of server crashes tolerated.
    pub fn f(&self) -> usize {
        self.f
    }

    /// The code dimension SODA uses: `k = n − f`.
    pub fn k(&self) -> usize {
        self.n() - self.f
    }

    /// Majority quorum size `⌊n/2⌋ + 1`.
    pub fn majority(&self) -> usize {
        self.n() / 2 + 1
    }

    /// The ordered server list.
    pub fn servers(&self) -> &[ProcessId] {
        &self.servers
    }

    /// Process id of the server with the given rank (0-based position in the
    /// agreed order).
    pub fn server(&self, rank: usize) -> ProcessId {
        self.servers[rank]
    }

    /// Rank of a server process, if it is one.
    pub fn rank_of(&self, id: ProcessId) -> Option<usize> {
        self.servers.iter().position(|&s| s == id)
    }

    /// The set `D`: ranks of the first `f + 1` servers, used as the relay
    /// backbone of the message-disperse primitives.
    pub fn relay_set(&self) -> std::ops::Range<usize> {
        0..(self.f + 1).min(self.n())
    }

    /// Whether the given rank belongs to the relay set `D`.
    pub fn in_relay_set(&self, rank: usize) -> bool {
        rank < (self.f + 1).min(self.n())
    }

    /// Maximum `f` for which SODA (and ABD) can be configured on `n` servers:
    /// `⌊(n−1)/2⌋` (`fmax` in Table I).
    pub fn fmax(n: usize) -> usize {
        (n.saturating_sub(1)) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn servers(n: usize) -> Vec<ProcessId> {
        (0..n as u32).map(ProcessId).collect()
    }

    #[test]
    fn derived_quantities() {
        let l = Layout::new(servers(10), 4);
        assert_eq!(l.n(), 10);
        assert_eq!(l.f(), 4);
        assert_eq!(l.k(), 6);
        assert_eq!(l.majority(), 6);
        assert_eq!(l.relay_set(), 0..5);
        assert!(l.in_relay_set(0));
        assert!(l.in_relay_set(4));
        assert!(!l.in_relay_set(5));
    }

    #[test]
    fn rank_lookup() {
        let l = Layout::new(vec![ProcessId(7), ProcessId(3), ProcessId(9)], 1);
        assert_eq!(l.rank_of(ProcessId(3)), Some(1));
        assert_eq!(l.rank_of(ProcessId(42)), None);
        assert_eq!(l.server(2), ProcessId(9));
    }

    #[test]
    fn fmax_matches_paper() {
        assert_eq!(Layout::fmax(10), 4); // n even: n/2 - 1
        assert_eq!(Layout::fmax(11), 5);
        assert_eq!(Layout::fmax(1), 0);
        assert_eq!(Layout::fmax(2), 0);
    }

    #[test]
    #[should_panic(expected = "f <= (n-1)/2")]
    fn rejects_too_large_f() {
        let _ = Layout::new(servers(4), 2);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn rejects_empty_server_list() {
        let _ = Layout::new(vec![], 0);
    }

    #[test]
    fn majorities_intersect() {
        for n in 1..=20 {
            let l = Layout::new(servers(n), Layout::fmax(n));
            assert!(2 * l.majority() > l.n(), "n={n}");
            // A majority survives f crashes.
            assert!(l.majority() <= l.n() - l.f(), "n={n}");
        }
    }
}
