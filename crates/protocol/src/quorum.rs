//! Quorum response collection.

use soda_simnet::ProcessId;
use std::collections::BTreeMap;

/// Collects one response per process until a target count is reached.
///
/// Used by every phase that waits for a majority (write-get, read-get, ABD
/// phases) or for `k` acknowledgements (write-put). Duplicate responses from
/// the same process are ignored, which makes the tracker idempotent under
/// message duplication.
#[derive(Clone, Debug)]
pub struct QuorumTracker<T> {
    needed: usize,
    responses: BTreeMap<ProcessId, T>,
}

impl<T> QuorumTracker<T> {
    /// Creates a tracker requiring `needed` distinct responses.
    pub fn new(needed: usize) -> Self {
        QuorumTracker {
            needed,
            responses: BTreeMap::new(),
        }
    }

    /// Records a response from `from`. Returns `true` if this response was new
    /// (not a duplicate).
    pub fn record(&mut self, from: ProcessId, response: T) -> bool {
        if self.responses.contains_key(&from) {
            return false;
        }
        self.responses.insert(from, response);
        true
    }

    /// Whether the quorum has been reached.
    pub fn is_complete(&self) -> bool {
        self.responses.len() >= self.needed
    }

    /// Number of distinct responses recorded so far.
    pub fn count(&self) -> usize {
        self.responses.len()
    }

    /// Required number of responses.
    pub fn needed(&self) -> usize {
        self.needed
    }

    /// Iterator over the recorded responses.
    pub fn responses(&self) -> impl Iterator<Item = (&ProcessId, &T)> {
        self.responses.iter()
    }

    /// Consumes the tracker and returns the responses.
    pub fn into_responses(self) -> BTreeMap<ProcessId, T> {
        self.responses
    }

    /// The maximum response according to `Ord`, if any (e.g. the highest tag
    /// in a get phase).
    pub fn max_response(&self) -> Option<&T>
    where
        T: Ord,
    {
        self.responses.values().max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_completes_after_needed_distinct_responses() {
        let mut q: QuorumTracker<u32> = QuorumTracker::new(3);
        assert!(!q.is_complete());
        assert!(q.record(ProcessId(0), 5));
        assert!(q.record(ProcessId(1), 7));
        assert!(!q.is_complete());
        // Duplicate is ignored.
        assert!(!q.record(ProcessId(1), 100));
        assert_eq!(q.count(), 2);
        assert!(q.record(ProcessId(2), 1));
        assert!(q.is_complete());
        assert_eq!(q.needed(), 3);
        assert_eq!(q.max_response(), Some(&7));
    }

    #[test]
    fn responses_are_retrievable() {
        let mut q: QuorumTracker<&'static str> = QuorumTracker::new(2);
        q.record(ProcessId(4), "a");
        q.record(ProcessId(2), "b");
        let all: Vec<_> = q.responses().map(|(p, v)| (*p, *v)).collect();
        assert_eq!(all, vec![(ProcessId(2), "b"), (ProcessId(4), "a")]);
        let map = q.into_responses();
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn zero_needed_is_immediately_complete() {
        let q: QuorumTracker<()> = QuorumTracker::new(0);
        assert!(q.is_complete());
        assert_eq!(q.max_response(), None);
    }
}
