//! Object values.
//!
//! The simulated network clones messages on every hop, so values are
//! [`Bytes`] — a shared immutable buffer whose clone is O(1) (an `Arc` bump,
//! no copy). Cost accounting still reports the full byte length of the value
//! for every message that carries it, matching the paper's model where
//! sending a value costs its size regardless of any sharing tricks inside the
//! simulator.

pub use soda_rs_code::Bytes;

/// A cheaply clonable object value.
pub type Value = Bytes;

/// Wraps raw bytes as a [`Value`].
pub fn value_from(bytes: Vec<u8>) -> Value {
    Bytes::from(bytes)
}

/// Byte length of a value.
pub fn value_len(value: &Value) -> usize {
    value.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapping_and_length() {
        let v = value_from(vec![1, 2, 3, 4]);
        assert_eq!(value_len(&v), 4);
        let v2 = v.clone();
        assert!(Bytes::ptr_eq(&v, &v2), "clone shares the allocation");
    }

    #[test]
    fn empty_value() {
        let v = value_from(Vec::new());
        assert_eq!(value_len(&v), 0);
    }
}
