//! Object values.
//!
//! The simulated network clones messages on every hop, so values are wrapped
//! in an `Arc` to keep cloning O(1). Cost accounting still reports the full
//! byte length of the value for every message that carries it, matching the
//! paper's model where sending a value costs its size regardless of any
//! sharing tricks inside the simulator.

use std::sync::Arc;

/// A cheaply clonable object value.
pub type Value = Arc<Vec<u8>>;

/// Wraps raw bytes as a [`Value`].
pub fn value_from(bytes: Vec<u8>) -> Value {
    Arc::new(bytes)
}

/// Byte length of a value.
pub fn value_len(value: &Value) -> usize {
    value.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapping_and_length() {
        let v = value_from(vec![1, 2, 3, 4]);
        assert_eq!(value_len(&v), 4);
        let v2 = v.clone();
        assert!(Arc::ptr_eq(&v, &v2), "clone shares the allocation");
    }

    #[test]
    fn empty_value() {
        let v = value_from(Vec::new());
        assert_eq!(value_len(&v), 0);
    }
}
