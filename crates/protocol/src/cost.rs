//! The paper's cost model (Section II-h).
//!
//! Both storage and communication costs are normalized by the size of the
//! object value: a value counts as 1 unit, a coded element of an `[n, k]` code
//! as `1/k` units, and metadata as 0. These helpers convert raw byte counts
//! reported by the simulator into normalized units and provide the closed-form
//! expressions from the paper's theorems for comparison.

/// Converts a raw byte count into normalized units given the value size in
/// bytes. Returns 0 for an empty value (degenerate case used only in tests).
pub fn normalized(bytes: u64, value_size: usize) -> f64 {
    if value_size == 0 {
        return 0.0;
    }
    bytes as f64 / value_size as f64
}

/// Closed-form costs stated by the paper, used by the experiment harness to
/// compare measurement against theory.
pub mod paper {
    /// Total storage cost of SODA: `n / (n − f)` (Theorem 5.3).
    pub fn soda_storage(n: usize, f: usize) -> f64 {
        n as f64 / (n - f) as f64
    }

    /// Upper bound on the write communication cost of SODA: `5 f²`
    /// (Theorem 5.4). For `f = 0` the bound degenerates; the paper implicitly
    /// assumes `f ≥ 1`, and the harness reports `max(5f², 1)` so the bound is
    /// never below the cost of sending the value once.
    pub fn soda_write_bound(f: usize) -> f64 {
        (5 * f * f).max(1) as f64
    }

    /// Read communication cost of SODA: `n/(n−f) · (δw + 1)` (Theorem 5.6).
    pub fn soda_read(n: usize, f: usize, delta_w: usize) -> f64 {
        n as f64 / (n - f) as f64 * (delta_w + 1) as f64
    }

    /// Total storage cost of SODAerr: `n / (n − f − 2e)` (Theorem 6.3).
    pub fn sodaerr_storage(n: usize, f: usize, e: usize) -> f64 {
        n as f64 / (n - f - 2 * e) as f64
    }

    /// Read cost of SODAerr: `n/(n−f−2e) · (δw + 1)` (Theorem 6.3).
    pub fn sodaerr_read(n: usize, f: usize, e: usize, delta_w: usize) -> f64 {
        n as f64 / (n - f - 2 * e) as f64 * (delta_w + 1) as f64
    }

    /// ABD costs (Table I): write cost, read cost and storage cost are all `n`
    /// (the value is replicated everywhere and shipped whole in each phase).
    pub fn abd_cost(n: usize) -> f64 {
        n as f64
    }

    /// CAS/CASGC per-operation communication cost: `n / (n − 2f)` (Section I-B).
    pub fn casgc_communication(n: usize, f: usize) -> f64 {
        n as f64 / (n - 2 * f) as f64
    }

    /// CASGC worst-case total storage: `n/(n−2f) · (δ + 1)` (Section I-B).
    pub fn casgc_storage(n: usize, f: usize, delta: usize) -> f64 {
        n as f64 / (n - 2 * f) as f64 * (delta + 1) as f64
    }

    /// Latency bounds of Theorem 5.7, in units of Δ.
    pub const SODA_WRITE_LATENCY_DELTAS: u64 = 5;
    /// Read latency bound of Theorem 5.7, in units of Δ.
    pub const SODA_READ_LATENCY_DELTAS: u64 = 6;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(normalized(2048, 1024), 2.0);
        assert_eq!(normalized(0, 1024), 0.0);
        assert_eq!(normalized(100, 0), 0.0);
        assert!((normalized(1536, 1024) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn paper_formulas_match_table_one_at_fmax() {
        // Table I with n even and f = n/2 - 1: ABD = n everywhere,
        // CASGC = n/2 per op, SODA storage <= 2 and read <= 2(δw+1).
        let n = 10;
        let f = n / 2 - 1;
        assert_eq!(paper::abd_cost(n), 10.0);
        assert_eq!(paper::casgc_communication(n, f), 10.0 / 2.0);
        assert!((paper::soda_storage(n, f) - 10.0 / 6.0).abs() < 1e-12);
        assert!(paper::soda_storage(n, f) <= 2.0);
        for dw in 0..5 {
            assert!(paper::soda_read(n, f, dw) <= 2.0 * (dw + 1) as f64);
        }
        assert_eq!(paper::soda_write_bound(f), (5 * f * f) as f64);
    }

    #[test]
    fn sodaerr_storage_grows_with_e() {
        let n = 11;
        let f = 2;
        assert!(paper::sodaerr_storage(n, f, 2) > paper::sodaerr_storage(n, f, 1));
        assert_eq!(paper::sodaerr_storage(n, f, 0), paper::soda_storage(n, f));
        assert_eq!(paper::sodaerr_read(n, f, 1, 3), 11.0 / 7.0 * 4.0);
    }

    #[test]
    fn casgc_storage_is_rigid_in_delta() {
        assert_eq!(paper::casgc_storage(10, 2, 0), 10.0 / 6.0);
        assert_eq!(paper::casgc_storage(10, 2, 4), 10.0 / 6.0 * 5.0);
    }

    #[test]
    fn write_bound_never_below_one() {
        assert_eq!(paper::soda_write_bound(0), 1.0);
        assert_eq!(paper::soda_write_bound(3), 45.0);
    }
}
