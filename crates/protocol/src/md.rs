//! The message-disperse primitives MD-VALUE and MD-META (Section III).
//!
//! Both primitives guarantee *uniformity*: if any server delivers a message,
//! then every non-faulty server eventually delivers it (its coded element for
//! MD-VALUE, the metadata itself for MD-META), even if the original sender
//! crashes mid-send and up to `f` servers crash.
//!
//! The mechanism is the same for both: the sender transmits the message to the
//! first `f + 1` servers `D = {s_1, …, s_{f+1}}` **in rank order**; the first
//! time a server `s_i ∈ D` receives the full message it (a) forwards it to the
//! higher-ranked servers `s_{i+1} … s_{f+1}`, (b) sends the derived message to
//! every other server (for MD-VALUE the derived message is the *destination's*
//! coded element `Φ_{s'}(v)`; for MD-META it is the metadata verbatim), and
//! (c) delivers locally. Servers outside `D` never relay; they just deliver
//! the first copy they receive.
//!
//! The types here are *pure* state machines: they compute which messages to
//! send and what to deliver, and the protocol processes in the `soda` crate
//! put them on the simulated (or threaded) network. This keeps the primitive
//! unit-testable in isolation, mirroring how the paper specifies it as a
//! separate IO automaton composed with the servers.
//!
//! After a message is delivered, no value or coded-element data is retained —
//! only the message id, as a tombstone for deduplication — which is the
//! no-state-bloat property of Theorem 3.2.

use crate::{Layout, Tag, Value};
use soda_rs_code::{CodedElement, MdsCode};
use soda_simnet::FastHashSet;
use soda_simnet::ProcessId;

/// Unique identifier of one invocation of a message-disperse primitive.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct MessageId {
    /// The process that invoked the primitive.
    pub origin: ProcessId,
    /// Per-origin invocation counter.
    pub counter: u64,
}

impl MessageId {
    /// Creates a message id.
    pub fn new(origin: ProcessId, counter: u64) -> Self {
        MessageId { origin, counter }
    }
}

/// A message produced by the MD-VALUE primitive.
#[derive(Clone, Debug)]
pub enum MdValueMsg {
    /// The full (uncoded) value, sent along the relay backbone `D`.
    Full {
        /// Invocation id.
        mid: MessageId,
        /// Version tag being written.
        tag: Tag,
        /// The full object value.
        value: Value,
    },
    /// The coded element targeted at one particular server.
    Coded {
        /// Invocation id.
        mid: MessageId,
        /// Version tag being written.
        tag: Tag,
        /// The destination server's coded element `Φ_{s'}(v)`.
        element: CodedElement,
    },
}

impl MdValueMsg {
    /// Bytes of object-value data carried (the paper's communication-cost
    /// contribution of this message).
    pub fn data_bytes(&self) -> usize {
        match self {
            MdValueMsg::Full { value, .. } => value.len(),
            MdValueMsg::Coded { element, .. } => element.data.len(),
        }
    }

    /// The invocation id.
    pub fn mid(&self) -> MessageId {
        match self {
            MdValueMsg::Full { mid, .. } | MdValueMsg::Coded { mid, .. } => *mid,
        }
    }
}

/// A message addressed to a server identified by its rank in the layout.
#[derive(Clone, Debug, PartialEq)]
pub struct Dispatch<M> {
    /// Destination server rank (0-based position in the layout order).
    pub to_rank: usize,
    /// The message to send.
    pub msg: M,
}

/// Sender side of MD-VALUE: the messages the invoking process (a writer in
/// SODA) must send, in order. The full value goes to the first `f + 1`
/// servers. Returned lazily: the hot path iterates straight into the
/// network without materializing a dispatch vector.
pub fn md_value_send(
    layout: &Layout,
    mid: MessageId,
    tag: Tag,
    value: Value,
) -> impl Iterator<Item = Dispatch<MdValueMsg>> {
    layout.relay_set().map(move |rank| Dispatch {
        to_rank: rank,
        msg: MdValueMsg::Full {
            mid,
            tag,
            value: value.clone(),
        },
    })
}

/// What a server does after receiving an MD-VALUE message: possibly deliver a
/// coded element locally and possibly relay messages to other servers.
#[derive(Debug, Default)]
pub struct MdValueAction {
    /// Coded element to deliver locally via `md-value-deliver`, if any.
    pub deliver: Option<(Tag, CodedElement)>,
    /// Messages to relay to other servers.
    pub relays: Vec<Dispatch<MdValueMsg>>,
}

/// Server-side state of the MD-VALUE primitive (one per server process).
///
/// Keeps only message-id tombstones between invocations; values and coded
/// elements never outlive the handler (Theorem 3.2).
#[derive(Debug)]
pub struct MdValueRelay {
    my_rank: usize,
    handled: FastHashSet<MessageId>,
}

impl MdValueRelay {
    /// Creates the relay state for the server with the given rank.
    pub fn new(my_rank: usize) -> Self {
        MdValueRelay {
            my_rank,
            handled: FastHashSet::default(),
        }
    }

    /// Number of message ids remembered (tombstones only; used by the
    /// state-bloat experiment).
    pub fn tombstones(&self) -> usize {
        self.handled.len()
    }

    /// Handles receipt of the full value. On the first receipt this relays the
    /// full value up the backbone, sends every other server its coded element,
    /// and delivers the local element; duplicates produce no action.
    pub fn on_full(
        &mut self,
        layout: &Layout,
        code: &dyn MdsCode,
        mid: MessageId,
        tag: Tag,
        value: &Value,
    ) -> MdValueAction {
        let mut relays = Vec::new();
        let deliver = self.on_full_with(layout, code, mid, tag, value, |d| relays.push(d));
        MdValueAction { deliver, relays }
    }

    /// Allocation-free variant of [`Self::on_full`]: relays are handed to the
    /// `relay` callback as they are produced instead of being collected. This
    /// is the form the server hot path uses — it feeds dispatches straight
    /// into the network context.
    pub fn on_full_with(
        &mut self,
        layout: &Layout,
        code: &dyn MdsCode,
        mid: MessageId,
        tag: Tag,
        value: &Value,
        mut relay: impl FnMut(Dispatch<MdValueMsg>),
    ) -> Option<(Tag, CodedElement)> {
        if !self.handled.insert(mid) {
            return None;
        }
        let n = layout.n();
        let relay_top = layout.relay_set().end; // f + 1 (capped at n)
        let elements = code
            .encode(value)
            .expect("layout and code dimensions agree");
        // (a) forward the full value to higher-ranked servers in D.
        for rank in (self.my_rank + 1)..relay_top {
            relay(Dispatch {
                to_rank: rank,
                msg: MdValueMsg::Full {
                    mid,
                    tag,
                    value: value.clone(),
                },
            });
        }
        // (b) send every remaining server (outside the forwarded range and not
        // itself) its own coded element.
        for rank in
            (0..n).filter(|&r| r != self.my_rank && !((self.my_rank + 1)..relay_top).contains(&r))
        {
            relay(Dispatch {
                to_rank: rank,
                msg: MdValueMsg::Coded {
                    mid,
                    tag,
                    element: elements[rank].clone(),
                },
            });
        }
        // (c) deliver the local element.
        Some((tag, elements[self.my_rank].clone()))
    }

    /// Handles receipt of a coded element addressed to this server. Delivers
    /// it the first time, ignores duplicates.
    pub fn on_coded(
        &mut self,
        mid: MessageId,
        tag: Tag,
        element: CodedElement,
    ) -> Option<(Tag, CodedElement)> {
        if !self.handled.insert(mid) {
            return None;
        }
        Some((tag, element))
    }
}

/// A message produced by the MD-META primitive: the metadata payload plus the
/// invocation id.
#[derive(Clone, Debug, PartialEq)]
pub struct MdMetaMsg<P> {
    /// Invocation id.
    pub mid: MessageId,
    /// The metadata payload being dispersed.
    pub payload: P,
}

/// Sender side of MD-META: send the payload to the first `f + 1` servers.
/// Returned lazily, like [`md_value_send`].
pub fn md_meta_send<P: Clone>(
    layout: &Layout,
    mid: MessageId,
    payload: P,
) -> impl Iterator<Item = Dispatch<MdMetaMsg<P>>> {
    layout.relay_set().map(move |rank| Dispatch {
        to_rank: rank,
        msg: MdMetaMsg {
            mid,
            payload: payload.clone(),
        },
    })
}

/// Result of a server receiving an MD-META message.
#[derive(Debug)]
pub struct MdMetaAction<P> {
    /// Payload to deliver locally via `md-meta-deliver`, if this is the first
    /// receipt.
    pub deliver: Option<P>,
    /// Messages to relay to other servers.
    pub relays: Vec<Dispatch<MdMetaMsg<P>>>,
}

impl<P> Default for MdMetaAction<P> {
    fn default() -> Self {
        MdMetaAction {
            deliver: None,
            relays: Vec::new(),
        }
    }
}

/// Server-side state of the MD-META primitive.
#[derive(Debug)]
pub struct MdMetaRelay {
    my_rank: usize,
    handled: FastHashSet<MessageId>,
}

impl MdMetaRelay {
    /// Creates the relay state for the server with the given rank.
    pub fn new(my_rank: usize) -> Self {
        MdMetaRelay {
            my_rank,
            handled: FastHashSet::default(),
        }
    }

    /// Number of message ids remembered.
    pub fn tombstones(&self) -> usize {
        self.handled.len()
    }

    /// Handles receipt of a metadata message. On first receipt: relay to the
    /// higher-ranked backbone servers and to every server outside the
    /// backbone, and deliver locally. Duplicates produce no action.
    ///
    /// Only servers inside the backbone `D` relay; servers outside it receive
    /// the payload from (potentially several) backbone servers and just
    /// deliver it once.
    pub fn on_meta<P: Clone>(
        &mut self,
        layout: &Layout,
        mid: MessageId,
        payload: &P,
    ) -> MdMetaAction<P> {
        let mut relays = Vec::new();
        let deliver = self.on_meta_with(layout, mid, payload, |d| relays.push(d));
        MdMetaAction { deliver, relays }
    }

    /// Allocation-free variant of [`Self::on_meta`]: relays are handed to the
    /// `relay` callback as they are produced instead of being collected.
    pub fn on_meta_with<P: Clone>(
        &mut self,
        layout: &Layout,
        mid: MessageId,
        payload: &P,
        mut relay: impl FnMut(Dispatch<MdMetaMsg<P>>),
    ) -> Option<P> {
        if !self.handled.insert(mid) {
            return None;
        }
        if layout.in_relay_set(self.my_rank) {
            let relay_top = layout.relay_set().end;
            // Higher-ranked backbone servers get the payload (continuing the
            // chain), and every server outside the backbone gets it directly.
            for rank in (self.my_rank + 1)..relay_top {
                relay(Dispatch {
                    to_rank: rank,
                    msg: MdMetaMsg {
                        mid,
                        payload: payload.clone(),
                    },
                });
            }
            for rank in relay_top..layout.n() {
                relay(Dispatch {
                    to_rank: rank,
                    msg: MdMetaMsg {
                        mid,
                        payload: payload.clone(),
                    },
                });
            }
            // Lower-ranked backbone servers may have been missed if the sender
            // crashed part-way through its ordered send; cover them too so the
            // uniformity property holds regardless of where the sender stopped.
            for rank in 0..self.my_rank {
                relay(Dispatch {
                    to_rank: rank,
                    msg: MdMetaMsg {
                        mid,
                        payload: payload.clone(),
                    },
                });
            }
        }
        Some(payload.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value_from;
    use soda_rs_code::VandermondeCode;

    fn layout(n: usize, f: usize) -> Layout {
        Layout::new((0..n as u32).map(ProcessId).collect(), f)
    }

    fn mid(c: u64) -> MessageId {
        MessageId::new(ProcessId(100), c)
    }

    fn tag() -> Tag {
        Tag::new(3, ProcessId(100))
    }

    #[test]
    fn sender_targets_first_f_plus_one_servers_in_order() {
        let l = layout(7, 2);
        let v = value_from(vec![1u8; 30]);
        let sends: Vec<_> = md_value_send(&l, mid(1), tag(), v.clone()).collect();
        assert_eq!(sends.len(), 3);
        for (i, d) in sends.iter().enumerate() {
            assert_eq!(d.to_rank, i);
            match &d.msg {
                MdValueMsg::Full { value, .. } => assert_eq!(value.len(), 30),
                other => panic!("expected Full, got {other:?}"),
            }
            assert_eq!(d.msg.data_bytes(), 30);
            assert_eq!(d.msg.mid(), mid(1));
        }
    }

    #[test]
    fn backbone_server_relays_full_up_and_coded_elsewhere() {
        let n = 7;
        let f = 2;
        let l = layout(n, f);
        let code = VandermondeCode::new(n, n - f).unwrap();
        let v = value_from((0..64u8).collect());
        let mut relay = MdValueRelay::new(0);
        let action = relay.on_full(&l, &code, mid(1), tag(), &v);

        // Local delivery of own element.
        let (t, elem) = action.deliver.expect("must deliver locally");
        assert_eq!(t, tag());
        assert_eq!(elem.index, 0);

        // Full forwarded to ranks 1 and 2; coded to ranks 3..6.
        let mut fulls = vec![];
        let mut codeds = vec![];
        for d in &action.relays {
            match &d.msg {
                MdValueMsg::Full { .. } => fulls.push(d.to_rank),
                MdValueMsg::Coded { element, .. } => {
                    assert_eq!(element.index, d.to_rank, "element targets its destination");
                    codeds.push(d.to_rank);
                }
            }
        }
        fulls.sort_unstable();
        codeds.sort_unstable();
        assert_eq!(fulls, vec![1, 2]);
        assert_eq!(codeds, vec![3, 4, 5, 6]);
    }

    #[test]
    fn mid_backbone_server_covers_lower_ranked_servers_with_coded() {
        // If the writer crashed after reaching only rank 2, rank 2 must still
        // get coded elements to ranks 0 and 1 (they are in S − D of the paper's
        // local relay-set definition).
        let n = 6;
        let f = 2;
        let l = layout(n, f);
        let code = VandermondeCode::new(n, n - f).unwrap();
        let v = value_from(vec![9u8; 16]);
        let mut relay = MdValueRelay::new(2);
        let action = relay.on_full(&l, &code, mid(5), tag(), &v);
        let coded_targets: Vec<usize> = action
            .relays
            .iter()
            .filter(|d| matches!(d.msg, MdValueMsg::Coded { .. }))
            .map(|d| d.to_rank)
            .collect();
        assert!(coded_targets.contains(&0));
        assert!(coded_targets.contains(&1));
        assert!(coded_targets.contains(&3));
        // No full forwards (rank 2 is the last of D).
        assert!(action
            .relays
            .iter()
            .all(|d| !matches!(d.msg, MdValueMsg::Full { .. })));
    }

    #[test]
    fn duplicate_full_is_ignored() {
        let n = 5;
        let f = 1;
        let l = layout(n, f);
        let code = VandermondeCode::new(n, n - f).unwrap();
        let v = value_from(vec![7u8; 10]);
        let mut relay = MdValueRelay::new(1);
        let first = relay.on_full(&l, &code, mid(1), tag(), &v);
        assert!(first.deliver.is_some());
        let second = relay.on_full(&l, &code, mid(1), tag(), &v);
        assert!(second.deliver.is_none());
        assert!(second.relays.is_empty());
        assert_eq!(relay.tombstones(), 1);
    }

    #[test]
    fn coded_after_full_or_full_after_coded_delivers_once() {
        let n = 5;
        let f = 1;
        let l = layout(n, f);
        let code = VandermondeCode::new(n, n - f).unwrap();
        let v = value_from(vec![3u8; 12]);
        let elems = code.encode(&v).unwrap();

        // Coded first, then full: only the coded delivery happens.
        let mut relay = MdValueRelay::new(0);
        let delivered = relay.on_coded(mid(1), tag(), elems[0].clone());
        assert!(delivered.is_some());
        let after = relay.on_full(&l, &code, mid(1), tag(), &v);
        assert!(after.deliver.is_none());
        assert!(after.relays.is_empty());

        // Full first, then coded duplicate: only the full delivery happens.
        let mut relay = MdValueRelay::new(0);
        let first = relay.on_full(&l, &code, mid(2), tag(), &v);
        assert!(first.deliver.is_some());
        assert!(relay.on_coded(mid(2), tag(), elems[0].clone()).is_none());
    }

    #[test]
    fn distinct_mids_are_independent() {
        let mut relay = MdValueRelay::new(3);
        let elem = CodedElement::new(3, vec![1, 2, 3]);
        assert!(relay.on_coded(mid(1), tag(), elem.clone()).is_some());
        assert!(relay.on_coded(mid(2), tag(), elem.clone()).is_some());
        assert!(relay.on_coded(mid(1), tag(), elem).is_none());
        assert_eq!(relay.tombstones(), 2);
    }

    #[test]
    fn uniformity_holds_for_any_crash_prefix_of_the_sender() {
        // Simulate (by hand) delivery when the sender crashes after reaching
        // only the i-th backbone server: every non-faulty server must still
        // deliver its element, for every i.
        let n = 7;
        let f = 3;
        let l = layout(n, f);
        let code = VandermondeCode::new(n, n - f).unwrap();
        let v = value_from((0..40u8).collect());

        for reached in 0..=f {
            // The sender only managed to send the full value to server `reached`.
            let mut relays: Vec<MdValueRelay> = (0..n).map(MdValueRelay::new).collect();
            let mut delivered = vec![false; n];
            let mut inbox: Vec<(usize, MdValueMsg)> = vec![(
                reached,
                MdValueMsg::Full {
                    mid: mid(9),
                    tag: tag(),
                    value: v.clone(),
                },
            )];
            while let Some((rank, msg)) = inbox.pop() {
                let action = match msg {
                    MdValueMsg::Full { mid, tag, value } => {
                        relays[rank].on_full(&l, &code, mid, tag, &value)
                    }
                    MdValueMsg::Coded { mid, tag, element } => MdValueAction {
                        deliver: relays[rank].on_coded(mid, tag, element),
                        relays: Vec::new(),
                    },
                };
                if action.deliver.is_some() {
                    delivered[rank] = true;
                }
                for d in action.relays {
                    inbox.push((d.to_rank, d.msg));
                }
            }
            assert!(
                delivered.iter().all(|&d| d),
                "all servers must deliver when backbone server {reached} got the value"
            );
        }
    }

    #[test]
    fn meta_sender_and_backbone_relay() {
        let l = layout(6, 2);
        let sends: Vec<_> = md_meta_send(&l, mid(1), "READ-VALUE").collect();
        assert_eq!(sends.len(), 3);
        assert_eq!(sends[0].to_rank, 0);
        assert_eq!(sends[2].msg.payload, "READ-VALUE");

        let mut relay = MdMetaRelay::new(1);
        let action = relay.on_meta(&l, mid(1), &"READ-VALUE");
        assert_eq!(action.deliver, Some("READ-VALUE"));
        let targets: Vec<usize> = action.relays.iter().map(|d| d.to_rank).collect();
        // Forward to rank 2 (rest of backbone), ranks 3..5 (outside backbone)
        // and rank 0 (lower-ranked backbone, in case the sender crashed).
        assert!(targets.contains(&2));
        assert!(targets.contains(&3));
        assert!(targets.contains(&4));
        assert!(targets.contains(&5));
        assert!(targets.contains(&0));
        assert!(!targets.contains(&1), "never relays to itself");
    }

    #[test]
    fn meta_non_backbone_server_delivers_without_relaying() {
        let l = layout(6, 2);
        let mut relay = MdMetaRelay::new(5);
        let action = relay.on_meta(&l, mid(2), &42u32);
        assert_eq!(action.deliver, Some(42));
        assert!(action.relays.is_empty());
        // Duplicate from another backbone server is ignored.
        let dup = relay.on_meta(&l, mid(2), &42u32);
        assert!(dup.deliver.is_none());
        assert_eq!(relay.tombstones(), 1);
    }

    #[test]
    fn meta_uniformity_for_any_crash_prefix() {
        let n = 6;
        let f = 2;
        let l = layout(n, f);
        for reached in 0..=f {
            let mut relays: Vec<MdMetaRelay> = (0..n).map(MdMetaRelay::new).collect();
            let mut delivered = vec![false; n];
            let mut inbox = vec![(
                reached,
                MdMetaMsg {
                    mid: mid(1),
                    payload: 7u8,
                },
            )];
            while let Some((rank, msg)) = inbox.pop() {
                let action = relays[rank].on_meta(&l, msg.mid, &msg.payload);
                if action.deliver.is_some() {
                    delivered[rank] = true;
                }
                for d in action.relays {
                    inbox.push((d.to_rank, d.msg));
                }
            }
            assert!(delivered.iter().all(|&d| d), "reached={reached}");
        }
    }

    #[test]
    fn md_value_write_cost_is_order_f_squared() {
        // Count normalized data units generated by a complete dispersal with
        // no crashes and verify it is within the paper's 5f² bound.
        for (n, f) in [(5, 2), (9, 4), (11, 5), (15, 7)] {
            let l = layout(n, f);
            let code = VandermondeCode::new(n, n - f).unwrap();
            let value_size = 1000usize;
            let v = value_from(vec![1u8; value_size]);
            let mut relays: Vec<MdValueRelay> = (0..n).map(MdValueRelay::new).collect();
            let mut bytes: u64 = 0;
            let mut inbox: Vec<(usize, MdValueMsg)> = Vec::new();
            for d in md_value_send(&l, mid(1), tag(), v.clone()) {
                bytes += d.msg.data_bytes() as u64;
                inbox.push((d.to_rank, d.msg));
            }
            while let Some((rank, msg)) = inbox.pop() {
                let action = match msg {
                    MdValueMsg::Full { mid, tag, value } => {
                        relays[rank].on_full(&l, &code, mid, tag, &value)
                    }
                    MdValueMsg::Coded { mid, tag, element } => MdValueAction {
                        deliver: relays[rank].on_coded(mid, tag, element),
                        relays: Vec::new(),
                    },
                };
                for d in action.relays {
                    bytes += d.msg.data_bytes() as u64;
                    inbox.push((d.to_rank, d.msg));
                }
            }
            let normalized = bytes as f64 / value_size as f64;
            let bound = (5 * f * f) as f64;
            assert!(
                normalized <= bound,
                "n={n} f={f}: cost {normalized:.2} exceeds 5f²={bound}"
            );
        }
    }
}
