//! Experiment sweeps regenerating every table and figure of the paper.
//!
//! Each function corresponds to one experiment id in `DESIGN.md` §4 and
//! returns serializable rows pairing the *measured* quantity with the paper's
//! closed-form prediction, so `EXPERIMENTS.md` (and the bench binaries'
//! stdout) can show both side by side.
//!
//! Every cluster in this module is built and driven through the
//! [`soda_registry`] facade; the protocol under measurement is just a
//! [`ProtocolKind`] value.

use crate::json_row;
use crate::scenario::{run_scenario, value_of, ScenarioParams};
use soda_protocol::cost::paper;
use soda_protocol::Layout;
use soda_registry::{ClusterBuilder, ProtocolKind, RegisterCluster};

pub use crate::json::to_json;

/// Renders rows of strings as a fixed-width text table (used by the bench
/// binaries for stdout output).
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("| ");
        for (cell, width) in cells.iter().zip(widths) {
            line.push_str(&format!("{cell:<width$} | "));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&fmt_row(&sep, &widths));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// T1: Table I — ABD vs CASGC vs SODA at f = fmax.
// ---------------------------------------------------------------------------

/// One row of the Table I reproduction.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Algorithm name.
    pub algorithm: String,
    /// Number of servers.
    pub n: usize,
    /// Fault tolerance used (`fmax`).
    pub f: usize,
    /// Number of writes concurrent with the measured read.
    pub delta_w: usize,
    /// Measured normalized write communication cost.
    pub write_cost: f64,
    /// Measured normalized read communication cost.
    pub read_cost: f64,
    /// Measured normalized total storage cost.
    pub storage_cost: f64,
    /// Paper's write cost expression evaluated for these parameters.
    pub paper_write: f64,
    /// Paper's read cost expression evaluated for these parameters.
    pub paper_read: f64,
    /// Paper's storage cost expression evaluated for these parameters.
    pub paper_storage: f64,
    /// Whether the run's history passed the atomicity checker.
    pub atomic: bool,
}

json_row!(Table1Row {
    algorithm,
    n,
    f,
    delta_w,
    write_cost,
    read_cost,
    storage_cost,
    paper_write,
    paper_read,
    paper_storage,
    atomic,
});

/// Reproduces Table I: for each `n`, runs ABD, CASGC and SODA at
/// `f = fmax = ⌊(n−1)/2⌋` with `delta_w` concurrent writes during the read.
pub fn table1(ns: &[usize], delta_w: usize, value_size: usize, seed: u64) -> Vec<Table1Row> {
    let mut rows = Vec::new();
    for &n in ns {
        let f = Layout::fmax(n);
        // CASGC requires n > 2f, so at fmax it only exists for odd n; use the
        // largest f' with n > 2f' otherwise (the paper's Table I assumes n
        // even and f = n/2 − 1, for which n − 2f = 2).
        let f_cas = if n > 2 * f { f } else { (n - 1) / 2 };
        for (kind, f_used) in [
            (ProtocolKind::Abd, f),
            (ProtocolKind::Casgc { gc: delta_w }, f_cas),
            (ProtocolKind::Soda, f),
        ] {
            let outcome = run_scenario(&ScenarioParams {
                delta_w,
                value_size,
                seed,
                ..ScenarioParams::new(kind, n, f_used)
            });
            rows.push(Table1Row {
                algorithm: kind.name().to_string(),
                n,
                f: f_used,
                delta_w: outcome.delta_w_actual,
                write_cost: outcome.write_cost,
                read_cost: outcome.read_cost,
                storage_cost: outcome.storage_cost,
                paper_write: match kind {
                    ProtocolKind::Abd => paper::abd_cost(n),
                    ProtocolKind::Soda => paper::soda_write_bound(f_used),
                    _ => paper::casgc_communication(n, f_used),
                },
                paper_read: match kind {
                    ProtocolKind::Abd => paper::abd_cost(n),
                    ProtocolKind::Soda => paper::soda_read(n, f_used, outcome.delta_w_actual),
                    _ => paper::casgc_communication(n, f_used),
                },
                paper_storage: match kind {
                    ProtocolKind::Abd => paper::abd_cost(n),
                    ProtocolKind::Soda => paper::soda_storage(n, f_used),
                    _ => paper::casgc_storage(n, f_used, delta_w),
                },
                atomic: outcome.atomic,
            });
        }
    }
    rows
}

/// Renders Table I rows for stdout.
pub fn table1_text(rows: &[Table1Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.algorithm.clone(),
                r.n.to_string(),
                r.f.to_string(),
                r.delta_w.to_string(),
                format!("{:.2}", r.write_cost),
                format!("{:.2}", r.paper_write),
                format!("{:.2}", r.read_cost),
                format!("{:.2}", r.paper_read),
                format!("{:.2}", r.storage_cost),
                format!("{:.2}", r.paper_storage),
                r.atomic.to_string(),
            ]
        })
        .collect();
    render_table(
        &[
            "algorithm",
            "n",
            "f",
            "δw",
            "write(meas)",
            "write(paper)",
            "read(meas)",
            "read(paper)",
            "storage(meas)",
            "storage(paper)",
            "atomic",
        ],
        &body,
    )
}

// ---------------------------------------------------------------------------
// F1 (Theorem 5.3): storage cost n/(n-f).
// ---------------------------------------------------------------------------

/// One `(n, f)` point of the storage-cost experiment.
#[derive(Clone, Debug)]
pub struct StorageRow {
    /// Number of servers.
    pub n: usize,
    /// Fault tolerance.
    pub f: usize,
    /// Measured normalized total storage cost.
    pub measured: f64,
    /// Paper's `n/(n−f)`.
    pub paper: f64,
}

json_row!(StorageRow {
    n,
    f,
    measured,
    paper
});

/// Measures SODA's total storage cost across `(n, f)` combinations.
pub fn storage_cost_sweep(
    points: &[(usize, usize)],
    value_size: usize,
    seed: u64,
) -> Vec<StorageRow> {
    points
        .iter()
        .map(|&(n, f)| {
            let outcome = run_scenario(&ScenarioParams {
                value_size,
                seed,
                ..ScenarioParams::new(ProtocolKind::Soda, n, f)
            });
            StorageRow {
                n,
                f,
                measured: outcome.storage_cost,
                paper: paper::soda_storage(n, f),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// F2 (Theorem 5.4): write cost <= 5 f^2.
// ---------------------------------------------------------------------------

/// One point of the write-cost experiment.
#[derive(Clone, Debug)]
pub struct WriteCostRow {
    /// Number of servers.
    pub n: usize,
    /// Fault tolerance.
    pub f: usize,
    /// Measured normalized write cost of SODA.
    pub soda: f64,
    /// The paper's bound `5 f²`.
    pub bound: f64,
    /// Measured ABD write cost (`n`) for comparison.
    pub abd: f64,
}

json_row!(WriteCostRow {
    n,
    f,
    soda,
    bound,
    abd
});

/// Measures SODA's write communication cost against the `5f²` bound, with ABD
/// as the replication baseline. Uses `n = 2f + 1` (maximum fault tolerance).
pub fn write_cost_sweep(fs: &[usize], value_size: usize, seed: u64) -> Vec<WriteCostRow> {
    fs.iter()
        .map(|&f| {
            let n = 2 * f + 1;
            let soda = run_scenario(&ScenarioParams {
                value_size,
                seed,
                ..ScenarioParams::new(ProtocolKind::Soda, n, f)
            });
            let abd = run_scenario(&ScenarioParams {
                value_size,
                seed,
                ..ScenarioParams::new(ProtocolKind::Abd, n, f)
            });
            WriteCostRow {
                n,
                f,
                soda: soda.write_cost,
                bound: paper::soda_write_bound(f),
                abd: abd.write_cost,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// F3 (Theorem 5.6): read cost n/(n-f) * (delta_w + 1).
// ---------------------------------------------------------------------------

/// One point of the read-cost experiment.
#[derive(Clone, Debug)]
pub struct ReadCostRow {
    /// Number of servers.
    pub n: usize,
    /// Fault tolerance.
    pub f: usize,
    /// Requested number of concurrent writes.
    pub delta_w_target: usize,
    /// Writes actually concurrent with the measured read.
    pub delta_w_actual: usize,
    /// Measured normalized read cost.
    pub measured: f64,
    /// Paper's `n/(n−f) · (δw + 1)` evaluated at the *actual* δw.
    pub paper: f64,
}

json_row!(ReadCostRow {
    n,
    f,
    delta_w_target,
    delta_w_actual,
    measured,
    paper
});

/// Measures SODA's read cost as the number of concurrent writes grows.
pub fn read_cost_sweep(
    n: usize,
    f: usize,
    delta_ws: &[usize],
    value_size: usize,
    seed: u64,
) -> Vec<ReadCostRow> {
    delta_ws
        .iter()
        .map(|&delta_w| {
            let outcome = run_scenario(&ScenarioParams {
                delta_w,
                value_size,
                seed,
                ..ScenarioParams::new(ProtocolKind::Soda, n, f)
            });
            ReadCostRow {
                n,
                f,
                delta_w_target: delta_w,
                delta_w_actual: outcome.delta_w_actual,
                measured: outcome.read_cost,
                paper: paper::soda_read(n, f, outcome.delta_w_actual),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// F4 (Theorem 5.7): latency bounds 5Δ (write) and 6Δ (read).
// ---------------------------------------------------------------------------

/// One point of the latency experiment.
#[derive(Clone, Debug)]
pub struct LatencyRow {
    /// Number of servers.
    pub n: usize,
    /// Fault tolerance.
    pub f: usize,
    /// The delay bound Δ in ticks.
    pub delta: u64,
    /// Measured write latency in Δ units.
    pub write_deltas: f64,
    /// Measured read latency in Δ units.
    pub read_deltas: f64,
    /// The paper's write bound (5Δ).
    pub write_bound: f64,
    /// The paper's read bound (6Δ).
    pub read_bound: f64,
}

json_row!(LatencyRow {
    n,
    f,
    delta,
    write_deltas,
    read_deltas,
    write_bound,
    read_bound
});

/// Measures operation latencies under a constant-delay network with bound Δ.
pub fn latency_sweep(
    points: &[(usize, usize)],
    delta: u64,
    value_size: usize,
    seed: u64,
) -> Vec<LatencyRow> {
    points
        .iter()
        .map(|&(n, f)| {
            let outcome = run_scenario(&ScenarioParams {
                value_size,
                seed,
                delta,
                constant_delay: true,
                ..ScenarioParams::new(ProtocolKind::Soda, n, f)
            });
            LatencyRow {
                n,
                f,
                delta,
                write_deltas: outcome.write_latency_deltas(),
                read_deltas: outcome.read_latency_deltas(),
                write_bound: paper::SODA_WRITE_LATENCY_DELTAS as f64,
                read_bound: paper::SODA_READ_LATENCY_DELTAS as f64,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// F5 (Theorem 6.3): SODAerr costs.
// ---------------------------------------------------------------------------

/// One point of the SODAerr cost experiment.
#[derive(Clone, Debug)]
pub struct SodaErrRow {
    /// Number of servers.
    pub n: usize,
    /// Fault tolerance.
    pub f: usize,
    /// Error budget.
    pub e: usize,
    /// Number of servers whose disks actually corrupt data in the run.
    pub faulty_disks: usize,
    /// Measured storage cost.
    pub storage_measured: f64,
    /// Paper's `n/(n−f−2e)`.
    pub storage_paper: f64,
    /// Measured read cost.
    pub read_measured: f64,
    /// Paper's `n/(n−f−2e) · (δw+1)`.
    pub read_paper: f64,
    /// Measured write cost.
    pub write_measured: f64,
    /// Paper's write bound `5f²`.
    pub write_bound: f64,
    /// Whether every read decoded the correct value despite the corruption.
    pub atomic: bool,
}

json_row!(SodaErrRow {
    n,
    f,
    e,
    faulty_disks,
    storage_measured,
    storage_paper,
    read_measured,
    read_paper,
    write_measured,
    write_bound,
    atomic,
});

/// Measures SODAerr's storage / read / write costs as the error budget grows,
/// with `e` servers actually serving corrupted elements.
pub fn sodaerr_sweep(
    n: usize,
    f: usize,
    es: &[usize],
    value_size: usize,
    seed: u64,
) -> Vec<SodaErrRow> {
    es.iter()
        .map(|&e| {
            let kind = if e == 0 {
                ProtocolKind::Soda
            } else {
                ProtocolKind::SodaErr { e }
            };
            let faulty: Vec<usize> = (0..e).collect();
            let outcome = run_scenario(&ScenarioParams {
                faulty_disks: faulty.clone(),
                value_size,
                seed,
                ..ScenarioParams::new(kind, n, f)
            });
            SodaErrRow {
                n,
                f,
                e,
                faulty_disks: faulty.len(),
                storage_measured: outcome.storage_cost,
                storage_paper: paper::sodaerr_storage(n, f, e),
                read_measured: outcome.read_cost,
                read_paper: paper::sodaerr_read(n, f, e, outcome.delta_w_actual),
                write_measured: outcome.write_cost,
                write_bound: paper::soda_write_bound(f),
                atomic: outcome.atomic,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// F6 (Theorem 3.2): no state bloat after MD-VALUE completes.
// ---------------------------------------------------------------------------

/// One point of the MD-VALUE residual-state experiment.
#[derive(Clone, Debug)]
pub struct MdStateRow {
    /// Number of servers.
    pub n: usize,
    /// Fault tolerance.
    pub f: usize,
    /// Whether the writer crashed mid-dispersal in this run.
    pub writer_crashed: bool,
    /// Coded-element bytes stored per server (exactly one element's worth).
    pub stored_bytes_per_server: f64,
    /// Residual value/coded bytes beyond the single stored element (must be 0).
    pub residual_bytes: u64,
    /// Registered readers left over (must be 0).
    pub residual_registrations: usize,
    /// History entries left over after all operations completed.
    pub residual_history: usize,
}

json_row!(MdStateRow {
    n,
    f,
    writer_crashed,
    stored_bytes_per_server,
    residual_bytes,
    residual_registrations,
    residual_history,
});

/// Checks Theorem 3.2: after the dispersal completes, servers hold exactly one
/// coded element and no buffered values, even if the writer crashes mid-send.
pub fn md_state_experiment(
    points: &[(usize, usize)],
    value_size: usize,
    seed: u64,
) -> Vec<MdStateRow> {
    let mut rows = Vec::new();
    for &(n, f) in points {
        for crash_writer in [false, true] {
            let mut cluster = ClusterBuilder::new(ProtocolKind::Soda, n, f)
                .with_seed(seed)
                .build_soda()
                .expect("valid SODA parameters");
            cluster.invoke_write(0, vec![7u8; value_size]);
            if crash_writer {
                // Let the writer issue its write-get and the first couple of
                // dispersal messages, then crash it.
                let crash_at = cluster.now() + 25;
                cluster.crash_writer_at(crash_at, 0);
            }
            cluster.run_to_quiescence();
            let per_server = cluster.stored_bytes_per_server();
            let expected_element = (value_size + 8).div_ceil(n - f) as u64;
            let residual: u64 = per_server
                .iter()
                .map(|&b| b.saturating_sub(expected_element))
                .sum();
            rows.push(MdStateRow {
                n,
                f,
                writer_crashed: crash_writer,
                stored_bytes_per_server: per_server.iter().sum::<u64>() as f64 / n as f64,
                residual_bytes: residual,
                residual_registrations: cluster.total_registered_readers(),
                residual_history: cluster.total_history_entries(),
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// A1: relay ablation — liveness of reads under concurrency.
// ---------------------------------------------------------------------------

/// One point of the relay ablation.
#[derive(Clone, Debug)]
pub struct RelayAblationRow {
    /// Whether concurrent-write relaying was enabled (paper behaviour).
    pub relay_enabled: bool,
    /// Whether the racing read completed.
    pub read_completed: bool,
    /// Latency of the read in ticks (0 when it never completed).
    pub read_latency: u64,
    /// Whether the concurrent write completed (it always should).
    pub write_completed: bool,
}

json_row!(RelayAblationRow {
    relay_enabled,
    read_completed,
    read_latency,
    write_completed
});

/// Demonstrates why reader registration + relaying (Fig. 5, response 3) is
/// essential for liveness (Theorem 5.1).
///
/// The scenario is adversarial but entirely within the asynchronous model:
/// a write's dispersal reaches the first backbone server quickly while every
/// other path of the dispersal is slow, and a read starts once that one server
/// has stored the new tag. The read's get phase therefore requests the new tag
/// `t_r`, but at registration time only one server can supply an element for
/// it. With relaying, the remaining servers forward their elements as soon as
/// the slow dispersal reaches them, and the read finishes. Without relaying
/// they stay silent forever and the read never terminates.
pub fn relay_ablation(value_size: usize, seed: u64) -> Vec<RelayAblationRow> {
    use soda_simnet::{DelayModel, NetworkConfig, ProcessId, SimTime};
    let n = 5usize;
    let f = 2usize;
    let mut rows = Vec::new();
    for relay_enabled in [true, false] {
        // Servers are processes 0..4, the writer is 5, the reader is 6.
        let writer_pid = ProcessId(n as u32);
        let reader_pid = ProcessId(n as u32 + 1);
        let mut network = NetworkConfig::constant(5);
        // The writer's dispersal reaches backbone server 0 quickly; the other
        // two backbone servers hear from the writer only after a long delay,
        // and server 0's own relays are slower still. The write-get phase is
        // unaffected because servers 3 and 4 answer it quickly.
        network = network
            .with_link(writer_pid, ProcessId(1), DelayModel::Constant(300))
            .with_link(writer_pid, ProcessId(2), DelayModel::Constant(300));
        for rank in 1..n {
            network = network.with_link(
                ProcessId(0),
                ProcessId(rank as u32),
                DelayModel::Constant(800),
            );
        }
        // Keep servers 3 and 4 out of the read's first majority so the get
        // phase is answered by servers 0..2 (including the one with the new tag).
        network = network
            .with_link(ProcessId(3), reader_pid, DelayModel::Constant(100))
            .with_link(ProcessId(4), reader_pid, DelayModel::Constant(100));

        let mut builder = ClusterBuilder::new(ProtocolKind::Soda, n, f)
            .with_seed(seed)
            .with_network(network);
        if !relay_enabled {
            builder = builder.with_relay_disabled();
        }
        let mut cluster = builder.build_soda().expect("valid SODA parameters");
        debug_assert_eq!(cluster.writer_process(0), writer_pid);
        debug_assert_eq!(cluster.reader_process(0), reader_pid);
        // The concurrent write starts immediately; the read starts once the
        // write's dispersal has reached (only) backbone server 0.
        cluster.invoke_write_at(SimTime::from_ticks(0), 0, vec![0xAB; value_size]);
        cluster.invoke_read_at(SimTime::from_ticks(60), 0);
        cluster.run_to_quiescence();
        let ops = cluster.completed_ops();
        let read = ops.iter().find(|o| o.kind.is_read());
        let write_completed = ops.iter().any(|o| o.kind.is_write());
        rows.push(RelayAblationRow {
            relay_enabled,
            read_completed: read.is_some(),
            read_latency: read.map(|o| o.latency()).unwrap_or(0),
            write_completed,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// A2: storage elasticity — CASGC's rigid delta vs SODA's elastic delta_w.
// ---------------------------------------------------------------------------

/// One point of the storage-elasticity ablation.
#[derive(Clone, Debug)]
pub struct ElasticityRow {
    /// The concurrency bound δ CASGC is provisioned for.
    pub provisioned_delta: usize,
    /// The actual concurrency during the run.
    pub actual_delta_w: usize,
    /// SODA's measured storage cost (independent of concurrency).
    pub soda_storage: f64,
    /// CASGC's measured storage cost (grows with the provisioned δ).
    pub casgc_storage: f64,
    /// SODA's measured read cost (grows with the actual δw).
    pub soda_read: f64,
    /// CASGC's measured read cost (independent of δ).
    pub casgc_read: f64,
}

json_row!(ElasticityRow {
    provisioned_delta,
    actual_delta_w,
    soda_storage,
    casgc_storage,
    soda_read,
    casgc_read,
});

/// Contrasts CASGC's storage (provisioned for a worst-case δ) with SODA's
/// storage (always `n/(n−f)`) while the *actual* concurrency stays small.
pub fn storage_elasticity(
    n: usize,
    f: usize,
    provisioned: &[usize],
    actual_delta_w: usize,
    value_size: usize,
    seed: u64,
) -> Vec<ElasticityRow> {
    provisioned
        .iter()
        .map(|&delta| {
            let soda = run_scenario(&ScenarioParams {
                delta_w: actual_delta_w,
                value_size,
                seed,
                ..ScenarioParams::new(ProtocolKind::Soda, n, f)
            });
            // CASGC needs n > 2f.
            let f_cas = f.min((n - 1) / 2);
            let casgc = run_scenario(&ScenarioParams {
                delta_w: actual_delta_w,
                value_size,
                seed,
                ..ScenarioParams::new(ProtocolKind::Casgc { gc: delta }, n, f_cas)
            });
            ElasticityRow {
                provisioned_delta: delta,
                actual_delta_w: soda.delta_w_actual,
                soda_storage: soda.storage_cost,
                casgc_storage: casgc.storage_cost,
                soda_read: soda.read_cost,
                casgc_read: casgc.read_cost,
            }
        })
        .collect()
}

/// A tiny smoke workload used by doctests and the quickstart: one write and
/// one read against every protocol kind, returning the read-back values.
pub fn smoke_all_kinds(seed: u64) -> Vec<(String, bool)> {
    soda_registry::ALL_KINDS
        .iter()
        .map(|&kind| {
            let n = if kind.error_budget() > 0 { 7 } else { 5 };
            let mut cluster = ClusterBuilder::new(kind, n, 2)
                .with_seed(seed)
                .build()
                .expect("representative parameters are valid");
            cluster.invoke_write(0, value_of(512, 1));
            cluster.run_to_quiescence();
            cluster.invoke_read(0);
            cluster.run_to_quiescence();
            let ops = cluster.completed_ops();
            let ok = ops.len() == 2 && ops[1].value == ops[0].value;
            (kind.name().to_string(), ok)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_aligns_columns() {
        let text = render_table(
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert!(text.contains("| a   | bbbb |"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn to_json_produces_valid_output() {
        let rows = vec![StorageRow {
            n: 5,
            f: 2,
            measured: 1.7,
            paper: 5.0 / 3.0,
        }];
        let json = to_json(&rows);
        assert!(json.contains("\"n\": 5"));
    }

    #[test]
    fn storage_sweep_matches_formula() {
        let rows = storage_cost_sweep(&[(5, 2), (8, 3)], 2048, 7);
        for row in rows {
            assert!(
                (row.measured - row.paper).abs() < 0.1,
                "n={} f={}: measured {} vs paper {}",
                row.n,
                row.f,
                row.measured,
                row.paper
            );
        }
    }

    #[test]
    fn write_cost_stays_under_bound_and_below_abd_for_large_f() {
        let rows = write_cost_sweep(&[2, 3], 2048, 3);
        for row in rows {
            assert!(
                row.soda <= row.bound,
                "f={}: {} > {}",
                row.f,
                row.soda,
                row.bound
            );
        }
    }

    #[test]
    fn read_cost_grows_with_concurrency_but_respects_bound() {
        let rows = read_cost_sweep(5, 2, &[0, 2], 1024, 5);
        assert!(rows[1].measured >= rows[0].measured * 0.9);
        for row in &rows {
            assert!(
                row.measured <= row.paper + 0.5,
                "δw={} measured {} paper {}",
                row.delta_w_actual,
                row.measured,
                row.paper
            );
        }
    }

    #[test]
    fn latency_within_paper_bounds() {
        let rows = latency_sweep(&[(5, 2)], 20, 1024, 2);
        for row in rows {
            assert!(row.write_deltas <= row.write_bound + 1e-9);
            assert!(row.read_deltas <= row.read_bound + 1e-9);
        }
    }

    #[test]
    fn md_state_has_no_residual_value_bytes() {
        let rows = md_state_experiment(&[(5, 2)], 1500, 4);
        for row in rows {
            assert_eq!(
                row.residual_bytes, 0,
                "writer_crashed={}",
                row.writer_crashed
            );
            assert_eq!(row.residual_registrations, 0);
        }
    }

    #[test]
    fn relay_ablation_shows_liveness_gap() {
        let rows = relay_ablation(1024, 9);
        let with_relay = rows.iter().find(|r| r.relay_enabled).unwrap();
        let without_relay = rows.iter().find(|r| !r.relay_enabled).unwrap();
        assert!(with_relay.read_completed, "paper protocol: read completes");
        assert!(with_relay.write_completed && without_relay.write_completed);
        assert!(
            !without_relay.read_completed,
            "without relaying the racing read must never terminate"
        );
    }

    #[test]
    fn smoke_covers_all_five_kinds() {
        let results = smoke_all_kinds(5);
        assert_eq!(results.len(), 5);
        for (name, ok) in results {
            assert!(ok, "{name}: write/read round trip failed");
        }
    }
}
