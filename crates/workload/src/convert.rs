//! Conversions from protocol-specific operation records into the
//! protocol-independent [`History`] consumed by the atomicity checker.

use soda::{OpKind, OpRecord};
use soda_baselines::abd::AbdOpRecord;
use soda_baselines::cas::CasOpRecord;
use soda_consistency::{History, Kind, Version};
use soda_protocol::Tag;

/// Converts a protocol tag into a checker version.
pub fn version_of_tag(tag: Tag) -> Version {
    Version::new(tag.z, tag.writer.0 as u64)
}

/// Builds a checker history from SODA operation records.
pub fn history_from_soda(initial_value: &[u8], records: &[OpRecord]) -> History {
    let mut history = History::new(initial_value.to_vec());
    for record in records {
        history.push(
            record.op.client.0 as u64,
            match record.kind {
                OpKind::Write => Kind::Write,
                OpKind::Read => Kind::Read,
            },
            record.invoked_at.ticks(),
            record.completed_at.ticks(),
            record.value.clone().unwrap_or_default(),
            version_of_tag(record.tag),
        );
    }
    history
}

/// Builds a checker history from ABD operation records. Each element of
/// `per_client` pairs a client identifier with that client's records.
pub fn history_from_abd(initial_value: &[u8], per_client: &[(u64, Vec<AbdOpRecord>)]) -> History {
    let mut history = History::new(initial_value.to_vec());
    for (client, records) in per_client {
        for record in records {
            history.push(
                *client,
                if record.is_read { Kind::Read } else { Kind::Write },
                record.invoked_at.ticks(),
                record.completed_at.ticks(),
                record.value.clone(),
                version_of_tag(record.tag),
            );
        }
    }
    history
}

/// Builds a checker history from CAS / CASGC operation records.
pub fn history_from_cas(initial_value: &[u8], per_client: &[(u64, Vec<CasOpRecord>)]) -> History {
    let mut history = History::new(initial_value.to_vec());
    for (client, records) in per_client {
        for record in records {
            history.push(
                *client,
                if record.is_read { Kind::Read } else { Kind::Write },
                record.invoked_at.ticks(),
                record.completed_at.ticks(),
                record.value.clone(),
                version_of_tag(record.tag),
            );
        }
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda::OpId;
    use soda_simnet::{ProcessId, SimTime};

    #[test]
    fn tag_conversion_preserves_order() {
        let a = version_of_tag(Tag::new(1, ProcessId(5)));
        let b = version_of_tag(Tag::new(2, ProcessId(1)));
        let c = version_of_tag(Tag::new(2, ProcessId(3)));
        assert!(a < b);
        assert!(b < c);
        assert_eq!(version_of_tag(Tag::INITIAL), Version::INITIAL);
    }

    #[test]
    fn soda_records_convert_to_history() {
        let records = vec![
            OpRecord {
                op: OpId::new(ProcessId(10), 1),
                kind: OpKind::Write,
                invoked_at: SimTime::from_ticks(0),
                completed_at: SimTime::from_ticks(20),
                tag: Tag::new(1, ProcessId(10)),
                value: Some(b"x".to_vec()),
            },
            OpRecord {
                op: OpId::new(ProcessId(11), 1),
                kind: OpKind::Read,
                invoked_at: SimTime::from_ticks(30),
                completed_at: SimTime::from_ticks(50),
                tag: Tag::new(1, ProcessId(10)),
                value: Some(b"x".to_vec()),
            },
        ];
        let history = history_from_soda(b"", &records);
        assert_eq!(history.len(), 2);
        assert!(history.check_atomicity().is_ok());
        assert_eq!(history.ops()[0].kind, Kind::Write);
        assert_eq!(history.ops()[1].kind, Kind::Read);
    }
}
