//! Dependency-free JSON emission for experiment rows.
//!
//! The experiment sweeps archive their rows as JSON (for `EXPERIMENTS.md` and
//! the bench binaries' `[out.json]` argument). The build environment has no
//! crates.io access, so instead of `serde`/`serde_json` the row structs
//! implement the small [`JsonRow`] trait via the [`json_row!`] macro.

use std::fmt::Write as _;

/// A JSON scalar value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A float (serialized as `null` when non-finite, which JSON cannot
    /// represent).
    Float(f64),
    /// A string.
    Str(String),
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::UInt(v)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::UInt(v as u64)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Float(v)
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}

impl JsonValue {
    fn render(&self, out: &mut String) {
        match self {
            JsonValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            JsonValue::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            JsonValue::Float(f) if !f.is_finite() => out.push_str("null"),
            JsonValue::Float(f) if f.fract() == 0.0 && f.abs() < 1e15 => {
                let _ = write!(out, "{f:.1}");
            }
            JsonValue::Float(f) => {
                let _ = write!(out, "{f}");
            }
            JsonValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
        }
    }
}

/// An experiment row that can render itself as a flat JSON object.
pub trait JsonRow {
    /// The row's fields, in serialization order.
    fn fields(&self) -> Vec<(&'static str, JsonValue)>;
}

/// Implements [`JsonRow`] for a struct by listing its fields (all of which
/// must convert into [`JsonValue`] via `Clone` + `Into`).
#[macro_export]
macro_rules! json_row {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::JsonRow for $ty {
            fn fields(&self) -> Vec<(&'static str, $crate::json::JsonValue)> {
                vec![$((stringify!($field), self.$field.clone().into())),+]
            }
        }
    };
}

/// Serializes rows as a pretty-printed JSON array of objects (the same shape
/// `serde_json::to_string_pretty` produced for the derive-based rows).
pub fn to_json<T: JsonRow>(rows: &[T]) -> String {
    let mut out = String::from("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        let fields = row.fields();
        for (j, (name, value)) in fields.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("\n    \"");
            out.push_str(name);
            out.push_str("\": ");
            value.render(&mut out);
        }
        out.push_str("\n  }");
    }
    if !rows.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Row {
        n: usize,
        cost: f64,
        name: String,
        ok: bool,
    }
    json_row!(Row { n, cost, name, ok });

    #[test]
    fn renders_a_pretty_array_of_objects() {
        let rows = vec![Row {
            n: 5,
            cost: 5.0 / 3.0,
            name: "SODA".into(),
            ok: true,
        }];
        let json = to_json(&rows);
        assert!(json.contains("\"n\": 5"), "{json}");
        assert!(json.contains("\"name\": \"SODA\""), "{json}");
        assert!(json.contains("\"ok\": true"), "{json}");
        assert!(json.starts_with("[\n  {"), "{json}");
        assert!(json.ends_with("\n]"), "{json}");
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        let rows = vec![Row {
            n: 1,
            cost: 5.0,
            name: String::new(),
            ok: false,
        }];
        assert!(to_json(&rows).contains("\"cost\": 5.0"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let rows = vec![Row {
            n: 1,
            cost: f64::INFINITY,
            name: String::new(),
            ok: false,
        }];
        assert!(to_json(&rows).contains("\"cost\": null"));
    }

    #[test]
    fn strings_are_escaped() {
        let rows = vec![Row {
            n: 1,
            cost: 0.0,
            name: "a\"b\\c\nd".into(),
            ok: false,
        }];
        assert!(to_json(&rows).contains(r#""a\"b\\c\nd""#));
    }

    #[test]
    fn empty_input_is_an_empty_array() {
        let rows: Vec<Row> = Vec::new();
        assert_eq!(to_json(&rows), "[]");
    }
}
