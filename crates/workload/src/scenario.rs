//! The measurement scenario: build a cluster, drive a shaped workload, and
//! return the normalized costs, latencies and the atomicity-checked history.
//!
//! There is exactly **one** runner for all five protocols, driving them
//! through the [`soda_registry::RegisterCluster`] facade; the algorithm is selected by
//! [`ScenarioParams::kind`]. Every protocol is therefore measured with the
//! same three-phase procedure, so Table I's numbers are directly comparable:
//!
//! 1. **setup** — one write establishes a non-initial version everywhere;
//! 2. **solo write** — a single write with nothing else running measures the
//!    write communication cost and write latency;
//! 3. **read under concurrency** — one read is invoked together with `δw`
//!    writes (one per concurrent writer), measuring the read communication
//!    cost (bytes of coded/full value data attributed to the reader — ABD's
//!    write-back counts both directions via
//!    [`soda_registry::RegisterCluster::read_cost_bytes`]), the read latency and the
//!    *actual* number of concurrent writes.
//!
//! Storage cost is measured at the end, after the system quiesces.

use soda_consistency::{History, Kind};
use soda_registry::{ClusterBuilder, ProtocolKind};
use soda_simnet::{NetworkConfig, SimTime};

/// Parameters of one measurement scenario.
#[derive(Clone, Debug)]
pub struct ScenarioParams {
    /// The algorithm to measure.
    pub kind: ProtocolKind,
    /// Number of servers.
    pub n: usize,
    /// Tolerated crashes.
    pub f: usize,
    /// Number of writes invoked concurrently with the measured read.
    pub delta_w: usize,
    /// Size of every written value, in bytes.
    pub value_size: usize,
    /// Simulation seed.
    pub seed: u64,
    /// Network delay bound Δ (uniform delays in `[1, Δ]`).
    pub delta: u64,
    /// Use a constant delay of exactly Δ instead of uniform `[1, Δ]`.
    pub constant_delay: bool,
    /// Server ranks with corrupted local disks (SODAerr experiments only).
    pub faulty_disks: Vec<usize>,
    /// Ablation: disable concurrent-write relaying to registered readers
    /// (SODA / SODAerr only).
    pub relay_enabled: bool,
    /// Ranks of servers to crash at the start of the measurement.
    pub crashed_servers: Vec<usize>,
    /// How many ticks the concurrent writes are invoked *before* the measured
    /// read. A non-zero lead makes the read's get phase observe a partially
    /// propagated write (its tag is known to a majority but its coded
    /// elements have not reached every server yet), which is the situation
    /// where SODA's relay mechanism is essential for liveness.
    pub concurrent_write_lead: u64,
}

impl ScenarioParams {
    /// Sensible defaults for a `kind` cluster of `(n, f)`: no concurrency,
    /// 4 KiB values, Δ = 10.
    pub fn new(kind: ProtocolKind, n: usize, f: usize) -> Self {
        ScenarioParams {
            kind,
            n,
            f,
            delta_w: 0,
            value_size: 4096,
            seed: 1,
            delta: 10,
            constant_delay: false,
            faulty_disks: Vec::new(),
            relay_enabled: true,
            crashed_servers: Vec::new(),
            concurrent_write_lead: 0,
        }
    }
}

/// The measurements extracted from one scenario run.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// The algorithm that was measured.
    pub kind: ProtocolKind,
    /// Normalized communication cost of the solo write (data bytes / value size).
    pub write_cost: f64,
    /// Normalized communication cost of the measured read.
    pub read_cost: f64,
    /// Normalized total storage cost at the end of the run.
    pub storage_cost: f64,
    /// Number of writes that were actually concurrent with the measured read.
    pub delta_w_actual: usize,
    /// Latency of the solo write in ticks.
    pub write_latency: u64,
    /// Latency of the measured read in ticks.
    pub read_latency: u64,
    /// The Δ bound used by the network (for converting latencies to Δ units).
    pub delta: u64,
    /// Number of reads that were requested in the run.
    pub reads_requested: usize,
    /// Number of reads that completed.
    pub reads_completed: usize,
    /// The full operation history.
    pub history: History,
    /// Whether the history passed the atomicity checker.
    pub atomic: bool,
}

impl ScenarioOutcome {
    /// Write latency in units of Δ.
    pub fn write_latency_deltas(&self) -> f64 {
        self.write_latency as f64 / self.delta as f64
    }

    /// Read latency in units of Δ.
    pub fn read_latency_deltas(&self) -> f64 {
        self.read_latency as f64 / self.delta as f64
    }
}

fn network(delta: u64, constant: bool) -> NetworkConfig {
    if constant {
        NetworkConfig::constant(delta)
    } else {
        NetworkConfig::uniform(delta)
    }
}

pub(crate) fn value_of(size: usize, fill: u8) -> Vec<u8> {
    (0..size).map(|i| fill.wrapping_add(i as u8)).collect()
}

/// Runs the standard measurement scenario against any protocol.
///
/// # Panics
/// Panics if the parameter combination is invalid (see
/// [`ClusterBuilder::validate`]).
pub fn run_scenario(params: &ScenarioParams) -> ScenarioOutcome {
    let writers_needed = params.delta_w.max(1);
    let mut builder = ClusterBuilder::new(params.kind, params.n, params.f)
        .with_seed(params.seed)
        .with_clients(writers_needed, 1)
        .with_network(network(params.delta, params.constant_delay))
        .with_faulty_disks(params.faulty_disks.clone());
    if !params.relay_enabled {
        builder = builder.with_relay_disabled();
    }
    let mut cluster = builder
        .build()
        .unwrap_or_else(|e| panic!("invalid scenario parameters: {e}"));
    for &rank in &params.crashed_servers {
        cluster.crash_server_at(SimTime::ZERO, rank);
    }
    let value_size = params.value_size;

    // Phase 1: setup write.
    cluster.invoke_write(0, value_of(value_size, 1));
    cluster.run_to_quiescence();

    // Phase 2: solo write to measure write cost.
    let before_write = cluster.stats();
    cluster.invoke_write(0, value_of(value_size, 2));
    cluster.run_to_quiescence();
    let write_stats = cluster.stats().since(&before_write);
    let write_cost = write_stats.data_bytes_sent as f64 / value_size as f64;

    // Phase 3: one read invoked together with delta_w concurrent writes. When
    // a lead is configured, the writes start first and the read begins while
    // their dispersal is still in flight.
    let before_read = cluster.stats();
    let write_start = cluster.now() + 10;
    let read_start = write_start + params.concurrent_write_lead;
    cluster.invoke_read_at(read_start, 0);
    for i in 0..params.delta_w {
        cluster.invoke_write_at(
            write_start,
            i % writers_needed,
            value_of(value_size, 3 + i as u8),
        );
    }
    cluster.run_to_quiescence();
    let read_window = cluster.stats().since(&before_read);
    let read_cost = cluster.read_cost_bytes(&read_window, 0) as f64 / value_size as f64;

    let storage_cost = cluster.total_stored_bytes() as f64 / value_size as f64;

    let ops = cluster.completed_ops();
    let history = cluster.history(&[]);
    let atomic = history.check_atomicity().is_ok();

    let write_latency = ops
        .iter()
        .filter(|o| o.kind.is_write())
        .nth(1)
        .map(|o| o.latency())
        .unwrap_or(0);
    let reads: Vec<_> = ops.iter().filter(|o| o.kind.is_read()).collect();
    let read_latency = reads.first().map(|o| o.latency()).unwrap_or(0);
    let reads_completed = reads.len();
    let delta_w_actual = history
        .ops()
        .iter()
        .filter(|o| o.kind == Kind::Read)
        .map(|o| history.concurrent_writes(o.id))
        .max()
        .unwrap_or(0);

    ScenarioOutcome {
        kind: params.kind,
        write_cost,
        read_cost,
        storage_cost,
        delta_w_actual,
        write_latency,
        read_latency,
        delta: params.delta,
        reads_requested: 1,
        reads_completed,
        history,
        atomic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soda_scenario_produces_consistent_measurements() {
        let params = ScenarioParams {
            value_size: 2048,
            ..ScenarioParams::new(ProtocolKind::Soda, 5, 2)
        };
        let outcome = run_scenario(&params);
        assert!(outcome.atomic, "history must be atomic");
        assert!(outcome.write_cost > 0.0);
        assert!(outcome.read_cost > 0.0);
        // Storage is close to n/(n-f) = 5/3.
        assert!((outcome.storage_cost - 5.0 / 3.0).abs() < 0.1);
        assert_eq!(outcome.reads_completed, 1);
        assert!(outcome.write_latency > 0);
        assert!(outcome.read_latency > 0);
    }

    #[test]
    fn soda_scenario_with_concurrency_reports_delta_w() {
        let params = ScenarioParams {
            delta_w: 3,
            value_size: 1024,
            ..ScenarioParams::new(ProtocolKind::Soda, 5, 2)
        };
        let outcome = run_scenario(&params);
        assert!(outcome.atomic);
        assert!(outcome.delta_w_actual >= 1, "writes must overlap the read");
        // Read cost grows with concurrency but stays within the paper bound
        // n/(n-f) * (delta_w_actual + 1) plus chunking slack.
        let bound = 5.0 / 3.0 * (outcome.delta_w_actual + 1) as f64 + 0.5;
        assert!(
            outcome.read_cost <= bound,
            "read cost {} exceeds bound {}",
            outcome.read_cost,
            bound
        );
    }

    #[test]
    fn abd_scenario_costs_scale_with_n() {
        let outcome = run_scenario(&ScenarioParams {
            value_size: 2048,
            seed: 3,
            delta: 8,
            ..ScenarioParams::new(ProtocolKind::Abd, 5, 2)
        });
        assert!(outcome.atomic);
        assert!(outcome.storage_cost > 4.9, "ABD stores n full copies");
        assert!(outcome.write_cost >= 5.0, "ABD write cost is at least n");
    }

    #[test]
    fn casgc_scenario_costs_match_coded_baseline() {
        let outcome = run_scenario(&ScenarioParams {
            value_size: 2048,
            seed: 4,
            delta: 8,
            ..ScenarioParams::new(ProtocolKind::Casgc { gc: 2 }, 5, 1)
        });
        assert!(outcome.atomic);
        // Per-op communication ~ n/(n-2f) = 5/3.
        assert!(outcome.write_cost < 3.0);
        assert!(outcome.read_cost < 3.0);
    }

    #[test]
    fn every_kind_runs_the_same_scenario() {
        for kind in [
            ProtocolKind::Soda,
            ProtocolKind::SodaErr { e: 1 },
            ProtocolKind::Abd,
            ProtocolKind::Cas,
            ProtocolKind::Casgc { gc: 1 },
        ] {
            let n = if kind.error_budget() > 0 { 7 } else { 5 };
            let outcome = run_scenario(&ScenarioParams {
                delta_w: 1,
                value_size: 1024,
                ..ScenarioParams::new(kind, n, 2)
            });
            assert!(outcome.atomic, "{}: history must be atomic", kind.name());
            assert_eq!(outcome.reads_completed, 1, "{}", kind.name());
            assert!(outcome.write_cost > 0.0, "{}", kind.name());
        }
    }
}
