//! Scenario runners: build a cluster, drive a shaped workload, and return the
//! normalized costs, latencies and the atomicity-checked history.
//!
//! All three algorithms (SODA/SODAerr, ABD, CASGC) are measured with the same
//! three-phase procedure so their numbers are directly comparable:
//!
//! 1. **setup** — one write establishes a non-initial version everywhere;
//! 2. **solo write** — a single write with nothing else running measures the
//!    write communication cost and write latency;
//! 3. **read under concurrency** — one read is invoked at the same instant as
//!    `δw` writes (one per concurrent writer), measuring the read
//!    communication cost (bytes of coded/full value data delivered to the
//!    reader), the read latency and the *actual* number of concurrent writes.
//!
//! Storage cost is measured at the end, after the system quiesces.

use crate::convert::{history_from_abd, history_from_cas, history_from_soda};
use soda::harness::{ClusterConfig, SodaCluster};
use soda::OpKind;
use soda_baselines::abd::{AbdClient, AbdCluster};
use soda_baselines::cas::CasCluster;
use soda_consistency::{History, Kind};
use soda_simnet::{NetworkConfig, SimTime};

/// Parameters of a SODA / SODAerr measurement scenario.
#[derive(Clone, Debug)]
pub struct SodaScenarioParams {
    /// Number of servers.
    pub n: usize,
    /// Tolerated crashes.
    pub f: usize,
    /// Error budget (0 = plain SODA).
    pub e: usize,
    /// Number of writes invoked concurrently with the measured read.
    pub delta_w: usize,
    /// Size of every written value, in bytes.
    pub value_size: usize,
    /// Simulation seed.
    pub seed: u64,
    /// Network delay bound Δ (uniform delays in `[1, Δ]`).
    pub delta: u64,
    /// Use a constant delay of exactly Δ instead of uniform `[1, Δ]`.
    pub constant_delay: bool,
    /// Server ranks with corrupted local disks (SODAerr experiments).
    pub faulty_disks: Vec<usize>,
    /// Ablation: disable concurrent-write relaying to registered readers.
    pub relay_enabled: bool,
    /// Ranks of servers to crash at the start of the measurement.
    pub crashed_servers: Vec<usize>,
    /// How many ticks the concurrent writes are invoked *before* the measured
    /// read. A non-zero lead makes the read's get phase observe a partially
    /// propagated write (its tag is known to a majority but its coded elements
    /// have not reached every server yet), which is the situation where the
    /// relay mechanism is essential for liveness.
    pub concurrent_write_lead: u64,
}

impl SodaScenarioParams {
    /// Sensible defaults for an `(n, f)` cluster: no errors, no concurrency,
    /// 4 KiB values, Δ = 10.
    pub fn new(n: usize, f: usize) -> Self {
        SodaScenarioParams {
            n,
            f,
            e: 0,
            delta_w: 0,
            value_size: 4096,
            seed: 1,
            delta: 10,
            constant_delay: false,
            faulty_disks: Vec::new(),
            relay_enabled: true,
            crashed_servers: Vec::new(),
            concurrent_write_lead: 0,
        }
    }
}

/// The measurements extracted from one scenario run.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// Normalized communication cost of the solo write (data bytes / value size).
    pub write_cost: f64,
    /// Normalized communication cost of the measured read.
    pub read_cost: f64,
    /// Normalized total storage cost at the end of the run.
    pub storage_cost: f64,
    /// Number of writes that were actually concurrent with the measured read.
    pub delta_w_actual: usize,
    /// Latency of the solo write in ticks.
    pub write_latency: u64,
    /// Latency of the measured read in ticks.
    pub read_latency: u64,
    /// The Δ bound used by the network (for converting latencies to Δ units).
    pub delta: u64,
    /// Number of reads that were requested in the run.
    pub reads_requested: usize,
    /// Number of reads that completed.
    pub reads_completed: usize,
    /// The full operation history.
    pub history: History,
    /// Whether the history passed the atomicity checker.
    pub atomic: bool,
}

impl ScenarioOutcome {
    /// Write latency in units of Δ.
    pub fn write_latency_deltas(&self) -> f64 {
        self.write_latency as f64 / self.delta as f64
    }

    /// Read latency in units of Δ.
    pub fn read_latency_deltas(&self) -> f64 {
        self.read_latency as f64 / self.delta as f64
    }
}

fn network(delta: u64, constant: bool) -> NetworkConfig {
    if constant {
        NetworkConfig::constant(delta)
    } else {
        NetworkConfig::uniform(delta)
    }
}

fn value_of(size: usize, fill: u8) -> Vec<u8> {
    (0..size).map(|i| fill.wrapping_add(i as u8)).collect()
}

/// Runs the standard measurement scenario against SODA / SODAerr.
pub fn run_soda_scenario(params: &SodaScenarioParams) -> ScenarioOutcome {
    let writers_needed = params.delta_w.max(1);
    let mut config = ClusterConfig::new(params.n, params.f)
        .with_seed(params.seed)
        .with_clients(writers_needed, 1)
        .with_error_tolerance(params.e)
        .with_network(network(params.delta, params.constant_delay))
        .with_faulty_disks(params.faulty_disks.clone());
    if !params.relay_enabled {
        config = config.with_relay_disabled();
    }
    let mut cluster = SodaCluster::build(config);
    for &rank in &params.crashed_servers {
        cluster.crash_server_at(SimTime::ZERO, rank);
    }
    let writers = cluster.writers().to_vec();
    let reader = cluster.readers()[0];
    let value_size = params.value_size;

    // Phase 1: setup write.
    cluster.invoke_write(writers[0], value_of(value_size, 1));
    cluster.run_to_quiescence();

    // Phase 2: solo write to measure write cost.
    let before_write = cluster.stats();
    cluster.invoke_write(writers[0], value_of(value_size, 2));
    cluster.run_to_quiescence();
    let write_stats = cluster.stats().since(&before_write);
    let write_cost = write_stats.data_bytes_sent as f64 / value_size as f64;

    // Phase 3: one read invoked together with delta_w concurrent writes. When
    // a lead is configured, the writes start first and the read begins while
    // their dispersal is still in flight.
    let before_read = cluster.stats();
    let write_start = cluster.now() + 10;
    let read_start = write_start + params.concurrent_write_lead;
    cluster.invoke_read_at(read_start, reader);
    for i in 0..params.delta_w {
        let writer = writers[i % writers.len()];
        cluster.invoke_write_at(write_start, writer, value_of(value_size, 3 + i as u8));
    }
    cluster.run_to_quiescence();
    let read_stats = cluster.stats().since(&before_read);
    let read_bytes = read_stats
        .per_process
        .get(reader.index())
        .map(|p| p.data_bytes_received)
        .unwrap_or(0);
    let read_cost = read_bytes as f64 / value_size as f64;

    let storage_cost = cluster.total_stored_bytes() as f64 / value_size as f64;

    let ops = cluster.completed_ops();
    let history = history_from_soda(&[], &ops);
    let atomic = history.check_atomicity().is_ok();

    let write_latency = ops
        .iter()
        .filter(|o| o.kind == OpKind::Write)
        .nth(1)
        .map(|o| o.latency())
        .unwrap_or(0);
    let reads: Vec<_> = ops.iter().filter(|o| o.kind == OpKind::Read).collect();
    let read_latency = reads.first().map(|o| o.latency()).unwrap_or(0);
    let reads_completed = reads.len();
    let delta_w_actual = history
        .ops()
        .iter()
        .filter(|o| o.kind == Kind::Read)
        .map(|o| history.concurrent_writes(o.id))
        .max()
        .unwrap_or(0);

    ScenarioOutcome {
        write_cost,
        read_cost,
        storage_cost,
        delta_w_actual,
        write_latency,
        read_latency,
        delta: params.delta,
        reads_requested: 1,
        reads_completed,
        history,
        atomic,
    }
}

/// Runs the standard measurement scenario against ABD.
pub fn run_abd_scenario(
    n: usize,
    f: usize,
    delta_w: usize,
    value_size: usize,
    seed: u64,
    delta: u64,
) -> ScenarioOutcome {
    let clients = delta_w.max(1) + 1; // concurrent writers + one reader
    let mut cluster = AbdCluster::build(n, f, clients, seed, NetworkConfig::uniform(delta), Vec::new());
    let ids = cluster.clients().to_vec();
    let reader = ids[ids.len() - 1];
    let writers = &ids[..ids.len() - 1];

    cluster.invoke_write(writers[0], value_of(value_size, 1));
    cluster.run_to_quiescence();

    let before_write = cluster.stats();
    cluster.invoke_write(writers[0], value_of(value_size, 2));
    cluster.run_to_quiescence();
    let write_cost =
        cluster.stats().since(&before_write).data_bytes_sent as f64 / value_size as f64;

    let before_read = cluster.stats();
    let start = SimTime::from_ticks(cluster.sim().now().ticks() + 10);
    cluster.invoke_read_at(start, reader);
    for i in 0..delta_w {
        cluster.invoke_write_at(start, writers[i % writers.len()], value_of(value_size, 3 + i as u8));
    }
    cluster.run_to_quiescence();
    let read_stats = cluster.stats().since(&before_read);
    let read_bytes = read_stats
        .per_process
        .get(reader.index())
        .map(|p| p.data_bytes_received)
        .unwrap_or(0);
    // An ABD read also *sends* the value back to the servers in its write-back
    // phase; both directions are part of the read's communication cost.
    let read_sent = read_stats
        .per_process
        .get(reader.index())
        .map(|p| p.data_bytes_sent)
        .unwrap_or(0);
    let read_cost = (read_bytes + read_sent) as f64 / value_size as f64;

    let storage_cost = cluster.total_stored_bytes() as f64 / value_size as f64;

    let per_client: Vec<(u64, Vec<_>)> = ids
        .iter()
        .map(|&c| {
            let records = cluster
                .sim()
                .process_as::<AbdClient>(c)
                .map(|cl| cl.completed_ops().to_vec())
                .unwrap_or_default();
            (c.0 as u64, records)
        })
        .collect();
    let history = history_from_abd(&[], &per_client);
    let atomic = history.check_atomicity().is_ok();

    let ops = cluster.completed_ops();
    let write_latency = ops
        .iter()
        .filter(|o| !o.is_read)
        .nth(1)
        .map(|o| o.completed_at.since(o.invoked_at))
        .unwrap_or(0);
    let reads: Vec<_> = ops.iter().filter(|o| o.is_read).collect();
    let read_latency = reads
        .first()
        .map(|o| o.completed_at.since(o.invoked_at))
        .unwrap_or(0);
    let delta_w_actual = history
        .ops()
        .iter()
        .filter(|o| o.kind == Kind::Read)
        .map(|o| history.concurrent_writes(o.id))
        .max()
        .unwrap_or(0);

    ScenarioOutcome {
        write_cost,
        read_cost,
        storage_cost,
        delta_w_actual,
        write_latency,
        read_latency,
        delta,
        reads_requested: 1,
        reads_completed: reads.len(),
        history,
        atomic,
    }
}

/// Runs the standard measurement scenario against CASGC with garbage
/// collection depth `δ + 1` (pass `gc_delta = None` for plain CAS).
pub fn run_casgc_scenario(
    n: usize,
    f: usize,
    gc_delta: Option<usize>,
    delta_w: usize,
    value_size: usize,
    seed: u64,
    delta: u64,
) -> ScenarioOutcome {
    let clients = delta_w.max(1) + 1;
    let mut cluster = CasCluster::build(
        n,
        f,
        gc_delta.map(|d| d + 1),
        clients,
        seed,
        NetworkConfig::uniform(delta),
        Vec::new(),
    );
    let ids = cluster.clients().to_vec();
    let reader = ids[ids.len() - 1];
    let writers = &ids[..ids.len() - 1];

    cluster.invoke_write(writers[0], value_of(value_size, 1));
    cluster.run_to_quiescence();

    let before_write = cluster.stats();
    cluster.invoke_write(writers[0], value_of(value_size, 2));
    cluster.run_to_quiescence();
    let write_cost =
        cluster.stats().since(&before_write).data_bytes_sent as f64 / value_size as f64;

    let before_read = cluster.stats();
    let start = cluster.now() + 10;
    cluster.invoke_read_at(start, reader);
    for i in 0..delta_w {
        cluster.invoke_write_at(start, writers[i % writers.len()], value_of(value_size, 3 + i as u8));
    }
    cluster.run_to_quiescence();
    let read_stats = cluster.stats().since(&before_read);
    let read_bytes = read_stats
        .per_process
        .get(reader.index())
        .map(|p| p.data_bytes_received)
        .unwrap_or(0);
    let read_cost = read_bytes as f64 / value_size as f64;

    let storage_cost = cluster.total_stored_bytes() as f64 / value_size as f64;

    let per_client: Vec<(u64, Vec<_>)> = ids
        .iter()
        .map(|&c| (c.0 as u64, cluster.client_records(c)))
        .collect();
    let history = history_from_cas(&[], &per_client);
    let atomic = history.check_atomicity().is_ok();

    let ops = cluster.completed_ops();
    let write_latency = ops
        .iter()
        .filter(|o| !o.is_read)
        .nth(1)
        .map(|o| o.completed_at.since(o.invoked_at))
        .unwrap_or(0);
    let reads: Vec<_> = ops.iter().filter(|o| o.is_read).collect();
    let read_latency = reads
        .first()
        .map(|o| o.completed_at.since(o.invoked_at))
        .unwrap_or(0);
    let delta_w_actual = history
        .ops()
        .iter()
        .filter(|o| o.kind == Kind::Read)
        .map(|o| history.concurrent_writes(o.id))
        .max()
        .unwrap_or(0);

    ScenarioOutcome {
        write_cost,
        read_cost,
        storage_cost,
        delta_w_actual,
        write_latency,
        read_latency,
        delta,
        reads_requested: 1,
        reads_completed: reads.len(),
        history,
        atomic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soda_scenario_produces_consistent_measurements() {
        let params = SodaScenarioParams {
            value_size: 2048,
            ..SodaScenarioParams::new(5, 2)
        };
        let outcome = run_soda_scenario(&params);
        assert!(outcome.atomic, "history must be atomic");
        assert!(outcome.write_cost > 0.0);
        assert!(outcome.read_cost > 0.0);
        // Storage is close to n/(n-f) = 5/3.
        assert!((outcome.storage_cost - 5.0 / 3.0).abs() < 0.1);
        assert_eq!(outcome.reads_completed, 1);
        assert!(outcome.write_latency > 0);
        assert!(outcome.read_latency > 0);
    }

    #[test]
    fn soda_scenario_with_concurrency_reports_delta_w() {
        let params = SodaScenarioParams {
            delta_w: 3,
            value_size: 1024,
            ..SodaScenarioParams::new(5, 2)
        };
        let outcome = run_soda_scenario(&params);
        assert!(outcome.atomic);
        assert!(outcome.delta_w_actual >= 1, "writes must overlap the read");
        // Read cost grows with concurrency but stays within the paper bound
        // n/(n-f) * (delta_w_actual + 1) plus chunking slack.
        let bound = 5.0 / 3.0 * (outcome.delta_w_actual + 1) as f64 + 0.5;
        assert!(
            outcome.read_cost <= bound,
            "read cost {} exceeds bound {}",
            outcome.read_cost,
            bound
        );
    }

    #[test]
    fn abd_scenario_costs_scale_with_n() {
        let outcome = run_abd_scenario(5, 2, 0, 2048, 3, 8);
        assert!(outcome.atomic);
        assert!(outcome.storage_cost > 4.9, "ABD stores n full copies");
        assert!(outcome.write_cost >= 5.0, "ABD write cost is at least n");
    }

    #[test]
    fn casgc_scenario_costs_match_coded_baseline() {
        let outcome = run_casgc_scenario(5, 1, Some(2), 0, 2048, 4, 8);
        assert!(outcome.atomic);
        // Per-op communication ~ n/(n-2f) = 5/3.
        assert!(outcome.write_cost < 3.0);
        assert!(outcome.read_cost < 3.0);
    }
}
