//! Seeded schedule exploration: machine-checked atomicity under an
//! adversarial network.
//!
//! The paper's safety claims are universally quantified over asynchronous,
//! adversarial executions — *every* schedule of message delays, losses,
//! reorderings, duplications, crashes and (for SODAerr) in-budget element
//! corruption must yield an atomic history. This module samples that
//! quantifier: it generates randomized scenarios from a seed, runs each to
//! quiescence through the [`soda_registry::RegisterCluster`] facade, closes
//! the resulting history under pending writes, and feeds it to
//! [`soda_consistency::History::check_atomicity`].
//!
//! On a violation the scenario is **shrunk**: operations, crashes, byzantine
//! servers and network faults are greedily removed while the violation
//! persists, producing a minimal reproducer. Everything is derived
//! deterministically from `(config, seed)`, so a reported counterexample can
//! be replayed exactly with [`generate_scenario`] + [`run_scenario`].
//!
//! ```
//! use soda_registry::ProtocolKind;
//! use soda_workload::explore::{explore, ExploreConfig};
//!
//! let report = explore(&ExploreConfig::new(ProtocolKind::Soda, 5, 2), 0, 5);
//! assert!(report.counterexamples.is_empty());
//! assert!(report.completed_ops > 0);
//! ```
//!
//! The harness is validated against a deliberately broken protocol: ABD with
//! a sub-majority quorum override
//! ([`ExploreConfig::quorum_override`]) quickly produces
//! non-atomic histories, which exploration catches and minimizes — see the
//! `exploration` integration tests.

use crate::scenario::value_of;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use soda_consistency::{History, Violation};
use soda_registry::{ClusterBuilder, ProtocolKind};
use soda_simnet::{LinkFaults, NetFaultPlan, NetworkConfig, Partition, ProcessId, SimTime};
use std::fmt;

/// Upper bounds for the per-scenario sampled network-fault intensities.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdversaryKnobs {
    /// Maximum per-message drop probability.
    pub drop_p_max: f64,
    /// Maximum per-message duplication probability.
    pub duplicate_p_max: f64,
    /// Maximum extra delivery delay in ticks (sampled uniformly per message).
    pub extra_delay_max: u64,
    /// Maximum probability that a message is held back (reordered).
    pub reorder_p_max: f64,
    /// Hold-back window in ticks for reordered messages.
    pub reorder_window: u64,
}

impl AdversaryKnobs {
    /// The default adversary: lossy, duplicating, reordering delivery that
    /// still lets most operations finish (drop probability stays well below
    /// the point where quorums become unreachable in every phase).
    pub fn standard() -> Self {
        AdversaryKnobs {
            drop_p_max: 0.15,
            duplicate_p_max: 0.2,
            extra_delay_max: 40,
            reorder_p_max: 0.3,
            reorder_window: 60,
        }
    }

    /// No network faults at all (crash-only exploration).
    pub fn off() -> Self {
        AdversaryKnobs {
            drop_p_max: 0.0,
            duplicate_p_max: 0.0,
            extra_delay_max: 0,
            reorder_p_max: 0.0,
            reorder_window: 0,
        }
    }
}

/// Parameters of one exploration campaign.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// The protocol under test.
    pub kind: ProtocolKind,
    /// Number of servers.
    pub n: usize,
    /// Tolerated server crashes.
    pub f: usize,
    /// Number of writer handles.
    pub writers: usize,
    /// Number of reader handles.
    pub readers: usize,
    /// Operations per scenario (reads and writes mixed).
    pub ops: usize,
    /// Invocation times are drawn from `[0, horizon]` ticks.
    pub horizon: u64,
    /// Size of every written value in bytes.
    pub value_size: usize,
    /// Up to this many servers crash per scenario (clamped to `f`). Bounds
    /// the servers *concurrently* dead, not total crashes: repaired ranks
    /// free their budget slot, and the generator may spend it on a further
    /// crash (see [`ExploreConfig::repair_p`]).
    pub max_server_crashes: usize,
    /// Probability that each crashed server is later **repaired** — replaced
    /// by a fresh, empty server that re-acquires its state from survivors.
    /// Each repair may be followed by a crash of a *different* rank, so
    /// scenarios exercise crash → repair → crash interleavings that exceed
    /// `f` crashes in total while staying within `f` at any instant.
    pub repair_p: f64,
    /// Probability that each individual client is crashed mid-scenario.
    pub client_crash_p: f64,
    /// Probability that the scenario gets scheduled **partition windows**:
    /// time-windowed cuts isolating 1..=`f` server ranks from every other
    /// process, healing at the window's end (see [`PartitionWindow`]).
    /// Default `0.0`; at `0.0` partition generation consumes **no** RNG
    /// draws, so existing seeds reproduce bit-identical scenarios.
    pub partition_p: f64,
    /// Maximum length of a sampled partition window in ticks. Kept below the
    /// repair retry budget (8 attempts spanning 2800 ticks) by default so a
    /// repair scheduled mid-window can settle after the heal.
    pub partition_len_max: u64,
    /// Network-fault intensity bounds.
    pub knobs: AdversaryKnobs,
    /// For SODAerr: corrupt up to `e` servers' coded elements in flight
    /// (ignored for every other kind).
    pub corruption: bool,
    /// **Test-only.** Builds ABD clusters with this (possibly sub-majority)
    /// quorum size, deliberately breaking atomicity so the harness itself can
    /// be validated. See `ClusterBuilder::with_unsound_quorum`.
    pub quorum_override: Option<usize>,
}

impl ExploreConfig {
    /// A standard campaign against a `kind` cluster of `(n, f)`: 2 writers,
    /// 2 readers, 8 operations over 250 ticks, 48-byte values, up to `f`
    /// server crashes, occasional client crashes, the standard adversary,
    /// and in-budget corruption for SODAerr.
    pub fn new(kind: ProtocolKind, n: usize, f: usize) -> Self {
        ExploreConfig {
            kind,
            n,
            f,
            writers: 2,
            readers: 2,
            ops: 8,
            horizon: 250,
            value_size: 48,
            max_server_crashes: f,
            repair_p: 0.5,
            client_crash_p: 0.2,
            partition_p: 0.0,
            partition_len_max: 1600,
            knobs: AdversaryKnobs::standard(),
            corruption: true,
            quorum_override: None,
        }
    }

    /// Enables partition-window sampling with probability `partition_p` per
    /// scenario (windows up to `partition_len_max` ticks long).
    pub fn with_partitions(mut self, partition_p: f64, partition_len_max: u64) -> Self {
        self.partition_p = partition_p;
        self.partition_len_max = partition_len_max;
        self
    }
}

/// One planned client operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlannedOp {
    /// Invocation time in ticks.
    pub at: u64,
    /// Handle index of the respective kind (writer handle for writes,
    /// reader handle for reads). Generated scenarios keep it in range;
    /// `run_scenario` reduces it modulo the handle count as a defense for
    /// hand-built scenarios, and `Display` prints it verbatim.
    pub client: usize,
    /// Write (`true`) or read (`false`).
    pub is_write: bool,
    /// Fill byte identifying the written value (distinct per planned write,
    /// so stale reads are distinguishable).
    pub fill: u8,
}

/// A scheduled partition: the server `ranks` are unreachable from **every
/// other process** (surviving servers and all clients, both directions)
/// during `[start, end)` ticks, healing at `end`.
///
/// Installed as deterministic [`soda_simnet::LinkWindow`]s via
/// [`soda_simnet::Partition::split`], so the cuts consume no randomness: a
/// scenario with windows and one without sample identical RNG streams for
/// everything else.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionWindow {
    /// Isolated server ranks.
    pub ranks: Vec<usize>,
    /// First tick of the outage (inclusive).
    pub start: u64,
    /// First tick after the heal (exclusive end).
    pub end: u64,
}

impl PartitionWindow {
    /// Window length in ticks.
    pub fn len(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// Whether the window is degenerate (cuts nothing).
    pub fn is_empty(&self) -> bool {
        self.start >= self.end || self.ranks.is_empty()
    }
}

/// A fully concrete, seed-derived scenario: operations, crash schedule and
/// network-fault intensities. `Display` renders it as a reproduction recipe.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// The seed this scenario was generated from (also the simulation seed).
    pub seed: u64,
    /// Planned operations.
    pub ops: Vec<PlannedOp>,
    /// `(rank, at)` server crashes. May exceed `f` entries in total when
    /// repairs interleave; `run_scenario` applies them **dynamically**,
    /// skipping any crash that would push the *currently*-dead-or-repairing
    /// count past `f`.
    pub server_crashes: Vec<(usize, u64)>,
    /// `(rank, at)` server repairs: at `at`, a fresh replacement takes over
    /// the rank and re-acquires its state from survivors. Repairs of ranks
    /// that are not down at `at` are skipped.
    pub server_repairs: Vec<(usize, u64)>,
    /// `(writer handle, at)` client crashes.
    pub writer_crashes: Vec<(usize, u64)>,
    /// `(reader handle, at)` client crashes.
    pub reader_crashes: Vec<(usize, u64)>,
    /// Per-message drop probability for this scenario.
    pub drop_p: f64,
    /// Per-message duplication probability.
    pub duplicate_p: f64,
    /// Maximum extra delay in ticks (uniform per message when non-zero).
    pub extra_delay: u64,
    /// Per-message hold-back (reordering) probability.
    pub reorder_p: f64,
    /// Hold-back window in ticks.
    pub reorder_window: u64,
    /// Byzantine server ranks (SODA family only; within the error budget
    /// when generated, beyond it only if a caller builds such a scenario by
    /// hand).
    pub byzantine: Vec<usize>,
    /// Scheduled partition windows (empty unless
    /// [`ExploreConfig::partition_p`] is positive or a caller adds them by
    /// hand).
    pub partitions: Vec<PartitionWindow>,
}

impl Scenario {
    fn link_faults(&self) -> LinkFaults {
        LinkFaults {
            drop_p: self.drop_p,
            duplicate_p: self.duplicate_p,
            extra_delay: (self.extra_delay > 0).then_some(soda_simnet::DelayModel::Uniform {
                min: 1,
                max: self.extra_delay,
            }),
            reorder_p: self.reorder_p,
            reorder_window: self.reorder_window,
        }
    }

    /// Whether any network fault is active.
    pub fn has_net_faults(&self) -> bool {
        !self.link_faults().is_clean()
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(out, "scenario seed={}", self.seed)?;
        for op in &self.ops {
            if op.is_write {
                writeln!(
                    out,
                    "  t={:>4} writer[{}] <- write(fill=0x{:02x})",
                    op.at, op.client, op.fill
                )?;
            } else {
                writeln!(out, "  t={:>4} reader[{}] <- read", op.at, op.client)?;
            }
        }
        for &(rank, at) in &self.server_crashes {
            writeln!(out, "  t={at:>4} crash server {rank}")?;
        }
        for &(rank, at) in &self.server_repairs {
            writeln!(out, "  t={at:>4} repair server {rank}")?;
        }
        for &(w, at) in &self.writer_crashes {
            writeln!(out, "  t={at:>4} crash writer[{w}]")?;
        }
        for &(r, at) in &self.reader_crashes {
            writeln!(out, "  t={at:>4} crash reader[{r}]")?;
        }
        if self.has_net_faults() {
            writeln!(
                out,
                "  net: drop={:.3} dup={:.3} extra_delay<={} reorder={:.3}/{}",
                self.drop_p,
                self.duplicate_p,
                self.extra_delay,
                self.reorder_p,
                self.reorder_window
            )?;
        }
        if !self.byzantine.is_empty() {
            writeln!(out, "  byzantine servers: {:?}", self.byzantine)?;
        }
        for w in &self.partitions {
            writeln!(
                out,
                "  t=[{:>4},{:>4}) partition servers {:?} from everyone",
                w.start, w.end, w.ranks
            )?;
        }
        Ok(())
    }
}

pub(crate) fn unit(rng: &mut StdRng) -> f64 {
    (rng.gen::<u64>() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Deterministically derives the scenario for `(config, seed)`.
pub fn generate_scenario(cfg: &ExploreConfig, seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x50DA_5EED);
    let mut ops = Vec::with_capacity(cfg.ops);
    for i in 0..cfg.ops {
        let write_roll = unit(&mut rng);
        // Degenerate campaigns (0 writers or 0 readers) only get the op
        // kind they can execute.
        let is_write = if cfg.writers == 0 {
            false
        } else if cfg.readers == 0 {
            true
        } else {
            write_roll < 0.45
        };
        let handles = if is_write { cfg.writers } else { cfg.readers };
        ops.push(PlannedOp {
            at: rng.gen_range(0..=cfg.horizon),
            client: rng.gen::<usize>() % handles.max(1),
            is_write,
            fill: (i as u8).wrapping_mul(13).wrapping_add(1),
        });
    }
    let crash_budget = cfg.max_server_crashes.min(cfg.f);
    let crash_count = if crash_budget > 0 {
        rng.gen_range(0..=crash_budget)
    } else {
        0
    };
    let mut ranks: Vec<usize> = (0..cfg.n).collect();
    let mut server_crashes = Vec::new();
    for _ in 0..crash_count {
        let pick = rng.gen_range(0..ranks.len());
        server_crashes.push((ranks.swap_remove(pick), rng.gen_range(0..=cfg.horizon * 2)));
    }
    let mut writer_crashes = Vec::new();
    for w in 0..cfg.writers {
        if unit(&mut rng) < cfg.client_crash_p {
            writer_crashes.push((w, rng.gen_range(0..=cfg.horizon * 2)));
        }
    }
    let mut reader_crashes = Vec::new();
    for r in 0..cfg.readers {
        if unit(&mut rng) < cfg.client_crash_p {
            reader_crashes.push((r, rng.gen_range(0..=cfg.horizon * 2)));
        }
    }
    let knobs = cfg.knobs;
    let byzantine = match (cfg.corruption, cfg.kind) {
        (true, ProtocolKind::SodaErr { e }) if e > 0 => {
            // Up to `e` distinct ranks: always within the budget the decoder
            // is provisioned for.
            let count = rng.gen_range(0..=e);
            let mut pool: Vec<usize> = (0..cfg.n).collect();
            (0..count)
                .map(|_| {
                    let pick = rng.gen_range(0..pool.len());
                    pool.swap_remove(pick)
                })
                .collect()
        }
        _ => Vec::new(),
    };
    let drop_p = unit(&mut rng) * knobs.drop_p_max;
    let duplicate_p = unit(&mut rng) * knobs.duplicate_p_max;
    let extra_delay = if knobs.extra_delay_max > 0 {
        rng.gen_range(0..=knobs.extra_delay_max)
    } else {
        0
    };
    let reorder_p = unit(&mut rng) * knobs.reorder_p_max;
    // Crash → repair → crash interleavings (drawn last so the draw order of
    // everything above is unchanged across seeds): each crashed rank may be
    // repaired, and a completed repair frees a budget slot the adversary may
    // immediately spend on a *different* rank.
    let mut server_repairs = Vec::new();
    let mut follow_up_crashes = Vec::new();
    for &(rank, at) in &server_crashes {
        if unit(&mut rng) < cfg.repair_p {
            let repair_at = at + 1 + rng.gen_range(0..=cfg.horizon);
            server_repairs.push((rank, repair_at));
            if !ranks.is_empty() && unit(&mut rng) < 0.5 {
                let pick = rng.gen_range(0..ranks.len());
                follow_up_crashes.push((
                    ranks.swap_remove(pick),
                    repair_at + 1 + rng.gen_range(0..=cfg.horizon),
                ));
            }
        }
    }
    server_crashes.extend(follow_up_crashes);
    // Partition windows are drawn last of all, and the whole block is gated
    // on `partition_p > 0.0` *before* touching the RNG: campaigns without
    // partitions consume zero extra draws, so their seeds keep reproducing
    // bit-identical scenarios.
    let mut partitions = Vec::new();
    if cfg.partition_p > 0.0 && cfg.f > 0 && unit(&mut rng) < cfg.partition_p {
        let windows = 1 + usize::from(unit(&mut rng) < 0.3);
        for _ in 0..windows {
            let count = rng.gen_range(1..=cfg.f);
            let mut pool: Vec<usize> = (0..cfg.n).collect();
            let ranks = (0..count)
                .map(|_| {
                    let pick = rng.gen_range(0..pool.len());
                    pool.swap_remove(pick)
                })
                .collect();
            let start = rng.gen_range(0..=cfg.horizon);
            let len = rng.gen_range(1..=cfg.partition_len_max.max(1));
            partitions.push(PartitionWindow {
                ranks,
                start,
                end: start + len,
            });
        }
    }
    Scenario {
        seed,
        ops,
        server_crashes,
        server_repairs,
        writer_crashes,
        reader_crashes,
        drop_p,
        duplicate_p,
        extra_delay,
        reorder_p,
        reorder_window: knobs.reorder_window,
        byzantine,
        partitions,
    }
}

/// A **liveness** violation: an operation that was *guaranteed* to complete
/// by quiescence — invoked by a client that never crashed, in a scenario
/// with no probabilistic message loss, where the servers that were ever
/// crashed or partitioned away total at most `f` — yet never completed.
///
/// The guarantee is deliberately conservative. Clients do not retransmit, so
/// an op that fans out while more than `f` servers are (cumulatively) dead
/// or isolated may starve legitimately; and a server that sat out a window
/// can be permanently stale (it missed writes the way a crashed server
/// would), so window-isolated ranks count against the budget for the whole
/// scenario, heal or no heal. Within that budget, every protocol's quorums
/// (`n − f`, or an ABD majority) stay reachable from invocation onward —
/// including for ops invoked only after the final heal — so an incomplete op
/// is a protocol liveness bug, not an adversarial artifact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LivenessViolation {
    /// `true` for a writer handle, `false` for a reader handle.
    pub is_writer: bool,
    /// The starved client handle (writer or reader index per `is_writer`).
    pub handle: usize,
    /// Planned invocation tick of the first starved op on the handle.
    pub invoked_at: u64,
    /// Whether the starved op is a write.
    pub is_write: bool,
    /// Ops that did complete on this handle before the starved one (clients
    /// execute their queue FIFO).
    pub completed_before: usize,
    /// Total ops planned on this handle.
    pub planned: usize,
}

impl fmt::Display for LivenessViolation {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            out,
            "liveness: {}[{}] {} invoked at t={} never completed although a quorum stayed \
             reachable ({}/{} earlier ops on the handle completed)",
            if self.is_writer { "writer" } else { "reader" },
            self.handle,
            if self.is_write { "write" } else { "read" },
            self.invoked_at,
            self.completed_before,
            self.planned,
        )
    }
}

/// The outcome of running one scenario to quiescence.
#[derive(Clone, Debug)]
pub struct ScheduleOutcome {
    /// The atomicity violation, if the history failed the checker.
    pub violation: Option<Violation>,
    /// The liveness violation, if a guaranteed op starved (see
    /// [`LivenessViolation`]).
    pub liveness: Option<LivenessViolation>,
    /// Operations that completed.
    pub completed_ops: usize,
    /// Writes still pending at quiescence (starved or writer-crashed).
    pub pending_writes: usize,
    /// Whether the simulation hit its event cap (indicates a protocol bug
    /// such as an infinite relay loop; never expected).
    pub hit_event_cap: bool,
    /// The checked history (completed ops closed under pending writes).
    pub history: History,
}

/// Decides whether a scenario's outcome contains a [`LivenessViolation`].
///
/// Guarantee predicate, evaluated scenario-wide (conservative on purpose —
/// every exemption is an execution where starvation can be legitimate):
///
/// * exempt everything if messages could be *lost* (`drop_p > 0`; delays,
///   duplication and reordering all still deliver), or the event cap hit;
/// * exempt everything if the ranks ever crashed **or** ever isolated by a
///   partition window total more than `f` — beyond the budget, quorums can
///   be genuinely unreachable, and a once-isolated server can stay stale
///   forever (clients do not retransmit through heals);
/// * exempt a crashed client's own handle; and exempt reader handles
///   entirely when any *writer* crashed (a read can commit to a
///   half-propagated tag whose remaining elements will never arrive).
///
/// For every non-exempt handle the client executes its planned queue FIFO,
/// so the first `completed` ops of the queue (in invocation-time order) are
/// the completed ones; the first op past that count is the starved witness.
fn liveness_violation(
    cfg: &ExploreConfig,
    scenario: &Scenario,
    completed_per_client: &[(u64, usize)],
    hit_event_cap: bool,
) -> Option<LivenessViolation> {
    if hit_event_cap || scenario.drop_p > 0.0 {
        return None;
    }
    let mut budget: Vec<usize> = scenario.server_crashes.iter().map(|&(r, _)| r).collect();
    budget.extend(
        scenario
            .partitions
            .iter()
            .flat_map(|w| w.ranks.iter().copied()),
    );
    budget.sort_unstable();
    budget.dedup();
    if budget.len() > cfg.f {
        return None;
    }
    let any_writer_crashed = !scenario.writer_crashes.is_empty();
    let completed_by = |client: u64| -> usize {
        completed_per_client
            .iter()
            .find(|&&(c, _)| c == client)
            .map_or(0, |&(_, n)| n)
    };
    for (is_writer, handles, crashes) in [
        (true, cfg.writers, &scenario.writer_crashes),
        (false, cfg.readers, &scenario.reader_crashes),
    ] {
        for handle in 0..handles {
            if crashes.iter().any(|&(h, _)| h == handle) || (!is_writer && any_writer_crashed) {
                continue;
            }
            // The handle's queue in delivery order: invocation messages
            // arrive at their planned tick, ties in plan order.
            let mut queue: Vec<&PlannedOp> = scenario
                .ops
                .iter()
                .filter(|op| op.is_write == is_writer && op.client % handles == handle)
                .collect();
            queue.sort_by_key(|op| op.at);
            let client = (cfg.n + if is_writer { 0 } else { cfg.writers } + handle) as u64;
            let done = completed_by(client);
            if done < queue.len() {
                let starved = queue[done];
                return Some(LivenessViolation {
                    is_writer,
                    handle,
                    invoked_at: starved.at,
                    is_write: starved.is_write,
                    completed_before: done,
                    planned: queue.len(),
                });
            }
        }
    }
    None
}

/// Builds the cluster for `(config, scenario)` and runs the scenario to
/// quiescence, returning the checked outcome.
///
/// # Panics
/// Panics if the configuration is invalid for the protocol kind (see
/// `ClusterBuilder::validate`); campaign entry points validate up front.
pub fn run_scenario(cfg: &ExploreConfig, scenario: &Scenario) -> ScheduleOutcome {
    let mut plan = NetFaultPlan::none();
    let faults = scenario.link_faults();
    if !faults.is_clean() {
        plan = plan.with_default(faults);
    }
    for window in &scenario.partitions {
        if window.is_empty() {
            continue;
        }
        // Servers are ProcessId(0..n), writer then reader handles follow —
        // the same layout in all five protocols.
        let total = cfg.n + cfg.writers + cfg.readers;
        let isolated: Vec<ProcessId> = window
            .ranks
            .iter()
            .filter(|&&r| r < cfg.n)
            .map(|&r| ProcessId(r as u32))
            .collect();
        let rest: Vec<ProcessId> = (0..total as u32)
            .map(ProcessId)
            .filter(|pid| !isolated.contains(pid))
            .collect();
        plan = plan.with_partition(Partition::split(
            &[isolated, rest],
            SimTime::from_ticks(window.start),
            SimTime::from_ticks(window.end),
        ));
    }
    let mut builder = ClusterBuilder::new(cfg.kind, cfg.n, cfg.f)
        .with_seed(scenario.seed)
        .with_clients(cfg.writers, cfg.readers)
        .with_network(NetworkConfig::uniform(10))
        .with_net_faults(plan);
    if !scenario.byzantine.is_empty() {
        builder = builder.with_byzantine_servers(scenario.byzantine.clone());
    }
    if let Some(q) = cfg.quorum_override {
        builder = builder.with_unsound_quorum(q);
    }
    let mut cluster = builder
        .build()
        .unwrap_or_else(|e| panic!("invalid exploration config: {e}"));
    for op in &scenario.ops {
        let at = SimTime::from_ticks(op.at);
        if op.is_write {
            // Hand-built scenarios may plan ops the campaign has no handles
            // for; skip those instead of indexing an empty client list.
            if cfg.writers == 0 {
                continue;
            }
            cluster.invoke_write_at(
                at,
                op.client % cfg.writers,
                value_of(cfg.value_size, op.fill),
            );
        } else {
            if cfg.readers == 0 {
                continue;
            }
            cluster.invoke_read_at(at, op.client % cfg.readers);
        }
    }
    for &(w, at) in &scenario.writer_crashes {
        cluster.crash_writer_at(SimTime::from_ticks(at), w);
    }
    for &(r, at) in &scenario.reader_crashes {
        cluster.crash_reader_at(SimTime::from_ticks(at), r);
    }
    // Server crashes and repairs are applied *dynamically*, in time order:
    // the crash budget is the number of currently-dead-or-repairing servers
    // (at most `f`), not a static count, so a crash drawn while the budget is
    // full — e.g. before an interleaved repair completes — is skipped rather
    // than wedging the cluster beyond its declared tolerance.
    const CRASH: u8 = 0;
    const REPAIR: u8 = 1;
    let mut fault_events: Vec<(u64, u8, usize)> = scenario
        .server_crashes
        .iter()
        .map(|&(rank, at)| (at, CRASH, rank))
        .chain(
            scenario
                .server_repairs
                .iter()
                .map(|&(rank, at)| (at, REPAIR, rank)),
        )
        .collect();
    fault_events.sort_unstable();
    let mut down: Vec<usize> = Vec::new();
    for (at, kind, rank) in fault_events {
        cluster.run_until(SimTime::from_ticks(at));
        match kind {
            CRASH => {
                if rank < cfg.n && !down.contains(&rank) && cluster.dead_or_repairing() < cfg.f {
                    cluster.crash_server_at(SimTime::from_ticks(at), rank);
                    // Drain the just-scheduled event so dead_or_repairing()
                    // stays authoritative for later same-tick decisions
                    // (run_until is deadline-inclusive).
                    cluster.run_until(SimTime::from_ticks(at));
                    down.push(rank);
                }
            }
            _ => {
                // Repairing a rank that is not down would replace a healthy
                // server with an empty one; only down ranks are repaired.
                if let Some(pos) = down.iter().position(|&r| r == rank) {
                    down.swap_remove(pos);
                    cluster.repair_server_at(SimTime::from_ticks(at), rank);
                    cluster.run_until(SimTime::from_ticks(at));
                }
            }
        }
    }
    let outcome = cluster.run_to_quiescence();
    let history = cluster.closed_history(&[]);
    let completed = cluster.completed_ops();
    let mut completed_per_client: Vec<(u64, usize)> = Vec::new();
    for op in &completed {
        match completed_per_client
            .iter_mut()
            .find(|(c, _)| *c == op.client)
        {
            Some((_, n)) => *n += 1,
            None => completed_per_client.push((op.client, 1)),
        }
    }
    let liveness = liveness_violation(cfg, scenario, &completed_per_client, outcome.hit_event_cap);
    ScheduleOutcome {
        violation: history.check_atomicity().err(),
        liveness,
        completed_ops: completed.len(),
        pending_writes: cluster.pending_writes().len(),
        hit_event_cap: outcome.hit_event_cap,
        history,
    }
}

/// A minimized, seed-reproducible atomicity violation.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The seed that produced the violation (replay with
    /// [`generate_scenario`] + [`run_scenario`]).
    pub seed: u64,
    /// Name of the protocol under test.
    pub kind: &'static str,
    /// The violation reported for the *minimized* scenario.
    pub violation: Violation,
    /// The scenario as originally generated.
    pub original: Scenario,
    /// The greedily minimized scenario (still violating).
    pub minimized: Scenario,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            out,
            "{}: atomicity violation at seed {}: {}",
            self.kind, self.seed, self.violation
        )?;
        writeln!(
            out,
            "minimized from {} ops / {} crashes to {} ops / {} crashes:",
            self.original.ops.len(),
            self.original.server_crashes.len()
                + self.original.writer_crashes.len()
                + self.original.reader_crashes.len(),
            self.minimized.ops.len(),
            self.minimized.server_crashes.len()
                + self.minimized.writer_crashes.len()
                + self.minimized.reader_crashes.len(),
        )?;
        write!(out, "{}", self.minimized)
    }
}

/// A minimized, seed-reproducible **liveness** violation (the counterpart of
/// [`Counterexample`] for starved-but-guaranteed operations).
#[derive(Clone, Debug)]
pub struct LivenessCounterexample {
    /// The seed that produced the violation (replay with
    /// [`generate_scenario`] + [`run_scenario`]).
    pub seed: u64,
    /// Name of the protocol under test.
    pub kind: &'static str,
    /// The violation reported for the *minimized* scenario.
    pub violation: LivenessViolation,
    /// The scenario as originally generated.
    pub original: Scenario,
    /// The greedily minimized scenario (still violating).
    pub minimized: Scenario,
}

impl fmt::Display for LivenessCounterexample {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            out,
            "{}: liveness violation at seed {}: {}",
            self.kind, self.seed, self.violation
        )?;
        writeln!(
            out,
            "minimized from {} ops / {} crashes / {} partitions to {} ops / {} crashes / {} \
             partitions:",
            self.original.ops.len(),
            self.original.server_crashes.len()
                + self.original.writer_crashes.len()
                + self.original.reader_crashes.len(),
            self.original.partitions.len(),
            self.minimized.ops.len(),
            self.minimized.server_crashes.len()
                + self.minimized.writer_crashes.len()
                + self.minimized.reader_crashes.len(),
            self.minimized.partitions.len(),
        )?;
        write!(out, "{}", self.minimized)
    }
}

/// One halving step toward zero for a fault probability: values below `1e-3`
/// snap to `0.0` so the descent terminates instead of chasing denormals.
pub(crate) fn halve_probability(p: f64) -> f64 {
    if p < 1e-3 {
        0.0
    } else {
        p / 2.0
    }
}

/// Greedily shrinks a violating scenario: repeatedly drops single operations,
/// crashes, byzantine servers and whole partition windows, tries switching
/// the network faults off entirely, bisects each fault *intensity* (drop /
/// duplication / reordering probabilities, extra-delay and hold-back
/// windows) down by repeated halving, and bisects each surviving partition
/// window's start and length, all while the violation persists — so a
/// counterexample that genuinely needs, say, message drops is reported with
/// (roughly) the smallest drop probability that still reproduces it, and
/// intensities the violation never needed come back as zero. Every change is
/// kept only if *some* atomicity violation persists. Deterministic, and
/// terminates because every accepted step removes something or strictly
/// decreases an intensity that bottoms out at zero.
pub fn shrink(cfg: &ExploreConfig, scenario: &Scenario) -> (Scenario, Violation) {
    shrink_with(scenario, |candidate| run_scenario(cfg, candidate).violation)
}

/// [`shrink`], but against the **liveness** checker: minimizes a scenario
/// whose [`run_scenario`] outcome reports a [`LivenessViolation`], with the
/// same passes (including dropping partition events and bisecting window
/// starts and lengths).
pub fn shrink_liveness(cfg: &ExploreConfig, scenario: &Scenario) -> (Scenario, LivenessViolation) {
    shrink_with(scenario, |candidate| run_scenario(cfg, candidate).liveness)
}

/// The shared greedy minimizer: keeps any candidate for which `violates`
/// still reports a violation of the caller's chosen kind.
fn shrink_with<V>(scenario: &Scenario, violates: impl Fn(&Scenario) -> Option<V>) -> (Scenario, V) {
    let mut current = scenario.clone();
    let mut violation = violates(&current)
        .expect("shrink requires a violating scenario (run_scenario reported a violation)");
    loop {
        let mut changed = false;
        // Drop one planned operation at a time (from the back, so indices
        // stay valid as we retry).
        let mut idx = current.ops.len();
        while idx > 0 {
            idx -= 1;
            let mut candidate = current.clone();
            candidate.ops.remove(idx);
            if let Some(v) = violates(&candidate) {
                current = candidate;
                violation = v;
                changed = true;
            }
        }
        macro_rules! shrink_list {
            ($field:ident) => {
                let mut idx = current.$field.len();
                while idx > 0 {
                    idx -= 1;
                    let mut candidate = current.clone();
                    candidate.$field.remove(idx);
                    if let Some(v) = violates(&candidate) {
                        current = candidate;
                        violation = v;
                        changed = true;
                    }
                }
            };
        }
        shrink_list!(server_crashes);
        shrink_list!(server_repairs);
        shrink_list!(writer_crashes);
        shrink_list!(reader_crashes);
        shrink_list!(byzantine);
        shrink_list!(partitions);
        if current.has_net_faults() {
            let mut candidate = current.clone();
            candidate.drop_p = 0.0;
            candidate.duplicate_p = 0.0;
            candidate.extra_delay = 0;
            candidate.reorder_p = 0.0;
            if let Some(v) = violates(&candidate) {
                current = candidate;
                violation = v;
                changed = true;
            }
        }
        // All-off failed (or was unnecessary): bisect the surviving
        // intensities individually. Each loop halves one knob while the
        // violation persists, stopping at the first halving that loses it.
        macro_rules! shrink_probability {
            ($field:ident) => {
                while current.$field > 0.0 {
                    let mut candidate = current.clone();
                    candidate.$field = halve_probability(candidate.$field);
                    if let Some(v) = violates(&candidate) {
                        current = candidate;
                        violation = v;
                        changed = true;
                    } else {
                        break;
                    }
                }
            };
        }
        macro_rules! shrink_window {
            ($field:ident) => {
                while current.$field > 0 {
                    let mut candidate = current.clone();
                    candidate.$field /= 2;
                    if let Some(v) = violates(&candidate) {
                        current = candidate;
                        violation = v;
                        changed = true;
                    } else {
                        break;
                    }
                }
            };
        }
        shrink_probability!(drop_p);
        shrink_probability!(duplicate_p);
        shrink_probability!(reorder_p);
        shrink_window!(extra_delay);
        if current.reorder_p > 0.0 {
            shrink_window!(reorder_window);
        }
        // Bisect surviving partition windows: halve each window's length
        // (healing earlier), then advance its start toward the end — so the
        // reported window is (roughly) the shortest, latest outage that
        // still reproduces the violation.
        for idx in 0..current.partitions.len() {
            loop {
                let w = &current.partitions[idx];
                let len = w.len();
                if len <= 1 {
                    break;
                }
                let mut candidate = current.clone();
                candidate.partitions[idx].end = w.start + len / 2;
                if let Some(v) = violates(&candidate) {
                    current = candidate;
                    violation = v;
                    changed = true;
                } else {
                    break;
                }
            }
            loop {
                let w = &current.partitions[idx];
                let len = w.len();
                if len <= 1 {
                    break;
                }
                let mut candidate = current.clone();
                candidate.partitions[idx].start = w.start + len.div_ceil(2);
                if let Some(v) = violates(&candidate) {
                    current = candidate;
                    violation = v;
                    changed = true;
                } else {
                    break;
                }
            }
        }
        if !changed {
            return (current, violation);
        }
    }
}

/// Aggregate result of an exploration campaign.
#[derive(Clone, Debug, Default)]
pub struct ExplorationReport {
    /// Scenarios run.
    pub schedules: usize,
    /// Total operations completed across all scenarios.
    pub completed_ops: usize,
    /// Total writes left pending across all scenarios.
    pub pending_writes: usize,
    /// Scenarios that hit the event cap (always 0 for healthy protocols).
    pub event_cap_hits: usize,
    /// Atomicity violations found, each minimized to a reproducer.
    pub counterexamples: Vec<Counterexample>,
    /// Liveness violations found (guaranteed ops that starved), each
    /// minimized to a reproducer.
    pub liveness_counterexamples: Vec<LivenessCounterexample>,
}

impl ExplorationReport {
    /// Whether every schedule passed the atomicity checker.
    pub fn all_atomic(&self) -> bool {
        self.counterexamples.is_empty()
    }

    /// Whether every schedule passed the liveness checker.
    pub fn all_live(&self) -> bool {
        self.liveness_counterexamples.is_empty()
    }
}

/// Runs `schedules` seeded scenarios (`seed_start`, `seed_start + 1`, …) and
/// returns the aggregate report. Every violation is shrunk to a minimal
/// reproducer before being recorded.
///
/// # Panics
/// Panics if the configuration is invalid for the protocol kind.
pub fn explore(cfg: &ExploreConfig, seed_start: u64, schedules: usize) -> ExplorationReport {
    let mut report = ExplorationReport::default();
    for seed in seed_start..seed_start + schedules as u64 {
        let scenario = generate_scenario(cfg, seed);
        let outcome = run_scenario(cfg, &scenario);
        report.schedules += 1;
        report.completed_ops += outcome.completed_ops;
        report.pending_writes += outcome.pending_writes;
        report.event_cap_hits += usize::from(outcome.hit_event_cap);
        if outcome.violation.is_some() {
            let (minimized, violation) = shrink(cfg, &scenario);
            report.counterexamples.push(Counterexample {
                seed,
                kind: cfg.kind.name(),
                violation,
                original: scenario.clone(),
                minimized,
            });
        }
        if outcome.liveness.is_some() {
            let (minimized, violation) = shrink_liveness(cfg, &scenario);
            report
                .liveness_counterexamples
                .push(LivenessCounterexample {
                    seed,
                    kind: cfg.kind.name(),
                    violation,
                    original: scenario,
                    minimized,
                });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = ExploreConfig::new(ProtocolKind::Soda, 5, 2);
        let a = generate_scenario(&cfg, 42);
        let b = generate_scenario(&cfg, 42);
        assert_eq!(a, b);
        let c = generate_scenario(&cfg, 43);
        assert_ne!(a, c, "different seeds should differ");
        assert_eq!(a.ops.len(), cfg.ops);
        // Total crashes may exceed `f` only by way of interleaved repairs;
        // the *concurrent* budget is enforced dynamically by `run_scenario`.
        assert!(a.server_crashes.len() <= cfg.f + a.server_repairs.len());
        assert!(a.drop_p <= cfg.knobs.drop_p_max);
    }

    #[test]
    fn repair_events_are_generated_and_stay_causal() {
        let cfg = ExploreConfig {
            repair_p: 1.0,
            ..ExploreConfig::new(ProtocolKind::Soda, 5, 2)
        };
        let mut saw_repair = false;
        let mut saw_follow_up = false;
        for seed in 0..64 {
            let s = generate_scenario(&cfg, seed);
            // Every crash gets a repair at repair_p = 1, and each repair
            // strictly follows its crash.
            for (i, &(rank, crash_at)) in s.server_crashes.iter().enumerate() {
                if let Some(&(_, repair_at)) = s.server_repairs.iter().find(|&&(r, _)| r == rank) {
                    saw_repair = true;
                    if i < s.server_repairs.len() {
                        assert!(repair_at > crash_at, "seed {seed}: repair before crash");
                    }
                }
            }
            saw_follow_up |=
                s.server_crashes.len() > s.server_repairs.len() && !s.server_repairs.is_empty();
            // Follow-up crashes target ranks distinct from every other crash.
            let mut ranks: Vec<usize> = s.server_crashes.iter().map(|&(r, _)| r).collect();
            ranks.sort_unstable();
            ranks.dedup();
            assert_eq!(ranks.len(), s.server_crashes.len(), "seed {seed}");
        }
        assert!(saw_repair, "repair_p = 1 must generate repairs");
        assert!(saw_follow_up, "crash→repair→crash chains must occur");
    }

    #[test]
    fn zero_repair_probability_generates_none() {
        let cfg = ExploreConfig {
            repair_p: 0.0,
            ..ExploreConfig::new(ProtocolKind::Soda, 5, 2)
        };
        for seed in 0..16 {
            assert!(generate_scenario(&cfg, seed).server_repairs.is_empty());
        }
    }

    #[test]
    fn crash_repair_crash_schedules_run_and_stay_within_budget() {
        // A hand-built chain that would exceed f = 2 statically (three
        // crashes) but never concurrently: rank 0 is repaired before rank 2
        // goes down.
        let cfg = ExploreConfig {
            knobs: AdversaryKnobs::off(),
            client_crash_p: 0.0,
            ..ExploreConfig::new(ProtocolKind::Soda, 5, 2)
        };
        let mut scenario = generate_scenario(&cfg, 8);
        scenario.server_crashes = vec![(0, 20), (1, 30), (2, 700)];
        scenario.server_repairs = vec![(0, 400)];
        let outcome = run_scenario(&cfg, &scenario);
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
        assert!(!outcome.hit_event_cap);
        assert!(outcome.completed_ops > 0);
    }

    #[test]
    fn sodaerr_corruption_stays_within_the_error_budget() {
        let cfg = ExploreConfig::new(ProtocolKind::SodaErr { e: 2 }, 9, 2);
        for seed in 0..40 {
            let s = generate_scenario(&cfg, seed);
            assert!(s.byzantine.len() <= 2, "seed {seed}: {:?}", s.byzantine);
            let mut unique = s.byzantine.clone();
            unique.dedup();
            assert_eq!(unique.len(), s.byzantine.len(), "ranks must be distinct");
        }
        let off = ExploreConfig {
            corruption: false,
            ..cfg
        };
        assert!(generate_scenario(&off, 7).byzantine.is_empty());
    }

    #[test]
    fn scenarios_render_as_reproduction_recipes() {
        let cfg = ExploreConfig::new(ProtocolKind::Soda, 5, 2);
        let rendered = generate_scenario(&cfg, 3).to_string();
        assert!(rendered.contains("scenario seed=3"), "{rendered}");
        assert!(
            rendered.contains("write") || rendered.contains("read"),
            "{rendered}"
        );
    }

    #[test]
    fn degenerate_campaigns_only_plan_executable_ops() {
        // 0 readers → writes only; 0 writers → reads only; both run without
        // panicking and the planned handles stay in range.
        let write_only = ExploreConfig {
            readers: 0,
            ..ExploreConfig::new(ProtocolKind::Soda, 5, 2)
        };
        let s = generate_scenario(&write_only, 5);
        assert!(s.ops.iter().all(|op| op.is_write && op.client < 2));
        assert!(run_scenario(&write_only, &s).violation.is_none());

        let read_only = ExploreConfig {
            writers: 0,
            ..ExploreConfig::new(ProtocolKind::Soda, 5, 2)
        };
        let s = generate_scenario(&read_only, 5);
        assert!(s.ops.iter().all(|op| !op.is_write && op.client < 2));
        assert!(run_scenario(&read_only, &s).violation.is_none());
    }

    #[test]
    fn probability_halving_reaches_zero_in_finitely_many_steps() {
        for start in [1.0, 0.15, 0.2, 0.3, 1e-2, 9.99e-4] {
            let mut p = start;
            let mut steps = 0;
            while p > 0.0 {
                let next = halve_probability(p);
                assert!(next < p, "halving must strictly decrease ({p} -> {next})");
                p = next;
                steps += 1;
                assert!(steps < 64, "descent from {start} must terminate");
            }
        }
        assert_eq!(halve_probability(0.0), 0.0);
    }

    #[test]
    fn partition_draws_are_appended_and_gated() {
        // With partition_p = 0 the generator takes zero partition draws, so
        // scenarios are identical (minus the empty window list) to those of
        // a partition-enabled config — the draws are appended strictly after
        // everything else.
        let base = ExploreConfig::new(ProtocolKind::Soda, 5, 2);
        let with = base.clone().with_partitions(1.0, 800);
        for seed in 0..32 {
            let a = generate_scenario(&base, seed);
            let b = generate_scenario(&with, seed);
            assert!(a.partitions.is_empty());
            assert!(!b.partitions.is_empty(), "partition_p = 1 must sample");
            let stripped = Scenario {
                partitions: Vec::new(),
                ..b.clone()
            };
            assert_eq!(a, stripped, "seed {seed}: non-partition draws differ");
            for w in &b.partitions {
                assert!(!w.is_empty());
                assert!(!w.ranks.is_empty() && w.ranks.len() <= 2);
                assert!(w.ranks.iter().all(|&r| r < 5));
                assert!(w.len() <= 800);
            }
        }
    }

    #[test]
    fn partitioned_clean_scenarios_stay_atomic_and_live() {
        // No probabilistic faults, no crashes: the only adversity is the
        // partition windows, which isolate at most f ranks — every op is
        // guaranteed, and the checker must agree.
        for kind in [ProtocolKind::Soda, ProtocolKind::Abd] {
            let cfg = ExploreConfig {
                knobs: AdversaryKnobs::off(),
                client_crash_p: 0.0,
                max_server_crashes: 0,
                ..ExploreConfig::new(kind, 5, 2).with_partitions(1.0, 600)
            };
            let report = explore(&cfg, 0, 12);
            assert!(report.all_atomic(), "{:?}", report.counterexamples);
            assert!(report.all_live(), "{}", report.liveness_counterexamples[0]);
            assert!(report.completed_ops > 0);
        }
    }

    #[test]
    fn unsound_quorum_starvation_is_a_shrunk_replayable_liveness_violation() {
        // ABD waiting for all n = 5 responses with one server crashed: every
        // op starves, while the guarantee predicate (1 crash ≤ f, no loss,
        // clients alive) says they must complete. The checker must flag it,
        // the shrinker must minimize it, and the seed must replay it.
        let cfg = ExploreConfig {
            knobs: AdversaryKnobs::off(),
            client_crash_p: 0.0,
            repair_p: 0.0,
            quorum_override: Some(5),
            ..ExploreConfig::new(ProtocolKind::Abd, 5, 2)
        };
        let mut found = None;
        for seed in 0..32 {
            let scenario = generate_scenario(&cfg, seed);
            if scenario.server_crashes.is_empty() {
                continue;
            }
            let outcome = run_scenario(&cfg, &scenario);
            if outcome.liveness.is_some() {
                found = Some((seed, scenario));
                break;
            }
        }
        let (seed, scenario) = found.expect("a crashy seed must starve the unsound quorum");
        let (minimized, violation) = shrink_liveness(&cfg, &scenario);
        assert!(minimized.ops.len() <= scenario.ops.len());
        assert_eq!(
            minimized.server_crashes.len(),
            1,
            "one crash suffices: {minimized}"
        );
        assert!(violation.completed_before <= violation.planned);
        // Replay from the seed alone.
        let replayed = run_scenario(&cfg, &generate_scenario(&cfg, seed));
        assert!(replayed.liveness.is_some(), "seed {seed} must reproduce");
        // And the campaign surfaces it as a first-class counterexample.
        let report = explore(&cfg, seed, 1);
        assert!(!report.all_live());
        let cx = &report.liveness_counterexamples[0];
        assert_eq!(cx.seed, seed);
        assert!(cx.to_string().contains("liveness"), "{cx}");
    }

    #[test]
    fn liveness_checker_exempts_lossy_and_overbudget_scenarios() {
        let cfg = ExploreConfig::new(ProtocolKind::Abd, 5, 2);
        let mut scenario = generate_scenario(&cfg, 3);
        // Lossy: exempt regardless of what completed.
        scenario.drop_p = 0.1;
        assert!(liveness_violation(&cfg, &scenario, &[], false).is_none());
        // Over budget: crashes ∪ isolated ranks > f.
        scenario.drop_p = 0.0;
        scenario.server_crashes = vec![(0, 10)];
        scenario.partitions = vec![PartitionWindow {
            ranks: vec![1, 2],
            start: 0,
            end: 50,
        }];
        scenario.writer_crashes.clear();
        scenario.reader_crashes.clear();
        assert!(liveness_violation(&cfg, &scenario, &[], false).is_none());
        // Event cap: exempt.
        scenario.partitions.clear();
        assert!(liveness_violation(&cfg, &scenario, &[], true).is_none());
        // Within budget, nothing completed, clients alive: flagged.
        let flagged = liveness_violation(&cfg, &scenario, &[], false);
        assert!(flagged.is_some());
    }

    #[test]
    fn clean_soda_schedule_is_atomic() {
        let cfg = ExploreConfig {
            knobs: AdversaryKnobs::off(),
            max_server_crashes: 0,
            client_crash_p: 0.0,
            ..ExploreConfig::new(ProtocolKind::Soda, 5, 2)
        };
        let outcome = run_scenario(&cfg, &generate_scenario(&cfg, 1));
        assert!(outcome.violation.is_none());
        assert!(!outcome.hit_event_cap);
        assert_eq!(outcome.completed_ops, cfg.ops, "all ops finish cleanly");
    }
}
