//! Workload generation and experiment drivers for the SODA reproduction.
//!
//! This crate turns the protocol implementations into *measurements*. All
//! clusters are built and driven through the [`soda_registry`] facade — the
//! [`soda_registry::RegisterCluster`] trait and
//! [`soda_registry::ClusterBuilder`] — so a single scenario runner
//! ([`scenario::run_scenario`]) measures SODA, SODAerr, ABD, CAS and CASGC
//! with the identical three-phase procedure, selected by
//! [`soda_registry::ProtocolKind`]. It converts the resulting operation
//! records into [`soda_consistency::History`] values for atomicity checking,
//! and aggregates the normalized storage/communication costs and latencies
//! that the paper's theorems and Table I talk about.
//!
//! The `soda-bench` crate's binaries are thin wrappers around the experiment
//! functions in [`experiments`]; integration tests use the scenario runner in
//! [`scenario`] directly. The [`explore`] module is the adversarial
//! counterpart of [`scenario`]: instead of measuring costs on clean runs, it
//! samples thousands of seeded schedules under crash + network faults and
//! machine-checks atomicity, shrinking any violation to a minimal
//! reproducer. [`store_explore`] lifts the same adversarial discipline to a
//! whole sharded, mixed-protocol [`soda_store::ShardedStore`], checking
//! per-key atomicity across shards.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod explore;
pub mod json;
pub mod scenario;
pub mod store_explore;

pub use scenario::{run_scenario, ScenarioOutcome, ScenarioParams};
