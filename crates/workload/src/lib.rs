//! Workload generation and experiment drivers for the SODA reproduction.
//!
//! This crate turns the protocol implementations (`soda`, `soda-baselines`)
//! into *measurements*: it builds clusters, drives carefully shaped workloads
//! (solo writes, reads with a controlled number `δw` of concurrent writes,
//! crash and corruption schedules), converts the resulting operation records
//! into [`soda_consistency::History`] values for atomicity checking, and
//! aggregates the normalized storage/communication costs and latencies that
//! the paper's theorems and Table I talk about.
//!
//! The `soda-bench` crate's binaries are thin wrappers around the experiment
//! functions in [`experiments`]; integration tests use the scenario runners in
//! [`scenario`] directly.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod convert;
pub mod experiments;
pub mod scenario;

pub use scenario::{
    run_abd_scenario, run_casgc_scenario, run_soda_scenario, ScenarioOutcome, SodaScenarioParams,
};
