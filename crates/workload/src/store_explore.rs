//! Seeded adversarial exploration at the **store** layer.
//!
//! [`crate::explore`] samples adversarial schedules against a single register
//! cluster; this module lifts the same discipline to a whole
//! [`soda_store::ShardedStore`]: a mixed-protocol fleet serving many keys,
//! driven through the batched ticket API, with per-scenario sampled network
//! faults and in-tolerance shard crashes. Every schedule is machine-checked
//! with [`soda_store::ShardedStore::check_per_key_atomicity`], i.e. the
//! store-wide history is projected per key and each projection must be
//! atomic.
//!
//! Scenarios derive deterministically from `(config, seed)` —
//! [`generate_store_scenario`] + [`run_store_scenario`] replay any reported
//! violation exactly. There is no store-level shrinker: a store scenario is a
//! composition of per-key register executions, so the cluster-level shrinker
//! in [`crate::explore`] is the right tool once a violation is localized to
//! one key's schedule.
//!
//! ```
//! use soda_workload::store_explore::{explore_store, StoreExploreConfig};
//!
//! let report = explore_store(&StoreExploreConfig::mixed(4), 0, 3);
//! assert!(report.all_atomic());
//! assert!(report.completed_ops > 0);
//! ```

use crate::explore::{unit, AdversaryKnobs};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use soda_consistency::KeyViolation;
use soda_registry::ProtocolKind;
use soda_simnet::{DelayModel, LinkFaults, NetFaultPlan};
use soda_store::{ShardedStore, StoreBuilder, StoreRuntime};
use std::fmt;

/// Parameters of one store-level exploration campaign.
#[derive(Clone, Debug)]
pub struct StoreExploreConfig {
    /// Number of shards.
    pub shards: usize,
    /// Protocol kinds cycled across the shards (shard `i` runs
    /// `kinds[i % kinds.len()]`); a single entry gives a homogeneous fleet.
    pub kinds: Vec<ProtocolKind>,
    /// Servers per shard cluster.
    pub n: usize,
    /// Tolerated crashes per shard cluster.
    pub f: usize,
    /// Writer handles per key.
    pub writers_per_key: usize,
    /// Reader handles per key.
    pub readers_per_key: usize,
    /// Size of the keyspace (`key/0` … `key/{keys-1}`).
    pub keys: usize,
    /// Queue-then-drain rounds per scenario.
    pub phases: usize,
    /// Operations queued per phase.
    pub ops_per_phase: usize,
    /// Probability that each shard loses servers (sampled `1..=f`, so every
    /// shard stays within its fault tolerance and liveness is preserved).
    pub shard_crash_p: f64,
    /// Network-fault intensity bounds (sampled per scenario).
    pub knobs: AdversaryKnobs,
}

impl StoreExploreConfig {
    /// The standard mixed-fleet campaign over `shards` shards: all five
    /// protocols cycled, `(n, f) = (5, 2)` (SODAerr at `e = 1`, so
    /// `k = n − f − 2e = 1`), one writer and two readers per key, 12 keys,
    /// three queue-then-drain phases of 16 operations, in-tolerance shard
    /// crashes and the standard adversary.
    pub fn mixed(shards: usize) -> Self {
        StoreExploreConfig {
            shards,
            kinds: vec![
                ProtocolKind::Soda,
                ProtocolKind::Abd,
                ProtocolKind::Cas,
                ProtocolKind::Casgc { gc: 2 },
                ProtocolKind::SodaErr { e: 1 },
            ],
            n: 5,
            f: 2,
            writers_per_key: 1,
            readers_per_key: 2,
            keys: 12,
            phases: 3,
            ops_per_phase: 16,
            shard_crash_p: 0.25,
            knobs: AdversaryKnobs::standard(),
        }
    }

    fn shard_kinds(&self) -> Vec<ProtocolKind> {
        (0..self.shards)
            .map(|i| self.kinds[i % self.kinds.len()])
            .collect()
    }
}

/// One planned store operation (keys are indices into the campaign keyspace).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreOp {
    /// Key index (`key/{key}` on the wire).
    pub key: usize,
    /// Put (`true`) or get (`false`).
    pub is_write: bool,
    /// Fill byte identifying the written value (ignored for gets).
    pub fill: u8,
}

/// A fully concrete, seed-derived store scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct StoreScenario {
    /// The seed this scenario was generated from (also the store seed).
    pub seed: u64,
    /// Operations per phase; each phase is queued in order, then the whole
    /// store is drained to quiescence before the next phase.
    pub phases: Vec<Vec<StoreOp>>,
    /// `(shard, crashed servers)` applied before any operation; counts stay
    /// within each shard's `f` when generated.
    pub shard_crashes: Vec<(usize, usize)>,
    /// Per-message drop probability.
    pub drop_p: f64,
    /// Per-message duplication probability.
    pub duplicate_p: f64,
    /// Maximum extra delivery delay in ticks (uniform when non-zero).
    pub extra_delay: u64,
    /// Per-message hold-back (reordering) probability.
    pub reorder_p: f64,
    /// Hold-back window in ticks.
    pub reorder_window: u64,
}

impl StoreScenario {
    fn link_faults(&self) -> LinkFaults {
        LinkFaults {
            drop_p: self.drop_p,
            duplicate_p: self.duplicate_p,
            extra_delay: (self.extra_delay > 0).then_some(DelayModel::Uniform {
                min: 1,
                max: self.extra_delay,
            }),
            reorder_p: self.reorder_p,
            reorder_window: self.reorder_window,
        }
    }

    /// Whether any network fault is active.
    pub fn has_net_faults(&self) -> bool {
        !self.link_faults().is_clean()
    }
}

impl fmt::Display for StoreScenario {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(out, "store scenario seed={}", self.seed)?;
        for (i, phase) in self.phases.iter().enumerate() {
            writeln!(out, "  phase {i}:")?;
            for op in phase {
                if op.is_write {
                    writeln!(out, "    put key/{} (fill=0x{:02x})", op.key, op.fill)?;
                } else {
                    writeln!(out, "    get key/{}", op.key)?;
                }
            }
        }
        for &(shard, count) in &self.shard_crashes {
            writeln!(out, "  crash {count} server(s) on shard {shard}")?;
        }
        if self.has_net_faults() {
            writeln!(
                out,
                "  net: drop={:.3} dup={:.3} extra_delay<={} reorder={:.3}/{}",
                self.drop_p,
                self.duplicate_p,
                self.extra_delay,
                self.reorder_p,
                self.reorder_window
            )?;
        }
        Ok(())
    }
}

/// Deterministically derives the store scenario for `(config, seed)`.
pub fn generate_store_scenario(cfg: &StoreExploreConfig, seed: u64) -> StoreScenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5704_E5EED);
    let mut fill: u8 = 0;
    let phases = (0..cfg.phases)
        .map(|_| {
            (0..cfg.ops_per_phase)
                .map(|_| {
                    let is_write = unit(&mut rng) < 0.5;
                    fill = fill.wrapping_mul(31).wrapping_add(7);
                    StoreOp {
                        key: rng.gen::<usize>() % cfg.keys.max(1),
                        is_write,
                        fill,
                    }
                })
                .collect()
        })
        .collect();
    let mut shard_crashes = Vec::new();
    for shard in 0..cfg.shards {
        if cfg.f > 0 && unit(&mut rng) < cfg.shard_crash_p {
            shard_crashes.push((shard, rng.gen_range(1..=cfg.f)));
        }
    }
    let knobs = cfg.knobs;
    StoreScenario {
        seed,
        phases,
        shard_crashes,
        drop_p: unit(&mut rng) * knobs.drop_p_max,
        duplicate_p: unit(&mut rng) * knobs.duplicate_p_max,
        extra_delay: if knobs.extra_delay_max > 0 {
            rng.gen_range(0..=knobs.extra_delay_max)
        } else {
            0
        },
        reorder_p: unit(&mut rng) * knobs.reorder_p_max,
        reorder_window: knobs.reorder_window,
    }
}

/// The outcome of running one store scenario to quiescence.
#[derive(Clone, Debug)]
pub struct StoreScheduleOutcome {
    /// The per-key atomicity violation, if any projection failed the checker.
    pub violation: Option<KeyViolation>,
    /// Tickets settled across all phases.
    pub completed_ops: usize,
    /// Tickets still pending after the final drain.
    pub pending_tickets: usize,
    /// Whether any shard simulation hit its event cap (never expected).
    pub hit_event_cap: bool,
}

/// Builds the store for `(config, scenario)` under the deterministic
/// simulation runtime, drives every phase to quiescence, and machine-checks
/// per-key atomicity over the closed store history.
///
/// # Panics
/// Panics if the configuration is invalid for any shard's protocol kind
/// (see [`soda_store::StoreBuilder`] validation).
pub fn run_store_scenario(
    cfg: &StoreExploreConfig,
    scenario: &StoreScenario,
) -> StoreScheduleOutcome {
    let mut plan = NetFaultPlan::none();
    let faults = scenario.link_faults();
    if !faults.is_clean() {
        plan = plan.with_default(faults);
    }
    let mut store: ShardedStore = StoreBuilder::new(
        cfg.shards,
        cfg.kinds.first().copied().unwrap_or(ProtocolKind::Soda),
        cfg.n,
        cfg.f,
    )
    .with_shard_kinds(cfg.shard_kinds())
    .with_clients_per_key(cfg.writers_per_key, cfg.readers_per_key)
    .with_net_faults(plan)
    .with_seed(scenario.seed)
    .with_runtime(StoreRuntime::Simulation)
    .build()
    .unwrap_or_else(|e| panic!("invalid store exploration config: {e}"));
    for &(shard, count) in &scenario.shard_crashes {
        store.crash_shard_servers(shard, count);
    }
    let mut completed = 0;
    let mut pending = 0;
    let mut hit_event_cap = false;
    for phase in &scenario.phases {
        for op in phase {
            let key = format!("key/{}", op.key).into_bytes();
            if op.is_write {
                store.put(key, vec![op.fill; 24]);
            } else {
                store.get(key);
            }
        }
        let outcome = store.run_until_quiescent();
        completed = outcome.completed_tickets;
        pending = outcome.pending_tickets;
        hit_event_cap |= outcome.hit_event_cap;
    }
    StoreScheduleOutcome {
        violation: store.check_per_key_atomicity().err(),
        completed_ops: completed,
        pending_tickets: pending,
        hit_event_cap,
    }
}

/// A seed-reproducible per-key atomicity violation at the store layer.
#[derive(Clone, Debug)]
pub struct StoreCounterexample {
    /// The seed that produced the violation (replay with
    /// [`generate_store_scenario`] + [`run_store_scenario`]).
    pub seed: u64,
    /// The violation, naming the offending key.
    pub violation: KeyViolation,
    /// The scenario as generated.
    pub scenario: StoreScenario,
}

impl fmt::Display for StoreCounterexample {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            out,
            "store-level atomicity violation at seed {}: {}",
            self.seed, self.violation
        )?;
        write!(out, "{}", self.scenario)
    }
}

/// Aggregate result of a store exploration campaign.
#[derive(Clone, Debug, Default)]
pub struct StoreExplorationReport {
    /// Scenarios run.
    pub schedules: usize,
    /// Tickets settled across all scenarios.
    pub completed_ops: usize,
    /// Tickets left pending across all scenarios (starved by drops on a
    /// degraded shard; never on a healthy fault-free store).
    pub pending_tickets: usize,
    /// Scenarios that hit a shard's event cap (always 0 for healthy
    /// protocols).
    pub event_cap_hits: usize,
    /// Violations found, each replayable from its seed.
    pub counterexamples: Vec<StoreCounterexample>,
}

impl StoreExplorationReport {
    /// Whether every schedule passed the per-key atomicity checker.
    pub fn all_atomic(&self) -> bool {
        self.counterexamples.is_empty()
    }
}

/// Runs `schedules` seeded store scenarios (`seed_start`, `seed_start + 1`,
/// …) and returns the aggregate report.
///
/// # Panics
/// Panics if the configuration is invalid for any shard's protocol kind.
pub fn explore_store(
    cfg: &StoreExploreConfig,
    seed_start: u64,
    schedules: usize,
) -> StoreExplorationReport {
    let mut report = StoreExplorationReport::default();
    for seed in seed_start..seed_start + schedules as u64 {
        let scenario = generate_store_scenario(cfg, seed);
        let outcome = run_store_scenario(cfg, &scenario);
        report.schedules += 1;
        report.completed_ops += outcome.completed_ops;
        report.pending_tickets += outcome.pending_tickets;
        report.event_cap_hits += usize::from(outcome.hit_event_cap);
        if let Some(violation) = outcome.violation {
            report.counterexamples.push(StoreCounterexample {
                seed,
                violation,
                scenario,
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_scenario_generation_is_deterministic_per_seed() {
        let cfg = StoreExploreConfig::mixed(4);
        let a = generate_store_scenario(&cfg, 9);
        assert_eq!(a, generate_store_scenario(&cfg, 9));
        assert_ne!(a, generate_store_scenario(&cfg, 10));
        assert_eq!(a.phases.len(), cfg.phases);
        assert!(a.phases.iter().all(|p| p.len() == cfg.ops_per_phase));
        assert!(a
            .shard_crashes
            .iter()
            .all(|&(s, c)| s < cfg.shards && c >= 1 && c <= cfg.f));
        assert!(a.drop_p <= cfg.knobs.drop_p_max);
    }

    #[test]
    fn kinds_cycle_across_shards() {
        let cfg = StoreExploreConfig::mixed(7);
        let kinds = cfg.shard_kinds();
        assert_eq!(kinds.len(), 7);
        assert_eq!(kinds[0], kinds[5], "cycle length is five protocols");
        assert_ne!(kinds[0], kinds[1]);
    }

    #[test]
    fn scenarios_render_as_reproduction_recipes() {
        let cfg = StoreExploreConfig::mixed(4);
        let rendered = generate_store_scenario(&cfg, 2).to_string();
        assert!(rendered.contains("store scenario seed=2"), "{rendered}");
        assert!(rendered.contains("phase 0"), "{rendered}");
    }

    #[test]
    fn a_clean_mixed_store_schedule_is_atomic_and_fully_served() {
        let cfg = StoreExploreConfig {
            knobs: AdversaryKnobs::off(),
            shard_crash_p: 0.0,
            phases: 2,
            ops_per_phase: 8,
            ..StoreExploreConfig::mixed(4)
        };
        let outcome = run_store_scenario(&cfg, &generate_store_scenario(&cfg, 1));
        assert!(outcome.violation.is_none());
        assert!(!outcome.hit_event_cap);
        assert_eq!(
            outcome.pending_tickets, 0,
            "fault-free runs serve everything"
        );
        assert_eq!(outcome.completed_ops, 16);
    }
}
