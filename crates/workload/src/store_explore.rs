//! Seeded adversarial exploration at the **store** layer.
//!
//! [`crate::explore`] samples adversarial schedules against a single register
//! cluster; this module lifts the same discipline to a whole
//! [`soda_store::ShardedStore`]: a mixed-protocol fleet serving many keys,
//! driven through the batched ticket API, with per-scenario sampled network
//! faults and in-tolerance shard crashes. Every schedule is machine-checked
//! with [`soda_store::ShardedStore::check_per_key_atomicity`], i.e. the
//! store-wide history is projected per key and each projection must be
//! atomic.
//!
//! Scenarios derive deterministically from `(config, seed)` —
//! [`generate_store_scenario`] + [`run_store_scenario`] replay any reported
//! violation exactly. Beyond the phase-boundary crashes, scenarios sample
//! crash → repair → crash interleavings: a downed shard server is repaired at
//! a later phase boundary (a fresh replacement re-acquires its state from
//! survivors) and the freed budget may be spent on a *different* rank. A
//! violating scenario is **shrunk** by [`shrink_store`] — operations,
//! crashes, repairs and network-fault intensities are greedily removed while
//! the violation persists — before it is reported, and the cluster-level
//! shrinker in [`crate::explore`] remains the right tool once a violation is
//! localized to one key's schedule.
//!
//! ```
//! use soda_workload::store_explore::{explore_store, StoreExploreConfig};
//!
//! let report = explore_store(&StoreExploreConfig::mixed(4), 0, 3);
//! assert!(report.all_atomic());
//! assert!(report.completed_ops > 0);
//! ```

use crate::explore::{halve_probability, unit, AdversaryKnobs};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use soda_consistency::KeyViolation;
use soda_registry::ProtocolKind;
use soda_simnet::{DelayModel, LinkFaults, NetFaultPlan};
use soda_store::{ShardedStore, StoreBuilder, StoreMetrics, StoreRuntime};
use std::fmt;

/// Parameters of one store-level exploration campaign.
#[derive(Clone, Debug)]
pub struct StoreExploreConfig {
    /// Number of shards.
    pub shards: usize,
    /// Protocol kinds cycled across the shards (shard `i` runs
    /// `kinds[i % kinds.len()]`); a single entry gives a homogeneous fleet.
    pub kinds: Vec<ProtocolKind>,
    /// Servers per shard cluster.
    pub n: usize,
    /// Tolerated crashes per shard cluster.
    pub f: usize,
    /// Writer handles per key.
    pub writers_per_key: usize,
    /// Reader handles per key.
    pub readers_per_key: usize,
    /// Size of the keyspace (`key/0` … `key/{keys-1}`).
    pub keys: usize,
    /// Queue-then-drain rounds per scenario.
    pub phases: usize,
    /// Operations queued per phase.
    pub ops_per_phase: usize,
    /// Probability that each shard loses servers (sampled `1..=f`, so every
    /// shard stays within its fault tolerance and liveness is preserved).
    pub shard_crash_p: f64,
    /// Probability that a crashed shard is repaired at a later phase boundary
    /// (the replacement re-acquires its state from survivors); half of those
    /// repairs are followed by a crash of a *different* rank, exercising the
    /// dynamic crash budget.
    pub repair_p: f64,
    /// Network-fault intensity bounds (sampled per scenario).
    pub knobs: AdversaryKnobs,
    /// Probability that each shard gets a scheduled **partition window**
    /// isolating `1..=f` of its server ranks from every other process, and
    /// that each crashed-then-repaired shard additionally gets a window over
    /// its crashed ranks — the crash → partition → heal → repair chain.
    /// Default `0.0`; at `0.0` partition generation consumes **no** RNG
    /// draws, so existing seeds reproduce bit-identical scenarios.
    pub partition_p: f64,
    /// Maximum length (and start bound) in ticks of sampled partition
    /// windows. Kept below the repair retry budget (8 attempts spanning
    /// 2800 ticks) by default so repairs scheduled behind a window succeed
    /// once it heals rather than exhausting their retries.
    pub partition_len_max: u64,
    /// **Test-only.** Builds every shard's ABD clusters with this (possibly
    /// sub-majority) quorum size, deliberately breaking atomicity so the
    /// store-level harness and shrinker can themselves be validated. See
    /// `ClusterBuilder::with_unsound_quorum`.
    pub quorum_override: Option<usize>,
    /// Store runtime every scenario is driven under. Defaults to
    /// [`StoreRuntime::Simulation`]; campaigns are bit-identical across
    /// runtimes (that is itself a checked property), so switching this to
    /// [`StoreRuntime::WorkStealing`] fuzzes the pool's scheduling machinery
    /// without changing which histories get explored.
    pub runtime: StoreRuntime,
}

impl StoreExploreConfig {
    /// The standard mixed-fleet campaign over `shards` shards: all five
    /// protocols cycled, `(n, f) = (5, 2)` (SODAerr at `e = 1`, so
    /// `k = n − f − 2e = 1`), one writer and two readers per key, 12 keys,
    /// three queue-then-drain phases of 16 operations, in-tolerance shard
    /// crashes and the standard adversary.
    pub fn mixed(shards: usize) -> Self {
        StoreExploreConfig {
            shards,
            kinds: vec![
                ProtocolKind::Soda,
                ProtocolKind::Abd,
                ProtocolKind::Cas,
                ProtocolKind::Casgc { gc: 2 },
                ProtocolKind::SodaErr { e: 1 },
            ],
            n: 5,
            f: 2,
            writers_per_key: 1,
            readers_per_key: 2,
            keys: 12,
            phases: 3,
            ops_per_phase: 16,
            shard_crash_p: 0.25,
            repair_p: 0.5,
            knobs: AdversaryKnobs::standard(),
            partition_p: 0.0,
            partition_len_max: 1600,
            quorum_override: None,
            runtime: StoreRuntime::Simulation,
        }
    }

    /// Enables scheduled partition windows: each shard gets one with
    /// probability `partition_p`, each at most `partition_len_max` ticks
    /// long, and crashed-then-repaired shards sample the full
    /// crash → partition → heal → repair chain.
    pub fn with_partitions(mut self, partition_p: f64, partition_len_max: u64) -> Self {
        self.partition_p = partition_p;
        self.partition_len_max = partition_len_max;
        self
    }

    fn shard_kinds(&self) -> Vec<ProtocolKind> {
        (0..self.shards)
            .map(|i| self.kinds[i % self.kinds.len()])
            .collect()
    }
}

/// One planned store operation (keys are indices into the campaign keyspace).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreOp {
    /// Key index (`key/{key}` on the wire).
    pub key: usize,
    /// Put (`true`) or get (`false`).
    pub is_write: bool,
    /// Fill byte identifying the written value (ignored for gets).
    pub fill: u8,
}

/// A scheduled partition window on one shard: `ranks` are cut off from every
/// other process of that shard's clusters during `[start, end)` ticks, then
/// the cuts heal. Cuts are deterministic (no RNG draws) and are counted in
/// the shard's `messages_partitioned` metric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StorePartition {
    /// Shard whose clusters get the window.
    pub shard: usize,
    /// Isolated server ranks (`1..=f` of them when generated).
    pub ranks: Vec<usize>,
    /// First partitioned tick.
    pub start: u64,
    /// First healed tick.
    pub end: u64,
}

impl StorePartition {
    /// Window length in ticks.
    pub fn len(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// Whether the window is degenerate (cuts nothing).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// A fully concrete, seed-derived store scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct StoreScenario {
    /// The seed this scenario was generated from (also the store seed).
    pub seed: u64,
    /// Operations per phase; each phase is queued in order, then the whole
    /// store is drained to quiescence before the next phase.
    pub phases: Vec<Vec<StoreOp>>,
    /// `(shard, crashed servers)` applied before any operation; counts stay
    /// within each shard's `f` when generated.
    pub shard_crashes: Vec<(usize, usize)>,
    /// `(phase, shard, rank)` repairs applied at that phase's start —
    /// the replacement re-acquires its state from survivors while the phase's
    /// operations are in flight.
    pub shard_repairs: Vec<(usize, usize, usize)>,
    /// `(phase, shard, rank)` crashes of a *different* rank applied at that
    /// phase's start, after a repair has freed the budget. Applied
    /// best-effort: if the budget is still spent (e.g. the enabling repair
    /// was shrunk away), the crash is skipped.
    pub follow_up_crashes: Vec<(usize, usize, usize)>,
    /// Scheduled partition windows, empty unless
    /// [`StoreExploreConfig::partition_p`] is positive.
    pub shard_partitions: Vec<StorePartition>,
    /// Per-message drop probability.
    pub drop_p: f64,
    /// Per-message duplication probability.
    pub duplicate_p: f64,
    /// Maximum extra delivery delay in ticks (uniform when non-zero).
    pub extra_delay: u64,
    /// Per-message hold-back (reordering) probability.
    pub reorder_p: f64,
    /// Hold-back window in ticks.
    pub reorder_window: u64,
}

impl StoreScenario {
    fn link_faults(&self) -> LinkFaults {
        LinkFaults {
            drop_p: self.drop_p,
            duplicate_p: self.duplicate_p,
            extra_delay: (self.extra_delay > 0).then_some(DelayModel::Uniform {
                min: 1,
                max: self.extra_delay,
            }),
            reorder_p: self.reorder_p,
            reorder_window: self.reorder_window,
        }
    }

    /// Whether any network fault is active.
    pub fn has_net_faults(&self) -> bool {
        !self.link_faults().is_clean()
    }
}

impl fmt::Display for StoreScenario {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(out, "store scenario seed={}", self.seed)?;
        for (i, phase) in self.phases.iter().enumerate() {
            writeln!(out, "  phase {i}:")?;
            for op in phase {
                if op.is_write {
                    writeln!(out, "    put key/{} (fill=0x{:02x})", op.key, op.fill)?;
                } else {
                    writeln!(out, "    get key/{}", op.key)?;
                }
            }
        }
        for &(shard, count) in &self.shard_crashes {
            writeln!(out, "  crash {count} server(s) on shard {shard}")?;
        }
        for &(phase, shard, rank) in &self.shard_repairs {
            writeln!(
                out,
                "  phase {phase}: repair server {rank} on shard {shard}"
            )?;
        }
        for &(phase, shard, rank) in &self.follow_up_crashes {
            writeln!(out, "  phase {phase}: crash server {rank} on shard {shard}")?;
        }
        for w in &self.shard_partitions {
            writeln!(
                out,
                "  t=[{},{}) partition servers {:?} of shard {} from everyone",
                w.start, w.end, w.ranks, w.shard
            )?;
        }
        if self.has_net_faults() {
            writeln!(
                out,
                "  net: drop={:.3} dup={:.3} extra_delay<={} reorder={:.3}/{}",
                self.drop_p,
                self.duplicate_p,
                self.extra_delay,
                self.reorder_p,
                self.reorder_window
            )?;
        }
        Ok(())
    }
}

/// Deterministically derives the store scenario for `(config, seed)`.
pub fn generate_store_scenario(cfg: &StoreExploreConfig, seed: u64) -> StoreScenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5704_E5EED);
    let mut fill: u8 = 0;
    let phases = (0..cfg.phases)
        .map(|_| {
            (0..cfg.ops_per_phase)
                .map(|_| {
                    let is_write = unit(&mut rng) < 0.5;
                    fill = fill.wrapping_mul(31).wrapping_add(7);
                    StoreOp {
                        key: rng.gen::<usize>() % cfg.keys.max(1),
                        is_write,
                        fill,
                    }
                })
                .collect()
        })
        .collect();
    let mut shard_crashes = Vec::new();
    for shard in 0..cfg.shards {
        if cfg.f > 0 && unit(&mut rng) < cfg.shard_crash_p {
            shard_crashes.push((shard, rng.gen_range(1..=cfg.f)));
        }
    }
    let knobs = cfg.knobs;
    let drop_p = unit(&mut rng) * knobs.drop_p_max;
    let duplicate_p = unit(&mut rng) * knobs.duplicate_p_max;
    let extra_delay = if knobs.extra_delay_max > 0 {
        rng.gen_range(0..=knobs.extra_delay_max)
    } else {
        0
    };
    let reorder_p = unit(&mut rng) * knobs.reorder_p_max;
    // Repair draws are appended at the END of the draw order so every
    // existing seed keeps its operation schedule, crash set and network
    // intensities unchanged.
    let mut shard_repairs = Vec::new();
    let mut follow_up_crashes = Vec::new();
    for &(shard, count) in &shard_crashes {
        if cfg.phases > 1 && unit(&mut rng) < cfg.repair_p {
            let repair_phase = rng.gen_range(1..cfg.phases);
            for rank in 0..count {
                shard_repairs.push((repair_phase, shard, rank));
            }
            // Spend the freed budget on a rank the initial crash never
            // touched, one phase (or more) after the repair settles.
            if repair_phase + 1 < cfg.phases && count < cfg.n && unit(&mut rng) < 0.5 {
                follow_up_crashes.push((
                    rng.gen_range(repair_phase + 1..cfg.phases),
                    shard,
                    rng.gen_range(count..cfg.n),
                ));
            }
        }
    }
    // Partition draws come LAST for the same reason: configs that leave
    // `partition_p` at 0 take none of them and replay old seeds unchanged.
    let mut shard_partitions = Vec::new();
    if cfg.partition_p > 0.0 && cfg.f > 0 {
        for shard in 0..cfg.shards {
            if unit(&mut rng) < cfg.partition_p {
                let count = rng.gen_range(1..=cfg.f);
                let mut pool: Vec<usize> = (0..cfg.n).collect();
                let ranks = (0..count)
                    .map(|_| {
                        let pick = rng.gen_range(0..pool.len());
                        pool.swap_remove(pick)
                    })
                    .collect();
                let start = rng.gen_range(0..=cfg.partition_len_max);
                let len = rng.gen_range(1..=cfg.partition_len_max.max(1));
                shard_partitions.push(StorePartition {
                    shard,
                    ranks,
                    start,
                    end: start + len,
                });
            }
        }
        // The crash → partition → heal → repair chain: shards whose crash
        // will later be repaired get a window over the crashed ranks from
        // tick 0, so the repair is scheduled while (or right after) its
        // survivor fan-out crosses a cut that then heals under the retries.
        for &(shard, count) in &shard_crashes {
            if shard_repairs.iter().any(|&(_, s, _)| s == shard) && unit(&mut rng) < cfg.partition_p
            {
                let heal = rng.gen_range(1..=cfg.partition_len_max.max(1));
                shard_partitions.push(StorePartition {
                    shard,
                    ranks: (0..count).collect(),
                    start: 0,
                    end: heal,
                });
            }
        }
    }
    StoreScenario {
        seed,
        phases,
        shard_crashes,
        shard_repairs,
        follow_up_crashes,
        shard_partitions,
        drop_p,
        duplicate_p,
        extra_delay,
        reorder_p,
        reorder_window: knobs.reorder_window,
    }
}

/// The outcome of running one store scenario to quiescence.
#[derive(Clone, Debug)]
pub struct StoreScheduleOutcome {
    /// The per-key atomicity violation, if any projection failed the checker.
    pub violation: Option<KeyViolation>,
    /// The per-shard liveness violation, if a shard that was guaranteed to
    /// serve every ticket left some pending (see [`StoreLivenessViolation`]).
    pub liveness: Option<StoreLivenessViolation>,
    /// Tickets settled across all phases.
    pub completed_ops: usize,
    /// Tickets still pending after the final drain.
    pub pending_tickets: usize,
    /// Whether any shard simulation hit its event cap (never expected).
    pub hit_event_cap: bool,
}

/// A **liveness** violation at the store layer: a shard on which every
/// ticket was guaranteed to complete — clean network, and the union of
/// crashed and window-isolated ranks within the shard's `f` — still had
/// tickets pending after the final drain.
///
/// The guarantee is deliberately conservative: once a rank has been isolated
/// by a window it counts as crashed for the whole scenario even after the
/// heal (there is no client retransmission, so a once-isolated server can
/// stay permanently stale), and any probabilistic loss (`drop_p > 0`)
/// exempts the whole scenario.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreLivenessViolation {
    /// The starved shard.
    pub shard: usize,
    /// Name of the protocol the shard runs.
    pub protocol: &'static str,
    /// Tickets routed to the shard that never completed.
    pub pending_tickets: u64,
}

impl fmt::Display for StoreLivenessViolation {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            out,
            "liveness: shard {} ({}) left {} ticket(s) pending although a \
             quorum stayed reachable",
            self.shard, self.protocol, self.pending_tickets
        )
    }
}

/// Finds the first guaranteed-but-starved shard, if any.
fn store_liveness_violation(
    cfg: &StoreExploreConfig,
    scenario: &StoreScenario,
    metrics: &StoreMetrics,
    hit_event_cap: bool,
) -> Option<StoreLivenessViolation> {
    if hit_event_cap || scenario.drop_p > 0.0 {
        return None;
    }
    for shard_m in &metrics.per_shard {
        if shard_m.pending_tickets == 0 {
            continue;
        }
        let shard = shard_m.shard;
        // Every rank that was ever dead or isolated on this shard counts
        // against the budget for the whole scenario.
        let mut budget: Vec<usize> = scenario
            .shard_crashes
            .iter()
            .filter(|&&(s, _)| s == shard)
            .flat_map(|&(_, count)| 0..count)
            .collect();
        budget.extend(
            scenario
                .follow_up_crashes
                .iter()
                .filter(|&&(_, s, _)| s == shard)
                .map(|&(_, _, rank)| rank),
        );
        budget.extend(
            scenario
                .shard_partitions
                .iter()
                .filter(|w| w.shard == shard && !w.is_empty())
                .flat_map(|w| w.ranks.iter().copied()),
        );
        budget.sort_unstable();
        budget.dedup();
        if budget.len() > cfg.f {
            continue;
        }
        return Some(StoreLivenessViolation {
            shard,
            protocol: shard_m.protocol,
            pending_tickets: shard_m.pending_tickets,
        });
    }
    None
}

/// Builds the store for `(config, scenario)` under the deterministic
/// simulation runtime, drives every phase to quiescence, and machine-checks
/// per-key atomicity over the closed store history.
///
/// # Panics
/// Panics if the configuration is invalid for any shard's protocol kind
/// (see [`soda_store::StoreBuilder`] validation).
pub fn run_store_scenario(
    cfg: &StoreExploreConfig,
    scenario: &StoreScenario,
) -> StoreScheduleOutcome {
    let mut plan = NetFaultPlan::none();
    let faults = scenario.link_faults();
    if !faults.is_clean() {
        plan = plan.with_default(faults);
    }
    let mut builder = StoreBuilder::new(
        cfg.shards,
        cfg.kinds.first().copied().unwrap_or(ProtocolKind::Soda),
        cfg.n,
        cfg.f,
    )
    .with_shard_kinds(cfg.shard_kinds())
    .with_clients_per_key(cfg.writers_per_key, cfg.readers_per_key)
    .with_net_faults(plan)
    .with_seed(scenario.seed)
    .with_runtime(cfg.runtime);
    for w in &scenario.shard_partitions {
        if !w.is_empty() {
            builder = builder.with_shard_partition(w.shard, w.ranks.clone(), w.start, w.end);
        }
    }
    if let Some(quorum) = cfg.quorum_override {
        builder = builder.with_unsound_quorum(quorum);
    }
    let mut store: ShardedStore = builder
        .build()
        .unwrap_or_else(|e| panic!("invalid store exploration config: {e}"));
    for &(shard, count) in &scenario.shard_crashes {
        store
            .crash_shard_servers(shard, count)
            .expect("generated crash counts stay within each shard's budget");
    }
    let mut completed = 0;
    let mut pending = 0;
    let mut hit_event_cap = false;
    for (phase_idx, phase) in scenario.phases.iter().enumerate() {
        // Fault events fire at the phase boundary, racing this phase's
        // operations. Both are best-effort (`.ok()`): after shrinking, a
        // repair may target a rank that was never crashed, and a follow-up
        // crash may find the budget still spent — the scenario must stay
        // runnable under any subset of its events.
        for &(at, shard, rank) in &scenario.shard_repairs {
            if at == phase_idx {
                store.repair_shard_server(shard, rank).ok();
            }
        }
        for &(at, shard, rank) in &scenario.follow_up_crashes {
            if at == phase_idx {
                store.crash_shard_server(shard, rank).ok();
            }
        }
        for op in phase {
            let key = format!("key/{}", op.key).into_bytes();
            if op.is_write {
                store.put(key, vec![op.fill; 24]);
            } else {
                store.get(key);
            }
        }
        let outcome = store.run_until_quiescent();
        completed = outcome.completed_tickets;
        pending = outcome.pending_tickets;
        hit_event_cap |= outcome.hit_event_cap;
    }
    let liveness = store_liveness_violation(cfg, scenario, &store.metrics(), hit_event_cap);
    StoreScheduleOutcome {
        violation: store.check_per_key_atomicity().err(),
        liveness,
        completed_ops: completed,
        pending_tickets: pending,
        hit_event_cap,
    }
}

/// Greedily minimizes a violating store scenario: operations (back to
/// front, per phase), follow-up crashes, repairs, initial crashes, and
/// finally the network-fault intensities are removed or halved as long as
/// the per-key atomicity violation persists. Returns the minimized scenario
/// and the violation it still reproduces.
///
/// # Panics
/// Panics if `scenario` does not actually violate per-key atomicity under
/// `cfg`.
pub fn shrink_store(
    cfg: &StoreExploreConfig,
    scenario: &StoreScenario,
) -> (StoreScenario, KeyViolation) {
    shrink_store_with(scenario, |candidate| {
        run_store_scenario(cfg, candidate).violation
    })
}

/// [`shrink_store`]'s twin for **liveness**: greedily minimizes a scenario on
/// which a guaranteed shard starved, using the same passes (plus
/// partition-window bisection), while the starvation persists.
///
/// # Panics
/// Panics if `scenario` does not actually starve a guaranteed shard under
/// `cfg`.
pub fn shrink_store_liveness(
    cfg: &StoreExploreConfig,
    scenario: &StoreScenario,
) -> (StoreScenario, StoreLivenessViolation) {
    shrink_store_with(scenario, |candidate| {
        run_store_scenario(cfg, candidate).liveness
    })
}

fn shrink_store_with<V>(
    scenario: &StoreScenario,
    violates: impl Fn(&StoreScenario) -> Option<V>,
) -> (StoreScenario, V) {
    let mut best_violation = violates(scenario).expect("shrinking requires a violating scenario");
    let mut best = scenario.clone();
    // Accept a candidate iff it still violates (any violation counts: the
    // goal is a minimal repro, not the same repro).
    let try_candidate = |candidate: StoreScenario, best: &mut StoreScenario, violation: &mut V| {
        if let Some(v) = violates(&candidate) {
            *best = candidate;
            *violation = v;
            true
        } else {
            false
        }
    };
    let mut progress = true;
    while progress {
        progress = false;
        // Drop individual operations, newest first, so the repro keeps only
        // the ops the violation actually needs.
        for phase in (0..best.phases.len()).rev() {
            let mut idx = best.phases[phase].len();
            while idx > 0 {
                idx -= 1;
                let mut candidate = best.clone();
                candidate.phases[phase].remove(idx);
                progress |= try_candidate(candidate, &mut best, &mut best_violation);
            }
        }
        // Drop fault events — follow-up crashes before the repairs that
        // enabled them, repairs before the initial crashes they answer.
        macro_rules! shrink_list {
            ($field:ident) => {
                let mut idx = best.$field.len();
                while idx > 0 {
                    idx -= 1;
                    let mut candidate = best.clone();
                    candidate.$field.remove(idx);
                    progress |= try_candidate(candidate, &mut best, &mut best_violation);
                }
            };
        }
        shrink_list!(follow_up_crashes);
        shrink_list!(shard_repairs);
        shrink_list!(shard_crashes);
        shrink_list!(shard_partitions);
        // Surviving partition windows: bisect each one's span — first halve
        // the length, then advance the start — while the violation persists.
        // Both passes keep the length ≥ 1 and strictly shrink, so they
        // terminate.
        for idx in 0..best.shard_partitions.len() {
            loop {
                let w = &best.shard_partitions[idx];
                let len = w.len();
                if len <= 1 {
                    break;
                }
                let mut candidate = best.clone();
                candidate.shard_partitions[idx].end = w.start + len / 2;
                if !try_candidate(candidate, &mut best, &mut best_violation) {
                    break;
                }
                progress = true;
            }
            loop {
                let w = &best.shard_partitions[idx];
                let len = w.len();
                if len <= 1 {
                    break;
                }
                let mut candidate = best.clone();
                candidate.shard_partitions[idx].start = w.start + len.div_ceil(2);
                if !try_candidate(candidate, &mut best, &mut best_violation) {
                    break;
                }
                progress = true;
            }
        }
        // Network faults: try all-off in one step, else halve each axis.
        if best.has_net_faults() {
            let mut candidate = best.clone();
            candidate.drop_p = 0.0;
            candidate.duplicate_p = 0.0;
            candidate.extra_delay = 0;
            candidate.reorder_p = 0.0;
            if !try_candidate(candidate, &mut best, &mut best_violation) {
                for axis in 0..4usize {
                    let mut candidate = best.clone();
                    match axis {
                        0 => candidate.drop_p = halve_probability(candidate.drop_p),
                        1 => candidate.duplicate_p = halve_probability(candidate.duplicate_p),
                        2 => candidate.extra_delay /= 2,
                        _ => candidate.reorder_p = halve_probability(candidate.reorder_p),
                    }
                    if candidate != best {
                        progress |= try_candidate(candidate, &mut best, &mut best_violation);
                    }
                }
            } else {
                progress = true;
            }
        }
    }
    (best, best_violation)
}

/// A seed-reproducible per-key atomicity violation at the store layer.
#[derive(Clone, Debug)]
pub struct StoreCounterexample {
    /// The seed that produced the violation (replay with
    /// [`generate_store_scenario`] + [`run_store_scenario`]).
    pub seed: u64,
    /// The violation reproduced by the *minimized* scenario.
    pub violation: KeyViolation,
    /// The scenario as generated.
    pub scenario: StoreScenario,
    /// The scenario after [`shrink_store`]: the smallest sub-scenario the
    /// shrinker found that still violates.
    pub minimized: StoreScenario,
}

impl fmt::Display for StoreCounterexample {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            out,
            "store-level atomicity violation at seed {}: {}",
            self.seed, self.violation
        )?;
        writeln!(out, "minimized repro:")?;
        write!(out, "{}", self.minimized)
    }
}

/// A seed-reproducible **liveness** violation at the store layer.
#[derive(Clone, Debug)]
pub struct StoreLivenessCounterexample {
    /// The seed that produced the violation (replay with
    /// [`generate_store_scenario`] + [`run_store_scenario`]).
    pub seed: u64,
    /// The violation reproduced by the *minimized* scenario.
    pub violation: StoreLivenessViolation,
    /// The scenario as generated.
    pub scenario: StoreScenario,
    /// The scenario after [`shrink_store_liveness`].
    pub minimized: StoreScenario,
}

impl fmt::Display for StoreLivenessCounterexample {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            out,
            "store-level liveness violation at seed {}: {}",
            self.seed, self.violation
        )?;
        writeln!(out, "minimized repro:")?;
        write!(out, "{}", self.minimized)
    }
}

/// Aggregate result of a store exploration campaign.
#[derive(Clone, Debug, Default)]
pub struct StoreExplorationReport {
    /// Scenarios run.
    pub schedules: usize,
    /// Tickets settled across all scenarios.
    pub completed_ops: usize,
    /// Tickets left pending across all scenarios (starved by drops on a
    /// degraded shard; never on a healthy fault-free store).
    pub pending_tickets: usize,
    /// Scenarios that hit a shard's event cap (always 0 for healthy
    /// protocols).
    pub event_cap_hits: usize,
    /// Violations found, each replayable from its seed.
    pub counterexamples: Vec<StoreCounterexample>,
    /// Liveness violations found, each replayable from its seed.
    pub liveness_counterexamples: Vec<StoreLivenessCounterexample>,
}

impl StoreExplorationReport {
    /// Whether every schedule passed the per-key atomicity checker.
    pub fn all_atomic(&self) -> bool {
        self.counterexamples.is_empty()
    }

    /// Whether no schedule starved a guaranteed shard.
    pub fn all_live(&self) -> bool {
        self.liveness_counterexamples.is_empty()
    }
}

/// Runs `schedules` seeded store scenarios (`seed_start`, `seed_start + 1`,
/// …) and returns the aggregate report.
///
/// # Panics
/// Panics if the configuration is invalid for any shard's protocol kind.
pub fn explore_store(
    cfg: &StoreExploreConfig,
    seed_start: u64,
    schedules: usize,
) -> StoreExplorationReport {
    let mut report = StoreExplorationReport::default();
    for seed in seed_start..seed_start + schedules as u64 {
        let scenario = generate_store_scenario(cfg, seed);
        let outcome = run_store_scenario(cfg, &scenario);
        report.schedules += 1;
        report.completed_ops += outcome.completed_ops;
        report.pending_tickets += outcome.pending_tickets;
        report.event_cap_hits += usize::from(outcome.hit_event_cap);
        if outcome.violation.is_some() {
            let (minimized, violation) = shrink_store(cfg, &scenario);
            report.counterexamples.push(StoreCounterexample {
                seed,
                violation,
                scenario: scenario.clone(),
                minimized,
            });
        }
        if outcome.liveness.is_some() {
            let (minimized, violation) = shrink_store_liveness(cfg, &scenario);
            report
                .liveness_counterexamples
                .push(StoreLivenessCounterexample {
                    seed,
                    violation,
                    scenario,
                    minimized,
                });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_scenario_generation_is_deterministic_per_seed() {
        let cfg = StoreExploreConfig::mixed(4);
        let a = generate_store_scenario(&cfg, 9);
        assert_eq!(a, generate_store_scenario(&cfg, 9));
        assert_ne!(a, generate_store_scenario(&cfg, 10));
        assert_eq!(a.phases.len(), cfg.phases);
        assert!(a.phases.iter().all(|p| p.len() == cfg.ops_per_phase));
        assert!(a
            .shard_crashes
            .iter()
            .all(|&(s, c)| s < cfg.shards && c >= 1 && c <= cfg.f));
        assert!(a.drop_p <= cfg.knobs.drop_p_max);
    }

    #[test]
    fn kinds_cycle_across_shards() {
        let cfg = StoreExploreConfig::mixed(7);
        let kinds = cfg.shard_kinds();
        assert_eq!(kinds.len(), 7);
        assert_eq!(kinds[0], kinds[5], "cycle length is five protocols");
        assert_ne!(kinds[0], kinds[1]);
    }

    #[test]
    fn scenarios_render_as_reproduction_recipes() {
        let cfg = StoreExploreConfig::mixed(4);
        let rendered = generate_store_scenario(&cfg, 2).to_string();
        assert!(rendered.contains("store scenario seed=2"), "{rendered}");
        assert!(rendered.contains("phase 0"), "{rendered}");
    }

    #[test]
    fn repair_events_are_generated_and_stay_causal() {
        let cfg = StoreExploreConfig {
            shard_crash_p: 1.0,
            repair_p: 1.0,
            ..StoreExploreConfig::mixed(6)
        };
        let mut saw_repair = false;
        let mut saw_follow_up = false;
        for seed in 0..32 {
            let s = generate_store_scenario(&cfg, seed);
            saw_repair |= !s.shard_repairs.is_empty();
            saw_follow_up |= !s.follow_up_crashes.is_empty();
            for &(phase, shard, rank) in &s.shard_repairs {
                // A repair answers an initial crash of that exact rank, at a
                // phase boundary strictly after the crash (phase 0 start).
                assert!(phase >= 1 && phase < cfg.phases);
                let count = s
                    .shard_crashes
                    .iter()
                    .find(|&&(sh, _)| sh == shard)
                    .map(|&(_, c)| c)
                    .expect("repair without a crash");
                assert!(rank < count, "repairing a rank that never crashed");
            }
            for &(phase, shard, rank) in &s.follow_up_crashes {
                // A follow-up spends budget freed by that shard's repair, so
                // it must come at least one phase later and hit a fresh rank.
                let repair_phase = s
                    .shard_repairs
                    .iter()
                    .find(|&&(_, sh, _)| sh == shard)
                    .map(|&(p, _, _)| p)
                    .expect("follow-up crash without an enabling repair");
                assert!(phase > repair_phase);
                let count = s
                    .shard_crashes
                    .iter()
                    .find(|&&(sh, _)| sh == shard)
                    .map(|&(_, c)| c)
                    .unwrap();
                assert!(rank >= count && rank < cfg.n);
            }
        }
        assert!(saw_repair, "repair_p = 1.0 must generate repairs");
        assert!(saw_follow_up, "follow-up crashes must be sampled");
    }

    #[test]
    fn zero_repair_probability_generates_no_repairs() {
        let cfg = StoreExploreConfig {
            shard_crash_p: 1.0,
            repair_p: 0.0,
            ..StoreExploreConfig::mixed(6)
        };
        for seed in 0..16 {
            let s = generate_store_scenario(&cfg, seed);
            assert!(s.shard_repairs.is_empty());
            assert!(s.follow_up_crashes.is_empty());
        }
    }

    #[test]
    fn crash_repair_crash_schedules_stay_atomic() {
        // Force repairs on and run real scenarios: crash → repair → crash a
        // different rank, with operations racing every transition.
        let cfg = StoreExploreConfig {
            shard_crash_p: 1.0,
            repair_p: 1.0,
            knobs: AdversaryKnobs::off(),
            shards: 3,
            keys: 6,
            ops_per_phase: 8,
            ..StoreExploreConfig::mixed(3)
        };
        let mut ran_with_repairs = 0;
        for seed in 0..6 {
            let scenario = generate_store_scenario(&cfg, seed);
            ran_with_repairs += usize::from(!scenario.shard_repairs.is_empty());
            let outcome = run_store_scenario(&cfg, &scenario);
            assert!(outcome.violation.is_none(), "seed {seed}");
            assert!(!outcome.hit_event_cap, "seed {seed}");
        }
        assert!(ran_with_repairs > 0);
    }

    #[test]
    fn the_store_shrinker_drops_irrelevant_repair_events() {
        // Validate the shrinker against a deliberately broken protocol: a
        // homogeneous weakened-ABD fleet (quorum 1) violates even fault-free.
        // Shards are independent simulations, so crash/repair/follow-up
        // events injected on the shard that does NOT host the violating key
        // are provably irrelevant — the shrinker must strip every one.
        let cfg = StoreExploreConfig {
            kinds: vec![ProtocolKind::Abd],
            quorum_override: Some(1),
            shard_crash_p: 0.0,
            knobs: AdversaryKnobs::off(),
            keys: 2,
            phases: 3,
            ops_per_phase: 6,
            ..StoreExploreConfig::mixed(2)
        };
        let base = (0..64)
            .find_map(|seed| {
                let scenario = generate_store_scenario(&cfg, seed);
                run_store_scenario(&cfg, &scenario)
                    .violation
                    .map(|_| scenario)
            })
            .expect("weakened ABD must violate within 64 seeds");
        // At least one of the two shards is not where the violation lives;
        // events injected there keep the violation alive.
        let scenario = (0..cfg.shards)
            .find_map(|shard| {
                let mut candidate = base.clone();
                candidate.shard_crashes = vec![(shard, 1)];
                candidate.shard_repairs = vec![(1, shard, 0)];
                candidate.follow_up_crashes = vec![(2, shard, 1)];
                run_store_scenario(&cfg, &candidate)
                    .violation
                    .map(|_| candidate)
            })
            .expect("one shard must be irrelevant to the violation");
        let (minimized, violation) = shrink_store(&cfg, &scenario);
        // The minimized scenario still reproduces …
        assert!(run_store_scenario(&cfg, &minimized).violation.is_some());
        assert_eq!(
            run_store_scenario(&cfg, &minimized).violation.unwrap().key,
            violation.key
        );
        // … with the noise gone: injected crash, repair and follow-up are
        // all stripped, the op schedule shrank, and no net faults remain.
        assert!(minimized.shard_repairs.is_empty(), "{minimized}");
        assert!(minimized.follow_up_crashes.is_empty(), "{minimized}");
        assert!(minimized.shard_crashes.is_empty(), "{minimized}");
        let ops = |s: &StoreScenario| s.phases.iter().map(Vec::len).sum::<usize>();
        assert!(ops(&minimized) < ops(&scenario), "{minimized}");
        assert!(!minimized.has_net_faults());
    }

    #[test]
    fn counterexamples_are_minimized_by_exploration() {
        let cfg = StoreExploreConfig {
            kinds: vec![ProtocolKind::Abd],
            quorum_override: Some(1),
            knobs: AdversaryKnobs::off(),
            shard_crash_p: 0.0,
            keys: 2,
            phases: 2,
            ops_per_phase: 6,
            ..StoreExploreConfig::mixed(2)
        };
        let report = explore_store(&cfg, 0, 24);
        assert!(!report.all_atomic(), "weakened ABD must be caught");
        let cex = &report.counterexamples[0];
        let ops = |s: &StoreScenario| s.phases.iter().map(Vec::len).sum::<usize>();
        assert!(ops(&cex.minimized) <= ops(&cex.scenario));
        assert!(cex.to_string().contains("minimized repro"), "{cex}");
        // The rendered counterexample is a replayable recipe.
        assert!(
            run_store_scenario(&cfg, &cex.minimized).violation.is_some(),
            "minimized scenario must replay"
        );
    }

    #[test]
    fn store_partition_draws_are_appended_and_gated() {
        let base = StoreExploreConfig::mixed(6);
        let with = base.clone().with_partitions(1.0, 800);
        for seed in 0..24 {
            let a = generate_store_scenario(&base, seed);
            let b = generate_store_scenario(&with, seed);
            assert!(a.shard_partitions.is_empty());
            assert!(
                !b.shard_partitions.is_empty(),
                "partition_p = 1 must sample"
            );
            let stripped = StoreScenario {
                shard_partitions: Vec::new(),
                ..b.clone()
            };
            assert_eq!(a, stripped, "seed {seed}: non-partition draws differ");
            for w in &b.shard_partitions {
                assert!(!w.is_empty());
                assert!(w.shard < with.shards);
                assert!(!w.ranks.is_empty() && w.ranks.len() <= with.f);
                assert!(w.ranks.iter().all(|&r| r < with.n));
                assert!(w.len() <= 800);
            }
        }
    }

    #[test]
    fn crash_partition_heal_repair_chains_are_sampled() {
        let cfg = StoreExploreConfig {
            shard_crash_p: 1.0,
            repair_p: 1.0,
            ..StoreExploreConfig::mixed(4).with_partitions(1.0, 600)
        };
        let mut saw_chain = false;
        for seed in 0..24 {
            let s = generate_store_scenario(&cfg, seed);
            // A chain window covers a crashed-then-repaired shard's crashed
            // ranks from tick 0.
            saw_chain |= s.shard_partitions.iter().any(|w| {
                w.start == 0
                    && s.shard_repairs.iter().any(|&(_, sh, _)| sh == w.shard)
                    && s.shard_crashes.iter().any(|&(sh, count)| {
                        sh == w.shard && w.ranks == (0..count).collect::<Vec<_>>()
                    })
            });
        }
        assert!(saw_chain, "chain windows must be sampled");
    }

    #[test]
    fn partitioned_store_schedules_stay_atomic_and_live() {
        // The only adversity is scheduled windows plus in-budget crash,
        // repair and chain events: every shard stays within `f` once-dead-or-
        // isolated ranks unless the union overflows, and the liveness checker
        // must find nothing on the guaranteed shards.
        let cfg = StoreExploreConfig {
            knobs: AdversaryKnobs::off(),
            shard_crash_p: 0.5,
            repair_p: 1.0,
            shards: 3,
            keys: 6,
            ops_per_phase: 8,
            ..StoreExploreConfig::mixed(3).with_partitions(0.7, 600)
        };
        let report = explore_store(&cfg, 0, 8);
        assert!(report.all_atomic(), "{}", report.counterexamples[0]);
        assert!(report.all_live(), "{}", report.liveness_counterexamples[0]);
        assert!(report.completed_ops > 0);
        assert_eq!(report.event_cap_hits, 0);
    }

    #[test]
    fn unsound_store_quorum_starvation_is_shrunk_and_replayable() {
        // Every shard runs ABD waiting for all n = 5 responses; crashing one
        // server starves every ticket on that shard while the guarantee
        // predicate holds — the store-level liveness checker must flag it
        // and the shrinker must strip the noise.
        let cfg = StoreExploreConfig {
            kinds: vec![ProtocolKind::Abd],
            quorum_override: Some(5),
            knobs: AdversaryKnobs::off(),
            shard_crash_p: 1.0,
            repair_p: 0.0,
            keys: 4,
            phases: 2,
            ops_per_phase: 6,
            ..StoreExploreConfig::mixed(2)
        };
        let report = explore_store(&cfg, 0, 8);
        assert!(!report.all_live(), "unsound quorum must starve");
        let cx = &report.liveness_counterexamples[0];
        assert!(cx.violation.pending_tickets > 0);
        assert!(cx.to_string().contains("liveness"), "{cx}");
        // Minimized scenario still reproduces from scratch …
        let replay = run_store_scenario(&cfg, &cx.minimized);
        assert!(replay.liveness.is_some());
        // … and the seed alone reproduces the original.
        let regen = generate_store_scenario(&cfg, cx.seed);
        assert!(run_store_scenario(&cfg, &regen).liveness.is_some());
        // The shrinker pared the operation schedule down.
        let ops = |s: &StoreScenario| s.phases.iter().map(Vec::len).sum::<usize>();
        assert!(ops(&cx.minimized) <= ops(&cx.scenario));
    }

    #[test]
    fn a_clean_mixed_store_schedule_is_atomic_and_fully_served() {
        let cfg = StoreExploreConfig {
            knobs: AdversaryKnobs::off(),
            shard_crash_p: 0.0,
            phases: 2,
            ops_per_phase: 8,
            ..StoreExploreConfig::mixed(4)
        };
        let outcome = run_store_scenario(&cfg, &generate_store_scenario(&cfg, 1));
        assert!(outcome.violation.is_none());
        assert!(!outcome.hit_event_cap);
        assert_eq!(
            outcome.pending_tickets, 0,
            "fault-free runs serve everything"
        );
        assert_eq!(outcome.completed_ops, 16);
    }
}
