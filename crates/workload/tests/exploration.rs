//! Schedule-exploration integration tests: every protocol kind must stay
//! atomic across seeded adversarial schedules (message drop / delay /
//! reorder / duplication, server and client crashes, and in-budget element
//! corruption for SODAerr), and the harness itself must catch a deliberately
//! broken protocol and minimize the counterexample.
//!
//! The tier-1 pass keeps the schedule counts small so `cargo test -q` stays
//! fast; the `fuzz_smoke` test at the bottom is `#[ignore]`d and run by the
//! nightly CI job (or manually) with a larger budget:
//!
//! ```text
//! EXPLORE_SCHEDULES=200 cargo test --release -p soda-workload \
//!     --test exploration -- --ignored --nocapture
//! ```
//!
//! To replay a reported counterexample, re-run `generate_scenario` +
//! `run_scenario` with the printed seed (see `explore::Counterexample`).

use soda_registry::ProtocolKind;
use soda_workload::explore::{
    explore, generate_scenario, run_scenario, shrink, AdversaryKnobs, ExploreConfig,
};

/// The five protocol configurations every exploration test sweeps. SODAerr
/// gets `n = 7` so `k = n − f − 2e = 3` is a real code; CASGC gets a
/// generous GC depth so garbage collection never blocks reads for liveness
/// reasons (safety is what exploration checks).
fn campaigns() -> Vec<ExploreConfig> {
    vec![
        ExploreConfig::new(ProtocolKind::Soda, 5, 2),
        ExploreConfig::new(ProtocolKind::SodaErr { e: 1 }, 7, 2),
        ExploreConfig::new(ProtocolKind::Abd, 5, 2),
        ExploreConfig::new(ProtocolKind::Cas, 5, 2),
        ExploreConfig::new(ProtocolKind::Casgc { gc: 4 }, 5, 2),
    ]
}

fn schedules_from_env(default: usize) -> usize {
    std::env::var("EXPLORE_SCHEDULES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[test]
fn all_five_protocols_survive_adversarial_schedules() {
    for cfg in campaigns() {
        let report = explore(&cfg, 0, 40);
        for cex in &report.counterexamples {
            eprintln!("{cex}");
        }
        assert!(
            report.all_atomic(),
            "{}: {} counterexamples (first: {})",
            cfg.kind.name(),
            report.counterexamples.len(),
            report.counterexamples[0]
        );
        assert_eq!(report.event_cap_hits, 0, "{}", cfg.kind.name());
        assert!(
            report.completed_ops > 0,
            "{}: adversary starved every operation — the campaign is vacuous",
            cfg.kind.name()
        );
    }
}

#[test]
fn crash_only_exploration_also_passes() {
    // The crash-only adversary (the old fault model) as a sanity baseline.
    for mut cfg in campaigns() {
        cfg.knobs = AdversaryKnobs::off();
        let report = explore(&cfg, 100, 15);
        assert!(
            report.all_atomic(),
            "{}: {}",
            cfg.kind.name(),
            report.counterexamples[0]
        );
    }
}

#[test]
fn weakened_abd_is_caught_and_minimized() {
    // ABD with single-server "quorums": phase-1 and phase-2 accesses no
    // longer intersect, so stale reads and duplicate tags appear quickly.
    // This validates the whole pipeline end to end: the harness must find a
    // violation, shrink it, and the minimized scenario must replay from its
    // seed.
    let cfg = ExploreConfig {
        quorum_override: Some(1),
        // Net faults off: the broken quorum alone must be caught, proving
        // detection does not depend on adversarial delivery.
        knobs: AdversaryKnobs::off(),
        max_server_crashes: 0,
        client_crash_p: 0.0,
        ..ExploreConfig::new(ProtocolKind::Abd, 5, 2)
    };
    let report = explore(&cfg, 0, 60);
    assert!(
        !report.all_atomic(),
        "sub-majority quorums must produce atomicity violations"
    );
    let cex = &report.counterexamples[0];

    // Seed-reproducibility: regenerating from the recorded seed gives the
    // recorded scenario, and re-running it still violates.
    let regenerated = generate_scenario(&cfg, cex.seed);
    assert_eq!(
        regenerated, cex.original,
        "scenario derivation must be pure"
    );
    assert!(
        run_scenario(&cfg, &cex.original).violation.is_some(),
        "original scenario must replay its violation"
    );

    // The minimized scenario still violates and is no larger than the
    // original.
    assert!(
        run_scenario(&cfg, &cex.minimized).violation.is_some(),
        "minimized scenario must still violate"
    );
    assert!(cex.minimized.ops.len() <= cex.original.ops.len());
    assert!(
        cex.minimized.ops.len() >= 2,
        "a violation needs at least two operations, got:\n{}",
        cex.minimized
    );
    // The reproduction recipe is printable and names the seed.
    let rendered = cex.to_string();
    assert!(
        rendered.contains(&format!("seed {}", cex.seed)),
        "{rendered}"
    );
}

#[test]
fn weakened_abd_is_caught_under_the_full_adversary_too() {
    let cfg = ExploreConfig {
        quorum_override: Some(2),
        ..ExploreConfig::new(ProtocolKind::Abd, 5, 2)
    };
    let report = explore(&cfg, 0, 60);
    assert!(
        !report.all_atomic(),
        "quorum 2 of 5 must be caught under the adversary"
    );
}

#[test]
fn shrinking_strips_irrelevant_faults() {
    // Find any weakened-ABD violation, then check the shrinker's output is
    // locally minimal: removing any single remaining op breaks the repro.
    let cfg = ExploreConfig {
        quorum_override: Some(1),
        ..ExploreConfig::new(ProtocolKind::Abd, 5, 2)
    };
    let seed = (0..200)
        .find(|&s| {
            run_scenario(&cfg, &generate_scenario(&cfg, s))
                .violation
                .is_some()
        })
        .expect("a violating seed exists");
    let scenario = generate_scenario(&cfg, seed);
    let (minimized, violation) = shrink(&cfg, &scenario);
    assert!(run_scenario(&cfg, &minimized).violation.is_some());
    assert_eq!(
        run_scenario(&cfg, &minimized).violation.as_ref(),
        Some(&violation)
    );
    for idx in 0..minimized.ops.len() {
        let mut smaller = minimized.clone();
        smaller.ops.remove(idx);
        assert!(
            run_scenario(&cfg, &smaller).violation.is_none(),
            "op {idx} is removable — shrink was not greedy to a fixpoint"
        );
    }
}

#[test]
fn shrinking_bisects_fault_intensities_to_a_local_minimum() {
    // Network-fault intensities must only shrink, and the shrinker's output
    // must be locally minimal along each intensity axis: at the fixpoint,
    // halving any surviving knob (the shrinker's own step) loses the
    // violation — otherwise the shrinker would have taken that step itself.
    let cfg = ExploreConfig {
        quorum_override: Some(1),
        ..ExploreConfig::new(ProtocolKind::Abd, 5, 2)
    };
    // Mirror of the shrinker's probability step (snap-to-zero below 1e-3).
    let halve = |p: f64| if p < 1e-3 { 0.0 } else { p / 2.0 };
    let mut checked = 0;
    for seed in 0..200 {
        if checked == 4 {
            break;
        }
        let scenario = generate_scenario(&cfg, seed);
        if !scenario.has_net_faults() || run_scenario(&cfg, &scenario).violation.is_none() {
            continue;
        }
        checked += 1;
        let (minimized, _) = shrink(&cfg, &scenario);

        // Intensities never grow during shrinking.
        assert!(minimized.drop_p <= scenario.drop_p, "seed {seed}");
        assert!(minimized.duplicate_p <= scenario.duplicate_p, "seed {seed}");
        assert!(minimized.reorder_p <= scenario.reorder_p, "seed {seed}");
        assert!(minimized.extra_delay <= scenario.extra_delay, "seed {seed}");
        assert!(
            minimized.reorder_window <= scenario.reorder_window,
            "seed {seed}"
        );

        let still_violates = |candidate: &_| run_scenario(&cfg, candidate).violation.is_some();
        if minimized.drop_p > 0.0 {
            let mut c = minimized.clone();
            c.drop_p = halve(c.drop_p);
            assert!(
                !still_violates(&c),
                "seed {seed}: drop_p not bisected to a minimum"
            );
        }
        if minimized.duplicate_p > 0.0 {
            let mut c = minimized.clone();
            c.duplicate_p = halve(c.duplicate_p);
            assert!(
                !still_violates(&c),
                "seed {seed}: duplicate_p not bisected to a minimum"
            );
        }
        if minimized.reorder_p > 0.0 {
            let mut c = minimized.clone();
            c.reorder_p = halve(c.reorder_p);
            assert!(
                !still_violates(&c),
                "seed {seed}: reorder_p not bisected to a minimum"
            );
        }
        if minimized.extra_delay > 0 {
            let mut c = minimized.clone();
            c.extra_delay /= 2;
            assert!(
                !still_violates(&c),
                "seed {seed}: extra_delay not bisected to a minimum"
            );
        }
        if minimized.reorder_p > 0.0 && minimized.reorder_window > 0 {
            let mut c = minimized.clone();
            c.reorder_window /= 2;
            assert!(
                !still_violates(&c),
                "seed {seed}: reorder_window not bisected to a minimum"
            );
        }
    }
    assert!(
        checked >= 2,
        "too few violating seeds with active net faults: {checked}"
    );
}

#[test]
fn all_five_protocols_survive_partitioned_schedules() {
    // Partition windows on top of the full adversary: atomicity must hold,
    // and the liveness checker must stay quiet (lossy scenarios are exempt
    // by design; clean ones must actually complete everything).
    for cfg in campaigns() {
        let cfg = cfg.with_partitions(0.7, 1200);
        let report = explore(&cfg, 0, 15);
        assert!(
            report.all_atomic(),
            "{}: {}",
            cfg.kind.name(),
            report.counterexamples[0]
        );
        assert!(
            report.all_live(),
            "{}: {}",
            cfg.kind.name(),
            report.liveness_counterexamples[0]
        );
        assert_eq!(report.event_cap_hits, 0, "{}", cfg.kind.name());
        assert!(report.completed_ops > 0, "{}", cfg.kind.name());
    }
}

/// The partition-focused fuzz-smoke pass CI runs nightly: every scenario
/// samples partition/heal windows (`partition_p = 1.0`) on top of the full
/// adversary, and repairs stay on, so the campaign is dense in
/// crash → partition → heal → repair chains. Asserts **zero atomicity and
/// zero liveness** violations. Ignored in tier-1; scale with
/// `EXPLORE_SCHEDULES`.
#[test]
#[ignore = "nightly fuzz-smoke budget; run with --ignored (EXPLORE_SCHEDULES to scale)"]
fn partition_fuzz_smoke() {
    let schedules = schedules_from_env(200);
    let seed_start = 9_000u64;
    for mut cfg in campaigns() {
        cfg = cfg.with_partitions(1.0, 1600);
        cfg.repair_p = 1.0;
        // Vacuity guard: the seed range must actually contain windows, and
        // scenarios combining crashes, repairs and windows (the chains).
        let mut with_windows = 0usize;
        let mut with_chains = 0usize;
        for seed in seed_start..seed_start + schedules as u64 {
            let scenario = generate_scenario(&cfg, seed);
            with_windows += usize::from(!scenario.partitions.is_empty());
            with_chains += usize::from(
                !scenario.partitions.is_empty()
                    && !scenario.server_crashes.is_empty()
                    && !scenario.server_repairs.is_empty(),
            );
        }
        assert!(
            with_windows * 2 >= schedules,
            "{}: only {with_windows}/{schedules} schedules contain windows",
            cfg.kind.name()
        );
        assert!(
            with_chains > 0,
            "{}: no crash → partition → heal → repair chain in {schedules} schedules",
            cfg.kind.name()
        );
        let report = explore(&cfg, seed_start, schedules);
        for cex in &report.counterexamples {
            eprintln!("{cex}");
        }
        for cex in &report.liveness_counterexamples {
            eprintln!("{cex}");
        }
        assert!(
            report.all_atomic(),
            "{}: {} atomicity counterexamples over {} partitioned schedules",
            cfg.kind.name(),
            report.counterexamples.len(),
            schedules
        );
        assert!(
            report.all_live(),
            "{}: {} liveness counterexamples over {} partitioned schedules",
            cfg.kind.name(),
            report.liveness_counterexamples.len(),
            schedules
        );
        assert_eq!(report.event_cap_hits, 0, "{}", cfg.kind.name());
        assert!(report.completed_ops > 0, "{}", cfg.kind.name());
        eprintln!(
            "{:>7}: {} schedules ({} with windows, {} crash→partition→heal→repair), \
             {} ops, all atomic, all live",
            cfg.kind.name(),
            report.schedules,
            with_windows,
            with_chains,
            report.completed_ops
        );
    }
}

/// The repair-focused fuzz-smoke pass CI runs nightly: every crash is
/// repaired (`repair_p = 1.0`), so the campaign is dense in
/// crash → repair → crash chains exercising the dynamic fault budget.
/// Ignored in tier-1; scale with `EXPLORE_SCHEDULES`.
#[test]
#[ignore = "nightly fuzz-smoke budget; run with --ignored (EXPLORE_SCHEDULES to scale)"]
fn repair_fuzz_smoke() {
    let schedules = schedules_from_env(200);
    let seed_start = 5_000u64;
    for mut cfg in campaigns() {
        cfg.repair_p = 1.0;
        // The campaign is vacuous unless repairs (and post-repair crashes)
        // actually fire: count them over the exact seed range first.
        let mut with_repairs = 0usize;
        let mut with_follow_up = 0usize;
        for seed in seed_start..seed_start + schedules as u64 {
            let scenario = generate_scenario(&cfg, seed);
            if scenario.server_repairs.is_empty() {
                continue;
            }
            with_repairs += 1;
            let first_repair = scenario.server_repairs.iter().map(|&(_, at)| at).min();
            if let Some(at) = first_repair {
                with_follow_up += usize::from(
                    scenario
                        .server_crashes
                        .iter()
                        .any(|&(_, crash_at)| crash_at > at),
                );
            }
        }
        assert!(
            with_repairs * 4 >= schedules,
            "{}: only {with_repairs}/{schedules} schedules contain repairs",
            cfg.kind.name()
        );
        assert!(
            with_follow_up > 0,
            "{}: no crash → repair → crash chain in {schedules} schedules",
            cfg.kind.name()
        );
        let report = explore(&cfg, seed_start, schedules);
        for cex in &report.counterexamples {
            eprintln!("{cex}");
        }
        assert!(
            report.all_atomic(),
            "{}: {} counterexamples over {} repair schedules",
            cfg.kind.name(),
            report.counterexamples.len(),
            schedules
        );
        assert_eq!(report.event_cap_hits, 0, "{}", cfg.kind.name());
        assert!(report.completed_ops > 0, "{}", cfg.kind.name());
        eprintln!(
            "{:>7}: {} schedules ({} with repairs, {} crash→repair→crash), {} ops, all atomic",
            cfg.kind.name(),
            report.schedules,
            with_repairs,
            with_follow_up,
            report.completed_ops
        );
    }
}

/// The capped fuzz-smoke pass CI runs nightly (and the acceptance run uses
/// with `EXPLORE_SCHEDULES=1000`). Ignored in tier-1 to keep `cargo test -q`
/// fast.
#[test]
#[ignore = "nightly fuzz-smoke budget; run with --ignored (EXPLORE_SCHEDULES to scale)"]
fn fuzz_smoke() {
    let schedules = schedules_from_env(200);
    for cfg in campaigns() {
        let report = explore(&cfg, 1_000, schedules);
        for cex in &report.counterexamples {
            eprintln!("{cex}");
        }
        assert!(
            report.all_atomic(),
            "{}: {} counterexamples over {} schedules",
            cfg.kind.name(),
            report.counterexamples.len(),
            schedules
        );
        assert_eq!(report.event_cap_hits, 0, "{}", cfg.kind.name());
        assert!(report.completed_ops > 0, "{}", cfg.kind.name());
        eprintln!(
            "{:>7}: {} schedules, {} ops completed, {} writes pending, all atomic",
            cfg.kind.name(),
            report.schedules,
            report.completed_ops,
            report.pending_writes
        );
    }
}
