//! Randomized end-to-end atomicity tests: drive SODA, SODAerr, ABD and CASGC
//! with concurrent clients over many random schedules (seeds control both the
//! message delays and the workload timing) and machine-check every resulting
//! history against the atomicity conditions of Lemma 2.1.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use soda::harness::{ClusterConfig, SodaCluster};
use soda_baselines::abd::{AbdClient, AbdCluster};
use soda_baselines::cas::CasCluster;
use soda_consistency::History;
use soda_simnet::{NetworkConfig, SimTime};
use soda_workload::convert::{history_from_abd, history_from_cas, history_from_soda};

/// Drives a SODA/SODAerr cluster with a random interleaving of writes and
/// reads and returns the checked history.
fn run_random_soda(seed: u64, n: usize, f: usize, e: usize, faulty: Vec<usize>) -> History {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut cluster = SodaCluster::build(
        ClusterConfig::new(n, f)
            .with_seed(seed)
            .with_clients(2, 2)
            .with_error_tolerance(e)
            .with_faulty_disks(faulty)
            .with_network(NetworkConfig::uniform(1 + seed % 20)),
    );
    let writers = cluster.writers().to_vec();
    let readers = cluster.readers().to_vec();
    let mut counter = 0u32;
    for _ in 0..8 {
        let at = SimTime::from_ticks(rng.gen_range(0..300));
        if rng.gen_bool(0.5) {
            let w = writers[rng.gen_range(0..writers.len())];
            counter += 1;
            cluster.invoke_write_at(at, w, format!("value-{counter}").into_bytes());
        } else {
            let r = readers[rng.gen_range(0..readers.len())];
            cluster.invoke_read_at(at, r);
        }
    }
    let outcome = cluster.run_to_quiescence();
    assert!(!outcome.hit_event_cap, "seed {seed}: protocol must quiesce");
    assert_eq!(
        cluster.total_registered_readers(),
        0,
        "seed {seed}: no reader stays registered after quiescence"
    );
    history_from_soda(&[], &cluster.completed_ops())
}

#[test]
fn soda_histories_are_atomic_across_many_random_schedules() {
    for seed in 0..25 {
        let history = run_random_soda(seed, 5, 2, 0, vec![]);
        history
            .check_atomicity()
            .unwrap_or_else(|v| panic!("seed {seed}: atomicity violated: {v}"));
    }
}

#[test]
fn soda_histories_are_atomic_on_larger_clusters() {
    for seed in 0..6 {
        let history = run_random_soda(1000 + seed, 11, 5, 0, vec![]);
        history
            .check_atomicity()
            .unwrap_or_else(|v| panic!("seed {seed}: atomicity violated: {v}"));
    }
}

#[test]
fn sodaerr_histories_are_atomic_with_corrupted_disks() {
    for seed in 0..12 {
        let history = run_random_soda(2000 + seed, 9, 2, 2, vec![1, 6]);
        history
            .check_atomicity()
            .unwrap_or_else(|v| panic!("seed {seed}: atomicity violated: {v}"));
        // Every read must have returned a value some write produced (or the
        // initial value) — corruption never leaks to clients.
        for op in history.ops() {
            if op.kind == soda_consistency::Kind::Read && !op.value.is_empty() {
                assert!(
                    op.value.starts_with(b"value-"),
                    "seed {seed}: read returned corrupted data {:?}",
                    op.value
                );
            }
        }
    }
}

#[test]
fn abd_histories_are_atomic() {
    for seed in 0..15 {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let mut cluster =
            AbdCluster::build(5, 2, 3, seed, NetworkConfig::uniform(1 + seed % 15), Vec::new());
        let clients = cluster.clients().to_vec();
        for i in 0..8u32 {
            let at = SimTime::from_ticks(rng.gen_range(0..200));
            let c = clients[rng.gen_range(0..clients.len())];
            if rng.gen_bool(0.5) {
                cluster.invoke_write_at(at, c, format!("abd-{i}").into_bytes());
            } else {
                cluster.invoke_read_at(at, c);
            }
        }
        cluster.run_to_quiescence();
        let per_client: Vec<(u64, Vec<_>)> = clients
            .iter()
            .map(|&c| {
                (
                    c.0 as u64,
                    cluster
                        .sim()
                        .process_as::<AbdClient>(c)
                        .unwrap()
                        .completed_ops()
                        .to_vec(),
                )
            })
            .collect();
        let history = history_from_abd(&[], &per_client);
        history
            .check_atomicity()
            .unwrap_or_else(|v| panic!("ABD seed {seed}: atomicity violated: {v}"));
    }
}

#[test]
fn casgc_histories_are_atomic() {
    for seed in 0..15 {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let mut cluster = CasCluster::build(
            5,
            1,
            Some(4),
            3,
            seed,
            NetworkConfig::uniform(1 + seed % 15),
            Vec::new(),
        );
        let clients = cluster.clients().to_vec();
        for i in 0..8u32 {
            let at = SimTime::from_ticks(rng.gen_range(0..200));
            let c = clients[rng.gen_range(0..clients.len())];
            if rng.gen_bool(0.5) {
                cluster.invoke_write_at(at, c, format!("cas-{i}").into_bytes());
            } else {
                cluster.invoke_read_at(at, c);
            }
        }
        cluster.run_to_quiescence();
        let per_client: Vec<(u64, Vec<_>)> = clients
            .iter()
            .map(|&c| (c.0 as u64, cluster.client_records(c)))
            .collect();
        let history = history_from_cas(&[], &per_client);
        history
            .check_atomicity()
            .unwrap_or_else(|v| panic!("CASGC seed {seed}: atomicity violated: {v}"));
    }
}

#[test]
fn small_histories_cross_validate_against_brute_force_linearizability() {
    // For small executions, additionally run the exponential checker so we are
    // not relying solely on the tag-based sufficient condition.
    for seed in 0..10 {
        let mut cluster = SodaCluster::build(
            ClusterConfig::new(5, 2)
                .with_seed(3000 + seed)
                .with_clients(2, 1)
                .with_network(NetworkConfig::uniform(12)),
        );
        let writers = cluster.writers().to_vec();
        let reader = cluster.readers()[0];
        cluster.invoke_write_at(SimTime::from_ticks(0), writers[0], b"alpha".to_vec());
        cluster.invoke_write_at(SimTime::from_ticks(5), writers[1], b"beta".to_vec());
        cluster.invoke_read_at(SimTime::from_ticks(8), reader);
        cluster.invoke_read_at(SimTime::from_ticks(60), reader);
        cluster.run_to_quiescence();
        let history = history_from_soda(&[], &cluster.completed_ops());
        assert!(history.check_atomicity().is_ok(), "seed {seed}");
        assert!(
            history.check_linearizable_brute_force(),
            "seed {seed}: brute force disagrees"
        );
    }
}
