//! Randomized end-to-end atomicity tests: drive SODA, SODAerr, ABD and CASGC
//! with concurrent clients over many random schedules (seeds control both the
//! message delays and the workload timing) and machine-check every resulting
//! history against the atomicity conditions of Lemma 2.1.
//!
//! All four protocols are driven by the *same* generic function through the
//! `RegisterCluster` facade.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use soda_consistency::History;
use soda_registry::{ClusterBuilder, ProtocolKind, SodaRegisterCluster};
use soda_simnet::{NetworkConfig, SimTime};

/// Drives any protocol's cluster with a random interleaving of writes and
/// reads and returns the checked history.
fn run_random(
    kind: ProtocolKind,
    seed: u64,
    n: usize,
    f: usize,
    faulty: Vec<usize>,
    value_prefix: &str,
) -> History {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut cluster = ClusterBuilder::new(kind, n, f)
        .with_seed(seed)
        .with_clients(2, 2)
        .with_faulty_disks(faulty)
        .with_network(NetworkConfig::uniform(1 + seed % 20))
        .build()
        .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
    let mut counter = 0u32;
    for _ in 0..8 {
        let at = SimTime::from_ticks(rng.gen_range(0u64..300));
        if rng.gen_bool(0.5) {
            let writer = rng.gen_range(0usize..2);
            counter += 1;
            cluster.invoke_write_at(at, writer, format!("{value_prefix}-{counter}").into_bytes());
        } else {
            let reader = rng.gen_range(0usize..2);
            cluster.invoke_read_at(at, reader);
        }
    }
    let outcome = cluster.run_to_quiescence();
    assert!(
        !outcome.hit_event_cap,
        "{} seed {seed}: protocol must quiesce",
        kind.name()
    );
    if let Some(soda) = cluster.as_any().downcast_ref::<SodaRegisterCluster>() {
        assert_eq!(
            soda.total_registered_readers(),
            0,
            "seed {seed}: no reader stays registered after quiescence"
        );
    }
    cluster.history(&[])
}

#[test]
fn soda_histories_are_atomic_across_many_random_schedules() {
    for seed in 0..25 {
        let history = run_random(ProtocolKind::Soda, seed, 5, 2, vec![], "value");
        history
            .check_atomicity()
            .unwrap_or_else(|v| panic!("seed {seed}: atomicity violated: {v}"));
    }
}

#[test]
fn soda_histories_are_atomic_on_larger_clusters() {
    for seed in 0..6 {
        let history = run_random(ProtocolKind::Soda, 1000 + seed, 11, 5, vec![], "value");
        history
            .check_atomicity()
            .unwrap_or_else(|v| panic!("seed {seed}: atomicity violated: {v}"));
    }
}

#[test]
fn sodaerr_histories_are_atomic_with_corrupted_disks() {
    for seed in 0..12 {
        let history = run_random(
            ProtocolKind::SodaErr { e: 2 },
            2000 + seed,
            9,
            2,
            vec![1, 6],
            "value",
        );
        history
            .check_atomicity()
            .unwrap_or_else(|v| panic!("seed {seed}: atomicity violated: {v}"));
        // Every read must have returned a value some write produced (or the
        // initial value) — corruption never leaks to clients.
        for op in history.ops() {
            if op.kind == soda_consistency::Kind::Read && !op.value.is_empty() {
                assert!(
                    op.value.starts_with(b"value-"),
                    "seed {seed}: read returned corrupted data {:?}",
                    op.value
                );
            }
        }
    }
}

#[test]
fn abd_histories_are_atomic() {
    for seed in 0..15 {
        let history = run_random(ProtocolKind::Abd, seed, 5, 2, vec![], "abd");
        history
            .check_atomicity()
            .unwrap_or_else(|v| panic!("ABD seed {seed}: atomicity violated: {v}"));
    }
}

#[test]
fn casgc_histories_are_atomic() {
    for seed in 0..15 {
        let history = run_random(ProtocolKind::Casgc { gc: 3 }, seed, 5, 1, vec![], "cas");
        history
            .check_atomicity()
            .unwrap_or_else(|v| panic!("CASGC seed {seed}: atomicity violated: {v}"));
    }
}

#[test]
fn small_histories_cross_validate_against_brute_force_linearizability() {
    // For small executions, additionally run the exponential checker so we are
    // not relying solely on the tag-based sufficient condition.
    for seed in 0..10 {
        let mut cluster = ClusterBuilder::new(ProtocolKind::Soda, 5, 2)
            .with_seed(3000 + seed)
            .with_clients(2, 1)
            .with_network(NetworkConfig::uniform(12))
            .build()
            .unwrap();
        cluster.invoke_write_at(SimTime::from_ticks(0), 0, b"alpha".to_vec());
        cluster.invoke_write_at(SimTime::from_ticks(5), 1, b"beta".to_vec());
        cluster.invoke_read_at(SimTime::from_ticks(8), 0);
        cluster.invoke_read_at(SimTime::from_ticks(60), 0);
        cluster.run_to_quiescence();
        let history = cluster.history(&[]);
        assert!(history.check_atomicity().is_ok(), "seed {seed}");
        assert!(
            history.check_linearizable_brute_force(),
            "seed {seed}: brute force disagrees"
        );
    }
}
