//! Fault-injection integration tests: server crashes up to `f`, writer crashes
//! in the middle of the MD-VALUE dispersal (uniformity, Theorem 3.1 /
//! consistency properties), and reader crashes before read-complete
//! (Theorem 5.5: servers eventually stop serving and unregister the reader).
//! All clusters are built and driven through the `RegisterCluster` facade.

use soda_consistency::Kind;
use soda_registry::{ClusterBuilder, ProtocolKind, RegisterCluster};
use soda_simnet::{NetworkConfig, SimTime};
use soda_workload::experiments::relay_ablation;

fn soda(n: usize, f: usize) -> ClusterBuilder {
    ClusterBuilder::new(ProtocolKind::Soda, n, f)
}

#[test]
fn operations_complete_with_f_crashes_at_arbitrary_times() {
    for seed in 0..10u64 {
        let n = 7;
        let f = 3;
        let mut cluster = soda(n, f)
            .with_seed(seed)
            .with_clients(2, 2)
            .with_network(NetworkConfig::uniform(10))
            .build()
            .unwrap();
        // Crash f servers at staggered times while the workload runs.
        for (i, rank) in [0usize, 3, 6].iter().enumerate() {
            cluster.crash_server_at(SimTime::from_ticks(seed * 3 + i as u64 * 40), *rank);
        }
        for round in 0..3u64 {
            for writer in 0..2usize {
                cluster.invoke_write_at(
                    SimTime::from_ticks(round * 50 + writer as u64),
                    writer,
                    format!("crashy-{round}-{writer}").into_bytes(),
                );
            }
            for reader in 0..2usize {
                cluster.invoke_read_at(SimTime::from_ticks(round * 50 + 20), reader);
            }
        }
        let outcome = cluster.run_to_quiescence();
        assert!(!outcome.hit_event_cap);
        let ops = cluster.completed_ops();
        // All 6 writes and 6 reads must complete despite the crashes
        // (liveness, Theorem 5.1).
        assert_eq!(ops.len(), 12, "seed {seed}: every operation must complete");
        cluster
            .history(&[])
            .check_atomicity()
            .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
    }
}

#[test]
fn writer_crash_mid_dispersal_preserves_uniformity() {
    // The writer crashes shortly after starting its write-put phase. The
    // MD-VALUE primitive guarantees that either no server or every non-faulty
    // server ends up delivering the coded element; in both cases the surviving
    // servers agree on their stored tag once the system quiesces.
    for crash_delay in [5u64, 15, 30, 60, 120] {
        let mut cluster = soda(7, 2)
            .with_seed(crash_delay)
            .with_network(NetworkConfig::uniform(10))
            .build_soda()
            .unwrap();
        cluster.invoke_write(0, vec![9u8; 2048]);
        cluster.crash_writer_at(SimTime::from_ticks(crash_delay), 0);
        cluster.run_to_quiescence();

        let tags: Vec<_> = (0..7).map(|rank| cluster.stored_tag(rank)).collect();
        let first = tags[0];
        assert!(
            tags.iter().all(|&t| t == first),
            "crash_delay={crash_delay}: servers diverge: {tags:?}"
        );
        // A subsequent read must still complete and return a decodable value.
        cluster.invoke_read(0);
        cluster.run_to_quiescence();
        let ops = cluster.completed_ops();
        let read = ops
            .iter()
            .find(|o| o.kind.is_read())
            .expect("read completes");
        if first.is_initial() {
            assert_eq!(read.value.as_deref(), Some(&[][..]));
        } else {
            assert_eq!(read.value.as_deref(), Some(&[9u8; 2048][..]));
        }
    }
}

#[test]
fn crashed_reader_is_eventually_unregistered_everywhere() {
    // Theorem 5.5: a reader that crashes after registering does not keep the
    // servers relaying forever — once k distinct servers have (provably) sent
    // elements for some tag, everyone unregisters it.
    let mut cluster = soda(5, 2)
        .with_seed(4)
        .with_network(NetworkConfig::uniform(8))
        .build_soda()
        .unwrap();
    // Establish a first version so the read has something to fetch.
    cluster.invoke_write(0, b"v1".to_vec());
    cluster.run_to_quiescence();
    // Start a read and kill the reader before it can possibly finish.
    let start = cluster.now() + 5;
    cluster.invoke_read_at(start, 0);
    cluster.crash_reader_at(start + 1, 0);
    cluster.run_to_quiescence();
    // The reader never sent READ-COMPLETE; a later write triggers relaying,
    // READ-DISPERSE bookkeeping, and finally unregistration at every server.
    cluster.invoke_write(0, b"v2".to_vec());
    cluster.run_to_quiescence();
    assert_eq!(
        cluster.total_registered_readers(),
        0,
        "crashed reader must be unregistered by every server"
    );
    assert_eq!(
        cluster.total_history_entries(),
        0,
        "history entries cleaned up"
    );
}

#[test]
fn relay_mechanism_is_required_for_liveness_under_concurrency() {
    // Ablation A1 as a test: with the relay mechanism the racing read
    // completes; with it disabled (and an adversarial but legal schedule) the
    // read never terminates even though the concurrent write does.
    let rows = relay_ablation(1024, 77);
    let with_relay = rows.iter().find(|r| r.relay_enabled).unwrap();
    let without_relay = rows.iter().find(|r| !r.relay_enabled).unwrap();
    assert!(with_relay.read_completed);
    assert!(with_relay.write_completed);
    assert!(!without_relay.read_completed);
    assert!(without_relay.write_completed);
}

#[test]
fn delta_w_accounting_matches_schedule_shape() {
    // A read scheduled in the middle of a burst of writes must report a
    // non-zero δw, and a read run in isolation must report zero.
    let mut cluster = soda(5, 2)
        .with_seed(11)
        .with_clients(2, 1)
        .with_network(NetworkConfig::uniform(10))
        .build()
        .unwrap();
    cluster.invoke_write_at(SimTime::from_ticks(0), 0, b"w0".to_vec());
    cluster.run_to_quiescence();

    // Isolated read.
    cluster.invoke_read(0);
    cluster.run_to_quiescence();

    // Read racing two writes.
    let start = cluster.now() + 10;
    cluster.invoke_read_at(start, 0);
    cluster.invoke_write_at(start, 0, b"w1".to_vec());
    cluster.invoke_write_at(start, 1, b"w2".to_vec());
    cluster.run_to_quiescence();

    let history = cluster.history(&[]);
    let read_deltas: Vec<usize> = history
        .ops()
        .iter()
        .filter(|o| o.kind == Kind::Read)
        .map(|o| history.concurrent_writes(o.id))
        .collect();
    assert_eq!(read_deltas.len(), 2);
    assert_eq!(read_deltas[0], 0, "isolated read has no concurrent writes");
    assert!(read_deltas[1] >= 1, "racing read must observe concurrency");
    history.check_atomicity().expect("history atomic");
}

#[test]
fn baseline_clusters_also_survive_client_crashes() {
    // The facade's crash injection works uniformly: a crashed ABD / CAS
    // writer never blocks the remaining clients.
    for kind in [ProtocolKind::Abd, ProtocolKind::Casgc { gc: 1 }] {
        let mut cluster = ClusterBuilder::new(kind, 5, 2)
            .with_seed(13)
            .with_clients(2, 1)
            .build()
            .unwrap();
        cluster.invoke_write_at(SimTime::from_ticks(0), 0, b"doomed".to_vec());
        cluster.crash_writer_at(SimTime::from_ticks(6), 0);
        cluster.invoke_write_at(SimTime::from_ticks(150), 1, b"alive".to_vec());
        cluster.invoke_read_at(SimTime::from_ticks(400), 0);
        let outcome = cluster.run_to_quiescence();
        assert!(!outcome.hit_event_cap, "{}", kind.name());
        let read = cluster
            .completed_ops()
            .into_iter()
            .find(|o| o.kind.is_read())
            .unwrap_or_else(|| panic!("{}: read completes", kind.name()));
        assert_eq!(
            read.value.as_deref(),
            Some(b"alive".as_slice()),
            "{}",
            kind.name()
        );
    }
}
