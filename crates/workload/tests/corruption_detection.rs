//! SODAerr corruption-budget regression tests: corruption *within* the error
//! budget `e` is transparently corrected, and corruption *strictly beyond*
//! the budget is **detected** (the read fails to complete and the decoder
//! flags the error) rather than silently returning a wrong value. Both the
//! disk-level threat model (`with_faulty_disks`) and the stronger in-flight
//! byzantine model (`with_byzantine_servers`) are covered.

use soda_registry::{ClusterBuilder, OpKind, ProtocolKind, RegisterCluster, SodaRegisterCluster};

const N: usize = 7;
const F: usize = 2;
const E: usize = 1; // k = n - f - 2e = 3, read threshold k + 2e = 5

fn sodaerr() -> ClusterBuilder {
    ClusterBuilder::new(ProtocolKind::SodaErr { e: E }, N, F)
}

fn write_then_read(mut cluster: SodaRegisterCluster) -> SodaRegisterCluster {
    cluster.invoke_write(0, b"the protected object value".to_vec());
    cluster.run_to_quiescence();
    cluster.invoke_read(0);
    let outcome = cluster.run_to_quiescence();
    assert!(!outcome.hit_event_cap);
    cluster
}

/// Reads completed by the cluster, as `(value)` payloads.
fn completed_read_values(cluster: &SodaRegisterCluster) -> Vec<Vec<u8>> {
    cluster
        .completed_ops()
        .into_iter()
        .filter(|op| op.kind == OpKind::Read)
        .map(|op| op.value.unwrap_or_default())
        .collect()
}

#[test]
fn in_budget_byzantine_corruption_is_transparently_corrected() {
    for seed in 0..5u64 {
        let cluster = write_then_read(
            sodaerr()
                .with_seed(seed)
                .with_byzantine_servers(vec![2])
                .build_soda()
                .unwrap(),
        );
        let reads = completed_read_values(&cluster);
        assert_eq!(reads.len(), 1, "seed {seed}: the read must complete");
        assert_eq!(
            reads[0], b"the protected object value",
            "seed {seed}: corrected value"
        );
        assert!(
            cluster.history(&[]).check_atomicity().is_ok(),
            "seed {seed}"
        );
    }
}

#[test]
fn byzantine_corruption_beyond_e_is_detected_not_silently_wrong() {
    // Two byzantine servers with e = 1: every batch of gathered elements
    // contains up to 2 corrupted ones, beyond what the [n, k] code can
    // correct. The decoder must flag this (decode failures accumulate and
    // the read never completes with a bogus value).
    for seed in 0..5u64 {
        let cluster = write_then_read(
            sodaerr()
                .with_seed(seed)
                .with_byzantine_servers(vec![2, 5])
                .build_soda()
                .unwrap(),
        );
        let reads = completed_read_values(&cluster);
        for value in &reads {
            assert_eq!(
                value.as_slice(),
                b"the protected object value",
                "seed {seed}: a read that completes despite over-budget \
                 corruption must still be correct, never silently wrong"
            );
        }
        assert!(
            !reads.is_empty() || cluster.decode_failures() > 0,
            "seed {seed}: an unfinished read must come with flagged decode \
             failures, not silence"
        );
        if reads.is_empty() {
            // The common outcome: every decode attempt saw 2 errors with
            // budget 1 and was rejected.
            assert!(cluster.decode_failures() > 0, "seed {seed}");
        }
    }
}

#[test]
fn disk_corruption_beyond_e_is_detected_too() {
    // Same property through the original disk-fault threat model.
    for seed in 0..5u64 {
        let cluster = write_then_read(
            sodaerr()
                .with_seed(seed)
                .with_faulty_disks(vec![0, 3])
                .build_soda()
                .unwrap(),
        );
        for value in completed_read_values(&cluster) {
            assert_eq!(
                value.as_slice(),
                b"the protected object value",
                "seed {seed}: no silent wrong value"
            );
        }
    }
}

#[test]
fn over_budget_corruption_never_contaminates_the_stored_state() {
    // Corruption is a read-path phenomenon: even with every element in
    // flight corrupted beyond the budget, the servers' stored tags and a
    // subsequent clean cluster view of the write remain intact (writes
    // travel through MdValue, which byzantine element corruption never
    // touches — corrupting dispersals would model a stronger adversary than
    // the paper's).
    let mut cluster = sodaerr()
        .with_seed(9)
        .with_byzantine_servers(vec![1, 4])
        .build_soda()
        .unwrap();
    cluster.invoke_write(0, b"dispersal stays clean".to_vec());
    cluster.run_to_quiescence();
    let tag = cluster.stored_tag(0);
    for rank in 1..N {
        assert_eq!(cluster.stored_tag(rank), tag, "uniform stored tag");
    }
    assert!(cluster.history(&[]).check_atomicity().is_ok());
}
