//! Store-level exploration integration tests: a 4-shard mixed-protocol
//! [`soda_store::ShardedStore`] must stay per-key atomic across seeded
//! adversarial schedules (network faults plus in-tolerance shard crashes).
//!
//! The tier-1 pass keeps the schedule count small; the `store_fuzz_smoke`
//! test is `#[ignore]`d and run by the nightly CI job with a larger budget:
//!
//! ```text
//! EXPLORE_SCHEDULES=50 cargo test --release -p soda-workload \
//!     --test store_exploration -- --ignored --nocapture
//! ```

use soda_store::StoreRuntime;
use soda_workload::store_explore::{
    explore_store, generate_store_scenario, run_store_scenario, StoreExploreConfig,
};

fn schedules_from_env(default: usize) -> usize {
    std::env::var("EXPLORE_SCHEDULES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[test]
fn mixed_four_shard_store_survives_adversarial_schedules() {
    let cfg = StoreExploreConfig::mixed(4);
    let report = explore_store(&cfg, 0, 6);
    for cex in &report.counterexamples {
        eprintln!("{cex}");
    }
    assert!(
        report.all_atomic(),
        "{} store-level counterexamples (first: {})",
        report.counterexamples.len(),
        report.counterexamples[0]
    );
    assert_eq!(report.event_cap_hits, 0);
    assert!(
        report.completed_ops > 0,
        "adversary starved every ticket — the campaign is vacuous"
    );
}

#[test]
fn store_campaigns_are_deterministic_per_seed_range() {
    let cfg = StoreExploreConfig::mixed(4);
    let digest = |report: &soda_workload::store_explore::StoreExplorationReport| {
        (
            report.schedules,
            report.completed_ops,
            report.pending_tickets,
            report.event_cap_hits,
            report.counterexamples.len(),
        )
    };
    let a = explore_store(&cfg, 7, 3);
    let b = explore_store(&cfg, 7, 3);
    assert_eq!(
        digest(&a),
        digest(&b),
        "same seeds must reproduce the same campaign"
    );
}

#[test]
fn work_stealing_campaigns_match_the_simulation_digest() {
    // The runtime knob must not change *what* gets explored — only how the
    // shard work is scheduled. The explicit worker count exercises the pool
    // even on single-core hosts.
    let serial = StoreExploreConfig::mixed(4);
    let pooled = StoreExploreConfig {
        runtime: StoreRuntime::WorkStealing { workers: 3 },
        ..StoreExploreConfig::mixed(4)
    };
    let digest = |report: &soda_workload::store_explore::StoreExplorationReport| {
        (
            report.schedules,
            report.completed_ops,
            report.pending_tickets,
            report.event_cap_hits,
            report.counterexamples.len(),
        )
    };
    let a = explore_store(&serial, 21, 3);
    let b = explore_store(&pooled, 21, 3);
    assert_eq!(
        digest(&a),
        digest(&b),
        "the work-stealing runtime must reproduce the simulation campaign"
    );
    assert!(a.all_atomic());
}

#[test]
fn store_scenarios_replay_from_their_seed() {
    let cfg = StoreExploreConfig::mixed(4);
    let scenario = generate_store_scenario(&cfg, 3);
    assert_eq!(scenario, generate_store_scenario(&cfg, 3));
    let a = run_store_scenario(&cfg, &scenario);
    let b = run_store_scenario(&cfg, &scenario);
    assert_eq!(a.completed_ops, b.completed_ops);
    assert_eq!(a.pending_tickets, b.pending_tickets);
    assert_eq!(a.violation.is_some(), b.violation.is_some());
}

#[test]
fn partitioned_store_schedules_stay_atomic_and_live() {
    let cfg = StoreExploreConfig {
        shard_crash_p: 0.5,
        repair_p: 1.0,
        ..StoreExploreConfig::mixed(4).with_partitions(0.7, 800)
    };
    let report = explore_store(&cfg, 0, 4);
    assert!(report.all_atomic(), "{}", report.counterexamples[0]);
    assert!(report.all_live(), "{}", report.liveness_counterexamples[0]);
    assert_eq!(report.event_cap_hits, 0);
    assert!(report.completed_ops > 0);
}

/// The partition-focused store fuzz-smoke CI runs nightly: every shard
/// samples partition/heal windows on top of the full adversary, with crashes
/// and repairs on, so schedules are dense in the store-level
/// crash → partition → heal → repair chains. Asserts **zero per-key
/// atomicity and zero liveness** violations. Ignored in tier-1; scale with
/// `EXPLORE_SCHEDULES`.
#[test]
#[ignore = "nightly fuzz-smoke budget; run with --ignored (EXPLORE_SCHEDULES to scale)"]
fn store_partition_fuzz_smoke() {
    let schedules = schedules_from_env(25);
    let seed_start = 13_000u64;
    let cfg = StoreExploreConfig {
        shard_crash_p: 0.75,
        repair_p: 1.0,
        ..StoreExploreConfig::mixed(4).with_partitions(1.0, 1200)
    };
    let (mut with_windows, mut with_chains) = (0usize, 0usize);
    for seed in seed_start..seed_start + schedules as u64 {
        let scenario = generate_store_scenario(&cfg, seed);
        with_windows += usize::from(!scenario.shard_partitions.is_empty());
        // A chain: some crashed-then-repaired shard also carries a window.
        with_chains += usize::from(
            scenario
                .shard_partitions
                .iter()
                .any(|w| scenario.shard_repairs.iter().any(|&(_, s, _)| s == w.shard)),
        );
    }
    assert!(
        with_windows * 2 >= schedules,
        "only {with_windows}/{schedules} store schedules contain windows"
    );
    assert!(
        with_chains > 0,
        "no crash → partition → heal → repair chain in {schedules} store schedules"
    );
    let report = explore_store(&cfg, seed_start, schedules);
    for cex in &report.counterexamples {
        eprintln!("{cex}");
    }
    for cex in &report.liveness_counterexamples {
        eprintln!("{cex}");
    }
    assert!(
        report.all_atomic(),
        "{} store-level atomicity counterexamples over {} partitioned schedules",
        report.counterexamples.len(),
        schedules
    );
    assert!(
        report.all_live(),
        "{} store-level liveness counterexamples over {} partitioned schedules",
        report.liveness_counterexamples.len(),
        schedules
    );
    assert_eq!(report.event_cap_hits, 0);
    assert!(report.completed_ops > 0);
    eprintln!(
        "store-partition: {} schedules ({} with windows, {} chains), {} tickets, \
         all per-key atomic, all live",
        report.schedules, with_windows, with_chains, report.completed_ops
    );
}

/// The repair-focused store fuzz-smoke CI runs nightly: every shard crash is
/// repaired at a later phase boundary and half the repairs are followed by a
/// crash of a different rank, so schedules are dense in the
/// crash → repair → crash chains that exercise the dynamic shard budget.
/// Ignored in tier-1; scale with `EXPLORE_SCHEDULES`.
#[test]
#[ignore = "nightly fuzz-smoke budget; run with --ignored (EXPLORE_SCHEDULES to scale)"]
fn store_repair_fuzz_smoke() {
    let schedules = schedules_from_env(25);
    let seed_start = 9_000u64;
    let cfg = StoreExploreConfig {
        shard_crash_p: 0.75,
        repair_p: 1.0,
        ..StoreExploreConfig::mixed(4)
    };
    let (mut with_repairs, mut with_follow_up) = (0usize, 0usize);
    for seed in seed_start..seed_start + schedules as u64 {
        let scenario = generate_store_scenario(&cfg, seed);
        with_repairs += usize::from(!scenario.shard_repairs.is_empty());
        with_follow_up += usize::from(!scenario.follow_up_crashes.is_empty());
    }
    assert!(
        with_repairs * 2 >= schedules,
        "only {with_repairs}/{schedules} store schedules contain repairs"
    );
    assert!(
        with_follow_up > 0,
        "no crash → repair → crash chain in {schedules} store schedules"
    );
    let report = explore_store(&cfg, seed_start, schedules);
    for cex in &report.counterexamples {
        eprintln!("{cex}");
    }
    assert!(
        report.all_atomic(),
        "{} store-level counterexamples over {} repair schedules",
        report.counterexamples.len(),
        schedules
    );
    assert_eq!(report.event_cap_hits, 0);
    assert!(report.completed_ops > 0);
    eprintln!(
        "store-repair: {} schedules ({} with repairs, {} follow-up crashes), {} tickets, all per-key atomic",
        report.schedules, with_repairs, with_follow_up, report.completed_ops
    );
}

/// The work-stealing store fuzz-smoke CI runs nightly: the full mixed-fleet
/// campaign (crashes, repairs, partition windows, the standard adversary)
/// driven entirely under [`StoreRuntime::WorkStealing`], so the pool's
/// cluster-granular scheduling soaks against the same schedule space the
/// serial smokes cover — and the campaign digest must match a serial rerun
/// bit for bit. Ignored in tier-1; scale with `EXPLORE_SCHEDULES`.
#[test]
#[ignore = "nightly fuzz-smoke budget; run with --ignored (EXPLORE_SCHEDULES to scale)"]
fn store_workstealing_fuzz_smoke() {
    let schedules = schedules_from_env(25);
    let seed_start = 17_000u64;
    let pooled = StoreExploreConfig {
        shard_crash_p: 0.5,
        repair_p: 1.0,
        runtime: StoreRuntime::WorkStealing { workers: 4 },
        ..StoreExploreConfig::mixed(4).with_partitions(0.5, 1000)
    };
    let report = explore_store(&pooled, seed_start, schedules);
    for cex in &report.counterexamples {
        eprintln!("{cex}");
    }
    for cex in &report.liveness_counterexamples {
        eprintln!("{cex}");
    }
    assert!(
        report.all_atomic(),
        "{} store-level counterexamples over {} work-stealing schedules",
        report.counterexamples.len(),
        schedules
    );
    assert!(
        report.all_live(),
        "{} store-level liveness counterexamples over {} work-stealing schedules",
        report.liveness_counterexamples.len(),
        schedules
    );
    assert_eq!(report.event_cap_hits, 0);
    assert!(report.completed_ops > 0);

    // Conformance soak: the pooled campaign must be indistinguishable from
    // the serial one over the same seeds.
    let serial = StoreExploreConfig {
        runtime: StoreRuntime::Simulation,
        ..pooled.clone()
    };
    let serial_report = explore_store(&serial, seed_start, schedules);
    assert_eq!(report.completed_ops, serial_report.completed_ops);
    assert_eq!(report.pending_tickets, serial_report.pending_tickets);
    assert_eq!(
        report.counterexamples.len(),
        serial_report.counterexamples.len()
    );
    eprintln!(
        "store-workstealing: {} schedules, {} tickets, all per-key atomic, \
         digest matches the serial rerun",
        report.schedules, report.completed_ops
    );
}

/// The capped store fuzz-smoke pass CI runs nightly. Ignored in tier-1 to
/// keep `cargo test -q` fast.
#[test]
#[ignore = "nightly fuzz-smoke budget; run with --ignored (EXPLORE_SCHEDULES to scale)"]
fn store_fuzz_smoke() {
    let schedules = schedules_from_env(25);
    let cfg = StoreExploreConfig::mixed(4);
    let report = explore_store(&cfg, 1_000, schedules);
    for cex in &report.counterexamples {
        eprintln!("{cex}");
    }
    assert!(
        report.all_atomic(),
        "{} store-level counterexamples over {} schedules",
        report.counterexamples.len(),
        schedules
    );
    assert_eq!(report.event_cap_hits, 0);
    assert!(report.completed_ops > 0);
    eprintln!(
        "store: {} schedules, {} tickets settled, {} pending, all per-key atomic",
        report.schedules, report.completed_ops, report.pending_tickets
    );
}
