//! SODAerr stress tests: concurrent workloads where up to `e` servers serve
//! corrupted coded elements from their local disks on every read, combined
//! with server crashes. Every read must still return a value some write
//! actually produced, every history must be atomic, and the system must
//! quiesce and clean up its bookkeeping.

use soda::harness::{ClusterConfig, SodaCluster};
use soda_consistency::Kind;
use soda_simnet::{NetworkConfig, SimTime};
use soda_workload::convert::history_from_soda;

fn run_stress(seed: u64, n: usize, f: usize, e: usize, faulty: Vec<usize>, crash: Vec<usize>) {
    let mut cluster = SodaCluster::build(
        ClusterConfig::new(n, f)
            .with_seed(seed)
            .with_clients(2, 2)
            .with_error_tolerance(e)
            .with_faulty_disks(faulty.clone())
            .with_network(NetworkConfig::uniform(9)),
    );
    for (i, rank) in crash.iter().enumerate() {
        cluster.crash_server_at(SimTime::from_ticks(30 + 20 * i as u64), *rank);
    }
    let writers = cluster.writers().to_vec();
    let readers = cluster.readers().to_vec();
    for round in 0..4u64 {
        for (i, &w) in writers.iter().enumerate() {
            cluster.invoke_write_at(
                SimTime::from_ticks(round * 45 + 3 * i as u64),
                w,
                format!("payload-{seed}-{round}-{i}").into_bytes(),
            );
        }
        for (i, &r) in readers.iter().enumerate() {
            cluster.invoke_read_at(SimTime::from_ticks(round * 45 + 12 + 7 * i as u64), r);
        }
    }
    let outcome = cluster.run_to_quiescence();
    assert!(!outcome.hit_event_cap, "seed {seed}: must quiesce");

    let ops = cluster.completed_ops();
    let expected_ops = writers.len() * 4 + readers.len() * 4;
    assert_eq!(ops.len(), expected_ops, "seed {seed}: all operations complete");

    let history = history_from_soda(&[], &ops);
    history
        .check_atomicity()
        .unwrap_or_else(|v| panic!("seed {seed}: atomicity violated: {v}"));

    // No read may ever observe corrupted bytes: every non-initial value read
    // must be exactly one of the written payloads.
    for op in history.ops() {
        if op.kind == Kind::Read && !op.value.is_empty() {
            assert!(
                op.value.starts_with(b"payload-"),
                "seed {seed}: read returned corrupted data {:?}",
                String::from_utf8_lossy(&op.value)
            );
        }
    }

    // No *non-faulty* server keeps a reader registered (crashed servers may
    // die holding one), and no reader ever failed a decode.
    let live_registered: usize = (0..n)
        .filter(|rank| !crash.contains(rank))
        .map(|rank| cluster.server_state(rank).registered_readers())
        .sum();
    assert_eq!(live_registered, 0, "seed {seed}");
    for &r in &readers {
        assert_eq!(
            cluster.reader_state(r).decode_failures(),
            0,
            "seed {seed}: reader {r} had decode failures"
        );
    }
}

#[test]
fn sodaerr_with_one_bad_disk_across_seeds() {
    for seed in 0..8 {
        run_stress(seed, 7, 2, 1, vec![3], vec![]);
    }
}

#[test]
fn sodaerr_with_two_bad_disks_and_crashes() {
    // n = 11, f = 2, e = 2 → k = 5, read threshold 9. Crash 2 servers (the
    // budget) while 2 other servers serve corrupted elements.
    for seed in 0..5 {
        run_stress(100 + seed, 11, 2, 2, vec![0, 5], vec![8, 10]);
    }
}

#[test]
fn sodaerr_bad_disks_on_backbone_servers() {
    // The corrupted disks sit on the MD backbone (ranks 0 and 1), which also
    // relays the dispersal — relayed elements must stay clean (only local disk
    // reads are corrupted), so reads still succeed.
    for seed in 0..5 {
        run_stress(200 + seed, 9, 2, 2, vec![0, 1], vec![]);
    }
}

#[test]
fn plain_soda_is_unaffected_when_no_disk_is_faulty() {
    for seed in 0..5 {
        run_stress(300 + seed, 6, 2, 0, vec![], vec![4]);
    }
}
