//! SODAerr stress tests: concurrent workloads where up to `e` servers serve
//! corrupted coded elements from their local disks on every read, combined
//! with server crashes. Every read must still return a value some write
//! actually produced, every history must be atomic, and the system must
//! quiesce and clean up its bookkeeping. Clusters are built through the
//! `RegisterCluster` facade.

use soda_consistency::Kind;
use soda_registry::{ClusterBuilder, ProtocolKind, RegisterCluster};
use soda_simnet::{NetworkConfig, SimTime};

fn run_stress(seed: u64, n: usize, f: usize, e: usize, faulty: Vec<usize>, crash: Vec<usize>) {
    let kind = if e == 0 {
        ProtocolKind::Soda
    } else {
        ProtocolKind::SodaErr { e }
    };
    let mut cluster = ClusterBuilder::new(kind, n, f)
        .with_seed(seed)
        .with_clients(2, 2)
        .with_faulty_disks(faulty.clone())
        .with_network(NetworkConfig::uniform(9))
        .build_soda()
        .unwrap();
    for (i, rank) in crash.iter().enumerate() {
        cluster.crash_server_at(SimTime::from_ticks(30 + 20 * i as u64), *rank);
    }
    for round in 0..4u64 {
        for writer in 0..2usize {
            cluster.invoke_write_at(
                SimTime::from_ticks(round * 45 + 3 * writer as u64),
                writer,
                format!("payload-{seed}-{round}-{writer}").into_bytes(),
            );
        }
        for reader in 0..2usize {
            cluster.invoke_read_at(
                SimTime::from_ticks(round * 45 + 12 + 7 * reader as u64),
                reader,
            );
        }
    }
    let outcome = cluster.run_to_quiescence();
    assert!(!outcome.hit_event_cap, "seed {seed}: must quiesce");

    let ops = cluster.completed_ops();
    let expected_ops = 2 * 4 + 2 * 4;
    assert_eq!(
        ops.len(),
        expected_ops,
        "seed {seed}: all operations complete"
    );

    let history = cluster.history(&[]);
    history
        .check_atomicity()
        .unwrap_or_else(|v| panic!("seed {seed}: atomicity violated: {v}"));

    // No read may ever observe corrupted bytes: every non-initial value read
    // must be exactly one of the written payloads.
    for op in history.ops() {
        if op.kind == Kind::Read && !op.value.is_empty() {
            assert!(
                op.value.starts_with(b"payload-"),
                "seed {seed}: read returned corrupted data {:?}",
                String::from_utf8_lossy(&op.value)
            );
        }
    }

    // No *non-faulty* server keeps a reader registered (crashed servers may
    // die holding one), and no reader ever failed a decode.
    let live_registered: usize = (0..n)
        .filter(|rank| !crash.contains(rank))
        .map(|rank| cluster.registered_readers(rank))
        .sum();
    assert_eq!(live_registered, 0, "seed {seed}");
    assert_eq!(cluster.decode_failures(), 0, "seed {seed}: decode failures");
}

#[test]
fn sodaerr_with_one_bad_disk_across_seeds() {
    for seed in 0..8 {
        run_stress(seed, 7, 2, 1, vec![3], vec![]);
    }
}

#[test]
fn sodaerr_with_two_bad_disks_and_crashes() {
    // n = 11, f = 2, e = 2 → k = 5, read threshold 9. Crash 2 servers (the
    // budget) while 2 other servers serve corrupted elements.
    for seed in 0..5 {
        run_stress(100 + seed, 11, 2, 2, vec![0, 5], vec![8, 10]);
    }
}

#[test]
fn sodaerr_bad_disks_on_backbone_servers() {
    // The corrupted disks sit on the MD backbone (ranks 0 and 1), which also
    // relays the dispersal — relayed elements must stay clean (only local disk
    // reads are corrupted), so reads still succeed.
    for seed in 0..5 {
        run_stress(200 + seed, 9, 2, 2, vec![0, 1], vec![]);
    }
}

#[test]
fn plain_soda_is_unaffected_when_no_disk_is_faulty() {
    for seed in 0..5 {
        run_stress(300 + seed, 6, 2, 0, vec![], vec![4]);
    }
}
