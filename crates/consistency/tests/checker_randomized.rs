//! Randomized tests cross-validating the tag-based atomicity checker against
//! the brute-force linearizability search.
//!
//! The tag-based conditions (Lemma 2.1) are *sufficient* for atomicity, so any
//! history the fast checker accepts must also be accepted by the brute-force
//! checker. The converse need not hold (a history can be linearizable even if
//! the tags recorded by a buggy protocol are inconsistent), so only the
//! implication is asserted. (Formerly a proptest suite; now driven by the
//! deterministic `rand` shim.)

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use soda_consistency::{History, Kind, Version};

const CASES: usize = 512;

/// Builds a well-formed random history (per-client operations serialized).
/// Values are derived from versions for writes so that a "correct protocol"
/// shape is likely, but reads may carry arbitrary versions/values, exercising
/// both accepting and rejecting paths.
fn random_history(rng: &mut StdRng) -> History {
    let mut history = History::new(b"v0".to_vec());
    let num_ops = rng.gen_range(0usize..7);
    // Serialize each client's operations to keep the history well-formed.
    let mut next_free: std::collections::BTreeMap<u64, u64> = Default::default();
    for _ in 0..num_ops {
        let client = rng.gen_range(0u64..3);
        let is_read = rng.gen_bool(0.5);
        let start = rng.gen_range(0u64..50);
        let duration = rng.gen_range(1u64..20);
        let version_z = rng.gen_range(0u64..4);
        let version_w = rng.gen_range(0u64..3);
        let value_seed: u8 = rng.gen();

        let start = (*next_free.get(&client).unwrap_or(&0)).max(start);
        let end = start + duration;
        next_free.insert(client, end + 1);
        let version = Version::new(version_z, version_w);
        let value = if version_z == 0 {
            b"v0".to_vec()
        } else {
            vec![version_z as u8, version_w as u8, value_seed % 2]
        };
        history.push(
            client,
            if is_read { Kind::Read } else { Kind::Write },
            start,
            end,
            value,
            version,
        );
    }
    history
}

#[test]
fn tag_checker_acceptance_implies_linearizability() {
    let mut rng = StdRng::seed_from_u64(0xc0de);
    let mut accepted = 0usize;
    for _ in 0..CASES {
        let history = random_history(&mut rng);
        if history.check_well_formed().is_err() {
            continue;
        }
        if history.check_atomicity().is_ok() {
            accepted += 1;
            assert!(
                history.check_linearizable_brute_force(),
                "tag-based checker accepted a non-linearizable history: {history:?}"
            );
        }
    }
    assert!(
        accepted > 0,
        "the generator must produce some accepting histories"
    );
}

#[test]
fn checkers_never_panic_on_well_formed_histories() {
    let mut rng = StdRng::seed_from_u64(0xbeef);
    for _ in 0..CASES {
        let history = random_history(&mut rng);
        let _ = history.check_atomicity();
        if history.len() <= 8 {
            let _ = history.check_linearizable_brute_force();
        }
        for read in history.ops().iter().filter(|o| o.kind == Kind::Read) {
            let _ = history.concurrent_writes(read.id);
        }
    }
}
