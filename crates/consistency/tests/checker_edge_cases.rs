//! Checker edge cases surfaced by adversarial schedule exploration:
//! concurrent writes of *identical* values, reads overlapping a crashed (or
//! starved) writer modeled as a never-responding operation, and
//! hand-built non-atomic histories the checker must reject (soundness).

use soda_consistency::{History, Kind, Version, Violation};

fn v(z: u64, w: u64) -> Version {
    Version::new(z, w)
}

#[test]
fn concurrent_writes_with_identical_values_are_atomic() {
    // Two clients concurrently write the same bytes under distinct versions;
    // a read may return that value with either version.
    for version in [v(1, 1), v(1, 2)] {
        let mut h = History::new(Vec::new());
        h.push(1, Kind::Write, 0, 100, b"same".to_vec(), v(1, 1));
        h.push(2, Kind::Write, 0, 100, b"same".to_vec(), v(1, 2));
        h.push(3, Kind::Read, 40, 60, b"same".to_vec(), version);
        h.check_atomicity()
            .unwrap_or_else(|viol| panic!("version {version:?}: {viol}"));
        assert!(h.check_linearizable_brute_force());
    }
}

#[test]
fn identical_values_do_not_mask_duplicate_versions() {
    // Same bytes are fine; the same *version* on two distinct writes is not
    // (P2: the tag order must be total on writes).
    let mut h = History::new(Vec::new());
    h.push(1, Kind::Write, 0, 100, b"same".to_vec(), v(1, 1));
    h.push(2, Kind::Write, 0, 100, b"same".to_vec(), v(1, 1));
    assert!(matches!(
        h.check_atomicity(),
        Err(Violation::DuplicateWriteVersion { .. })
    ));
}

#[test]
fn identical_values_do_not_mask_stale_reads() {
    // w1 and w2 write the same bytes sequentially; a later read returning
    // the *first* version contradicts real time even though the bytes match.
    let mut h = History::new(Vec::new());
    h.push(1, Kind::Write, 0, 10, b"same".to_vec(), v(1, 1));
    h.push(1, Kind::Write, 20, 30, b"same".to_vec(), v(2, 1));
    h.push(2, Kind::Read, 40, 50, b"same".to_vec(), v(1, 1));
    assert!(matches!(
        h.check_atomicity(),
        Err(Violation::RealTimeOrderViolated { .. })
    ));
}

#[test]
fn read_overlapping_a_crashed_writer_may_return_its_value() {
    // The writer crashed (or was starved by the adversary) mid-operation:
    // its write is modeled with a response time of u64::MAX, the convention
    // `soda_registry::history_with_pending` uses for pending writes. A read
    // invoked after the write started may return the new value...
    let mut h = History::new(b"old".to_vec());
    h.push(1, Kind::Write, 10, u64::MAX, b"new".to_vec(), v(1, 1));
    h.push(2, Kind::Read, 20, 40, b"new".to_vec(), v(1, 1));
    h.check_atomicity()
        .expect("read of a pending write is atomic");

    // ...or the initial value: the pending write never responded, so it is
    // concurrent with every later operation and may linearize after it.
    let mut h = History::new(b"old".to_vec());
    h.push(1, Kind::Write, 10, u64::MAX, b"new".to_vec(), v(1, 1));
    h.push(2, Kind::Read, 20, 40, b"old".to_vec(), Version::INITIAL);
    h.check_atomicity()
        .expect("a pending write never constrains later reads");
}

#[test]
fn read_preceding_the_crashed_writers_invocation_cannot_see_its_value() {
    // Soundness: a read that *finished before the pending write was even
    // invoked* returning that write's value is causally impossible and must
    // be rejected.
    let mut h = History::new(b"old".to_vec());
    h.push(2, Kind::Read, 0, 5, b"new".to_vec(), v(1, 1));
    h.push(1, Kind::Write, 10, u64::MAX, b"new".to_vec(), v(1, 1));
    assert!(matches!(
        h.check_atomicity(),
        Err(Violation::RealTimeOrderViolated { .. })
    ));
}

#[test]
fn new_old_inversion_across_readers_is_rejected() {
    // The classic non-atomic (merely regular) history the exploration
    // harness is designed to hunt: r1 sees the new value, a strictly later
    // r2 sees the old one. A sound checker must reject it — this is the
    // shape the weakened-quorum ABD counterexamples take.
    let mut h = History::new(Vec::new());
    h.push(1, Kind::Write, 0, 50, b"old".to_vec(), v(1, 1));
    h.push(1, Kind::Write, 60, 200, b"new".to_vec(), v(2, 1));
    h.push(2, Kind::Read, 70, 90, b"new".to_vec(), v(2, 1));
    h.push(3, Kind::Read, 100, 120, b"old".to_vec(), v(1, 1));
    assert!(matches!(
        h.check_atomicity(),
        Err(Violation::RealTimeOrderViolated { .. })
    ));
    assert!(!h.check_linearizable_brute_force());
}

#[test]
fn checker_and_brute_force_agree_on_pending_write_histories() {
    // Cross-validate the tag-based checker against the explicit
    // linearization search on a small pending-write history.
    let mut h = History::new(Vec::new());
    h.push(1, Kind::Write, 0, 10, b"a".to_vec(), v(1, 1));
    h.push(2, Kind::Write, 20, u64::MAX, b"b".to_vec(), v(2, 2));
    h.push(3, Kind::Read, 30, 40, b"b".to_vec(), v(2, 2));
    h.push(3, Kind::Read, 50, 60, b"b".to_vec(), v(2, 2));
    assert!(h.check_atomicity().is_ok());
    assert!(h.check_linearizable_brute_force());

    // Once a read returned "b", a later read returning "a" is an inversion.
    h.push(4, Kind::Read, 70, 80, b"a".to_vec(), v(1, 1));
    assert!(h.check_atomicity().is_err());
    assert!(!h.check_linearizable_brute_force());
}
