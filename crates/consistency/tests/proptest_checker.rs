//! Property tests cross-validating the tag-based atomicity checker against
//! the brute-force linearizability search.
//!
//! The tag-based conditions (Lemma 2.1) are *sufficient* for atomicity, so any
//! history the fast checker accepts must also be accepted by the brute-force
//! checker. The converse need not hold (a history can be linearizable even if
//! the tags recorded by a buggy protocol are inconsistent), so only the
//! implication is asserted.

use proptest::prelude::*;
use soda_consistency::{History, Kind, Version};

#[derive(Debug, Clone)]
struct GenOp {
    client: u64,
    is_read: bool,
    start: u64,
    duration: u64,
    version_z: u64,
    version_w: u64,
    value_seed: u8,
}

fn gen_ops() -> impl Strategy<Value = Vec<GenOp>> {
    proptest::collection::vec(
        (
            0u64..3,
            any::<bool>(),
            0u64..50,
            1u64..20,
            0u64..4,
            0u64..3,
            any::<u8>(),
        )
            .prop_map(
                |(client, is_read, start, duration, version_z, version_w, value_seed)| GenOp {
                    client,
                    is_read,
                    start,
                    duration,
                    version_z,
                    version_w,
                    value_seed,
                },
            ),
        0..7,
    )
}

/// Builds a well-formed history (per-client operations serialized) from the
/// raw generated descriptions. Values are derived from versions for writes so
/// that a "correct protocol" shape is likely, but reads may carry arbitrary
/// versions/values, exercising both accepting and rejecting paths.
fn build_history(ops: Vec<GenOp>) -> History {
    let mut history = History::new(b"v0".to_vec());
    // Serialize each client's operations to keep the history well-formed.
    let mut next_free: std::collections::BTreeMap<u64, u64> = Default::default();
    for op in ops {
        let start = (*next_free.get(&op.client).unwrap_or(&0)).max(op.start);
        let end = start + op.duration;
        next_free.insert(op.client, end + 1);
        let version = Version::new(op.version_z, op.version_w);
        let value = if op.version_z == 0 {
            b"v0".to_vec()
        } else {
            vec![op.version_z as u8, op.version_w as u8, op.value_seed % 2]
        };
        history.push(
            op.client,
            if op.is_read { Kind::Read } else { Kind::Write },
            start,
            end,
            value,
            version,
        );
    }
    history
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn tag_checker_acceptance_implies_linearizability(ops in gen_ops()) {
        let history = build_history(ops);
        prop_assume!(history.check_well_formed().is_ok());
        if history.check_atomicity().is_ok() {
            prop_assert!(
                history.check_linearizable_brute_force(),
                "tag-based checker accepted a non-linearizable history: {history:?}"
            );
        }
    }

    #[test]
    fn checkers_never_panic_on_well_formed_histories(ops in gen_ops()) {
        let history = build_history(ops);
        let _ = history.check_atomicity();
        if history.len() <= 8 {
            let _ = history.check_linearizable_brute_force();
        }
        for read in history.ops().iter().filter(|o| o.kind == Kind::Read) {
            let _ = history.concurrent_writes(read.id);
        }
    }
}
