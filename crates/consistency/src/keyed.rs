//! Per-key history projection for multi-object stores.
//!
//! Atomic registers compose: a key-value store built from one register per
//! key is atomic iff every per-key history is atomic (each operation touches
//! exactly one register, so the per-key serializations interleave freely).
//! This module gives the store layer the checker-side counterpart of that
//! argument: a [`KeyedHistory`] collects operations labeled with the key they
//! touched, [`KeyedHistory::project`] extracts one key's [`History`], and
//! [`KeyedHistory::check_each_key`] runs the tag-based atomicity checker over
//! every projection independently.
//!
//! Timestamps are only compared *within* a projection, so operations on
//! different keys may carry clocks from different simulations (the sharded
//! store runs one deterministic simulation per register).

use crate::checker::Violation;
use crate::history::{History, Kind, Version};

/// One completed (or pending-closed) operation labeled with the key it
/// touched.
///
/// Derives `Eq` so whole histories can be compared field-for-field — the
/// store's runtime-conformance tests assert that its serial, threaded and
/// work-stealing backends produce **bit-identical** per-key histories.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyedOp {
    /// The key the operation addressed.
    pub key: Vec<u8>,
    /// Store-wide unique client identifier. Callers composing histories from
    /// several simulations must namespace per-simulation process ids into
    /// this field themselves.
    pub client: u64,
    /// Read or write.
    pub kind: Kind,
    /// Invocation time (comparable only to other ops on the same key).
    pub invoked: u64,
    /// Response time (`u64::MAX` for writes closed under pending).
    pub responded: u64,
    /// The value written or returned.
    pub value: Vec<u8>,
    /// The version the protocol associated with the operation.
    pub version: Version,
}

/// A multi-key operation history, projectable to per-key [`History`] values.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KeyedHistory {
    initial_value: Vec<u8>,
    ops: Vec<KeyedOp>,
}

impl KeyedHistory {
    /// Creates an empty keyed history. `initial_value` is the initial value
    /// of *every* key's register (stores built on fresh registers use the
    /// empty value).
    pub fn new(initial_value: Vec<u8>) -> Self {
        KeyedHistory {
            initial_value,
            ops: Vec::new(),
        }
    }

    /// Adds one labeled operation.
    pub fn push(&mut self, op: KeyedOp) {
        self.ops.push(op);
    }

    /// All labeled operations, in insertion order.
    pub fn ops(&self) -> &[KeyedOp] {
        &self.ops
    }

    /// Number of labeled operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no operation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The distinct keys observed, in first-appearance order.
    pub fn keys(&self) -> Vec<Vec<u8>> {
        let mut keys: Vec<Vec<u8>> = Vec::new();
        for op in &self.ops {
            if !keys.iter().any(|k| k == &op.key) {
                keys.push(op.key.clone());
            }
        }
        keys
    }

    /// Projects the history onto one key: the single-register history of
    /// exactly the operations that addressed `key`.
    pub fn project(&self, key: &[u8]) -> History {
        let mut history = History::new(self.initial_value.clone());
        for op in self.ops.iter().filter(|op| op.key == key) {
            history.push(
                op.client,
                op.kind,
                op.invoked,
                op.responded,
                op.value.clone(),
                op.version,
            );
        }
        history
    }

    /// Checks every key's projected history for atomicity, returning the
    /// first offending key and its violation.
    pub fn check_each_key(&self) -> Result<(), KeyViolation> {
        for key in self.keys() {
            if let Err(violation) = self.project(&key).check_atomicity() {
                return Err(KeyViolation { key, violation });
            }
        }
        Ok(())
    }
}

/// A per-key atomicity violation: which key failed, and how.
#[derive(Clone, Debug)]
pub struct KeyViolation {
    /// The offending key.
    pub key: Vec<u8>,
    /// The violation the single-register checker reported for the key's
    /// projection.
    pub violation: Violation,
}

impl std::fmt::Display for KeyViolation {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            out,
            "key {}: {}",
            String::from_utf8_lossy(&self.key),
            self.violation
        )
    }
}

impl std::error::Error for KeyViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(key: &[u8], client: u64, kind: Kind, t: (u64, u64), v: &[u8], ver: Version) -> KeyedOp {
        KeyedOp {
            key: key.to_vec(),
            client,
            kind,
            invoked: t.0,
            responded: t.1,
            value: v.to_vec(),
            version: ver,
        }
    }

    #[test]
    fn projection_separates_keys() {
        let mut h = KeyedHistory::new(Vec::new());
        h.push(op(b"a", 1, Kind::Write, (0, 10), b"x", Version::new(1, 1)));
        h.push(op(b"b", 2, Kind::Write, (0, 10), b"y", Version::new(1, 2)));
        h.push(op(b"a", 3, Kind::Read, (12, 20), b"x", Version::new(1, 1)));
        assert_eq!(h.len(), 3);
        assert_eq!(h.keys(), vec![b"a".to_vec(), b"b".to_vec()]);
        assert_eq!(h.project(b"a").len(), 2);
        assert_eq!(h.project(b"b").len(), 1);
        assert!(h.project(b"missing").is_empty());
        assert!(h.check_each_key().is_ok());
    }

    #[test]
    fn per_key_check_catches_the_offending_key_only() {
        let mut h = KeyedHistory::new(Vec::new());
        // Key "good" is atomic.
        h.push(op(
            b"good",
            1,
            Kind::Write,
            (0, 10),
            b"x",
            Version::new(1, 1),
        ));
        h.push(op(
            b"good",
            2,
            Kind::Read,
            (12, 20),
            b"x",
            Version::new(1, 1),
        ));
        // Key "bad": a read strictly after a write returns the older version.
        h.push(op(
            b"bad",
            3,
            Kind::Write,
            (0, 10),
            b"new",
            Version::new(1, 3),
        ));
        h.push(op(b"bad", 4, Kind::Read, (12, 20), b"", Version::INITIAL));
        let err = h.check_each_key().unwrap_err();
        assert_eq!(err.key, b"bad".to_vec());
        assert!(err.to_string().contains("bad"), "{err}");
    }

    #[test]
    fn clocks_do_not_leak_across_keys() {
        // Two keys with wildly different clock bases (as produced by
        // independent simulations) both check out, because projections never
        // compare timestamps across keys.
        let mut h = KeyedHistory::new(Vec::new());
        h.push(op(b"a", 1, Kind::Write, (0, 5), b"x", Version::new(1, 1)));
        h.push(op(b"a", 2, Kind::Read, (6, 9), b"x", Version::new(1, 1)));
        h.push(op(
            b"b",
            3,
            Kind::Write,
            (1_000_000, 1_000_010),
            b"y",
            Version::new(1, 3),
        ));
        h.push(op(
            b"b",
            4,
            Kind::Read,
            (1_000_020, 1_000_030),
            b"y",
            Version::new(1, 3),
        ));
        assert!(h.check_each_key().is_ok());
    }
}
