//! Operation histories.

/// A protocol-independent version identifier: `(z, writer)` pairs exactly like
/// the paper's tags, but without depending on the protocol crates.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Version {
    /// Version number.
    pub z: u64,
    /// Tie-breaking writer identifier.
    pub writer: u64,
}

impl Version {
    /// The initial version `t0`.
    pub const INITIAL: Version = Version { z: 0, writer: 0 };

    /// Creates a version.
    pub fn new(z: u64, writer: u64) -> Self {
        Version { z, writer }
    }
}

/// Identifier of an operation within a history.
pub type OpId = usize;

/// Read or write.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Kind {
    /// A write operation.
    Write,
    /// A read operation.
    Read,
}

/// One completed operation.
#[derive(Clone, Debug)]
pub struct Op {
    /// Identifier unique within the history.
    pub id: OpId,
    /// The client that performed the operation.
    pub client: u64,
    /// Read or write.
    pub kind: Kind,
    /// Invocation time.
    pub invoked: u64,
    /// Response time.
    pub responded: u64,
    /// The value written (for writes) or returned (for reads).
    pub value: Vec<u8>,
    /// The version (tag) the protocol associated with the operation.
    pub version: Version,
}

impl Op {
    /// Whether this operation finished strictly before `other` was invoked.
    pub fn precedes(&self, other: &Op) -> bool {
        self.responded < other.invoked
    }
}

/// A history of completed operations on a single register, plus the initial
/// value of that register.
#[derive(Clone, Debug, Default)]
pub struct History {
    initial_value: Vec<u8>,
    ops: Vec<Op>,
}

impl History {
    /// Creates an empty history with the given initial register value.
    pub fn new(initial_value: Vec<u8>) -> Self {
        History {
            initial_value,
            ops: Vec::new(),
        }
    }

    /// Adds a completed operation and returns its id.
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &mut self,
        client: u64,
        kind: Kind,
        invoked: u64,
        responded: u64,
        value: Vec<u8>,
        version: Version,
    ) -> OpId {
        let id = self.ops.len();
        self.ops.push(Op {
            id,
            client,
            kind,
            invoked,
            responded,
            value,
            version,
        });
        id
    }

    /// The operations, in insertion order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The register's initial value.
    pub fn initial_value(&self) -> &[u8] {
        &self.initial_value
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Checks well-formedness: each client's operations must not overlap
    /// (a client invokes a new operation only after the previous one
    /// responded). Returns the ids of the first offending pair if any.
    pub fn check_well_formed(&self) -> Result<(), (OpId, OpId)> {
        let mut by_client: std::collections::BTreeMap<u64, Vec<&Op>> = Default::default();
        for op in &self.ops {
            by_client.entry(op.client).or_default().push(op);
        }
        for ops in by_client.values_mut() {
            ops.sort_by_key(|op| op.invoked);
            for pair in ops.windows(2) {
                if pair[1].invoked < pair[0].responded {
                    return Err((pair[0].id, pair[1].id));
                }
            }
        }
        Ok(())
    }

    /// The number of write operations that are concurrent with the given read
    /// (neither precedes the other) — the per-read `δw` of Theorem 5.6.
    pub fn concurrent_writes(&self, read_id: OpId) -> usize {
        let read = &self.ops[read_id];
        self.ops
            .iter()
            .filter(|op| op.kind == Kind::Write)
            .filter(|w| !w.precedes(read) && !read.precedes(w))
            .count()
    }

    /// Checks the tag-based atomicity conditions P1/P2/P3 of Lemma 2.1 (the
    /// ordering the SODA proof uses). Returns the first violation found.
    pub fn check_atomicity(&self) -> Result<(), crate::Violation> {
        crate::checker::check_atomicity(self)
    }

    /// Brute-force linearizability check (exponential; use only for small
    /// histories). Ignores versions entirely and searches for an explicit
    /// serialization consistent with real time and the read values.
    pub fn check_linearizable_brute_force(&self) -> bool {
        crate::checker::check_linearizable(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_history() -> History {
        let mut h = History::new(b"init".to_vec());
        h.push(1, Kind::Write, 0, 10, b"a".to_vec(), Version::new(1, 1));
        h.push(2, Kind::Read, 12, 20, b"a".to_vec(), Version::new(1, 1));
        h
    }

    #[test]
    fn push_and_accessors() {
        let h = quick_history();
        assert_eq!(h.len(), 2);
        assert!(!h.is_empty());
        assert_eq!(h.initial_value(), b"init");
        assert_eq!(h.ops()[0].kind, Kind::Write);
        assert!(h.ops()[0].precedes(&h.ops()[1]));
        assert!(!h.ops()[1].precedes(&h.ops()[0]));
    }

    #[test]
    fn well_formedness_detects_overlapping_client_ops() {
        let mut h = History::new(Vec::new());
        h.push(1, Kind::Write, 0, 10, vec![1], Version::new(1, 1));
        h.push(1, Kind::Write, 5, 15, vec![2], Version::new(2, 1));
        assert_eq!(h.check_well_formed(), Err((0, 1)));

        let h = quick_history();
        assert!(h.check_well_formed().is_ok());
    }

    #[test]
    fn concurrent_write_count() {
        let mut h = History::new(Vec::new());
        let _w1 = h.push(1, Kind::Write, 0, 10, vec![1], Version::new(1, 1));
        let _w2 = h.push(2, Kind::Write, 15, 30, vec![2], Version::new(2, 2));
        let r = h.push(3, Kind::Read, 12, 25, vec![2], Version::new(2, 2));
        // w1 finished before the read started; w2 overlaps it.
        assert_eq!(h.concurrent_writes(r), 1);
    }

    #[test]
    fn versions_order_like_tags() {
        assert!(Version::new(2, 1) > Version::new(1, 9));
        assert!(Version::new(1, 2) > Version::new(1, 1));
        assert_eq!(Version::INITIAL, Version::new(0, 0));
    }
}
