//! Atomicity (linearizability) checking for MWMR register histories.
//!
//! The paper proves atomicity of SODA via the sufficient condition of
//! Lemma 2.1 (Lynch, *Distributed Algorithms*, Lemma 13.16): if all invoked
//! operations complete, and the operations can be partially ordered by `≺`
//! such that
//!
//! * **P1** `≺` never contradicts the real-time order (if `π1` completes
//!   before `π2` is invoked, then not `π2 ≺ π1`),
//! * **P2** all operations are totally ordered with respect to writes,
//! * **P3** every read returns the value of the last write preceding it (or
//!   the initial value if there is none),
//!
//! then the history is atomic. SODA's proof instantiates `≺` using the tags
//! the protocol itself assigns to operations; this crate machine-checks that
//! instantiation for every execution the test-suite and the experiment
//! harness generate ([`History::check_atomicity`]).
//!
//! Because the tag-based argument is only a *sufficient* condition, the crate
//! also contains a brute-force linearizability checker
//! ([`History::check_linearizable_brute_force`]) that searches for an explicit
//! serialization. It is exponential and only usable on small histories, but it
//! validates the fast checker in property tests and lets the test-suite reason
//! about histories that carry no tags at all.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod checker;
mod history;
mod keyed;

pub use checker::{check_linearizable, Violation};
pub use history::{History, Kind, Op, OpId, Version};
pub use keyed::{KeyViolation, KeyedHistory, KeyedOp};
