//! The atomicity and linearizability checkers.

use crate::history::{History, Kind, Op, OpId, Version};
use std::fmt;

/// A violation of the atomicity conditions of Lemma 2.1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// The history is not well formed: a client overlapped two of its own
    /// operations.
    NotWellFormed {
        /// The earlier operation.
        first: OpId,
        /// The overlapping later operation.
        second: OpId,
    },
    /// P1 violated: `earlier` completed before `later` was invoked, but the
    /// tag order puts `later` strictly before `earlier`.
    RealTimeOrderViolated {
        /// The operation that finished first.
        earlier: OpId,
        /// The operation that started later but is ordered before `earlier`.
        later: OpId,
    },
    /// P2 violated: two distinct writes carry the same version.
    DuplicateWriteVersion {
        /// First write.
        first: OpId,
        /// Second write with the same version.
        second: OpId,
    },
    /// P3 violated: a read returned a value inconsistent with the write whose
    /// version it carries (or with the initial value).
    WrongReadValue {
        /// The offending read.
        read: OpId,
    },
    /// A read carries a non-initial version for which no write exists in the
    /// history.
    ReadOfUnknownVersion {
        /// The offending read.
        read: OpId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::NotWellFormed { first, second } => {
                write!(f, "client overlapped operations {first} and {second}")
            }
            Violation::RealTimeOrderViolated { earlier, later } => write!(
                f,
                "operation {later} is ordered before {earlier} although {earlier} finished first"
            ),
            Violation::DuplicateWriteVersion { first, second } => {
                write!(f, "writes {first} and {second} share the same version")
            }
            Violation::WrongReadValue { read } => {
                write!(
                    f,
                    "read {read} returned a value inconsistent with its version"
                )
            }
            Violation::ReadOfUnknownVersion { read } => {
                write!(f, "read {read} carries a version no write produced")
            }
        }
    }
}

impl std::error::Error for Violation {}

/// Is `a ≺ b` in the tag-based partial order of the SODA proof?
/// `a ≺ b` iff `tag(a) < tag(b)`, or the tags are equal and `a` is a write
/// while `b` is a read.
fn before(a: &Op, b: &Op) -> bool {
    a.version < b.version
        || (a.version == b.version && a.kind == Kind::Write && b.kind == Kind::Read)
}

/// Checks P1/P2/P3 of Lemma 2.1 under the tag-based order.
pub(crate) fn check_atomicity(history: &History) -> Result<(), Violation> {
    if let Err((first, second)) = history.check_well_formed() {
        return Err(Violation::NotWellFormed { first, second });
    }
    let ops = history.ops();

    // P2: distinct writes must have distinct versions (otherwise they are
    // incomparable, so the order would not be total on writes).
    for (i, a) in ops.iter().enumerate() {
        if a.kind != Kind::Write {
            continue;
        }
        for b in ops.iter().skip(i + 1) {
            if b.kind == Kind::Write && a.version == b.version {
                return Err(Violation::DuplicateWriteVersion {
                    first: a.id,
                    second: b.id,
                });
            }
        }
    }

    // P1: the partial order must not contradict real time.
    for a in ops {
        for b in ops {
            if a.id != b.id && a.precedes(b) && before(b, a) {
                return Err(Violation::RealTimeOrderViolated {
                    earlier: a.id,
                    later: b.id,
                });
            }
        }
    }

    // P3: a read's value must match the write carrying the same version, or
    // the initial value when the version is the initial one.
    for read in ops.iter().filter(|op| op.kind == Kind::Read) {
        if read.version == Version::INITIAL {
            if read.value != history.initial_value() {
                return Err(Violation::WrongReadValue { read: read.id });
            }
            continue;
        }
        match ops
            .iter()
            .find(|w| w.kind == Kind::Write && w.version == read.version)
        {
            None => return Err(Violation::ReadOfUnknownVersion { read: read.id }),
            Some(write) => {
                if write.value != read.value {
                    return Err(Violation::WrongReadValue { read: read.id });
                }
            }
        }
    }
    Ok(())
}

/// Brute-force linearizability check: searches for a total order of the
/// operations that respects real-time precedence and register semantics
/// (every read returns the most recently written value, or the initial value).
/// Versions are ignored. Exponential in the worst case — use on small
/// histories only.
pub fn check_linearizable(history: &History) -> bool {
    let ops = history.ops();
    if ops.len() > 20 {
        panic!("brute-force linearizability check limited to 20 operations");
    }
    let mut linearized = vec![false; ops.len()];
    search(history, &mut linearized, history.initial_value(), ops.len())
}

fn search(history: &History, linearized: &mut Vec<bool>, current: &[u8], remaining: usize) -> bool {
    if remaining == 0 {
        return true;
    }
    let ops = history.ops();
    for candidate in 0..ops.len() {
        if linearized[candidate] {
            continue;
        }
        // A candidate is minimal if no other un-linearized operation finished
        // before the candidate was invoked.
        let minimal = ops.iter().all(|other| {
            linearized[other.id] || other.id == candidate || !other.precedes(&ops[candidate])
        });
        if !minimal {
            continue;
        }
        let op = &ops[candidate];
        match op.kind {
            Kind::Read => {
                if op.value == current {
                    linearized[candidate] = true;
                    if search(history, linearized, current, remaining - 1) {
                        return true;
                    }
                    linearized[candidate] = false;
                }
            }
            Kind::Write => {
                linearized[candidate] = true;
                if search(history, linearized, &op.value, remaining - 1) {
                    return true;
                }
                linearized[candidate] = false;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::History;

    fn v(z: u64, w: u64) -> Version {
        Version::new(z, w)
    }

    #[test]
    fn sequential_write_read_is_atomic() {
        let mut h = History::new(Vec::new());
        h.push(1, Kind::Write, 0, 10, b"a".to_vec(), v(1, 1));
        h.push(2, Kind::Read, 20, 30, b"a".to_vec(), v(1, 1));
        assert!(h.check_atomicity().is_ok());
        assert!(h.check_linearizable_brute_force());
    }

    #[test]
    fn read_of_initial_value_is_atomic() {
        let mut h = History::new(b"init".to_vec());
        h.push(1, Kind::Read, 0, 5, b"init".to_vec(), Version::INITIAL);
        assert!(h.check_atomicity().is_ok());
        assert!(h.check_linearizable_brute_force());
    }

    #[test]
    fn stale_read_after_write_completes_is_a_violation() {
        let mut h = History::new(b"init".to_vec());
        h.push(1, Kind::Write, 0, 10, b"new".to_vec(), v(1, 1));
        // Read starts after the write completed but returns the initial value.
        h.push(2, Kind::Read, 20, 30, b"init".to_vec(), Version::INITIAL);
        assert!(matches!(
            h.check_atomicity(),
            Err(Violation::RealTimeOrderViolated { .. })
        ));
        assert!(!h.check_linearizable_brute_force());
    }

    #[test]
    fn concurrent_read_may_return_either_value() {
        // Write of "b" overlaps the read; the read may return "a" (old) or "b".
        for (returned, version) in [(b"a".to_vec(), v(1, 1)), (b"b".to_vec(), v(2, 2))] {
            let mut h = History::new(Vec::new());
            h.push(1, Kind::Write, 0, 10, b"a".to_vec(), v(1, 1));
            h.push(2, Kind::Write, 20, 40, b"b".to_vec(), v(2, 2));
            h.push(3, Kind::Read, 25, 35, returned.clone(), version);
            assert!(h.check_atomicity().is_ok(), "returned {returned:?}");
            assert!(h.check_linearizable_brute_force());
        }
    }

    #[test]
    fn new_old_inversion_between_reads_is_a_violation() {
        // Read r1 finishes before r2 starts; r1 returns the new value but r2
        // returns the old one — the classic regular-but-not-atomic anomaly.
        let mut h = History::new(Vec::new());
        h.push(1, Kind::Write, 0, 50, b"old".to_vec(), v(1, 1));
        h.push(1, Kind::Write, 60, 100, b"new".to_vec(), v(2, 1));
        h.push(2, Kind::Read, 65, 70, b"new".to_vec(), v(2, 1));
        h.push(3, Kind::Read, 75, 80, b"old".to_vec(), v(1, 1));
        assert!(matches!(
            h.check_atomicity(),
            Err(Violation::RealTimeOrderViolated { .. })
        ));
        assert!(!h.check_linearizable_brute_force());
    }

    #[test]
    fn duplicate_write_versions_are_rejected() {
        let mut h = History::new(Vec::new());
        h.push(1, Kind::Write, 0, 10, b"a".to_vec(), v(1, 1));
        h.push(2, Kind::Write, 20, 30, b"b".to_vec(), v(1, 1));
        assert_eq!(
            h.check_atomicity(),
            Err(Violation::DuplicateWriteVersion {
                first: 0,
                second: 1
            })
        );
    }

    #[test]
    fn wrong_read_value_for_version_is_rejected() {
        let mut h = History::new(Vec::new());
        h.push(1, Kind::Write, 0, 10, b"a".to_vec(), v(1, 1));
        h.push(2, Kind::Read, 20, 30, b"z".to_vec(), v(1, 1));
        assert_eq!(
            h.check_atomicity(),
            Err(Violation::WrongReadValue { read: 1 })
        );
    }

    #[test]
    fn read_of_unknown_version_is_rejected() {
        let mut h = History::new(Vec::new());
        h.push(2, Kind::Read, 20, 30, b"ghost".to_vec(), v(9, 9));
        assert_eq!(
            h.check_atomicity(),
            Err(Violation::ReadOfUnknownVersion { read: 0 })
        );
    }

    #[test]
    fn ill_formed_history_is_rejected() {
        let mut h = History::new(Vec::new());
        h.push(1, Kind::Write, 0, 10, b"a".to_vec(), v(1, 1));
        h.push(1, Kind::Write, 5, 20, b"b".to_vec(), v(2, 1));
        assert!(matches!(
            h.check_atomicity(),
            Err(Violation::NotWellFormed { .. })
        ));
    }

    #[test]
    fn violations_display_readably() {
        let violations = [
            Violation::NotWellFormed {
                first: 1,
                second: 2,
            },
            Violation::RealTimeOrderViolated {
                earlier: 1,
                later: 2,
            },
            Violation::DuplicateWriteVersion {
                first: 1,
                second: 2,
            },
            Violation::WrongReadValue { read: 3 },
            Violation::ReadOfUnknownVersion { read: 4 },
        ];
        for v in violations {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn brute_force_finds_subtle_valid_interleavings() {
        // Three concurrent writes and a read that returns the middle one — a
        // serialization exists (w1, w3-read order chosen appropriately).
        let mut h = History::new(Vec::new());
        h.push(1, Kind::Write, 0, 100, b"one".to_vec(), v(1, 1));
        h.push(2, Kind::Write, 0, 100, b"two".to_vec(), v(1, 2));
        h.push(3, Kind::Write, 0, 100, b"three".to_vec(), v(1, 3));
        h.push(4, Kind::Read, 0, 100, b"two".to_vec(), v(1, 2));
        assert!(h.check_linearizable_brute_force());
    }

    #[test]
    #[should_panic(expected = "limited to 20 operations")]
    fn brute_force_refuses_large_histories() {
        let mut h = History::new(Vec::new());
        for i in 0..21 {
            h.push(i, Kind::Write, i * 10, i * 10 + 5, vec![i as u8], v(i, i));
        }
        let _ = h.check_linearizable_brute_force();
    }
}
