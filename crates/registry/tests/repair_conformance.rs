//! Cross-protocol crash–recovery conformance: every [`ProtocolKind`] must
//! survive crash → repair → read with an atomic history, produce bit-identical
//! executions when replayed, keep atomicity when a repair races an in-flight
//! write, and never double-count a repaired server's replayed acknowledgements
//! in the closed history.

use soda_registry::{ClusterBuilder, OpRecord, ProtocolKind, RegisterCluster, RepairError};
use soda_simnet::{NetFaultPlan, Partition, ProcessId, SimTime};
use std::collections::BTreeSet;

/// Representative parameters per protocol: `(kind, n, f)` chosen so every
/// kind is valid and tolerates the crashes the scenarios inject.
fn matrix() -> Vec<(ProtocolKind, usize, usize)> {
    vec![
        (ProtocolKind::Soda, 5, 2),
        (ProtocolKind::SodaErr { e: 1 }, 7, 2),
        (ProtocolKind::Abd, 5, 2),
        (ProtocolKind::Cas, 5, 2),
        (ProtocolKind::Casgc { gc: 2 }, 5, 2),
    ]
}

/// The shared crash → repair → read scenario: populate, crash rank 0, keep
/// writing, repair rank 0 with a write still racing it, then read after the
/// repair has settled.
fn drive_crash_repair_read(cluster: &mut dyn RegisterCluster) {
    cluster.invoke_write_at(SimTime::from_ticks(0), 0, b"before-crash".to_vec());
    cluster.invoke_read_at(SimTime::from_ticks(30), 0);
    cluster.crash_server_at(SimTime::from_ticks(60), 0);
    cluster.invoke_write_at(SimTime::from_ticks(80), 0, b"while-down".to_vec());
    // The repair starts while this write is still in flight.
    cluster.invoke_write_at(SimTime::from_ticks(160), 0, b"racing-repair".to_vec());
    cluster.repair_server_at(SimTime::from_ticks(161), 0);
    cluster.invoke_read_at(SimTime::from_ticks(400), 1);
    cluster.run_to_quiescence();
}

fn fingerprint(ops: &[OpRecord]) -> Vec<(u64, u64, bool, u64, u64, Vec<u8>)> {
    ops.iter()
        .map(|op| {
            (
                op.client,
                op.seq,
                op.kind.is_write(),
                op.invoked_at.ticks(),
                op.completed_at.ticks(),
                op.value.clone().unwrap_or_default(),
            )
        })
        .collect()
}

#[test]
fn crash_repair_read_is_atomic_for_every_kind() {
    for (kind, n, f) in matrix() {
        let mut cluster = ClusterBuilder::new(kind, n, f)
            .with_seed(7)
            .with_clients(1, 2)
            .build()
            .unwrap();
        drive_crash_repair_read(cluster.as_mut());

        // The repair settled: the budget is free again and the report is
        // complete, with real data traffic and a measurable latency.
        assert_eq!(cluster.dead_or_repairing(), 0, "{}", kind.name());
        let reports = cluster.repair_reports();
        assert_eq!(reports.len(), 1, "{}", kind.name());
        assert_eq!(reports[0].rank, 0, "{}", kind.name());
        assert!(reports[0].latency().is_some(), "{}", kind.name());
        assert!(reports[0].traffic_bytes > 0, "{}", kind.name());

        // Every operation completed (the cluster never lost its quorums) and
        // the final read saw the last write.
        let ops = cluster.completed_ops();
        assert_eq!(ops.len(), 5, "{}", kind.name());
        let last_read = ops.iter().rfind(|o| o.kind.is_read()).unwrap();
        assert_eq!(
            last_read.value.as_deref(),
            Some(b"racing-repair".as_slice()),
            "{}",
            kind.name()
        );
        cluster
            .closed_history(&[])
            .check_atomicity()
            .unwrap_or_else(|v| panic!("{}: {v}", kind.name()));
    }
}

#[test]
fn crash_repair_read_replays_bit_identically() {
    // Two independent builds of the same seeded scenario must produce the
    // same operations at the same ticks with the same repair traffic — the
    // property that makes every repair counterexample replayable.
    for (kind, n, f) in matrix() {
        let mut runs = Vec::new();
        for _ in 0..2 {
            let mut cluster = ClusterBuilder::new(kind, n, f)
                .with_seed(23)
                .with_clients(1, 2)
                .build()
                .unwrap();
            drive_crash_repair_read(cluster.as_mut());
            runs.push((
                fingerprint(&cluster.completed_ops()),
                cluster.repair_reports(),
                cluster.repair_traffic_bytes(),
                cluster.now(),
            ));
        }
        assert_eq!(runs[0], runs[1], "{}", kind.name());
    }
}

#[test]
fn repair_during_inflight_write_preserves_atomicity_across_seeds() {
    // Sweep the repair start across the write's whole in-flight window so
    // every interleaving of repair messages with write propagation is
    // exercised, not just one lucky tick.
    for (kind, n, f) in matrix() {
        for repair_at in [81, 85, 90, 100, 120] {
            let mut cluster = ClusterBuilder::new(kind, n, f)
                .with_seed(repair_at)
                .with_clients(1, 2)
                .build()
                .unwrap();
            cluster.invoke_write_at(SimTime::from_ticks(0), 0, b"base".to_vec());
            cluster.crash_server_at(SimTime::from_ticks(50), 1);
            cluster.invoke_write_at(SimTime::from_ticks(80), 0, b"in-flight".to_vec());
            cluster.repair_server_at(SimTime::from_ticks(repair_at), 1);
            cluster.invoke_read_at(SimTime::from_ticks(300), 0);
            cluster.invoke_read_at(SimTime::from_ticks(300), 1);
            let outcome = cluster.run_to_quiescence();
            assert!(!outcome.hit_event_cap, "{} at {repair_at}", kind.name());
            assert_eq!(cluster.dead_or_repairing(), 0, "{}", kind.name());
            assert_eq!(
                cluster.completed_ops().len(),
                4,
                "{} at {repair_at}",
                kind.name()
            );
            cluster
                .closed_history(&[])
                .check_atomicity()
                .unwrap_or_else(|v| panic!("{} repair at {repair_at}: {v}", kind.name()));
        }
    }
}

/// A plan that cuts rank 0 off from every other process — servers *and*
/// client handles — during `[start, end)` ticks. The cluster has 1 writer
/// and 2 readers, so process ids run `0..n + 3`.
fn isolate_rank_zero(n: usize, start: u64, end: u64) -> NetFaultPlan {
    let isolated = vec![ProcessId(0)];
    let rest: Vec<ProcessId> = (1..(n + 3) as u32).map(ProcessId).collect();
    NetFaultPlan::none().with_partition(Partition::split(
        &[isolated, rest],
        SimTime::from_ticks(start),
        SimTime::from_ticks(end),
    ))
}

/// The crash → partition(repairer ⟂ survivors) → heal → repair-settles
/// scenario: rank 0 crashes behind a window that outlives the repair's first
/// attempts, and the retry cadence crosses the heal.
fn drive_partitioned_repair(cluster: &mut dyn RegisterCluster) {
    cluster.invoke_write_at(SimTime::from_ticks(0), 0, b"pre-partition".to_vec());
    cluster.crash_server_at(SimTime::from_ticks(60), 0);
    // The replacement's survivor fan-out is cut (and retried) until the heal
    // at tick 1000; the retry at 1300 is the first to get through.
    cluster.repair_server_at(SimTime::from_ticks(100), 0);
    cluster.invoke_read_at(SimTime::from_ticks(1500), 0);
    cluster.run_to_quiescence();
}

#[test]
fn repair_behind_a_partition_settles_after_the_heal_for_every_kind() {
    for (kind, n, f) in matrix() {
        let mut cluster = ClusterBuilder::new(kind, n, f)
            .with_seed(11)
            .with_clients(1, 2)
            .with_net_faults(isolate_rank_zero(n, 50, 1000))
            .build()
            .unwrap();
        drive_partitioned_repair(cluster.as_mut());

        assert_eq!(cluster.dead_or_repairing(), 0, "{}", kind.name());
        let reports = cluster.repair_reports();
        assert_eq!(reports.len(), 1, "{}", kind.name());
        assert!(!reports[0].failed(), "{}", kind.name());
        assert!(reports[0].error.is_none(), "{}", kind.name());
        let settled = reports[0].completed_at.expect("repair must settle");
        assert!(
            settled.ticks() >= 1000,
            "{}: settled at {} — inside the window",
            kind.name(),
            settled.ticks()
        );
        assert!(reports[0].traffic_bytes > 0, "{}", kind.name());

        let ops = cluster.completed_ops();
        let last_read = ops.iter().rfind(|o| o.kind.is_read()).unwrap();
        assert_eq!(
            last_read.value.as_deref(),
            Some(b"pre-partition".as_slice()),
            "{}",
            kind.name()
        );
        cluster
            .closed_history(&[])
            .check_atomicity()
            .unwrap_or_else(|v| panic!("{}: {v}", kind.name()));
    }
}

#[test]
fn partitioned_repair_replays_bit_identically() {
    // Two independent builds of the partitioned scenario must agree on every
    // operation tick, the repair report, and the final clock — partition cuts
    // consume no RNG draws, so window plans cannot perturb the schedule.
    for (kind, n, f) in matrix() {
        let mut runs = Vec::new();
        for _ in 0..2 {
            let mut cluster = ClusterBuilder::new(kind, n, f)
                .with_seed(29)
                .with_clients(1, 2)
                .with_net_faults(isolate_rank_zero(n, 50, 1000))
                .build()
                .unwrap();
            drive_partitioned_repair(cluster.as_mut());
            runs.push((
                fingerprint(&cluster.completed_ops()),
                cluster.repair_reports(),
                cluster.repair_traffic_bytes(),
                cluster.now(),
            ));
        }
        assert_eq!(runs[0], runs[1], "{}", kind.name());
    }
}

#[test]
fn repair_that_outlives_the_window_fails_retryably_for_every_kind() {
    // The window outlives the whole retry budget (8 attempts spanning 2800
    // ticks): the repair must give up with the typed, retryable error and
    // return the crash-budget slot — and a second repair after the heal must
    // settle and replace the failure report.
    for (kind, n, f) in matrix() {
        let mut cluster = ClusterBuilder::new(kind, n, f)
            .with_seed(13)
            .with_clients(1, 2)
            .with_net_faults(isolate_rank_zero(n, 50, 5000))
            .build()
            .unwrap();
        cluster.invoke_write_at(SimTime::from_ticks(0), 0, b"outlives".to_vec());
        cluster.crash_server_at(SimTime::from_ticks(60), 0);
        cluster.repair_server_at(SimTime::from_ticks(100), 0);
        cluster.run_to_quiescence();

        // Gave up: the rank is plain dead again, still holding its budget
        // slot, with the typed error on the report.
        assert_eq!(cluster.dead_or_repairing(), 1, "{}", kind.name());
        let reports = cluster.repair_reports();
        assert_eq!(reports.len(), 1, "{}", kind.name());
        assert!(reports[0].failed(), "{}", kind.name());
        assert_eq!(
            reports[0].error,
            Some(RepairError::Unreachable),
            "{}",
            kind.name()
        );

        // Retry after the heal: settles promptly and replaces the report.
        cluster.repair_server_at(SimTime::from_ticks(5100), 0);
        cluster.invoke_read_at(SimTime::from_ticks(6000), 1);
        cluster.run_to_quiescence();
        assert_eq!(cluster.dead_or_repairing(), 0, "{}", kind.name());
        let reports = cluster.repair_reports();
        assert_eq!(reports.len(), 1, "{}", kind.name());
        assert!(!reports[0].failed(), "{}", kind.name());
        let ops = cluster.completed_ops();
        let last_read = ops.iter().rfind(|o| o.kind.is_read()).unwrap();
        assert_eq!(
            last_read.value.as_deref(),
            Some(b"outlives".as_slice()),
            "{}",
            kind.name()
        );
        cluster
            .closed_history(&[])
            .check_atomicity()
            .unwrap_or_else(|v| panic!("{}: {v}", kind.name()));
    }
}

#[test]
fn repaired_runs_never_double_count_operations() {
    // A replacement replays relay/gossip state from survivors; none of that
    // may surface as duplicate client acknowledgements. Each (client, seq)
    // appears at most once among completed operations, never in both the
    // completed and pending sets, and the closed history's length is exactly
    // completed + tagged-pending — no operation is counted twice under the
    // `responded = u64::MAX` pending convention.
    for (kind, n, f) in matrix() {
        let mut cluster = ClusterBuilder::new(kind, n, f)
            .with_seed(31)
            .with_clients(2, 2)
            .build()
            .unwrap();
        cluster.invoke_write_at(SimTime::from_ticks(0), 0, b"a".to_vec());
        cluster.invoke_write_at(SimTime::from_ticks(5), 1, b"b".to_vec());
        cluster.crash_server_at(SimTime::from_ticks(40), 0);
        cluster.invoke_write_at(SimTime::from_ticks(90), 0, b"c".to_vec());
        cluster.repair_server_at(SimTime::from_ticks(91), 0);
        // A writer crashed mid-operation leaves a genuinely pending write in
        // the closed history, exercising the sentinel path too.
        cluster.invoke_write_at(SimTime::from_ticks(200), 1, b"never-acked".to_vec());
        cluster.crash_writer_at(SimTime::from_ticks(201), 1);
        cluster.invoke_read_at(SimTime::from_ticks(400), 0);
        cluster.invoke_read_at(SimTime::from_ticks(420), 1);
        cluster.run_to_quiescence();

        let completed = cluster.completed_ops();
        let mut seen = BTreeSet::new();
        for op in &completed {
            assert!(
                seen.insert((op.client, op.seq)),
                "{}: duplicate completed op (client {}, seq {})",
                kind.name(),
                op.client,
                op.seq
            );
        }
        let pending = cluster.pending_writes();
        for write in &pending {
            assert!(
                !seen.contains(&(write.client, write.seq)),
                "{}: (client {}, seq {}) is both completed and pending",
                kind.name(),
                write.client,
                write.seq
            );
        }
        let tagged_pending = pending.iter().filter(|w| w.tag.is_some()).count();
        let closed = cluster.closed_history(&[]);
        assert_eq!(
            closed.len(),
            completed.len() + tagged_pending,
            "{}: closed history double-counts",
            kind.name()
        );
        closed
            .check_atomicity()
            .unwrap_or_else(|v| panic!("{}: {v}", kind.name()));
    }
}
