//! Cross-protocol crash–recovery conformance: every [`ProtocolKind`] must
//! survive crash → repair → read with an atomic history, produce bit-identical
//! executions when replayed, keep atomicity when a repair races an in-flight
//! write, and never double-count a repaired server's replayed acknowledgements
//! in the closed history.

use soda_registry::{ClusterBuilder, OpRecord, ProtocolKind, RegisterCluster};
use soda_simnet::SimTime;
use std::collections::BTreeSet;

/// Representative parameters per protocol: `(kind, n, f)` chosen so every
/// kind is valid and tolerates the crashes the scenarios inject.
fn matrix() -> Vec<(ProtocolKind, usize, usize)> {
    vec![
        (ProtocolKind::Soda, 5, 2),
        (ProtocolKind::SodaErr { e: 1 }, 7, 2),
        (ProtocolKind::Abd, 5, 2),
        (ProtocolKind::Cas, 5, 2),
        (ProtocolKind::Casgc { gc: 2 }, 5, 2),
    ]
}

/// The shared crash → repair → read scenario: populate, crash rank 0, keep
/// writing, repair rank 0 with a write still racing it, then read after the
/// repair has settled.
fn drive_crash_repair_read(cluster: &mut dyn RegisterCluster) {
    cluster.invoke_write_at(SimTime::from_ticks(0), 0, b"before-crash".to_vec());
    cluster.invoke_read_at(SimTime::from_ticks(30), 0);
    cluster.crash_server_at(SimTime::from_ticks(60), 0);
    cluster.invoke_write_at(SimTime::from_ticks(80), 0, b"while-down".to_vec());
    // The repair starts while this write is still in flight.
    cluster.invoke_write_at(SimTime::from_ticks(160), 0, b"racing-repair".to_vec());
    cluster.repair_server_at(SimTime::from_ticks(161), 0);
    cluster.invoke_read_at(SimTime::from_ticks(400), 1);
    cluster.run_to_quiescence();
}

fn fingerprint(ops: &[OpRecord]) -> Vec<(u64, u64, bool, u64, u64, Vec<u8>)> {
    ops.iter()
        .map(|op| {
            (
                op.client,
                op.seq,
                op.kind.is_write(),
                op.invoked_at.ticks(),
                op.completed_at.ticks(),
                op.value.clone().unwrap_or_default(),
            )
        })
        .collect()
}

#[test]
fn crash_repair_read_is_atomic_for_every_kind() {
    for (kind, n, f) in matrix() {
        let mut cluster = ClusterBuilder::new(kind, n, f)
            .with_seed(7)
            .with_clients(1, 2)
            .build()
            .unwrap();
        drive_crash_repair_read(cluster.as_mut());

        // The repair settled: the budget is free again and the report is
        // complete, with real data traffic and a measurable latency.
        assert_eq!(cluster.dead_or_repairing(), 0, "{}", kind.name());
        let reports = cluster.repair_reports();
        assert_eq!(reports.len(), 1, "{}", kind.name());
        assert_eq!(reports[0].rank, 0, "{}", kind.name());
        assert!(reports[0].latency().is_some(), "{}", kind.name());
        assert!(reports[0].traffic_bytes > 0, "{}", kind.name());

        // Every operation completed (the cluster never lost its quorums) and
        // the final read saw the last write.
        let ops = cluster.completed_ops();
        assert_eq!(ops.len(), 5, "{}", kind.name());
        let last_read = ops.iter().rfind(|o| o.kind.is_read()).unwrap();
        assert_eq!(
            last_read.value.as_deref(),
            Some(b"racing-repair".as_slice()),
            "{}",
            kind.name()
        );
        cluster
            .closed_history(&[])
            .check_atomicity()
            .unwrap_or_else(|v| panic!("{}: {v}", kind.name()));
    }
}

#[test]
fn crash_repair_read_replays_bit_identically() {
    // Two independent builds of the same seeded scenario must produce the
    // same operations at the same ticks with the same repair traffic — the
    // property that makes every repair counterexample replayable.
    for (kind, n, f) in matrix() {
        let mut runs = Vec::new();
        for _ in 0..2 {
            let mut cluster = ClusterBuilder::new(kind, n, f)
                .with_seed(23)
                .with_clients(1, 2)
                .build()
                .unwrap();
            drive_crash_repair_read(cluster.as_mut());
            runs.push((
                fingerprint(&cluster.completed_ops()),
                cluster.repair_reports(),
                cluster.repair_traffic_bytes(),
                cluster.now(),
            ));
        }
        assert_eq!(runs[0], runs[1], "{}", kind.name());
    }
}

#[test]
fn repair_during_inflight_write_preserves_atomicity_across_seeds() {
    // Sweep the repair start across the write's whole in-flight window so
    // every interleaving of repair messages with write propagation is
    // exercised, not just one lucky tick.
    for (kind, n, f) in matrix() {
        for repair_at in [81, 85, 90, 100, 120] {
            let mut cluster = ClusterBuilder::new(kind, n, f)
                .with_seed(repair_at)
                .with_clients(1, 2)
                .build()
                .unwrap();
            cluster.invoke_write_at(SimTime::from_ticks(0), 0, b"base".to_vec());
            cluster.crash_server_at(SimTime::from_ticks(50), 1);
            cluster.invoke_write_at(SimTime::from_ticks(80), 0, b"in-flight".to_vec());
            cluster.repair_server_at(SimTime::from_ticks(repair_at), 1);
            cluster.invoke_read_at(SimTime::from_ticks(300), 0);
            cluster.invoke_read_at(SimTime::from_ticks(300), 1);
            let outcome = cluster.run_to_quiescence();
            assert!(!outcome.hit_event_cap, "{} at {repair_at}", kind.name());
            assert_eq!(cluster.dead_or_repairing(), 0, "{}", kind.name());
            assert_eq!(
                cluster.completed_ops().len(),
                4,
                "{} at {repair_at}",
                kind.name()
            );
            cluster
                .closed_history(&[])
                .check_atomicity()
                .unwrap_or_else(|v| panic!("{} repair at {repair_at}: {v}", kind.name()));
        }
    }
}

#[test]
fn repaired_runs_never_double_count_operations() {
    // A replacement replays relay/gossip state from survivors; none of that
    // may surface as duplicate client acknowledgements. Each (client, seq)
    // appears at most once among completed operations, never in both the
    // completed and pending sets, and the closed history's length is exactly
    // completed + tagged-pending — no operation is counted twice under the
    // `responded = u64::MAX` pending convention.
    for (kind, n, f) in matrix() {
        let mut cluster = ClusterBuilder::new(kind, n, f)
            .with_seed(31)
            .with_clients(2, 2)
            .build()
            .unwrap();
        cluster.invoke_write_at(SimTime::from_ticks(0), 0, b"a".to_vec());
        cluster.invoke_write_at(SimTime::from_ticks(5), 1, b"b".to_vec());
        cluster.crash_server_at(SimTime::from_ticks(40), 0);
        cluster.invoke_write_at(SimTime::from_ticks(90), 0, b"c".to_vec());
        cluster.repair_server_at(SimTime::from_ticks(91), 0);
        // A writer crashed mid-operation leaves a genuinely pending write in
        // the closed history, exercising the sentinel path too.
        cluster.invoke_write_at(SimTime::from_ticks(200), 1, b"never-acked".to_vec());
        cluster.crash_writer_at(SimTime::from_ticks(201), 1);
        cluster.invoke_read_at(SimTime::from_ticks(400), 0);
        cluster.invoke_read_at(SimTime::from_ticks(420), 1);
        cluster.run_to_quiescence();

        let completed = cluster.completed_ops();
        let mut seen = BTreeSet::new();
        for op in &completed {
            assert!(
                seen.insert((op.client, op.seq)),
                "{}: duplicate completed op (client {}, seq {})",
                kind.name(),
                op.client,
                op.seq
            );
        }
        let pending = cluster.pending_writes();
        for write in &pending {
            assert!(
                !seen.contains(&(write.client, write.seq)),
                "{}: (client {}, seq {}) is both completed and pending",
                kind.name(),
                write.client,
                write.seq
            );
        }
        let tagged_pending = pending.iter().filter(|w| w.tag.is_some()).count();
        let closed = cluster.closed_history(&[]);
        assert_eq!(
            closed.len(),
            completed.len() + tagged_pending,
            "{}: closed history double-counts",
            kind.name()
        );
        closed
            .check_atomicity()
            .unwrap_or_else(|v| panic!("{}: {v}", kind.name()));
    }
}
