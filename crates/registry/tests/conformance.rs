//! Cross-protocol conformance suite: the same scenarios run through every
//! [`ProtocolKind`] via the [`RegisterCluster`] trait, and every resulting
//! history is machine-checked for atomicity with `soda_consistency`.

use soda_registry::{ClusterBuilder, ProtocolKind, RegisterCluster};
use soda_simnet::SimTime;

/// Representative parameters per protocol: `(kind, n, f)` chosen so every
/// kind is valid and tolerates two crashes where the scenario injects them.
fn matrix() -> Vec<(ProtocolKind, usize, usize)> {
    vec![
        (ProtocolKind::Soda, 5, 2),
        (ProtocolKind::SodaErr { e: 1 }, 7, 2),
        (ProtocolKind::Abd, 5, 2),
        (ProtocolKind::Cas, 5, 2),
        (ProtocolKind::Casgc { gc: 2 }, 5, 2),
    ]
}

fn build(kind: ProtocolKind, n: usize, f: usize, seed: u64) -> Box<dyn RegisterCluster> {
    ClusterBuilder::new(kind, n, f)
        .with_seed(seed)
        .build()
        .unwrap_or_else(|e| panic!("{}: build failed: {e}", kind.name()))
}

#[test]
fn write_then_read_round_trips_for_every_kind() {
    for (kind, n, f) in matrix() {
        let mut cluster = build(kind, n, f, 3);
        cluster.invoke_write(0, b"conformance".to_vec());
        cluster.run_to_quiescence();
        cluster.invoke_read(0);
        cluster.run_to_quiescence();
        let ops = cluster.completed_ops();
        assert_eq!(ops.len(), 2, "{}", kind.name());
        assert!(ops[0].kind.is_write(), "{}", kind.name());
        assert!(ops[1].kind.is_read(), "{}", kind.name());
        assert_eq!(
            ops[1].value.as_deref(),
            Some(b"conformance".as_slice()),
            "{}",
            kind.name()
        );
        assert_eq!(ops[1].tag, ops[0].tag, "{}", kind.name());
        assert!(
            cluster.history(&[]).check_atomicity().is_ok(),
            "{}",
            kind.name()
        );
    }
}

#[test]
fn read_before_any_write_returns_initial_value_for_every_kind() {
    for (kind, n, f) in matrix() {
        let initial = b"genesis".to_vec();
        let mut cluster = ClusterBuilder::new(kind, n, f)
            .with_seed(11)
            .with_initial_value(initial.clone())
            .build()
            .unwrap();
        cluster.invoke_read(0);
        cluster.run_to_quiescence();
        let ops = cluster.completed_ops();
        assert_eq!(ops.len(), 1, "{}", kind.name());
        assert_eq!(
            ops[0].value.as_deref(),
            Some(initial.as_slice()),
            "{}",
            kind.name()
        );
        assert!(ops[0].tag.is_initial(), "{}", kind.name());
    }
}

#[test]
fn concurrent_workload_with_crashes_is_atomic_for_every_kind() {
    for (kind, n, f) in matrix() {
        for seed in 0..4u64 {
            let mut cluster = ClusterBuilder::new(kind, n, f)
                .with_seed(seed)
                .with_clients(2, 2)
                .build()
                .unwrap();
            // Crash up to f = 2 servers at staggered times while the
            // workload runs.
            cluster.crash_server_at(SimTime::from_ticks(10), 0);
            cluster.crash_server_at(SimTime::from_ticks(60), n - 1);
            for round in 0..3u64 {
                for writer in 0..2 {
                    cluster.invoke_write_at(
                        SimTime::from_ticks(round * 50 + writer as u64),
                        writer,
                        format!("v-{round}-{writer}").into_bytes(),
                    );
                }
                for reader in 0..2 {
                    cluster.invoke_read_at(
                        SimTime::from_ticks(round * 50 + 20 + reader as u64),
                        reader,
                    );
                }
            }
            let outcome = cluster.run_to_quiescence();
            assert!(
                !outcome.hit_event_cap,
                "{} seed {seed}: must quiesce",
                kind.name()
            );
            let ops = cluster.completed_ops();
            assert_eq!(
                ops.len(),
                12,
                "{} seed {seed}: every operation must complete",
                kind.name()
            );
            // Every read returned either the initial value or something a
            // write actually produced.
            for op in ops.iter().filter(|o| o.kind.is_read()) {
                let value = op.value.as_deref().unwrap_or_default();
                assert!(
                    value.is_empty() || value.starts_with(b"v-"),
                    "{} seed {seed}: read returned garbage {value:?}",
                    kind.name()
                );
            }
            cluster
                .history(&[])
                .check_atomicity()
                .unwrap_or_else(|v| panic!("{} seed {seed}: {v}", kind.name()));
        }
    }
}

#[test]
fn crashed_writer_never_blocks_other_clients() {
    for (kind, n, f) in matrix() {
        let mut cluster = ClusterBuilder::new(kind, n, f)
            .with_seed(17)
            .with_clients(2, 1)
            .build()
            .unwrap();
        cluster.invoke_write_at(SimTime::from_ticks(0), 0, b"doomed".to_vec());
        cluster.crash_writer_at(SimTime::from_ticks(8), 0);
        cluster.invoke_write_at(SimTime::from_ticks(120), 1, b"survivor".to_vec());
        cluster.invoke_read_at(SimTime::from_ticks(400), 0);
        let outcome = cluster.run_to_quiescence();
        assert!(!outcome.hit_event_cap, "{}", kind.name());
        let ops = cluster.completed_ops();
        let read = ops
            .iter()
            .find(|o| o.kind.is_read())
            .unwrap_or_else(|| panic!("{}: read must complete", kind.name()));
        // The surviving writer's value must win over the crashed write.
        assert_eq!(
            read.value.as_deref(),
            Some(b"survivor".as_slice()),
            "{}",
            kind.name()
        );
        cluster
            .history(&[])
            .check_atomicity()
            .unwrap_or_else(|v| panic!("{}: {v}", kind.name()));
    }
}

#[test]
fn storage_costs_track_the_paper_formulas() {
    // One write of a large value, then quiescence; measured normalized
    // storage must track each protocol's Table I expression.
    let value = vec![7u8; 6000];
    for (kind, n, f) in matrix() {
        if kind == ProtocolKind::Cas {
            continue; // unbounded storage: no finite formula to compare
        }
        let mut cluster = build(kind, n, f, 1);
        cluster.invoke_write(0, value.clone());
        cluster.run_to_quiescence();
        let measured = cluster.total_stored_bytes() as f64 / value.len() as f64;
        let formula = cluster.descriptor().paper_storage_cost();
        // CASGC provisions for δ + 1 versions but only one non-initial
        // version exists here, so it sits below its bound; the others must
        // match within chunking slack.
        match kind {
            ProtocolKind::Casgc { .. } => assert!(
                measured <= formula + 0.2,
                "{}: measured {measured:.2} above bound {formula:.2}",
                kind.name()
            ),
            _ => assert!(
                (measured - formula).abs() < 0.1,
                "{}: measured {measured:.2} vs formula {formula:.2}",
                kind.name()
            ),
        }
    }
}

#[test]
fn descriptor_reports_the_built_shape() {
    for (kind, n, f) in matrix() {
        let cluster = ClusterBuilder::new(kind, n, f)
            .with_clients(3, 2)
            .build()
            .unwrap();
        let desc = cluster.descriptor();
        assert_eq!(desc.kind, kind);
        assert_eq!((desc.n, desc.f), (n, f));
        assert_eq!((desc.num_writers, desc.num_readers), (3, 2));
        // Writer and reader handles map to distinct live processes.
        let mut ids: Vec<_> = (0..3)
            .map(|w| cluster.writer_process(w))
            .chain((0..2).map(|r| cluster.reader_process(r)))
            .collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 5, "{}", kind.name());
    }
}

#[test]
fn run_until_stops_at_the_deadline() {
    for (kind, n, f) in matrix() {
        let mut cluster = build(kind, n, f, 23);
        cluster.invoke_write_at(SimTime::from_ticks(0), 0, b"timed".to_vec());
        cluster.run_until(SimTime::from_ticks(2));
        assert!(cluster.now() <= SimTime::from_ticks(2), "{}", kind.name());
        cluster.run_to_quiescence();
        assert_eq!(cluster.completed_ops().len(), 1, "{}", kind.name());
    }
}
