//! Facade-level tests of the adversarial knobs: every protocol kind accepts
//! the same `NetFaultPlan`, histories stay checkable under faults via
//! `closed_history`, and the builder validates the SODA-only / ABD-only
//! switches.

use soda_registry::{BuildError, ClusterBuilder, OpKind, ProtocolKind, ALL_KINDS};
use soda_simnet::{LinkFaults, NetFaultPlan, SimTime};

fn lossy_plan() -> NetFaultPlan {
    NetFaultPlan::none().with_default(LinkFaults {
        drop_p: 0.1,
        duplicate_p: 0.15,
        extra_delay: Some(soda_simnet::DelayModel::Uniform { min: 1, max: 25 }),
        reorder_p: 0.25,
        reorder_window: 40,
    })
}

#[test]
fn every_kind_accepts_the_same_net_fault_knobs() {
    for kind in ALL_KINDS {
        let n = if kind.error_budget() > 0 { 7 } else { 5 };
        let mut cluster = ClusterBuilder::new(kind, n, 2)
            .with_seed(3)
            .with_clients(1, 1)
            .with_net_faults(lossy_plan())
            .build()
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        cluster.invoke_write(0, b"under fire".to_vec());
        cluster.invoke_read_at(SimTime::from_ticks(40), 0);
        let outcome = cluster.run_to_quiescence();
        assert!(!outcome.hit_event_cap, "{}", kind.name());
        // Safety holds whether or not the lossy network let things finish.
        cluster
            .closed_history(&[])
            .check_atomicity()
            .unwrap_or_else(|v| panic!("{}: {v}", kind.name()));
        // The adversary actually acted (duplication at 15% over dozens of
        // messages is effectively certain for these seeds).
        let stats = cluster.stats();
        assert!(
            stats.messages_lost + stats.messages_duplicated > 0,
            "{}: adversary was a no-op",
            kind.name()
        );
    }
}

#[test]
fn closed_history_explains_reads_of_a_crashed_writers_value() {
    // Crash the SODA writer right after its dispersal starts; with relaying,
    // a read can return the crashed writer's value even though the write
    // never completed. `history()` alone cannot explain that read —
    // `closed_history()` must.
    for seed in 0..20u64 {
        let mut cluster = ClusterBuilder::new(ProtocolKind::Soda, 5, 2)
            .with_seed(seed)
            .with_clients(1, 1)
            .build()
            .unwrap();
        cluster.invoke_write(0, b"first".to_vec());
        cluster.run_to_quiescence();
        let start = cluster.now();
        cluster.invoke_write_at(start + 1, 0, b"doomed".to_vec());
        cluster.crash_writer_at(start + 8, 0);
        cluster.invoke_read_at(start + 12, 0);
        cluster.run_to_quiescence();
        let closed = cluster.closed_history(&[]);
        closed
            .check_atomicity()
            .unwrap_or_else(|v| panic!("seed {seed}: {v}\nhistory: {closed:?}"));
        // If the doomed write is pending, it must be reported.
        let writes_completed = cluster
            .completed_ops()
            .iter()
            .filter(|op| op.kind == OpKind::Write)
            .count();
        assert_eq!(
            writes_completed + cluster.pending_writes().len(),
            2,
            "seed {seed}: every invoked write is either completed or pending"
        );
    }
}

#[test]
fn pending_writes_report_the_in_flight_operation_for_every_protocol() {
    for kind in ALL_KINDS {
        let n = if kind.error_budget() > 0 { 7 } else { 5 };
        let mut cluster = ClusterBuilder::new(kind, n, 2)
            .with_seed(1)
            .with_clients(1, 1)
            .build()
            .unwrap();
        cluster.invoke_write(0, b"stalled".to_vec());
        // Run only a moment: the write is still in flight.
        cluster.run_until(SimTime::from_ticks(1));
        let pending = cluster.pending_writes();
        assert_eq!(pending.len(), 1, "{}", kind.name());
        assert_eq!(pending[0].value, b"stalled", "{}", kind.name());
        // After quiescence it completed and is pending no more.
        cluster.run_to_quiescence();
        assert!(cluster.pending_writes().is_empty(), "{}", kind.name());
        assert_eq!(cluster.completed_ops().len(), 1, "{}", kind.name());
    }
}

#[test]
fn byzantine_servers_are_a_soda_family_switch() {
    let err = ClusterBuilder::new(ProtocolKind::Abd, 5, 2)
        .with_byzantine_servers(vec![0])
        .validate()
        .unwrap_err();
    assert_eq!(err, BuildError::ByzantineUnsupported { kind: "ABD" });

    let err = ClusterBuilder::new(ProtocolKind::SodaErr { e: 1 }, 7, 2)
        .with_byzantine_servers(vec![7])
        .validate()
        .unwrap_err();
    assert_eq!(err, BuildError::ByzantineOutOfRange { rank: 7, n: 7 });

    ClusterBuilder::new(ProtocolKind::SodaErr { e: 1 }, 7, 2)
        .with_byzantine_servers(vec![0, 6])
        .validate()
        .expect("in-range ranks are accepted, even beyond e (detection tests)");
}

#[test]
fn quorum_override_is_abd_only() {
    for kind in ALL_KINDS {
        let n = if kind.error_budget() > 0 { 7 } else { 5 };
        let result = ClusterBuilder::new(kind, n, 2)
            .with_unsound_quorum(1)
            .validate();
        if kind == ProtocolKind::Abd {
            result.expect("ABD accepts the test-only override");
        } else {
            assert_eq!(
                result.unwrap_err(),
                BuildError::QuorumOverrideUnsupported { kind: kind.name() }
            );
        }
    }
}

#[test]
fn build_errors_for_adversary_knobs_render_helpfully() {
    let message = BuildError::ByzantineUnsupported { kind: "CAS" }.to_string();
    assert!(message.contains("SODA/SODAerr"), "{message}");
    let message = BuildError::QuorumOverrideUnsupported { kind: "CASGC" }.to_string();
    assert!(message.contains("ABD"), "{message}");
    let message = BuildError::ByzantineOutOfRange { rank: 9, n: 5 }.to_string();
    assert!(message.contains("rank 9"), "{message}");
}
