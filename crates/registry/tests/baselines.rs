//! ABD and CAS/CASGC behaviour through the facade: the cluster-level tests
//! that used to live inside `soda_baselines`, now driven via
//! `ClusterBuilder`.

use soda_registry::{ClusterBuilder, ProtocolKind, RegisterCluster};
use soda_simnet::{NetworkConfig, SimTime};

fn abd(n: usize, f: usize) -> ClusterBuilder {
    ClusterBuilder::new(ProtocolKind::Abd, n, f)
}

fn cas(n: usize, f: usize) -> ClusterBuilder {
    ClusterBuilder::new(ProtocolKind::Cas, n, f)
}

fn casgc(n: usize, f: usize, delta: usize) -> ClusterBuilder {
    ClusterBuilder::new(ProtocolKind::Casgc { gc: delta }, n, f)
}

// ---------------------------------------------------------------------------
// ABD
// ---------------------------------------------------------------------------

#[test]
fn abd_storage_cost_is_n_copies() {
    let value = vec![3u8; 4096];
    let mut cluster = abd(6, 2)
        .with_seed(2)
        .with_network(NetworkConfig::uniform(5))
        .with_clients(1, 0)
        .build()
        .unwrap();
    cluster.invoke_write(0, value.clone());
    cluster.run_to_quiescence();
    // Every server that received the store holds the full value; with no
    // crashes all n do.
    assert_eq!(cluster.total_stored_bytes(), 6 * value.len() as u64);
}

#[test]
fn abd_operations_survive_f_crashes() {
    let mut cluster = abd(5, 2)
        .with_seed(4)
        .with_network(NetworkConfig::uniform(6))
        .build()
        .unwrap();
    cluster.crash_server_at(SimTime::ZERO, 0);
    cluster.crash_server_at(SimTime::ZERO, 4);
    cluster.invoke_write(0, b"still here".to_vec());
    cluster.run_to_quiescence();
    cluster.invoke_read(0);
    cluster.run_to_quiescence();
    let ops = cluster.completed_ops();
    assert_eq!(ops.len(), 2);
    assert_eq!(ops[1].value.as_deref(), Some(b"still here".as_slice()));
}

#[test]
fn abd_sequential_writes_are_ordered_by_tags() {
    let mut cluster = abd(4, 1)
        .with_seed(5)
        .with_network(NetworkConfig::uniform(3))
        .with_clients(1, 0)
        .build()
        .unwrap();
    for i in 0..4u8 {
        cluster.invoke_write(0, vec![i]);
    }
    cluster.run_to_quiescence();
    let ops = cluster.completed_ops();
    assert_eq!(ops.len(), 4);
    for pair in ops.windows(2) {
        assert!(pair[0].tag < pair[1].tag);
        assert!(pair[0].completed_at <= pair[1].completed_at);
    }
}

#[test]
fn abd_write_communication_cost_is_order_n() {
    let value_size = 2000usize;
    let mut cluster = abd(8, 3)
        .with_seed(6)
        .with_network(NetworkConfig::uniform(5))
        .with_clients(1, 0)
        .build()
        .unwrap();
    cluster.invoke_write(0, vec![1u8; value_size]);
    cluster.run_to_quiescence();
    let bytes = cluster.stats().data_bytes_sent;
    let normalized = bytes as f64 / value_size as f64;
    // Phase 2 ships the value to all n = 8 servers; phase 1 responses carry
    // the (empty) initial value. The normalized cost must be close to n and
    // far above SODA's coded cost of ~n/(n-f) per element.
    assert!(normalized >= 8.0, "normalized write cost {normalized}");
    assert!(normalized <= 9.0, "normalized write cost {normalized}");
}

#[test]
fn abd_read_cost_counts_the_write_back() {
    let value_size = 2000usize;
    let mut cluster = abd(5, 2)
        .with_seed(9)
        .with_network(NetworkConfig::uniform(5))
        .build()
        .unwrap();
    cluster.invoke_write(0, vec![1u8; value_size]);
    cluster.run_to_quiescence();
    let before = cluster.stats();
    cluster.invoke_read(0);
    cluster.run_to_quiescence();
    let window = cluster.stats().since(&before);
    let cost = cluster.read_cost_bytes(&window, 0) as f64 / value_size as f64;
    // The reader receives the value from a majority AND writes it back to all
    // n servers, so the two-way cost is far above the receive-only cost.
    assert!(cost >= 5.0, "two-way ABD read cost {cost}");
}

// ---------------------------------------------------------------------------
// CAS / CASGC
// ---------------------------------------------------------------------------

#[test]
fn cas_quorum_and_k_parameters() {
    let cluster = cas(9, 2).build().unwrap();
    assert_eq!(cluster.descriptor().k(), Some(5)); // k = n - 2f
}

#[test]
fn cas_tolerates_f_crashes() {
    let mut cluster = cas(7, 2)
        .with_seed(3)
        .with_network(NetworkConfig::uniform(7))
        .build()
        .unwrap();
    cluster.crash_server_at(SimTime::ZERO, 0);
    cluster.crash_server_at(SimTime::ZERO, 6);
    cluster.invoke_write(0, b"resilient cas".to_vec());
    cluster.run_to_quiescence();
    cluster.invoke_read(0);
    cluster.run_to_quiescence();
    let ops = cluster.completed_ops();
    assert_eq!(ops.len(), 2);
    assert_eq!(ops[1].value.as_deref(), Some(b"resilient cas".as_slice()));
}

#[test]
fn cas_without_gc_accumulates_versions() {
    let mut cluster = cas(5, 1)
        .with_seed(4)
        .with_network(NetworkConfig::uniform(7))
        .build_cas()
        .unwrap();
    for i in 0..5u8 {
        cluster.invoke_write(0, vec![i; 300]);
    }
    cluster.run_to_quiescence();
    // Initial version + 5 writes, no GC.
    assert_eq!(cluster.max_stored_versions(), 6);
}

#[test]
fn casgc_bounds_stored_versions_to_delta_plus_one() {
    let delta = 1usize;
    let mut cluster = casgc(5, 1, delta)
        .with_seed(5)
        .with_network(NetworkConfig::uniform(7))
        .build_cas()
        .unwrap();
    for i in 0..6u8 {
        cluster.invoke_write(0, vec![i; 300]);
    }
    cluster.run_to_quiescence();
    assert!(
        cluster.max_stored_versions() <= delta + 1,
        "stored versions {} exceed δ+1 = {}",
        cluster.max_stored_versions(),
        delta + 1
    );
}

#[test]
fn casgc_storage_cost_tracks_paper_formula() {
    let (n, f, delta) = (6, 1, 2usize);
    let value_size = 3000usize;
    let mut cluster = casgc(n, f, delta)
        .with_seed(6)
        .with_network(NetworkConfig::uniform(4))
        .with_clients(1, 0)
        .build()
        .unwrap();
    for i in 0..8u8 {
        cluster.invoke_write(0, vec![i; value_size]);
    }
    cluster.run_to_quiescence();
    let normalized = cluster.total_stored_bytes() as f64 / value_size as f64;
    let formula = cluster.descriptor().paper_storage_cost();
    assert!(
        normalized <= formula + 0.2,
        "measured {normalized:.2} exceeds paper bound {formula:.2}"
    );
    assert!(
        normalized > formula * 0.6,
        "measured {normalized:.2} implausibly below bound {formula:.2}"
    );
}

#[test]
fn cas_write_communication_cost_matches_n_over_n_minus_2f() {
    let (n, f) = (8, 2);
    let value_size = 4000usize;
    let mut cluster = cas(n, f)
        .with_seed(7)
        .with_network(NetworkConfig::uniform(5))
        .with_clients(1, 0)
        .build()
        .unwrap();
    cluster.invoke_write(0, vec![9u8; value_size]);
    cluster.run_to_quiescence();
    let normalized = cluster.stats().data_bytes_sent as f64 / value_size as f64;
    let formula = n as f64 / (n - 2 * f) as f64;
    assert!(
        (normalized - formula).abs() < 0.2,
        "measured {normalized:.2} vs formula {formula:.2}"
    );
}

#[test]
fn cas_sequential_writes_have_increasing_tags() {
    let mut cluster = cas(5, 2)
        .with_seed(8)
        .with_network(NetworkConfig::uniform(7))
        .with_clients(1, 0)
        .build()
        .unwrap();
    for i in 0..4u8 {
        cluster.invoke_write(0, vec![i]);
    }
    cluster.run_to_quiescence();
    let ops = cluster.completed_ops();
    assert_eq!(ops.len(), 4);
    for pair in ops.windows(2) {
        assert!(pair[0].tag < pair[1].tag);
    }
}
