//! SODA / SODAerr behaviour through the facade: the cluster-level tests that
//! used to live inside `soda::harness`, now driven via `ClusterBuilder`, plus
//! randomized workload-shape executions (the former property-based suite,
//! rewritten over the deterministic `rand` shim).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use soda_registry::{ClusterBuilder, ProtocolKind, RegisterCluster};
use soda_simnet::{NetworkConfig, SimTime};

fn soda(n: usize, f: usize) -> ClusterBuilder {
    ClusterBuilder::new(ProtocolKind::Soda, n, f)
}

#[test]
fn single_write_then_read_round_trips() {
    let mut cluster = soda(5, 2).with_seed(3).build_soda().unwrap();
    cluster.invoke_write(0, b"abc".to_vec());
    cluster.run_to_quiescence();
    cluster.invoke_read(0);
    cluster.run_to_quiescence();
    let ops = cluster.completed_ops();
    assert_eq!(ops.len(), 2);
    assert!(ops[0].kind.is_write());
    assert!(ops[1].kind.is_read());
    assert_eq!(ops[1].value.as_deref(), Some(b"abc".as_slice()));
    assert_eq!(ops[1].tag, ops[0].tag);
    // All servers eventually store the written tag (uniformity).
    for rank in 0..5 {
        assert_eq!(cluster.stored_tag(rank), ops[0].tag);
    }
    // No reader remains registered anywhere after quiescence.
    assert_eq!(cluster.total_registered_readers(), 0);
}

#[test]
fn storage_cost_matches_n_over_n_minus_f() {
    let value = vec![7u8; 6000];
    let mut cluster = soda(6, 2).with_seed(1).build().unwrap();
    cluster.invoke_write(0, value.clone());
    cluster.run_to_quiescence();
    let stored = cluster.total_stored_bytes() as f64 / value.len() as f64;
    let expected = 6.0 / 4.0;
    // Chunking overhead (length header + padding) is a few bytes per
    // element, so allow a small tolerance.
    assert!(
        (stored - expected).abs() < 0.05,
        "normalized storage {stored:.3} vs expected {expected:.3}"
    );
}

#[test]
fn operations_complete_despite_f_crashes() {
    let mut cluster = soda(5, 2).with_seed(9).build().unwrap();
    // Crash two servers right away.
    cluster.crash_server_at(SimTime::ZERO, 1);
    cluster.crash_server_at(SimTime::ZERO, 3);
    cluster.invoke_write(0, b"resilient".to_vec());
    cluster.run_to_quiescence();
    cluster.invoke_read(0);
    cluster.run_to_quiescence();
    let ops = cluster.completed_ops();
    assert_eq!(ops.len(), 2, "write and read must both complete");
    assert_eq!(ops[1].value.as_deref(), Some(b"resilient".as_slice()));
}

#[test]
fn sodaerr_cluster_reads_correctly_with_faulty_disks() {
    let mut cluster = ClusterBuilder::new(ProtocolKind::SodaErr { e: 1 }, 7, 2)
        .with_seed(5)
        .with_faulty_disks(vec![2])
        .build_soda()
        .unwrap();
    cluster.invoke_write(0, b"error protected".to_vec());
    cluster.run_to_quiescence();
    cluster.invoke_read(0);
    cluster.run_to_quiescence();
    let ops = cluster.completed_ops();
    let read = ops
        .iter()
        .find(|o| o.kind.is_read())
        .expect("read completed");
    assert_eq!(read.value.as_deref(), Some(b"error protected".as_slice()));
    assert_eq!(cluster.decode_failures(), 0);
}

#[test]
fn concurrent_writers_and_readers_all_terminate() {
    let mut cluster = soda(5, 2)
        .with_seed(42)
        .with_clients(2, 2)
        .build_soda()
        .unwrap();
    for writer in 0..2usize {
        for round in 0..3u64 {
            cluster.invoke_write_at(
                SimTime::from_ticks(round * 7),
                writer,
                format!("writer {writer} round {round}").into_bytes(),
            );
        }
    }
    for reader in 0..2usize {
        for round in 0..3u64 {
            cluster.invoke_read_at(SimTime::from_ticks(3 + round * 9), reader);
        }
    }
    let outcome = cluster.run_to_quiescence();
    assert!(!outcome.hit_event_cap, "protocol must quiesce");
    let ops = cluster.completed_ops();
    assert_eq!(ops.len(), 2 * 3 + 2 * 3);
    assert_eq!(cluster.total_registered_readers(), 0);
}

/// One randomized workload shape: delays, operation mix, timing and crash
/// schedule all drawn from a seeded generator (formerly a proptest strategy).
fn run_random_shape(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 7usize;
    let f = 2usize;
    let delay = rng.gen_range(1u64..25);
    let mut cluster = soda(n, f)
        .with_seed(rng.gen::<u64>())
        .with_clients(2, 2)
        .with_network(NetworkConfig::uniform(delay))
        .build_soda()
        .unwrap();
    // At most f distinct servers crash.
    let mut crashed = std::collections::BTreeSet::new();
    for _ in 0..rng.gen_range(0usize..3) {
        let rank = rng.gen_range(0usize..n);
        if crashed.len() < f && crashed.insert(rank) {
            cluster.crash_server_at(SimTime::from_ticks(rng.gen_range(0u64..150)), rank);
        }
    }
    let num_writes = rng.gen_range(1usize..6);
    for i in 0..num_writes {
        let writer = rng.gen_range(0usize..2);
        cluster.invoke_write_at(
            SimTime::from_ticks(rng.gen_range(0u64..200)),
            writer,
            format!("prop-{i}").into_bytes(),
        );
    }
    let num_reads = rng.gen_range(1usize..6);
    for _ in 0..num_reads {
        let reader = rng.gen_range(0usize..2);
        cluster.invoke_read_at(SimTime::from_ticks(rng.gen_range(0u64..200)), reader);
    }

    let outcome = cluster.run_to_quiescence();
    assert!(
        !outcome.hit_event_cap,
        "seed {seed}: execution must quiesce"
    );

    // Liveness: every invoked operation completes (clients never crash in
    // this test and at most f servers do).
    let ops = cluster.completed_ops();
    assert_eq!(ops.len(), num_writes + num_reads, "seed {seed}");

    // Atomicity of the history under the tag order.
    assert!(
        cluster.history(&[]).check_atomicity().is_ok(),
        "seed {seed}"
    );

    // Storage invariant: every live server stores exactly one coded element,
    // whose tag is one of the completed writes' tags (or the initial tag).
    let write_tags: std::collections::BTreeSet<_> = ops
        .iter()
        .filter(|o| o.kind.is_write())
        .map(|o| o.tag)
        .collect();
    for rank in 0..n {
        if crashed.contains(&rank) {
            continue;
        }
        let tag = cluster.stored_tag(rank);
        assert!(
            tag.is_initial() || write_tags.contains(&tag),
            "seed {seed}: server {rank} stores an unknown tag {tag:?}"
        );
    }

    // Cleanup: no *non-faulty* server keeps a reader registered once
    // everything quiesced (crashed servers may die holding a registration;
    // Theorem 5.5 only speaks about non-faulty servers).
    let live_registered: usize = (0..n)
        .filter(|rank| !crashed.contains(rank))
        .map(|rank| cluster.registered_readers(rank))
        .sum();
    assert_eq!(live_registered, 0, "seed {seed}");
}

#[test]
fn every_generated_execution_terminates_and_is_atomic() {
    for seed in 0..48 {
        run_random_shape(seed);
    }
}

#[test]
fn quiescent_servers_converge_when_no_reads_run() {
    // With only writes, MD-VALUE uniformity forces every non-faulty server
    // to end up with the same (highest) tag.
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let delay = rng.gen_range(1u64..20);
        let num_writes = rng.gen_range(1usize..5);
        let mut cluster = soda(5, 2)
            .with_seed(rng.gen::<u64>())
            .with_network(NetworkConfig::uniform(delay))
            .build_soda()
            .unwrap();
        for i in 0..num_writes {
            cluster.invoke_write(0, vec![i as u8; 64]);
        }
        cluster.run_to_quiescence();
        let tags: Vec<_> = (0..5).map(|r| cluster.stored_tag(r)).collect();
        assert!(
            tags.windows(2).all(|p| p[0] == p[1]),
            "seed {seed}: tags diverge: {tags:?}"
        );
        let ops = cluster.completed_ops();
        assert_eq!(ops.len(), num_writes, "seed {seed}");
        assert_eq!(tags[0], ops.last().unwrap().tag, "seed {seed}");
    }
}
