//! The protocol-agnostic client API over a simulated atomic-register
//! deployment.

use crate::kind::ClusterDescriptor;
use crate::record::{
    history_from_records, history_with_pending, OpRecord, PendingWriteRecord, RepairReport,
};
use soda_consistency::History;
use soda_simnet::{ProcessId, RunOutcome, SimTime, Stats};
use std::any::Any;

/// One client API over every register emulation in this workspace (SODA,
/// SODAerr, ABD, CAS, CASGC).
///
/// A cluster exposes `num_writers` writer handles and `num_readers` reader
/// handles, addressed by index. For SODA the two map onto distinct writer and
/// reader processes; for ABD and CAS (whose clients perform both kinds of
/// operation) the facade partitions the client processes into a writer range
/// and a reader range, so the same scenario code drives all five protocols.
///
/// Invocations are *queued*: asking a busy client for another operation is
/// legal and the client starts it once the current one completes. Crash
/// injection, deterministic scheduling (`*_at` methods take simulated times)
/// and the cost accounting all behave identically across implementations, so
/// measured numbers are directly comparable — which is the whole point of the
/// paper's Table I.
///
/// Clusters are `Send` (every process, message and RNG in the stack is), and
/// boxed clusters are `'static`, so higher layers — the sharded store in
/// `crates/store` — can drive disjoint clusters from parallel OS threads,
/// including moving them onto a persistent worker pool and back.
pub trait RegisterCluster: Send {
    /// The static description of this cluster (protocol, `n`, `f`, client
    /// counts).
    fn descriptor(&self) -> &ClusterDescriptor;

    /// The simulated process id behind writer handle `writer`.
    ///
    /// # Panics
    /// Panics if `writer >= descriptor().num_writers`.
    fn writer_process(&self, writer: usize) -> ProcessId;

    /// The simulated process id behind reader handle `reader`.
    ///
    /// # Panics
    /// Panics if `reader >= descriptor().num_readers`.
    fn reader_process(&self, reader: usize) -> ProcessId;

    /// Asks writer `writer` to write `value` now (queued if it is busy).
    fn invoke_write(&mut self, writer: usize, value: Vec<u8>);

    /// Asks writer `writer` to write `value` at simulated time `at`.
    fn invoke_write_at(&mut self, at: SimTime, writer: usize, value: Vec<u8>);

    /// Asks reader `reader` to read now (queued if it is busy).
    fn invoke_read(&mut self, reader: usize);

    /// Asks reader `reader` to read at simulated time `at`.
    fn invoke_read_at(&mut self, at: SimTime, reader: usize);

    /// Crashes the server with the given rank at time `at`.
    fn crash_server_at(&mut self, at: SimTime, rank: usize);

    /// Schedules the **repair** of the server with the given rank at time
    /// `at`: a fresh replacement with empty state takes over the rank's
    /// process id and re-acquires its state from survivors — by re-encoding
    /// coded elements fetched from `k` (SODA) or `k + 2e` (SODAerr)
    /// survivors, by adopting the majority-maximum `(tag, value)` pair
    /// (ABD), or by full-replica state transfer (CAS / CASGC).
    ///
    /// Until the repair completes the replacement counts against the crash
    /// budget `f` (see [`RegisterCluster::dead_or_repairing`]); the cluster
    /// tolerates at most `f` *currently*-dead-or-repairing servers at any
    /// instant, not `f` crashes in total.
    fn repair_server_at(&mut self, at: SimTime, rank: usize);

    /// Number of servers currently dead **or still repairing** — the
    /// quantity the dynamic fault-tolerance invariant bounds by `f`.
    fn dead_or_repairing(&self) -> usize;

    /// One report per rank whose *current* incarnation is (or was) a
    /// replacement, carrying repair bandwidth and latency.
    fn repair_reports(&self) -> Vec<RepairReport>;

    /// Total repair bandwidth (bytes of value / coded-element data received
    /// by replacements) across all ranks' current incarnations.
    fn repair_traffic_bytes(&self) -> u64 {
        self.repair_reports().iter().map(|r| r.traffic_bytes).sum()
    }

    /// Crashes the process behind writer handle `writer` at time `at`.
    fn crash_writer_at(&mut self, at: SimTime, writer: usize);

    /// Crashes the process behind reader handle `reader` at time `at`.
    fn crash_reader_at(&mut self, at: SimTime, reader: usize);

    /// Runs the simulation until no events remain.
    fn run_to_quiescence(&mut self) -> RunOutcome;

    /// Runs the simulation until the given deadline.
    fn run_until(&mut self, deadline: SimTime) -> RunOutcome;

    /// Current simulated time.
    fn now(&self) -> SimTime;

    /// Message statistics accumulated so far.
    fn stats(&self) -> Stats;

    /// Appends every operation completed by all clients to `out`, in the
    /// shared record type, ordered by completion time. Implementations must
    /// only append — the store's ticket-settling path reuses one scratch
    /// buffer across every cluster it drains, clearing it between calls
    /// itself.
    fn completed_ops_into(&self, out: &mut Vec<OpRecord>);

    /// All operations completed by all clients, in the shared record type,
    /// ordered by completion time. Allocating convenience wrapper around
    /// [`Self::completed_ops_into`].
    fn completed_ops(&self) -> Vec<OpRecord> {
        let mut ops = Vec::new();
        self.completed_ops_into(&mut ops);
        ops
    }

    /// Writes that were invoked but have not completed (writer still
    /// mid-operation, crashed mid-operation, or starved by the network
    /// adversary). Writes whose tag the protocol has not assigned yet are
    /// included with `tag: None`; queued-but-unstarted invocations are not
    /// reported at all.
    fn pending_writes(&self) -> Vec<PendingWriteRecord>;

    /// Bytes of object-value data stored at each server, by rank (the
    /// per-server contribution to the paper's total storage cost).
    fn stored_bytes_per_server(&self) -> Vec<u64>;

    /// Total bytes of object-value data stored across all servers.
    fn total_stored_bytes(&self) -> u64 {
        self.stored_bytes_per_server().iter().sum()
    }

    /// Decode-matrix cache counters of the cluster's erasure code (hits,
    /// misses, inversions). Replication-based protocols, which never invert a
    /// matrix, report all zeros.
    fn decode_cache_stats(&self) -> soda_protocol::CodeCacheStats {
        soda_protocol::CodeCacheStats::default()
    }

    /// The value-data bytes attributable to one read, given a windowed
    /// [`Stats`] covering it (see [`Stats::since`]).
    ///
    /// The default counts bytes *delivered to* the reader. ABD overrides this
    /// to also count the bytes its write-back phase sends, since the paper
    /// charges both directions to the read.
    fn read_cost_bytes(&self, window: &Stats, reader: usize) -> u64 {
        window
            .per_process
            .get(self.reader_process(reader).index())
            .map(|p| p.data_bytes_received)
            .unwrap_or(0)
    }

    /// Builds the atomicity-checkable history of everything completed so far.
    ///
    /// In fault-free executions this is the whole story. Under crash or
    /// network faults, prefer [`RegisterCluster::closed_history`]: a
    /// completed read may return the value of a write that never completed,
    /// which this history cannot explain.
    fn history(&self, initial_value: &[u8]) -> History {
        history_from_records(initial_value, &self.completed_ops())
    }

    /// Builds the history of completed operations *closed* under pending
    /// writes (see [`history_with_pending`]), which is the right input for
    /// atomicity checking of executions with crashes or network faults.
    fn closed_history(&self, initial_value: &[u8]) -> History {
        history_with_pending(initial_value, &self.completed_ops(), &self.pending_writes())
    }

    /// Downcasting support for protocol-specific state inspection (e.g.
    /// SODA's reader-registration bookkeeping).
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcasting support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}
