//! [`RegisterCluster`] over the CAS / CASGC coded baseline.

use crate::builder::ClusterBuilder;
use crate::cluster::RegisterCluster;
use crate::kind::{ClusterDescriptor, ProtocolKind};
use crate::record::{sort_records, OpKind, OpRecord, PendingWriteRecord, RepairReport};
use soda_baselines::cas::{CasCluster, CasParams};
use soda_protocol::MdsCode;
use soda_simnet::{ProcessId, RunOutcome, SimTime, Stats};
use std::any::Any;

/// A CAS / CASGC deployment behind the shared facade.
///
/// Like ABD, CAS clients perform both writes and reads, so the facade builds
/// `num_writers + num_readers` clients and partitions them into writer and
/// reader handle ranges.
pub struct CasRegisterCluster {
    inner: CasCluster,
    writers: Vec<ProcessId>,
    readers: Vec<ProcessId>,
    descriptor: ClusterDescriptor,
}

impl CasRegisterCluster {
    pub(crate) fn from_builder(builder: ClusterBuilder) -> Self {
        let descriptor = builder.descriptor();
        let gc_versions = match builder.kind {
            ProtocolKind::Casgc { gc } => Some(gc + 1),
            _ => None,
        };
        let mut inner = CasCluster::build(CasParams {
            n: builder.n,
            f: builder.f,
            gc_versions,
            num_clients: builder.num_writers + builder.num_readers,
            seed: builder.seed,
            network: builder.network,
            initial_value: builder.initial_value,
        });
        inner.sim_mut().set_net_fault_plan(builder.net_faults);
        let clients = inner.clients().to_vec();
        let (writers, readers) = clients.split_at(builder.num_writers);
        CasRegisterCluster {
            writers: writers.to_vec(),
            readers: readers.to_vec(),
            inner,
            descriptor,
        }
    }

    /// The wrapped cluster (full access to CAS-specific state).
    pub fn inner(&self) -> &CasCluster {
        &self.inner
    }

    /// Mutable access to the wrapped cluster.
    pub fn inner_mut(&mut self) -> &mut CasCluster {
        &mut self.inner
    }

    /// Maximum number of versions with stored elements at any single server
    /// (the quantity CASGC's `δ + 1` bound constrains).
    pub fn max_stored_versions(&self) -> usize {
        self.inner.max_stored_versions()
    }
}

impl RegisterCluster for CasRegisterCluster {
    fn descriptor(&self) -> &ClusterDescriptor {
        &self.descriptor
    }

    fn writer_process(&self, writer: usize) -> ProcessId {
        *self.writers.get(writer).unwrap_or_else(|| {
            panic!(
                "writer handle {writer} out of range: cluster has {} writers",
                self.writers.len()
            )
        })
    }

    fn reader_process(&self, reader: usize) -> ProcessId {
        *self.readers.get(reader).unwrap_or_else(|| {
            panic!(
                "reader handle {reader} out of range: cluster has {} readers",
                self.readers.len()
            )
        })
    }

    fn invoke_write(&mut self, writer: usize, value: Vec<u8>) {
        let id = self.writer_process(writer);
        self.inner.invoke_write(id, value);
    }

    fn invoke_write_at(&mut self, at: SimTime, writer: usize, value: Vec<u8>) {
        let id = self.writer_process(writer);
        self.inner.invoke_write_at(at, id, value);
    }

    fn invoke_read(&mut self, reader: usize) {
        let id = self.reader_process(reader);
        self.inner.invoke_read(id);
    }

    fn invoke_read_at(&mut self, at: SimTime, reader: usize) {
        let id = self.reader_process(reader);
        self.inner.invoke_read_at(at, id);
    }

    fn crash_server_at(&mut self, at: SimTime, rank: usize) {
        self.inner.crash_server_at(at, rank);
    }

    fn repair_server_at(&mut self, at: SimTime, rank: usize) {
        self.inner.repair_server_at(at, rank);
    }

    fn dead_or_repairing(&self) -> usize {
        self.inner.dead_or_repairing()
    }

    fn repair_reports(&self) -> Vec<RepairReport> {
        self.inner
            .repair_statuses()
            .into_iter()
            .enumerate()
            .filter_map(|(rank, status)| {
                status.map(|s| RepairReport {
                    rank,
                    started_at: s.started_at,
                    completed_at: s.completed_at,
                    traffic_bytes: s.traffic_bytes,
                    error: s.failed.then_some(crate::record::RepairError::Unreachable),
                })
            })
            .collect()
    }

    fn crash_writer_at(&mut self, at: SimTime, writer: usize) {
        let id = self.writer_process(writer);
        self.inner.crash_process_at(at, id);
    }

    fn crash_reader_at(&mut self, at: SimTime, reader: usize) {
        let id = self.reader_process(reader);
        self.inner.crash_process_at(at, id);
    }

    fn run_to_quiescence(&mut self) -> RunOutcome {
        self.inner.run_to_quiescence()
    }

    fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        self.inner.run_until(deadline)
    }

    fn now(&self) -> SimTime {
        self.inner.now()
    }

    fn stats(&self) -> Stats {
        self.inner.stats()
    }

    fn decode_cache_stats(&self) -> soda_protocol::CodeCacheStats {
        self.inner.config().code().cache_stats()
    }

    fn completed_ops_into(&self, out: &mut Vec<OpRecord>) {
        let start = out.len();
        for &client in self.inner.clients() {
            for record in self.inner.client_records(client) {
                out.push(OpRecord {
                    client: client.0 as u64,
                    seq: record.seq,
                    kind: if record.is_read {
                        OpKind::Read
                    } else {
                        OpKind::Write
                    },
                    invoked_at: record.invoked_at,
                    completed_at: record.completed_at,
                    tag: record.tag,
                    value: Some(record.value),
                });
            }
        }
        sort_records(&mut out[start..]);
    }

    fn pending_writes(&self) -> Vec<PendingWriteRecord> {
        self.inner
            .pending_writes()
            .into_iter()
            .map(PendingWriteRecord::from)
            .collect()
    }

    fn stored_bytes_per_server(&self) -> Vec<u64> {
        self.inner.stored_bytes_per_server()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
