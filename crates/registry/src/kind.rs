//! Protocol selection and the static description of a built cluster.

/// Which atomic-register algorithm a cluster runs.
///
/// The five variants are exactly the columns the paper's Table I compares:
/// the replication baseline (ABD), the coded baseline with and without
/// garbage collection (CAS, CASGC), and the paper's contributions (SODA,
/// SODAerr).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolKind {
    /// SODA (Section IV): `[n, n − f]` code, storage `n/(n−f)`, elastic read
    /// cost `n/(n−f)·(δw + 1)`, write cost `≤ 5f²`.
    Soda,
    /// SODAerr (Section VI): `[n, n − f − 2e]` code tolerating up to `e`
    /// silently corrupted coded elements per read.
    SodaErr {
        /// Maximum number of corrupted coded elements tolerated per read.
        e: usize,
    },
    /// ABD (Attiya, Bar-Noy, Dolev): full replication; write, read and
    /// storage cost are all `n`.
    Abd,
    /// CAS (Cadambe, Lynch, Médard, Musial): `[n, n − 2f]` code, quorums of
    /// size `n − f`, no garbage collection (storage grows with history).
    Cas,
    /// CASGC: CAS plus garbage collection provisioned for a concurrency
    /// bound `δ`; servers keep coded elements for the `δ + 1` highest
    /// finalized versions, so storage is `n/(n−2f)·(δ + 1)`.
    Casgc {
        /// The provisioned concurrency bound `δ`.
        gc: usize,
    },
}

impl ProtocolKind {
    /// Human-readable algorithm name (as used in Table I).
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolKind::Soda => "SODA",
            ProtocolKind::SodaErr { .. } => "SODAerr",
            ProtocolKind::Abd => "ABD",
            ProtocolKind::Cas => "CAS",
            ProtocolKind::Casgc { .. } => "CASGC",
        }
    }

    /// True for SODA and SODAerr (the kinds that support faulty-disk
    /// injection and the relay ablation switch).
    pub fn is_soda_family(&self) -> bool {
        matches!(self, ProtocolKind::Soda | ProtocolKind::SodaErr { .. })
    }

    /// The error budget `e` (non-zero only for SODAerr).
    pub fn error_budget(&self) -> usize {
        match self {
            ProtocolKind::SodaErr { e } => *e,
            _ => 0,
        }
    }

    /// The MDS code dimension `k` for an `(n, f)` cluster, or `None` for the
    /// replication baseline (which stores full copies). Returns `None` as
    /// well when the parameters leave no valid dimension (`k < 1`).
    pub fn code_dimension(&self, n: usize, f: usize) -> Option<usize> {
        let k = match self {
            ProtocolKind::Soda => n.checked_sub(f)?,
            ProtocolKind::SodaErr { e } => n.checked_sub(f + 2 * e)?,
            ProtocolKind::Abd => return None,
            ProtocolKind::Cas | ProtocolKind::Casgc { .. } => n.checked_sub(2 * f)?,
        };
        (k >= 1).then_some(k)
    }
}

/// Static description of a built cluster: which algorithm it runs and its
/// size parameters. Exposed by every
/// [`RegisterCluster`](crate::RegisterCluster) so generic drivers can label
/// measurements and evaluate the paper's closed-form cost expressions.
#[derive(Clone, Copy, Debug)]
pub struct ClusterDescriptor {
    /// The algorithm.
    pub kind: ProtocolKind,
    /// Number of servers.
    pub n: usize,
    /// Tolerated server crashes.
    pub f: usize,
    /// Number of writer handles.
    pub num_writers: usize,
    /// Number of reader handles.
    pub num_readers: usize,
}

impl ClusterDescriptor {
    /// The MDS code dimension, if the algorithm uses coding.
    pub fn k(&self) -> Option<usize> {
        self.kind.code_dimension(self.n, self.f)
    }

    /// The paper's write communication cost (or bound) for these parameters,
    /// normalized to the value size (Table I).
    pub fn paper_write_cost(&self) -> f64 {
        use soda_protocol::cost::paper;
        match self.kind {
            ProtocolKind::Soda | ProtocolKind::SodaErr { .. } => paper::soda_write_bound(self.f),
            ProtocolKind::Abd => paper::abd_cost(self.n),
            ProtocolKind::Cas | ProtocolKind::Casgc { .. } => {
                paper::casgc_communication(self.n, self.f)
            }
        }
    }

    /// The paper's read communication cost for these parameters and `delta_w`
    /// writes concurrent with the read, normalized to the value size.
    pub fn paper_read_cost(&self, delta_w: usize) -> f64 {
        use soda_protocol::cost::paper;
        match self.kind {
            ProtocolKind::Soda => paper::soda_read(self.n, self.f, delta_w),
            ProtocolKind::SodaErr { e } => paper::sodaerr_read(self.n, self.f, e, delta_w),
            ProtocolKind::Abd => paper::abd_cost(self.n),
            ProtocolKind::Cas | ProtocolKind::Casgc { .. } => {
                paper::casgc_communication(self.n, self.f)
            }
        }
    }

    /// The paper's total storage cost for these parameters, normalized to the
    /// value size. Plain CAS never garbage-collects, so its storage grows
    /// without bound with the number of versions written; this returns
    /// [`f64::INFINITY`] for it.
    pub fn paper_storage_cost(&self) -> f64 {
        use soda_protocol::cost::paper;
        match self.kind {
            ProtocolKind::Soda => paper::soda_storage(self.n, self.f),
            ProtocolKind::SodaErr { e } => paper::sodaerr_storage(self.n, self.f, e),
            ProtocolKind::Abd => paper::abd_cost(self.n),
            ProtocolKind::Cas => f64::INFINITY,
            ProtocolKind::Casgc { gc } => paper::casgc_storage(self.n, self.f, gc),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_table_one() {
        assert_eq!(ProtocolKind::Soda.name(), "SODA");
        assert_eq!(ProtocolKind::SodaErr { e: 1 }.name(), "SODAerr");
        assert_eq!(ProtocolKind::Abd.name(), "ABD");
        assert_eq!(ProtocolKind::Cas.name(), "CAS");
        assert_eq!(ProtocolKind::Casgc { gc: 2 }.name(), "CASGC");
    }

    #[test]
    fn code_dimensions() {
        assert_eq!(ProtocolKind::Soda.code_dimension(5, 2), Some(3));
        assert_eq!(ProtocolKind::SodaErr { e: 1 }.code_dimension(7, 2), Some(3));
        assert_eq!(ProtocolKind::SodaErr { e: 2 }.code_dimension(5, 2), None);
        assert_eq!(ProtocolKind::Abd.code_dimension(5, 2), None);
        assert_eq!(ProtocolKind::Cas.code_dimension(5, 2), Some(1));
        assert_eq!(ProtocolKind::Casgc { gc: 1 }.code_dimension(4, 2), None);
    }

    #[test]
    fn paper_costs_match_table_one_shapes() {
        let soda = ClusterDescriptor {
            kind: ProtocolKind::Soda,
            n: 6,
            f: 2,
            num_writers: 1,
            num_readers: 1,
        };
        assert!((soda.paper_storage_cost() - 1.5).abs() < 1e-9);
        assert!((soda.paper_read_cost(1) - 3.0).abs() < 1e-9);
        assert!((soda.paper_write_cost() - 20.0).abs() < 1e-9);

        let abd = ClusterDescriptor {
            kind: ProtocolKind::Abd,
            ..soda
        };
        assert!((abd.paper_storage_cost() - 6.0).abs() < 1e-9);

        let casgc = ClusterDescriptor {
            kind: ProtocolKind::Casgc { gc: 2 },
            ..soda
        };
        assert!((casgc.paper_storage_cost() - 9.0).abs() < 1e-9);

        let cas = ClusterDescriptor {
            kind: ProtocolKind::Cas,
            ..soda
        };
        assert!(cas.paper_storage_cost().is_infinite());
    }
}
