//! [`RegisterCluster`] over the SODA / SODAerr harness.

use crate::builder::ClusterBuilder;
use crate::cluster::RegisterCluster;
use crate::kind::ClusterDescriptor;
use crate::record::{sort_records, OpKind, OpRecord, PendingWriteRecord, RepairReport};
use soda::harness::{ClusterConfig, SodaCluster};
use soda_protocol::Tag;
use soda_simnet::{ProcessId, RunOutcome, SimTime, Stats};
use std::any::Any;
use std::collections::BTreeSet;

/// A SODA or SODAerr deployment behind the shared facade.
///
/// Beyond the [`RegisterCluster`] API it exposes the SODA-specific state the
/// paper's theorems talk about (reader registrations, `H` bookkeeping,
/// per-server stored tags), plus [`inner`](Self::inner) for anything else.
pub struct SodaRegisterCluster {
    inner: SodaCluster,
    descriptor: ClusterDescriptor,
}

impl SodaRegisterCluster {
    pub(crate) fn from_builder(builder: ClusterBuilder) -> Self {
        let descriptor = builder.descriptor();
        let mut config = ClusterConfig::new(builder.n, builder.f)
            .with_seed(builder.seed)
            .with_clients(builder.num_writers, builder.num_readers)
            .with_error_tolerance(builder.kind.error_budget())
            .with_network(builder.network)
            .with_initial_value(builder.initial_value)
            .with_faulty_disks(builder.faulty_disks);
        if !builder.relay_enabled {
            config = config.with_relay_disabled();
        }
        let mut inner = SodaCluster::build(config);
        let mut plan = builder.net_faults;
        if !builder.byzantine_servers.is_empty() {
            // Servers are registered first, so rank i is ProcessId(i).
            plan = plan.with_corrupt_senders(
                builder
                    .byzantine_servers
                    .iter()
                    .map(|&r| ProcessId(r as u32)),
            );
            let ranks: BTreeSet<usize> = builder.byzantine_servers.iter().copied().collect();
            inner
                .sim_mut()
                .set_corruption_hook(soda::coded_element_corruptor(ranks));
        }
        inner.sim_mut().set_net_fault_plan(plan);
        SodaRegisterCluster { inner, descriptor }
    }

    /// The wrapped harness (full access to SODA-specific state).
    pub fn inner(&self) -> &SodaCluster {
        &self.inner
    }

    /// Mutable access to the wrapped harness.
    pub fn inner_mut(&mut self) -> &mut SodaCluster {
        &mut self.inner
    }

    /// The tag stored by the server with the given rank.
    pub fn stored_tag(&self, rank: usize) -> Tag {
        self.inner.server_state(rank).stored_tag()
    }

    /// Reader registrations still held by the server with the given rank.
    pub fn registered_readers(&self, rank: usize) -> usize {
        self.inner.server_state(rank).registered_readers()
    }

    /// Total reader registrations still held across all servers (Theorem 5.5
    /// implies this returns to zero after all reads finish or crash).
    pub fn total_registered_readers(&self) -> usize {
        self.inner.total_registered_readers()
    }

    /// Total `H` bookkeeping entries left across servers.
    pub fn total_history_entries(&self) -> usize {
        self.inner.total_history_entries()
    }

    /// Total decode failures across all readers (must stay zero whenever the
    /// error budget covers the corrupted disks).
    pub fn decode_failures(&self) -> u64 {
        (0..self.descriptor.num_readers)
            .map(|r| {
                let id = self.inner.readers()[r];
                self.inner.reader_state(id).decode_failures()
            })
            .sum()
    }
}

impl RegisterCluster for SodaRegisterCluster {
    fn descriptor(&self) -> &ClusterDescriptor {
        &self.descriptor
    }

    fn writer_process(&self, writer: usize) -> ProcessId {
        let writers = self.inner.writers();
        *writers.get(writer).unwrap_or_else(|| {
            panic!(
                "writer handle {writer} out of range: cluster has {} writers",
                writers.len()
            )
        })
    }

    fn reader_process(&self, reader: usize) -> ProcessId {
        let readers = self.inner.readers();
        *readers.get(reader).unwrap_or_else(|| {
            panic!(
                "reader handle {reader} out of range: cluster has {} readers",
                readers.len()
            )
        })
    }

    fn invoke_write(&mut self, writer: usize, value: Vec<u8>) {
        let id = self.writer_process(writer);
        self.inner.invoke_write(id, value);
    }

    fn invoke_write_at(&mut self, at: SimTime, writer: usize, value: Vec<u8>) {
        let id = self.writer_process(writer);
        self.inner.invoke_write_at(at, id, value);
    }

    fn invoke_read(&mut self, reader: usize) {
        let id = self.reader_process(reader);
        self.inner.invoke_read(id);
    }

    fn invoke_read_at(&mut self, at: SimTime, reader: usize) {
        let id = self.reader_process(reader);
        self.inner.invoke_read_at(at, id);
    }

    fn crash_server_at(&mut self, at: SimTime, rank: usize) {
        self.inner.crash_server_at(at, rank);
    }

    fn repair_server_at(&mut self, at: SimTime, rank: usize) {
        self.inner.repair_server_at(at, rank);
    }

    fn dead_or_repairing(&self) -> usize {
        self.inner.dead_or_repairing()
    }

    fn repair_reports(&self) -> Vec<RepairReport> {
        self.inner
            .repair_statuses()
            .into_iter()
            .enumerate()
            .filter_map(|(rank, status)| {
                status.map(|s| RepairReport {
                    rank,
                    started_at: s.started_at,
                    completed_at: s.completed_at,
                    traffic_bytes: s.traffic_bytes,
                    error: (s.phase == soda::RepairPhase::Failed)
                        .then_some(crate::record::RepairError::Unreachable),
                })
            })
            .collect()
    }

    fn crash_writer_at(&mut self, at: SimTime, writer: usize) {
        let id = self.writer_process(writer);
        self.inner.crash_process_at(at, id);
    }

    fn crash_reader_at(&mut self, at: SimTime, reader: usize) {
        let id = self.reader_process(reader);
        self.inner.crash_process_at(at, id);
    }

    fn run_to_quiescence(&mut self) -> RunOutcome {
        self.inner.run_to_quiescence()
    }

    fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        self.inner.run_until(deadline)
    }

    fn now(&self) -> SimTime {
        self.inner.now()
    }

    fn stats(&self) -> Stats {
        self.inner.stats()
    }

    fn decode_cache_stats(&self) -> soda_protocol::CodeCacheStats {
        self.inner.soda_config().code().cache_stats()
    }

    fn completed_ops_into(&self, out: &mut Vec<OpRecord>) {
        let start = out.len();
        out.extend(
            self.inner
                .completed_ops()
                .into_iter()
                .map(|record| OpRecord {
                    client: record.op.client.0 as u64,
                    seq: record.op.seq,
                    kind: match record.kind {
                        soda::OpKind::Write => OpKind::Write,
                        soda::OpKind::Read => OpKind::Read,
                    },
                    invoked_at: record.invoked_at,
                    completed_at: record.completed_at,
                    tag: record.tag,
                    value: record.value,
                }),
        );
        sort_records(&mut out[start..]);
    }

    fn pending_writes(&self) -> Vec<PendingWriteRecord> {
        self.inner
            .pending_writes()
            .into_iter()
            .map(|write| PendingWriteRecord {
                client: write.op.client.0 as u64,
                seq: write.op.seq,
                invoked_at: write.invoked_at,
                tag: write.tag,
                value: write.value,
            })
            .collect()
    }

    fn stored_bytes_per_server(&self) -> Vec<u64> {
        self.inner.stored_bytes_per_server()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
