//! The protocol-independent operation record shared by every
//! [`RegisterCluster`](crate::RegisterCluster) implementation.
//!
//! Each protocol keeps its own internal record type (`soda::OpRecord`,
//! `AbdOpRecord`, `CasOpRecord`); the facade converts them all into this one
//! shape so that scenario runners, experiments and the atomicity checker can
//! consume histories without knowing which algorithm produced them.

use soda_consistency::{History, Kind, Version};
use soda_protocol::Tag;
use soda_simnet::SimTime;

/// Whether an operation was a read or a write.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum OpKind {
    /// A write operation.
    Write,
    /// A read operation.
    Read,
}

impl OpKind {
    /// True for reads.
    pub fn is_read(&self) -> bool {
        matches!(self, OpKind::Read)
    }

    /// True for writes.
    pub fn is_write(&self) -> bool {
        matches!(self, OpKind::Write)
    }
}

/// A completed client operation, in the shared shape every protocol's records
/// are converted into.
#[derive(Clone, Debug)]
pub struct OpRecord {
    /// Identifier of the invoking client (its simulated process id).
    pub client: u64,
    /// Per-client operation sequence number (starts at 1).
    pub seq: u64,
    /// Read or write.
    pub kind: OpKind,
    /// Simulated time of the invocation step.
    pub invoked_at: SimTime,
    /// Simulated time of the response step.
    pub completed_at: SimTime,
    /// The tag associated with the operation (`tag(π)` in the paper).
    pub tag: Tag,
    /// The value written (for writes) or returned (for reads).
    pub value: Option<Vec<u8>>,
}

impl OpRecord {
    /// Operation latency in ticks.
    pub fn latency(&self) -> u64 {
        self.completed_at.since(self.invoked_at)
    }
}

/// A write that was invoked but never completed — the execution ended first,
/// the writer crashed mid-operation, or a network adversary starved it of
/// responses.
///
/// Atomicity is a property of *completed* operations, but a completed read
/// may legitimately return the value of an uncompleted write (the write then
/// linearizes after its invocation even though no response ever happened).
/// Checking a faulty execution therefore needs the history *closed* under
/// pending writes; see [`history_with_pending`] and
/// [`crate::RegisterCluster::closed_history`].
#[derive(Clone, Debug)]
pub struct PendingWriteRecord {
    /// Identifier of the invoking client (its simulated process id).
    pub client: u64,
    /// Per-client operation sequence number (starts at 1).
    pub seq: u64,
    /// Simulated time of the invocation step.
    pub invoked_at: SimTime,
    /// The tag the protocol assigned, once known. `None` while the write is
    /// still in its query phase — no server has seen the value yet, so no
    /// read can have observed it.
    pub tag: Option<Tag>,
    /// The value being written.
    pub value: Vec<u8>,
}

impl From<soda_baselines::PendingWriteInfo> for PendingWriteRecord {
    fn from((client, seq, invoked_at, tag, value): soda_baselines::PendingWriteInfo) -> Self {
        PendingWriteRecord {
            client: client.0 as u64,
            seq,
            invoked_at,
            tag,
            value,
        }
    }
}

/// Why a repair gave up (see [`RepairReport::error`]).
///
/// A failed repair is *retryable*: the replacement halted itself, so the
/// rank is plain dead again, the crash-budget slot it held is released back
/// to "dead" accounting, and a later
/// [`crate::RegisterCluster::repair_server_at`] starts a fresh incarnation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepairError {
    /// The replacement exhausted its bounded retry budget without assembling
    /// a quorum of survivor responses — typically because a partition window
    /// outlived every retry.
    Unreachable,
}

impl std::fmt::Display for RepairError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepairError::Unreachable => {
                write!(f, "survivors unreachable for the whole retry budget")
            }
        }
    }
}

/// Progress report of one server repair, in the shared shape every protocol's
/// repair bookkeeping is converted into (see
/// [`crate::RegisterCluster::repair_reports`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RepairReport {
    /// Rank of the repaired server.
    pub rank: usize,
    /// When the replacement started pulling state from survivors.
    pub started_at: SimTime,
    /// When the repair finished (`None` while still in progress — or, when
    /// [`RepairReport::error`] is set, never).
    pub completed_at: Option<SimTime>,
    /// Bytes of value / coded-element data the replacement received during
    /// the repair (the protocol's repair bandwidth for this server).
    pub traffic_bytes: u64,
    /// Set when the repair gave up instead of completing. The error is
    /// typed and retryable: the rank is plain dead again and
    /// `repair_server_at` can be called anew.
    pub error: Option<RepairError>,
}

impl RepairReport {
    /// Repair latency in ticks (`None` while the repair is in progress).
    pub fn latency(&self) -> Option<u64> {
        self.completed_at.map(|done| done.since(self.started_at))
    }

    /// Whether this repair gave up with a typed error.
    pub fn failed(&self) -> bool {
        self.error.is_some()
    }
}

/// Converts a protocol tag into a checker version.
pub fn version_of_tag(tag: Tag) -> Version {
    Version::new(tag.z, tag.writer.0 as u64)
}

/// Builds a checker [`History`] from shared operation records.
pub fn history_from_records(initial_value: &[u8], records: &[OpRecord]) -> History {
    let mut history = History::new(initial_value.to_vec());
    for record in records {
        history.push(
            record.client,
            match record.kind {
                OpKind::Write => Kind::Write,
                OpKind::Read => Kind::Read,
            },
            record.invoked_at.ticks(),
            record.completed_at.ticks(),
            record.value.clone().unwrap_or_default(),
            version_of_tag(record.tag),
        );
    }
    history
}

/// Builds a checker [`History`] from completed records *plus* pending
/// writes, so faulty executions (crashed writers, adversarial message loss)
/// can be atomicity-checked without spuriously flagging reads of
/// partially-propagated writes as `ReadOfUnknownVersion`.
///
/// A pending write whose tag is known enters the history with a response
/// time of `u64::MAX` (it precedes nothing, so only its invocation
/// constrains the order — exactly the semantics of an operation that never
/// returned). Pending writes without a tag are omitted: their value has not
/// reached any server, so no completed operation can depend on them.
pub fn history_with_pending(
    initial_value: &[u8],
    completed: &[OpRecord],
    pending: &[PendingWriteRecord],
) -> History {
    let mut history = history_from_records(initial_value, completed);
    for write in pending {
        let Some(tag) = write.tag else {
            continue;
        };
        history.push(
            write.client,
            Kind::Write,
            write.invoked_at.ticks(),
            u64::MAX,
            write.value.clone(),
            version_of_tag(tag),
        );
    }
    history
}

/// Sorts records the way every implementation reports them: by completion
/// time, breaking ties by client id and sequence number.
pub(crate) fn sort_records(records: &mut [OpRecord]) {
    records.sort_by_key(|op| (op.completed_at, op.client, op.seq));
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_simnet::ProcessId;

    #[test]
    fn kind_predicates() {
        assert!(OpKind::Read.is_read());
        assert!(!OpKind::Read.is_write());
        assert!(OpKind::Write.is_write());
    }

    #[test]
    fn tag_conversion_preserves_order() {
        let a = version_of_tag(Tag::new(1, ProcessId(5)));
        let b = version_of_tag(Tag::new(2, ProcessId(1)));
        let c = version_of_tag(Tag::new(2, ProcessId(3)));
        assert!(a < b);
        assert!(b < c);
        assert_eq!(version_of_tag(Tag::INITIAL), Version::INITIAL);
    }

    #[test]
    fn records_convert_to_a_checkable_history() {
        let records = vec![
            OpRecord {
                client: 10,
                seq: 1,
                kind: OpKind::Write,
                invoked_at: SimTime::from_ticks(0),
                completed_at: SimTime::from_ticks(20),
                tag: Tag::new(1, ProcessId(10)),
                value: Some(b"x".to_vec()),
            },
            OpRecord {
                client: 11,
                seq: 1,
                kind: OpKind::Read,
                invoked_at: SimTime::from_ticks(30),
                completed_at: SimTime::from_ticks(50),
                tag: Tag::new(1, ProcessId(10)),
                value: Some(b"x".to_vec()),
            },
        ];
        let history = history_from_records(b"", &records);
        assert_eq!(history.len(), 2);
        assert!(history.check_atomicity().is_ok());
        assert_eq!(history.ops()[0].kind, Kind::Write);
        assert_eq!(history.ops()[1].kind, Kind::Read);
    }

    #[test]
    fn latency_is_response_minus_invocation() {
        let rec = OpRecord {
            client: 1,
            seq: 1,
            kind: OpKind::Write,
            invoked_at: SimTime::from_ticks(10),
            completed_at: SimTime::from_ticks(35),
            tag: Tag::INITIAL,
            value: None,
        };
        assert_eq!(rec.latency(), 25);
    }
}
