//! One client API over every atomic-register protocol in this workspace.
//!
//! The paper's whole argument is comparative — Table I pits SODA/SODAerr
//! against ABD (Attiya et al.) and CAS/CASGC (Cadambe et al.) — yet each
//! protocol historically exposed its own incompatible harness
//! (`soda::harness::SodaCluster`, `AbdCluster` with positional-argument
//! construction, `CasCluster`). This crate is the facade that makes the
//! comparison mechanical:
//!
//! * [`ProtocolKind`] — the algorithm to run: `Soda`, `SodaErr { e }`, `Abd`,
//!   `Cas` or `Casgc { gc }`.
//! * [`ClusterBuilder`] — one named, defaulted, *validated* constructor for
//!   all five (rejecting e.g. `n ≤ 2f`, or SODAerr parameters with
//!   `k = n − f − 2e < 1`).
//! * [`RegisterCluster`] — the shared driving API: queue writes and reads
//!   (optionally at chosen simulated times), inject server and client
//!   crashes, run to quiescence, and extract [`OpRecord`]s in one shared
//!   shape, per-server storage occupancy, message statistics, and an
//!   atomicity-checkable [`soda_consistency::History`].
//!
//! Anything protocol-specific (SODA's reader registrations, CASGC's stored
//! version counts) stays available through the concrete wrapper types
//! ([`SodaRegisterCluster`], [`AbdRegisterCluster`], [`CasRegisterCluster`])
//! or [`RegisterCluster::as_any`] downcasting.
//!
//! # Quick start
//!
//! ```
//! use soda_registry::{ClusterBuilder, ProtocolKind};
//!
//! // The same scenario against two protocols, through one API.
//! for kind in [ProtocolKind::Soda, ProtocolKind::Abd] {
//!     let mut cluster = ClusterBuilder::new(kind, 5, 2).with_seed(7).build().unwrap();
//!     cluster.invoke_write(0, b"hello atomic world".to_vec());
//!     cluster.run_to_quiescence();
//!     cluster.invoke_read(0);
//!     cluster.run_to_quiescence();
//!     let ops = cluster.completed_ops();
//!     assert_eq!(ops.len(), 2);
//!     assert_eq!(ops[1].value.as_deref(), Some(b"hello atomic world".as_slice()));
//!     assert!(cluster.history(&[]).check_atomicity().is_ok());
//! }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod abd_impl;
mod builder;
mod cas_impl;
mod cluster;
mod kind;
mod record;
mod soda_impl;

pub use abd_impl::AbdRegisterCluster;
pub use builder::{BuildError, ClusterBuilder};
pub use cas_impl::CasRegisterCluster;
pub use cluster::RegisterCluster;
pub use kind::{ClusterDescriptor, ProtocolKind};
pub use record::{
    history_from_records, history_with_pending, version_of_tag, OpKind, OpRecord,
    PendingWriteRecord, RepairError, RepairReport,
};
pub use soda_impl::SodaRegisterCluster;

/// All five protocol kinds with representative parameters, for tests and
/// sweeps that want to cover the whole matrix. `e` and `gc` are placeholders
/// (`e = 1`, `gc = 1`); scenario code usually overrides them.
pub const ALL_KINDS: [ProtocolKind; 5] = [
    ProtocolKind::Soda,
    ProtocolKind::SodaErr { e: 1 },
    ProtocolKind::Abd,
    ProtocolKind::Cas,
    ProtocolKind::Casgc { gc: 1 },
];
