//! One validated constructor for every protocol's cluster.

use crate::abd_impl::AbdRegisterCluster;
use crate::cas_impl::CasRegisterCluster;
use crate::cluster::RegisterCluster;
use crate::kind::{ClusterDescriptor, ProtocolKind};
use crate::soda_impl::SodaRegisterCluster;
use soda_simnet::{NetFaultPlan, NetworkConfig};
use std::error::Error;
use std::fmt;

/// Why a [`ClusterBuilder`] refused to build.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// The cluster has no servers.
    NoServers,
    /// `f` is too large for `n`: every protocol here needs intersecting
    /// majorities, i.e. `n > 2f`.
    TooManyFaults {
        /// Number of servers.
        n: usize,
        /// Requested fault tolerance.
        f: usize,
    },
    /// The requested parameters leave no valid MDS code dimension
    /// (`k = n − f − 2e < 1` for SODAerr).
    InvalidCodeDimension {
        /// Number of servers.
        n: usize,
        /// Requested fault tolerance.
        f: usize,
        /// Requested error budget.
        e: usize,
    },
    /// Faulty-disk injection is only meaningful for SODA / SODAerr.
    FaultyDisksUnsupported {
        /// The offending protocol's name.
        kind: &'static str,
    },
    /// A faulty-disk rank does not name a server.
    FaultyDiskOutOfRange {
        /// The offending rank.
        rank: usize,
        /// Number of servers.
        n: usize,
    },
    /// The relay-ablation switch only exists in SODA / SODAerr.
    RelayAblationUnsupported {
        /// The offending protocol's name.
        kind: &'static str,
    },
    /// A typed `build_*` method was called for a different protocol kind.
    KindMismatch {
        /// What the typed constructor builds.
        expected: &'static str,
        /// What the builder was configured with.
        actual: &'static str,
    },
    /// Byzantine (element-corrupting) servers only exist in the SODA /
    /// SODAerr threat model.
    ByzantineUnsupported {
        /// The offending protocol's name.
        kind: &'static str,
    },
    /// A byzantine server rank does not name a server.
    ByzantineOutOfRange {
        /// The offending rank.
        rank: usize,
        /// Number of servers.
        n: usize,
    },
    /// The test-only quorum override only exists for ABD.
    QuorumOverrideUnsupported {
        /// The offending protocol's name.
        kind: &'static str,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::NoServers => write!(out, "cluster needs at least one server"),
            BuildError::TooManyFaults { n, f } => write!(
                out,
                "fault tolerance f = {f} too large for n = {n} servers: majorities must \
                 intersect, so n > 2f is required"
            ),
            BuildError::InvalidCodeDimension { n, f, e } => write!(
                out,
                "no valid code dimension: k = n - f - 2e = {n} - {f} - 2*{e} < 1"
            ),
            BuildError::FaultyDisksUnsupported { kind } => write!(
                out,
                "faulty-disk injection is a SODA/SODAerr feature, not available for {kind}"
            ),
            BuildError::FaultyDiskOutOfRange { rank, n } => write!(
                out,
                "faulty-disk rank {rank} out of range for n = {n} servers"
            ),
            BuildError::RelayAblationUnsupported { kind } => write!(
                out,
                "the relay-ablation switch is a SODA/SODAerr feature, not available for {kind}"
            ),
            BuildError::KindMismatch { expected, actual } => write!(
                out,
                "typed constructor for {expected} called on a builder configured for {actual}"
            ),
            BuildError::ByzantineUnsupported { kind } => write!(
                out,
                "byzantine element corruption is a SODA/SODAerr feature, not available for {kind}"
            ),
            BuildError::ByzantineOutOfRange { rank, n } => write!(
                out,
                "byzantine server rank {rank} out of range for n = {n} servers"
            ),
            BuildError::QuorumOverrideUnsupported { kind } => write!(
                out,
                "the test-only quorum override exists only for ABD, not for {kind}"
            ),
        }
    }
}

impl Error for BuildError {}

/// Builds any [`ProtocolKind`]'s cluster behind the shared
/// [`RegisterCluster`] API.
///
/// This subsumes the former per-protocol constructors (`SodaCluster::build`
/// with its `ClusterConfig`, and the positional-argument `AbdCluster::build`
/// / `CasCluster::build`): all parameters are named, defaulted, validated,
/// and identical across protocols.
///
/// ```
/// use soda_registry::{ClusterBuilder, ProtocolKind};
///
/// let mut cluster = ClusterBuilder::new(ProtocolKind::Soda, 5, 2)
///     .with_seed(7)
///     .build()
///     .unwrap();
/// cluster.invoke_write(0, b"hello".to_vec());
/// cluster.run_to_quiescence();
/// cluster.invoke_read(0);
/// cluster.run_to_quiescence();
/// let ops = cluster.completed_ops();
/// assert_eq!(ops[1].value.as_deref(), Some(b"hello".as_slice()));
/// ```
#[derive(Clone, Debug)]
pub struct ClusterBuilder {
    pub(crate) kind: ProtocolKind,
    pub(crate) n: usize,
    pub(crate) f: usize,
    pub(crate) num_writers: usize,
    pub(crate) num_readers: usize,
    pub(crate) seed: u64,
    pub(crate) network: NetworkConfig,
    pub(crate) initial_value: Vec<u8>,
    pub(crate) faulty_disks: Vec<usize>,
    pub(crate) relay_enabled: bool,
    pub(crate) net_faults: NetFaultPlan,
    pub(crate) byzantine_servers: Vec<usize>,
    pub(crate) quorum_override: Option<usize>,
}

impl ClusterBuilder {
    /// A `kind` cluster of `n` servers tolerating `f` crashes, with one
    /// writer and one reader, seed 0, uniform random delays in `[1, 10]` and
    /// an empty initial value.
    pub fn new(kind: ProtocolKind, n: usize, f: usize) -> Self {
        ClusterBuilder {
            kind,
            n,
            f,
            num_writers: 1,
            num_readers: 1,
            seed: 0,
            network: NetworkConfig::uniform(10),
            initial_value: Vec::new(),
            faulty_disks: Vec::new(),
            relay_enabled: true,
            net_faults: NetFaultPlan::none(),
            byzantine_servers: Vec::new(),
            quorum_override: None,
        }
    }

    /// Sets the RNG seed controlling message delays (and thus the
    /// interleaving).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of writer and reader handles.
    pub fn with_clients(mut self, writers: usize, readers: usize) -> Self {
        self.num_writers = writers;
        self.num_readers = readers;
        self
    }

    /// Sets the network delay model.
    pub fn with_network(mut self, network: NetworkConfig) -> Self {
        self.network = network;
        self
    }

    /// Sets the initial object value `v0`.
    pub fn with_initial_value(mut self, value: Vec<u8>) -> Self {
        self.initial_value = value;
        self
    }

    /// Marks the given server ranks as having error-prone local disks
    /// (SODA / SODAerr only).
    pub fn with_faulty_disks(mut self, ranks: Vec<usize>) -> Self {
        self.faulty_disks = ranks;
        self
    }

    /// Disables concurrent-write relaying at every server (SODA / SODAerr
    /// ablation only).
    pub fn with_relay_disabled(mut self) -> Self {
        self.relay_enabled = false;
        self
    }

    /// Installs a network adversary (message drop / delay / reordering /
    /// duplication per [`soda_simnet::LinkFaults`]). Works for every
    /// protocol kind — the knobs are identical across SODA, SODAerr, ABD,
    /// CAS and CASGC, so adversarial schedules are directly comparable.
    pub fn with_net_faults(mut self, plan: NetFaultPlan) -> Self {
        self.net_faults = plan;
        self
    }

    /// Marks the given server ranks as byzantine (SODA / SODAerr only): every
    /// coded element they send to a reader is corrupted in flight — the
    /// network-level strengthening of [`Self::with_faulty_disks`], covering
    /// relays of concurrent writes too. SODAerr tolerates up to `e` such
    /// servers per read; exceeding the budget is allowed here precisely so
    /// tests can verify that over-budget corruption is *detected* rather
    /// than silently decoded.
    pub fn with_byzantine_servers(mut self, ranks: Vec<usize>) -> Self {
        self.byzantine_servers = ranks;
        self
    }

    /// **Test-only.** Overrides the per-phase quorum size of every ABD
    /// client, *below majority if asked*. This deliberately breaks ABD's
    /// quorum-intersection argument; the schedule-exploration harness builds
    /// such clusters to verify it catches non-atomic executions. Rejected
    /// for every other protocol kind.
    pub fn with_unsound_quorum(mut self, quorum: usize) -> Self {
        self.quorum_override = Some(quorum);
        self
    }

    /// Checks the parameter combination without building anything.
    pub fn validate(&self) -> Result<(), BuildError> {
        if self.n == 0 {
            return Err(BuildError::NoServers);
        }
        if 2 * self.f >= self.n {
            return Err(BuildError::TooManyFaults {
                n: self.n,
                f: self.f,
            });
        }
        if let ProtocolKind::SodaErr { e } = self.kind {
            if self.kind.code_dimension(self.n, self.f).is_none() {
                return Err(BuildError::InvalidCodeDimension {
                    n: self.n,
                    f: self.f,
                    e,
                });
            }
        }
        if !self.kind.is_soda_family() {
            if !self.faulty_disks.is_empty() {
                return Err(BuildError::FaultyDisksUnsupported {
                    kind: self.kind.name(),
                });
            }
            if !self.relay_enabled {
                return Err(BuildError::RelayAblationUnsupported {
                    kind: self.kind.name(),
                });
            }
        }
        if let Some(&rank) = self.faulty_disks.iter().find(|&&rank| rank >= self.n) {
            return Err(BuildError::FaultyDiskOutOfRange { rank, n: self.n });
        }
        if !self.byzantine_servers.is_empty() && !self.kind.is_soda_family() {
            return Err(BuildError::ByzantineUnsupported {
                kind: self.kind.name(),
            });
        }
        if let Some(&rank) = self.byzantine_servers.iter().find(|&&rank| rank >= self.n) {
            return Err(BuildError::ByzantineOutOfRange { rank, n: self.n });
        }
        if self.quorum_override.is_some() && self.kind != ProtocolKind::Abd {
            return Err(BuildError::QuorumOverrideUnsupported {
                kind: self.kind.name(),
            });
        }
        Ok(())
    }

    pub(crate) fn descriptor(&self) -> ClusterDescriptor {
        ClusterDescriptor {
            kind: self.kind,
            n: self.n,
            f: self.f,
            num_writers: self.num_writers,
            num_readers: self.num_readers,
        }
    }

    /// Builds the cluster behind the protocol-agnostic facade.
    pub fn build(self) -> Result<Box<dyn RegisterCluster>, BuildError> {
        self.validate()?;
        Ok(match self.kind {
            ProtocolKind::Soda | ProtocolKind::SodaErr { .. } => {
                Box::new(SodaRegisterCluster::from_builder(self))
            }
            ProtocolKind::Abd => Box::new(AbdRegisterCluster::from_builder(self)),
            ProtocolKind::Cas | ProtocolKind::Casgc { .. } => {
                Box::new(CasRegisterCluster::from_builder(self))
            }
        })
    }

    /// Builds a SODA / SODAerr cluster with its concrete type, for callers
    /// that need SODA-specific state inspection without downcasting.
    pub fn build_soda(self) -> Result<SodaRegisterCluster, BuildError> {
        self.validate()?;
        if !self.kind.is_soda_family() {
            return Err(BuildError::KindMismatch {
                expected: "SODA/SODAerr",
                actual: self.kind.name(),
            });
        }
        Ok(SodaRegisterCluster::from_builder(self))
    }

    /// Builds an ABD cluster with its concrete type.
    pub fn build_abd(self) -> Result<AbdRegisterCluster, BuildError> {
        self.validate()?;
        if self.kind != ProtocolKind::Abd {
            return Err(BuildError::KindMismatch {
                expected: "ABD",
                actual: self.kind.name(),
            });
        }
        Ok(AbdRegisterCluster::from_builder(self))
    }

    /// Builds a CAS / CASGC cluster with its concrete type, for callers that
    /// need CAS-specific state inspection (e.g. stored version counts).
    pub fn build_cas(self) -> Result<CasRegisterCluster, BuildError> {
        self.validate()?;
        if !matches!(self.kind, ProtocolKind::Cas | ProtocolKind::Casgc { .. }) {
            return Err(BuildError::KindMismatch {
                expected: "CAS/CASGC",
                actual: self.kind.name(),
            });
        }
        Ok(CasRegisterCluster::from_builder(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_majority_violations_for_every_kind() {
        for kind in [
            ProtocolKind::Soda,
            ProtocolKind::SodaErr { e: 1 },
            ProtocolKind::Abd,
            ProtocolKind::Cas,
            ProtocolKind::Casgc { gc: 1 },
        ] {
            // n = 2f is never enough for intersecting majorities.
            let err = ClusterBuilder::new(kind, 4, 2).validate().unwrap_err();
            assert_eq!(err, BuildError::TooManyFaults { n: 4, f: 2 }, "{kind:?}");
            // n = 2f + 1 is always acceptable.
            ClusterBuilder::new(kind, 5, 2)
                .validate()
                .unwrap_or_else(|e| {
                    panic!("{kind:?} must accept n = 5, f = 2: {e}");
                });
        }
    }

    #[test]
    fn rejects_empty_clusters() {
        assert_eq!(
            ClusterBuilder::new(ProtocolKind::Soda, 0, 0).validate(),
            Err(BuildError::NoServers)
        );
    }

    #[test]
    fn rejects_sodaerr_without_a_code_dimension() {
        // k = n - f - 2e = 7 - 2 - 2*3 < 1.
        let err = ClusterBuilder::new(ProtocolKind::SodaErr { e: 3 }, 7, 2)
            .validate()
            .unwrap_err();
        assert_eq!(err, BuildError::InvalidCodeDimension { n: 7, f: 2, e: 3 });
        // k = 1 exactly is fine.
        ClusterBuilder::new(ProtocolKind::SodaErr { e: 2 }, 7, 2)
            .validate()
            .unwrap();
    }

    #[test]
    fn rejects_soda_only_features_on_baselines() {
        let err = ClusterBuilder::new(ProtocolKind::Abd, 5, 2)
            .with_faulty_disks(vec![0])
            .validate()
            .unwrap_err();
        assert_eq!(err, BuildError::FaultyDisksUnsupported { kind: "ABD" });

        let err = ClusterBuilder::new(ProtocolKind::Casgc { gc: 1 }, 5, 2)
            .with_relay_disabled()
            .validate()
            .unwrap_err();
        assert_eq!(err, BuildError::RelayAblationUnsupported { kind: "CASGC" });
    }

    #[test]
    fn rejects_faulty_disk_ranks_beyond_n() {
        let err = ClusterBuilder::new(ProtocolKind::SodaErr { e: 1 }, 7, 2)
            .with_faulty_disks(vec![7])
            .validate()
            .unwrap_err();
        assert_eq!(err, BuildError::FaultyDiskOutOfRange { rank: 7, n: 7 });
    }

    #[test]
    fn typed_constructors_check_the_kind() {
        let err = ClusterBuilder::new(ProtocolKind::Abd, 5, 2)
            .build_soda()
            .map(|_| ())
            .unwrap_err();
        assert_eq!(
            err,
            BuildError::KindMismatch {
                expected: "SODA/SODAerr",
                actual: "ABD"
            }
        );
    }

    #[test]
    fn build_errors_render_helpfully() {
        let message = BuildError::TooManyFaults { n: 4, f: 2 }.to_string();
        assert!(message.contains("n > 2f"), "{message}");
    }
}
