//! Repair bandwidth and latency per protocol and value size: crash one
//! server, repair it from the survivors, and measure exactly how many bytes
//! of value / coded-element data the replacement pulled.
//!
//! The point of the measurement is the paper's storage argument carried over
//! to repair: an erasure-coded replacement re-encodes its element from `k`
//! survivors (`k + 2e` for SODAerr), so its repair traffic is
//! `≈ size + O(metadata)` and **bounded by `n · ⌈size/k⌉ + O(metadata)`** —
//! the `n·size/k` coded bound — while replicated protocols (ABD) must move a
//! full copy per object. The SODA/SODAerr rows are asserted against the
//! coded bound, not just reported.
//!
//! Plain `harness = false` timing loop (criterion is unavailable offline).
//! Run with: `cargo bench -p soda-bench --bench repair_bandwidth [out.json]` —
//! with a path argument the measurements are also written as JSON rows in the
//! repo's standard format (see `BENCH_repair.json`).

use soda_bench::maybe_write_json;
use soda_registry::{ClusterBuilder, ProtocolKind};
use soda_simnet::SimTime;
use soda_workload::json::to_json;
use soda_workload::json_row;
use std::time::Instant;

#[derive(Clone)]
struct Row {
    protocol: String,
    n: usize,
    f: usize,
    k: usize,
    value_size: usize,
    repair_traffic_bytes: u64,
    coded_bound_bytes: u64,
    replicated_bytes: u64,
    repair_latency_ticks: u64,
    seconds: f64,
}

json_row!(Row {
    protocol,
    n,
    f,
    k,
    value_size,
    repair_traffic_bytes,
    coded_bound_bytes,
    replicated_bytes,
    repair_latency_ticks,
    seconds,
});

/// `(kind, n, f)` per protocol, mirroring the conformance matrix.
fn matrix() -> Vec<(ProtocolKind, usize, usize)> {
    vec![
        (ProtocolKind::Soda, 5, 2),
        (ProtocolKind::SodaErr { e: 1 }, 7, 2),
        (ProtocolKind::Abd, 5, 2),
        (ProtocolKind::Cas, 5, 2),
        (ProtocolKind::Casgc { gc: 2 }, 5, 2),
    ]
}

/// Code dimension `k` per protocol (1 for replication).
fn code_k(kind: ProtocolKind, n: usize, f: usize) -> usize {
    match kind {
        ProtocolKind::Soda => n - f,
        ProtocolKind::SodaErr { e } => n - f - 2 * e,
        ProtocolKind::Cas | ProtocolKind::Casgc { .. } => n - 2 * f,
        ProtocolKind::Abd => 1,
    }
}

fn measure(kind: ProtocolKind, n: usize, f: usize, value_size: usize) -> Row {
    let mut cluster = ClusterBuilder::new(kind, n, f)
        .with_seed(29)
        .build()
        .expect("valid bench parameters");
    cluster.invoke_write(0, vec![0xC0; value_size]);
    cluster.run_to_quiescence();

    let crash_at = cluster.now();
    cluster.crash_server_at(crash_at, 1);
    let start = Instant::now();
    cluster.repair_server_at(SimTime::from_ticks(crash_at.ticks() + 10), 1);
    cluster.run_to_quiescence();
    let seconds = start.elapsed().as_secs_f64();

    assert_eq!(cluster.dead_or_repairing(), 0, "{}", kind.name());
    let report = cluster
        .repair_reports()
        .into_iter()
        .find(|r| r.rank == 1)
        .expect("repair must be reported");
    let latency = report.latency().expect("repair must have completed");

    let k = code_k(kind, n, f);
    // One coded element per server under the [n, k] code, with the shared
    // 8-byte length header amortized over the split.
    let elem_len = (value_size + 8).div_ceil(k) as u64;
    let coded_bound = n as u64 * elem_len;
    if matches!(kind, ProtocolKind::Soda | ProtocolKind::SodaErr { .. }) {
        assert!(
            report.traffic_bytes <= coded_bound,
            "{}: repair moved {} bytes, coded bound is {coded_bound}",
            kind.name(),
            report.traffic_bytes
        );
        assert!(
            report.traffic_bytes < (n * value_size) as u64,
            "{}: repair must beat full replication",
            kind.name()
        );
    }
    Row {
        protocol: kind.name().to_string(),
        n,
        f,
        k,
        value_size,
        repair_traffic_bytes: report.traffic_bytes,
        coded_bound_bytes: coded_bound,
        replicated_bytes: (n * value_size) as u64,
        repair_latency_ticks: latency,
        seconds,
    }
}

fn main() {
    let mut rows = Vec::new();
    for (kind, n, f) in matrix() {
        for value_size in [256usize, 4096, 65536] {
            let row = measure(kind, n, f, value_size);
            println!(
                "repair/{:<7} n={} size={:>6} {:>8} B moved (coded bound {:>8} B, replicated {:>8} B) in {} ticks",
                row.protocol,
                row.n,
                row.value_size,
                row.repair_traffic_bytes,
                row.coded_bound_bytes,
                row.replicated_bytes,
                row.repair_latency_ticks
            );
            rows.push(row);
        }
    }
    // `cargo bench` forwards flags like `--bench` to the binary; the JSON
    // output path is the first non-flag argument.
    let json_path = std::env::args().skip(1).find(|arg| !arg.starts_with('-'));
    maybe_write_json(json_path.as_deref(), &to_json(&rows));
}
