//! Criterion bench wrapping the Table I measurement for a single cluster
//! size, so regressions in the comparison harness itself (e.g. the scenario
//! runner becoming quadratically slower) are caught by `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use soda_workload::experiments::table1;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("n10_all_algorithms", |b| {
        b.iter(|| black_box(table1(&[10], 2, 4 * 1024, 42).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
