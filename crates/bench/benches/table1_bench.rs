//! Wall-clock benchmark wrapping the Table I measurement for a single
//! cluster size, so regressions in the comparison harness itself (e.g. the
//! scenario runner becoming quadratically slower) are caught by
//! `cargo bench`.
//!
//! Plain `harness = false` timing loop (criterion is unavailable offline).
//! Run with: `cargo bench -p soda-bench --bench table1_bench`

use soda_bench::timeit;
use soda_workload::experiments::table1;
use std::hint::black_box;

fn main() {
    timeit("table1/n10_all_algorithms", 0, 10, || {
        black_box(table1(&[10], 2, 4 * 1024, 42).len());
    });
}
