//! Wall-clock benchmarks for end-to-end protocol operations in the
//! simulator: a complete SODA write and a complete SODA read (including all
//! relays and bookkeeping), plus the ABD equivalents for comparison. The
//! metric is wall-clock time to simulate one operation, which tracks the
//! total message and computation work the protocols generate. Every cluster
//! is built through the `RegisterCluster` facade.
//!
//! Plain `harness = false` timing loops (criterion is unavailable offline).
//! Run with: `cargo bench -p soda-bench --bench protocol_ops`

use soda_bench::timeit;
use soda_registry::{ClusterBuilder, ProtocolKind};
use std::hint::black_box;

fn write_only(kind: ProtocolKind, n: usize, f: usize, value_size: usize) {
    let mut cluster = ClusterBuilder::new(kind, n, f)
        .with_seed(1)
        .build()
        .unwrap();
    cluster.invoke_write(0, vec![7u8; value_size]);
    cluster.run_to_quiescence();
    black_box(cluster.completed_ops().len());
}

fn write_read(kind: ProtocolKind, n: usize, f: usize, value_size: usize) {
    let mut cluster = ClusterBuilder::new(kind, n, f)
        .with_seed(1)
        .build()
        .unwrap();
    cluster.invoke_write(0, vec![7u8; value_size]);
    cluster.run_to_quiescence();
    cluster.invoke_read(0);
    cluster.run_to_quiescence();
    black_box(cluster.completed_ops().len());
}

fn main() {
    let value_size = 16 * 1024;
    for &(n, f) in &[(5usize, 2usize), (11, 5), (21, 10)] {
        timeit(&format!("soda_write/n{n}"), 0, 10, || {
            write_only(ProtocolKind::Soda, n, f, value_size)
        });
        timeit(&format!("soda_write_read/n{n}"), 0, 10, || {
            write_read(ProtocolKind::Soda, n, f, value_size)
        });
        timeit(&format!("abd_write_read/n{n}"), 0, 10, || {
            write_read(ProtocolKind::Abd, n, f, value_size)
        });
    }
}
