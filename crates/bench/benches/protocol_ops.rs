//! Criterion benches for end-to-end protocol operations in the simulator:
//! a complete SODA write and a complete SODA read (including all relays and
//! bookkeeping), plus the ABD equivalents for comparison. The metric is
//! wall-clock time to simulate one operation, which tracks the total message
//! and computation work the protocols generate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soda::harness::{ClusterConfig, SodaCluster};
use soda_baselines::abd::AbdCluster;
use soda_simnet::NetworkConfig;
use std::hint::black_box;

fn soda_write(n: usize, f: usize, value_size: usize) {
    let mut cluster = SodaCluster::build(ClusterConfig::new(n, f).with_seed(1));
    let w = cluster.writers()[0];
    cluster.invoke_write(w, vec![7u8; value_size]);
    cluster.run_to_quiescence();
    black_box(cluster.completed_ops().len());
}

fn soda_write_read(n: usize, f: usize, value_size: usize) {
    let mut cluster = SodaCluster::build(ClusterConfig::new(n, f).with_seed(1));
    let w = cluster.writers()[0];
    let r = cluster.readers()[0];
    cluster.invoke_write(w, vec![7u8; value_size]);
    cluster.run_to_quiescence();
    cluster.invoke_read(r);
    cluster.run_to_quiescence();
    black_box(cluster.completed_ops().len());
}

fn abd_write_read(n: usize, f: usize, value_size: usize) {
    let mut cluster = AbdCluster::build(n, f, 2, 1, NetworkConfig::uniform(10), Vec::new());
    let w = cluster.clients()[0];
    let r = cluster.clients()[1];
    cluster.invoke_write(w, vec![7u8; value_size]);
    cluster.run_to_quiescence();
    cluster.invoke_read(r);
    cluster.run_to_quiescence();
    black_box(cluster.completed_ops().len());
}

fn bench_protocol_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_ops");
    group.sample_size(10);
    let value_size = 16 * 1024;
    for &(n, f) in &[(5usize, 2usize), (11, 5), (21, 10)] {
        group.bench_with_input(BenchmarkId::new("soda_write", n), &(n, f), |b, &(n, f)| {
            b.iter(|| soda_write(n, f, value_size))
        });
        group.bench_with_input(
            BenchmarkId::new("soda_write_read", n),
            &(n, f),
            |b, &(n, f)| b.iter(|| soda_write_read(n, f, value_size)),
        );
        group.bench_with_input(
            BenchmarkId::new("abd_write_read", n),
            &(n, f),
            |b, &(n, f)| b.iter(|| abd_write_read(n, f, value_size)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_protocol_ops);
criterion_main!(benches);
