//! Criterion benches for the erasure-coding substrate: encoding throughput,
//! erasure decoding, and Berlekamp–Welch error decoding across value sizes and
//! code parameters. These are the `Φ`, `Φ⁻¹` and `Φ⁻¹_err` primitives every
//! SODA operation ultimately pays for.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use soda_rs_code::{BerlekampWelchCode, MdsCode, VandermondeCode};
use std::hint::black_box;

fn value_of(size: usize) -> Vec<u8> {
    (0..size).map(|i| (i * 31 % 251) as u8).collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode");
    group.sample_size(20);
    for &size in &[4 * 1024usize, 64 * 1024] {
        for &(n, k) in &[(5usize, 3usize), (10, 6), (20, 11)] {
            let code = VandermondeCode::new(n, k).unwrap();
            let value = value_of(size);
            group.throughput(Throughput::Bytes(size as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("n{n}_k{k}"), size),
                &value,
                |b, value| b.iter(|| black_box(code.encode(black_box(value)).unwrap())),
            );
        }
    }
    group.finish();
}

fn bench_erasure_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("erasure_decode");
    group.sample_size(20);
    for &size in &[4 * 1024usize, 64 * 1024] {
        let (n, k) = (10usize, 6usize);
        let code = VandermondeCode::new(n, k).unwrap();
        let value = value_of(size);
        let elements = code.encode(&value).unwrap();
        // Decode from the *last* k elements (all parity where possible), the
        // most expensive case since it requires a full matrix inversion.
        let subset: Vec<_> = elements[n - k..].to_vec();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("parity_only", size), &subset, |b, subset| {
            b.iter(|| black_box(code.decode(black_box(subset)).unwrap()))
        });
    }
    group.finish();
}

fn bench_error_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("error_decode");
    group.sample_size(10);
    for &size in &[4 * 1024usize] {
        for &e in &[1usize, 2] {
            let (n, f) = (12usize, 2usize);
            let code = BerlekampWelchCode::for_fault_tolerance(n, f, e).unwrap();
            let value = value_of(size);
            let mut elements = code.encode(&value).unwrap();
            elements.truncate(n - f);
            for victim in 0..e {
                for b in elements[victim].data.iter_mut() {
                    *b ^= 0xA5;
                }
            }
            group.throughput(Throughput::Bytes(size as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("e{e}"), size),
                &elements,
                |b, elements| {
                    b.iter(|| black_box(code.decode_with_errors(black_box(elements), e).unwrap()))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_erasure_decode, bench_error_decode);
criterion_main!(benches);
