//! Wall-clock benchmarks for the erasure-coding substrate: encoding
//! throughput, erasure decoding, and Berlekamp–Welch error decoding across
//! value sizes and code parameters. These are the `Φ`, `Φ⁻¹` and `Φ⁻¹_err`
//! primitives every SODA operation ultimately pays for.
//!
//! Plain `harness = false` timing loops (criterion is unavailable offline).
//! Run with: `cargo bench -p soda-bench --bench erasure_coding`

use soda_bench::timeit;
use soda_rs_code::{BerlekampWelchCode, MdsCode, VandermondeCode};
use std::hint::black_box;

fn value_of(size: usize) -> Vec<u8> {
    (0..size).map(|i| (i * 31 % 251) as u8).collect()
}

fn bench_encode() {
    println!("## encode");
    for &size in &[4 * 1024usize, 64 * 1024] {
        for &(n, k) in &[(5usize, 3usize), (10, 6), (20, 11)] {
            let code = VandermondeCode::new(n, k).unwrap();
            let value = value_of(size);
            timeit(
                &format!("encode/n{n}_k{k}/{size}B"),
                size as u64,
                20,
                || {
                    black_box(code.encode(black_box(&value)).unwrap());
                },
            );
        }
    }
}

fn bench_erasure_decode() {
    println!("## erasure_decode");
    for &size in &[4 * 1024usize, 64 * 1024] {
        let (n, k) = (10usize, 6usize);
        let code = VandermondeCode::new(n, k).unwrap();
        let value = value_of(size);
        let elements = code.encode(&value).unwrap();
        // Decode from the *last* k elements (all parity where possible), the
        // most expensive case since it requires a full matrix inversion.
        let subset: Vec<_> = elements[n - k..].to_vec();
        timeit(
            &format!("erasure_decode/parity_only/{size}B"),
            size as u64,
            20,
            || {
                black_box(code.decode(black_box(&subset)).unwrap());
            },
        );
    }
}

fn bench_error_decode() {
    println!("## error_decode");
    for &size in &[4 * 1024usize] {
        for &e in &[1usize, 2] {
            let (n, f) = (12usize, 2usize);
            let code = BerlekampWelchCode::for_fault_tolerance(n, f, e).unwrap();
            let value = value_of(size);
            let mut elements = code.encode(&value).unwrap();
            elements.truncate(n - f);
            for element in elements.iter_mut().take(e) {
                for b in element.data.make_mut() {
                    *b ^= 0xA5;
                }
            }
            timeit(
                &format!("error_decode/e{e}/{size}B"),
                size as u64,
                10,
                || {
                    black_box(code.decode_with_errors(black_box(&elements), e).unwrap());
                },
            );
        }
    }
}

fn main() {
    bench_encode();
    bench_erasure_decode();
    bench_error_decode();
}
