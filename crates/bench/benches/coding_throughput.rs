//! Throughput of the coded hot path in MB/s: full encode, erasure decode and
//! single-element repair re-encode, for the slice-kernel GF(256) backend
//! against a byte-at-a-time scalar reference.
//!
//! The scalar backend reproduces the pre-optimization hot path: byte-by-byte
//! field multiplies (no nibble tables, no `u64` word batching), a fresh
//! survivor-submatrix inversion on every decode (no decode cache), and full
//! encodes for single-element repair (no single-row product).
//!
//! Plain `harness = false` timing loop (criterion is unavailable offline).
//! Run with: `cargo bench -p soda-bench --bench coding_throughput [out.json]`
//! — with a path argument the measurements are also written as JSON rows (see
//! `BENCH_coding.json`). Set `CODING_SMOKE=1` for a seconds-long CI smoke run
//! on reduced sizes and iteration counts.

use soda_bench::{maybe_write_json, timeit};
use soda_gf::{Gf256, Matrix};
use soda_rs_code::{pad_and_split, MdsCode, VandermondeCode};
use soda_workload::json::to_json;
use soda_workload::json_row;

#[derive(Clone)]
struct Row {
    op: String,
    backend: String,
    n: usize,
    k: usize,
    value_bytes: usize,
    mib_per_sec: f64,
}

json_row!(Row {
    op,
    backend,
    n,
    k,
    value_bytes,
    mib_per_sec,
});

fn value_of(len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (i.wrapping_mul(131) % 256) as u8)
        .collect()
}

/// Byte-at-a-time matrix × shards product: the pre-kernel reference path.
fn scalar_apply(matrix: &Matrix, shards: &[&[u8]]) -> Vec<Vec<u8>> {
    let shard_len = shards[0].len();
    let mut out = vec![vec![0u8; shard_len]; matrix.rows()];
    for (i, row_out) in out.iter_mut().enumerate() {
        for (j, shard) in shards.iter().enumerate() {
            let c = matrix[(i, j)];
            for (dst, &src) in row_out.iter_mut().zip(shard.iter()) {
                *dst = (Gf256::new(*dst) + c * Gf256::new(src)).value();
            }
        }
    }
    out
}

struct Workload {
    code: VandermondeCode,
    n: usize,
    k: usize,
    size: usize,
    iters: u32,
}

impl Workload {
    fn bench_encode(&self, rows: &mut Vec<Row>) {
        let value = value_of(self.size);
        let (n, k, size) = (self.n, self.k, self.size);
        let label = format!("encode/kernel/[{n},{k}]/{size}B");
        let mib = timeit(&label, size as u64, self.iters, || {
            std::hint::black_box(self.code.encode(std::hint::black_box(&value)).unwrap());
        });
        rows.push(self.row("encode", "kernel", mib));

        let matrix = self.code.encoding_matrix().clone();
        let label = format!("encode/scalar/[{n},{k}]/{size}B");
        let mib = timeit(&label, size as u64, self.iters, || {
            let shards = pad_and_split(std::hint::black_box(&value), k);
            let refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
            std::hint::black_box(scalar_apply(&matrix, &refs));
        });
        rows.push(self.row("encode", "scalar", mib));
    }

    fn bench_decode(&self, rows: &mut Vec<Row>) {
        let value = value_of(self.size);
        let (n, k, size) = (self.n, self.k, self.size);
        let elements = self.code.encode(&value).unwrap();
        // Decode from the parity-heavy tail so the product is not an identity
        // pass-through of systematic elements.
        let survivors: Vec<_> = elements.into_iter().skip(n - k).collect();
        let label = format!("decode/kernel/[{n},{k}]/{size}B");
        let mib = timeit(&label, size as u64, self.iters, || {
            std::hint::black_box(self.code.decode(std::hint::black_box(&survivors)).unwrap());
        });
        rows.push(self.row("decode", "kernel", mib));

        // The pre-optimization decode inverted the survivor submatrix on
        // every call and applied it byte-at-a-time; reproduce that faithfully.
        let encoding = self.code.encoding_matrix().clone();
        let label = format!("decode/scalar/[{n},{k}]/{size}B");
        let mib = timeit(&label, size as u64, self.iters, || {
            let indices: Vec<usize> = survivors.iter().map(|e| e.index).collect();
            let inverse = encoding.select_rows(&indices).inverse().unwrap();
            let refs: Vec<&[u8]> = survivors.iter().map(|e| &e.data[..]).collect();
            let shards = scalar_apply(&inverse, std::hint::black_box(&refs));
            std::hint::black_box(soda_rs_code::reassemble(&shards).unwrap());
        });
        rows.push(self.row("decode", "scalar", mib));
    }

    fn bench_repair(&self, rows: &mut Vec<Row>) {
        let value = value_of(self.size);
        let (n, k, size) = (self.n, self.k, self.size);
        // Repair re-encodes the last (parity) element from the decoded value.
        let label = format!("repair/kernel/[{n},{k}]/{size}B");
        let mib = timeit(&label, size as u64, self.iters, || {
            std::hint::black_box(
                self.code
                    .encode_one(std::hint::black_box(&value), n - 1)
                    .unwrap(),
            );
        });
        rows.push(self.row("repair", "kernel", mib));

        let matrix = self.code.encoding_matrix().clone();
        let label = format!("repair/scalar/[{n},{k}]/{size}B");
        let mib = timeit(&label, size as u64, self.iters, || {
            // Scalar reference: full encode, keep one element (the pre-kernel
            // repair path had no single-row product).
            let shards = pad_and_split(std::hint::black_box(&value), k);
            let refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
            std::hint::black_box(scalar_apply(&matrix, &refs).swap_remove(n - 1));
        });
        rows.push(self.row("repair", "scalar", mib));
    }

    fn row(&self, op: &str, backend: &str, mib_per_sec: f64) -> Row {
        Row {
            op: op.to_string(),
            backend: backend.to_string(),
            n: self.n,
            k: self.k,
            value_bytes: self.size,
            mib_per_sec,
        }
    }
}

fn main() {
    let smoke = std::env::var("CODING_SMOKE").is_ok();
    let sizes: &[usize] = if smoke {
        &[4 * 1024]
    } else {
        &[4 * 1024, 64 * 1024, 1024 * 1024]
    };
    let shapes: &[(usize, usize)] = &[(5, 3), (12, 8)];
    let iters: u32 = if smoke { 5 } else { 50 };

    let mut rows = Vec::new();
    for &(n, k) in shapes {
        for &size in sizes {
            let workload = Workload {
                code: VandermondeCode::new(n, k).unwrap(),
                n,
                k,
                size,
                iters,
            };
            workload.bench_encode(&mut rows);
            workload.bench_decode(&mut rows);
            workload.bench_repair(&mut rows);
        }
    }
    let json_path = std::env::args().skip(1).find(|arg| !arg.starts_with('-'));
    maybe_write_json(json_path.as_deref(), &to_json(&rows));
}
