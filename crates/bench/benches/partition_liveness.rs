//! Operation liveness under partition/heal duty cycles: SODA vs ABD.
//!
//! The paper's liveness claims assume every operation eventually sees a
//! responsive quorum. This bench quantifies what happens when that assumption
//! is stressed on a schedule: periodic partition windows cut a **majority**
//! (`f + 1` of `n`) of servers off from everyone for a configurable fraction
//! of each period (the duty cycle). Clients do not retransmit, so an
//! operation whose phase messages fall inside a window starves — the
//! completed/invoked ratio across duty cycles is the measured liveness, and
//! the mean completion latency of the operations that *do* finish shows the
//! protocols' latency under the same outage schedule.
//!
//! Every handle invokes exactly one operation (handles are FIFO, so a
//! starved op would otherwise block its handle's queue and conflate one
//! starvation with many). At duty 0 every operation must complete — that row
//! doubles as a liveness regression gate — and each run's closed history is
//! checked for atomicity: safety must hold no matter what the windows cut.
//!
//! Plain `harness = false` timing loop (criterion is unavailable offline).
//! Run with: `cargo bench -p soda-bench --bench partition_liveness [out.json]`
//! — with a path argument the measurements are also written as JSON rows in
//! the repo's standard format (see `BENCH_partition.json`).

use soda_bench::maybe_write_json;
use soda_registry::{ClusterBuilder, ProtocolKind};
use soda_simnet::{NetFaultPlan, Partition, ProcessId, SimTime};
use soda_workload::json::to_json;
use soda_workload::json_row;
use std::time::Instant;

const N: usize = 5;
const F: usize = 2;
/// One-shot client handles: each invokes exactly one operation.
const WRITERS: usize = 16;
const READERS: usize = 16;
/// Window period in ticks; `CYCLES` periods cover the whole schedule.
const PERIOD: u64 = 2000;
const CYCLES: u64 = 4;
const HORIZON: u64 = PERIOD * CYCLES;

#[derive(Clone)]
struct Row {
    protocol: String,
    n: usize,
    f: usize,
    duty_pct: u64,
    invoked: usize,
    completed: usize,
    completion_ratio: f64,
    mean_latency_ticks: f64,
    messages_partitioned: u64,
    seconds: f64,
}

json_row!(Row {
    protocol,
    n,
    f,
    duty_pct,
    invoked,
    completed,
    completion_ratio,
    mean_latency_ticks,
    messages_partitioned,
    seconds,
});

/// `duty_pct`% of every period, servers `0..=f` (a majority of `n = 5`) are
/// unreachable from every other process; the cuts heal for the rest of the
/// period.
fn duty_plan(duty_pct: u64) -> NetFaultPlan {
    let mut plan = NetFaultPlan::none();
    if duty_pct == 0 {
        return plan;
    }
    let total = (N + WRITERS + READERS) as u32;
    let cut: Vec<ProcessId> = (0..(F + 1) as u32).map(ProcessId).collect();
    let rest: Vec<ProcessId> = ((F + 1) as u32..total).map(ProcessId).collect();
    for i in 0..CYCLES {
        let start = i * PERIOD;
        let end = start + PERIOD * duty_pct / 100;
        plan = plan.with_partition(Partition::split(
            &[cut.clone(), rest.clone()],
            SimTime::from_ticks(start),
            SimTime::from_ticks(end),
        ));
    }
    plan
}

fn measure(kind: ProtocolKind, duty_pct: u64) -> Row {
    let mut cluster = ClusterBuilder::new(kind, N, F)
        .with_seed(41)
        .with_clients(WRITERS, READERS)
        .with_net_faults(duty_plan(duty_pct))
        .build()
        .expect("valid bench parameters");

    // One op per handle, spread uniformly over the schedule: writes on the
    // period grid, reads half a step later, so both races every window edge.
    let step = HORIZON / WRITERS as u64;
    let start = Instant::now();
    for j in 0..WRITERS {
        let at = SimTime::from_ticks(j as u64 * step);
        cluster.invoke_write_at(at, j, vec![j as u8 + 1; 64]);
    }
    for j in 0..READERS {
        let at = SimTime::from_ticks(j as u64 * step + step / 2);
        cluster.invoke_read_at(at, j);
    }
    let outcome = cluster.run_to_quiescence();
    let seconds = start.elapsed().as_secs_f64();
    assert!(!outcome.hit_event_cap, "{}", kind.name());

    let ops = cluster.completed_ops();
    let invoked = WRITERS + READERS;
    let completed = ops.len();
    if duty_pct == 0 {
        assert_eq!(
            completed,
            invoked,
            "{}: duty 0 must complete every operation",
            kind.name()
        );
    }
    // Whatever completed must still read atomically.
    cluster
        .closed_history(&[])
        .check_atomicity()
        .unwrap_or_else(|v| panic!("{} at duty {duty_pct}: {v}", kind.name()));

    let total_latency: u64 = ops
        .iter()
        .map(|op| op.completed_at.ticks() - op.invoked_at.ticks())
        .sum();
    Row {
        protocol: kind.name().to_string(),
        n: N,
        f: F,
        duty_pct,
        invoked,
        completed,
        completion_ratio: completed as f64 / invoked as f64,
        mean_latency_ticks: if completed == 0 {
            0.0
        } else {
            total_latency as f64 / completed as f64
        },
        messages_partitioned: cluster.stats().messages_partitioned,
        seconds,
    }
}

fn main() {
    let mut rows = Vec::new();
    for kind in [ProtocolKind::Soda, ProtocolKind::Abd] {
        for duty_pct in [0u64, 25, 50, 75] {
            let row = measure(kind, duty_pct);
            println!(
                "partition/{:<4} duty={:>2}% completed {:>2}/{} (ratio {:.3}), \
                 mean latency {:>6.1} ticks, {:>5} msgs cut",
                row.protocol,
                row.duty_pct,
                row.completed,
                row.invoked,
                row.completion_ratio,
                row.mean_latency_ticks,
                row.messages_partitioned
            );
            rows.push(row);
        }
    }
    // `cargo bench` forwards flags like `--bench` to the binary; the JSON
    // output path is the first non-flag argument.
    let json_path = std::env::args().skip(1).find(|arg| !arg.starts_with('-'));
    maybe_write_json(json_path.as_deref(), &to_json(&rows));
}
