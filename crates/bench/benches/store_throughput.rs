//! Wall-clock throughput of the sharded store (ops/sec) by shard count and
//! protocol, under the **threaded** runtime — one OS thread per shard, so the
//! shard axis measures how much parallelism the store actually extracts from
//! a fleet of independent per-shard simulations.
//!
//! Plain `harness = false` timing loop (criterion is unavailable offline).
//! Run with: `cargo bench -p soda-bench --bench store_throughput [out.json]` —
//! with a path argument the measurements are also written as JSON rows in the
//! repo's standard format (see `BENCH_store_throughput.json`).

use soda_bench::maybe_write_json;
use soda_registry::ProtocolKind;
use soda_store::{StoreBuilder, StoreRuntime};
use soda_workload::json::to_json;
use soda_workload::json_row;
use std::time::Instant;

#[derive(Clone)]
struct Row {
    protocol: String,
    shards: usize,
    keys: usize,
    ops: usize,
    completed: usize,
    seconds: f64,
    ops_per_sec: f64,
}

json_row!(Row {
    protocol,
    shards,
    keys,
    ops,
    completed,
    seconds,
    ops_per_sec,
});

const KEYS_PER_SHARD: usize = 32;
const ROUNDS: usize = 4;

fn build(kind: ProtocolKind, shards: usize, runtime: StoreRuntime) -> soda_store::ShardedStore {
    StoreBuilder::new(shards, kind, 5, 2)
        .with_seed(7)
        .with_runtime(runtime)
        .build()
        .expect("valid store parameters")
}

/// Queues `ROUNDS` rounds of a put and a get per key, drains, and returns
/// `(ops issued, tickets settled)`.
fn drive(store: &mut soda_store::ShardedStore, keys: &[Vec<u8>]) -> (usize, usize) {
    for round in 0..ROUNDS {
        store.put_batch(
            keys.iter()
                .map(|k| (k.clone(), format!("value/r{round}").into_bytes())),
        );
        store.multi_get(keys.iter().cloned());
    }
    let outcome = store.run_until_quiescent();
    assert!(!outcome.hit_event_cap);
    assert_eq!(
        outcome.pending_tickets, 0,
        "fault-free run serves everything"
    );
    (keys.len() * ROUNDS * 2, outcome.completed_tickets)
}

fn measure(kind: ProtocolKind, shards: usize) -> Row {
    let keys: Vec<Vec<u8>> = (0..shards * KEYS_PER_SHARD)
        .map(|i| format!("bench/key/{i}").into_bytes())
        .collect();
    // Warm-up pass on a fresh store, then the timed run on another.
    drive(&mut build(kind, shards, StoreRuntime::Threaded), &keys);
    let mut store = build(kind, shards, StoreRuntime::Threaded);
    let start = Instant::now();
    let (ops, completed) = drive(&mut store, &keys);
    let seconds = start.elapsed().as_secs_f64();
    store
        .check_per_key_atomicity()
        .expect("bench run must stay per-key atomic");
    Row {
        protocol: kind.name().to_string(),
        shards,
        keys: keys.len(),
        ops,
        completed,
        seconds,
        ops_per_sec: ops as f64 / seconds,
    }
}

fn main() {
    let mut rows = Vec::new();
    for kind in [ProtocolKind::Soda, ProtocolKind::Abd, ProtocolKind::Cas] {
        for shards in [1, 2, 4, 8] {
            let row = measure(kind, shards);
            println!(
                "store/{:<5} shards={:<2} {:>9.0} ops/s ({} ops over {} keys in {:.3}s)",
                row.protocol, row.shards, row.ops_per_sec, row.ops, row.keys, row.seconds
            );
            rows.push(row);
        }
    }
    // `cargo bench` forwards flags like `--bench` to the binary; the JSON
    // output path is the first non-flag argument.
    let json_path = std::env::args().skip(1).find(|arg| !arg.starts_with('-'));
    maybe_write_json(json_path.as_deref(), &to_json(&rows));
}
