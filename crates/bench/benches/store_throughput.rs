//! Wall-clock throughput of the sharded store (ops/sec) by shard count,
//! protocol and **runtime** — the serial per-shard drain under `Threaded`
//! (one pool task per shard) against the cluster-granular `WorkStealing`
//! pool (one task per key, so a single hot shard can use every core). A
//! hot-shard block (1 shard × 256 keys) isolates exactly the shape
//! `Threaded` cannot parallelize.
//!
//! Plain `harness = false` timing loop (criterion is unavailable offline).
//! Run with: `cargo bench -p soda-bench --bench store_throughput [out.json]` —
//! with a path argument the measurements are also written as JSON rows in the
//! repo's standard format (see `BENCH_store_throughput.json`).

use soda_bench::maybe_write_json;
use soda_registry::ProtocolKind;
use soda_store::{StoreBuilder, StoreRuntime};
use soda_workload::json::to_json;
use soda_workload::json_row;
use std::time::Instant;

#[derive(Clone)]
struct Row {
    protocol: String,
    runtime: String,
    shards: usize,
    keys_per_shard: usize,
    keys: usize,
    workers: usize,
    ops: usize,
    completed: usize,
    seconds: f64,
    ops_per_sec: f64,
}

json_row!(Row {
    protocol,
    runtime,
    shards,
    keys_per_shard,
    keys,
    workers,
    ops,
    completed,
    seconds,
    ops_per_sec,
});

const ROUNDS: usize = 4;

fn runtime_name(runtime: StoreRuntime) -> &'static str {
    match runtime {
        StoreRuntime::Simulation => "simulation",
        StoreRuntime::Threaded => "threaded",
        StoreRuntime::WorkStealing { .. } => "work-stealing",
    }
}

fn build(kind: ProtocolKind, shards: usize, runtime: StoreRuntime) -> soda_store::ShardedStore {
    StoreBuilder::new(shards, kind, 5, 2)
        .with_seed(7)
        .with_runtime(runtime)
        .build()
        .expect("valid store parameters")
}

/// Queues `ROUNDS` rounds of a put and a get per key, drains, and returns
/// `(ops issued, tickets settled)`.
fn drive(store: &mut soda_store::ShardedStore, keys: &[Vec<u8>]) -> (usize, usize) {
    for round in 0..ROUNDS {
        store.put_batch(
            keys.iter()
                .map(|k| (k.clone(), format!("value/r{round}").into_bytes())),
        );
        store.multi_get(keys.iter().cloned());
    }
    let outcome = store.run_until_quiescent();
    assert!(!outcome.hit_event_cap);
    assert_eq!(
        outcome.pending_tickets, 0,
        "fault-free run serves everything"
    );
    (keys.len() * ROUNDS * 2, outcome.completed_tickets)
}

fn measure(kind: ProtocolKind, shards: usize, keys_per_shard: usize, runtime: StoreRuntime) -> Row {
    let keys: Vec<Vec<u8>> = (0..shards * keys_per_shard)
        .map(|i| format!("bench/key/{i}").into_bytes())
        .collect();
    // Warm-up pass on a fresh store, then the timed run on another.
    drive(&mut build(kind, shards, runtime), &keys);
    let mut store = build(kind, shards, runtime);
    let start = Instant::now();
    let (ops, completed) = drive(&mut store, &keys);
    let seconds = start.elapsed().as_secs_f64();
    store
        .check_per_key_atomicity()
        .expect("bench run must stay per-key atomic");
    Row {
        protocol: kind.name().to_string(),
        runtime: runtime_name(runtime).to_string(),
        shards,
        keys_per_shard,
        keys: keys.len(),
        workers: store.pool_workers(),
        ops,
        completed,
        seconds,
        ops_per_sec: ops as f64 / seconds,
    }
}

fn print_row(row: &Row) {
    println!(
        "store/{:<5} {:<13} shards={:<2} keys/shard={:<3} workers={} {:>9.0} ops/s \
         ({} ops in {:.3}s)",
        row.protocol,
        row.runtime,
        row.shards,
        row.keys_per_shard,
        row.workers,
        row.ops_per_sec,
        row.ops,
        row.seconds
    );
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut rows = Vec::new();

    // The shard axis: both parallel runtimes over the standard matrix.
    // `workers: 0` resolves to one worker per hardware thread.
    for kind in [ProtocolKind::Soda, ProtocolKind::Abd, ProtocolKind::Cas] {
        for shards in [1, 2, 4, 8] {
            for runtime in [
                StoreRuntime::Threaded,
                StoreRuntime::WorkStealing { workers: 0 },
            ] {
                let row = measure(kind, shards, 32, runtime);
                print_row(&row);
                rows.push(row);
            }
        }
    }

    // The hot-shard block: one shard, many keys. Threaded degenerates to a
    // single task here; WorkStealing fans out one task per key cluster.
    let hot_threaded = measure(ProtocolKind::Soda, 1, 256, StoreRuntime::Threaded);
    print_row(&hot_threaded);
    let hot_stealing = measure(
        ProtocolKind::Soda,
        1,
        256,
        StoreRuntime::WorkStealing { workers: 0 },
    );
    print_row(&hot_stealing);
    if cores > 1 {
        // The whole point of the cluster-granular pool — only checkable on a
        // multi-core host; a single-core run degrades both to the same
        // serial loop.
        assert!(
            hot_stealing.ops_per_sec > hot_threaded.ops_per_sec,
            "work-stealing must beat threaded on a hot shard with {cores} cores: \
             {:.0} vs {:.0} ops/s",
            hot_stealing.ops_per_sec,
            hot_threaded.ops_per_sec
        );
    }
    rows.push(hot_threaded);
    rows.push(hot_stealing);

    // `cargo bench` forwards flags like `--bench` to the binary; the JSON
    // output path is the first non-flag argument.
    let json_path = std::env::args().skip(1).find(|arg| !arg.starts_with('-'));
    maybe_write_json(json_path.as_deref(), &to_json(&rows));
}
