//! Wall-clock throughput of the schedule-exploration harness
//! (schedules/sec), with the network adversary off and on, per protocol.
//! Tracks how much simulation capacity the adversarial test bed has, so
//! future harness or simulator changes can be checked for regressions.
//!
//! Plain `harness = false` timing loop (criterion is unavailable offline).
//! Run with: `cargo bench -p soda-bench --bench exploration_throughput
//! [out.json]` — with a path argument the measurements are also written as
//! JSON rows in the repo's standard format.

use soda_bench::maybe_write_json;
use soda_registry::ProtocolKind;
use soda_workload::explore::{explore, AdversaryKnobs, ExploreConfig};
use soda_workload::json::to_json;
use soda_workload::json_row;
use std::time::Instant;

#[derive(Clone)]
struct Row {
    protocol: String,
    adversary: bool,
    schedules: usize,
    completed_ops: usize,
    seconds: f64,
    schedules_per_sec: f64,
}

json_row!(Row {
    protocol,
    adversary,
    schedules,
    completed_ops,
    seconds,
    schedules_per_sec,
});

fn measure(kind: ProtocolKind, n: usize, f: usize, adversary: bool, schedules: usize) -> Row {
    let cfg = ExploreConfig {
        knobs: if adversary {
            AdversaryKnobs::standard()
        } else {
            AdversaryKnobs::off()
        },
        ..ExploreConfig::new(kind, n, f)
    };
    // Warm-up pass, then the timed campaign.
    explore(&cfg, 0, schedules / 10 + 1);
    let start = Instant::now();
    let report = explore(&cfg, 10_000, schedules);
    let seconds = start.elapsed().as_secs_f64();
    assert!(
        report.all_atomic(),
        "{}: bench found a violation: {}",
        kind.name(),
        report.counterexamples[0]
    );
    Row {
        protocol: kind.name().to_string(),
        adversary,
        schedules,
        completed_ops: report.completed_ops,
        seconds,
        schedules_per_sec: schedules as f64 / seconds,
    }
}

fn main() {
    let schedules = 150;
    let mut rows = Vec::new();
    for (kind, n, f) in [
        (ProtocolKind::Soda, 5, 2),
        (ProtocolKind::SodaErr { e: 1 }, 7, 2),
        (ProtocolKind::Abd, 5, 2),
        (ProtocolKind::Cas, 5, 2),
        (ProtocolKind::Casgc { gc: 4 }, 5, 2),
    ] {
        for adversary in [false, true] {
            let row = measure(kind, n, f, adversary, schedules);
            println!(
                "explore/{:<8} adversary={:<5} {:>8.1} schedules/s ({} ops completed)",
                row.protocol, row.adversary, row.schedules_per_sec, row.completed_ops
            );
            rows.push(row);
        }
    }
    // `cargo bench` forwards flags like `--bench` to the binary; the JSON
    // output path is the first non-flag argument.
    let json_path = std::env::args().skip(1).find(|arg| !arg.starts_with('-'));
    maybe_write_json(json_path.as_deref(), &to_json(&rows));
}
