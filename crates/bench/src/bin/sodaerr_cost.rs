//! Experiment F5 — Theorem 6.3: SODAerr's costs with `e` error-prone coded
//! elements: storage `n/(n−f−2e)`, write `≤ 5f²`, read `n/(n−f−2e)(δw+1)`.
//!
//! Each run marks `e` servers as having corrupted local disks, so the decoder
//! genuinely exercises the error-correction path.
//!
//! Usage: `cargo run -p soda-bench --release --bin sodaerr_cost [out.json]`

use soda_bench::{json_path_from_args, maybe_write_json};
use soda_workload::experiments::{render_table, sodaerr_sweep, to_json};

fn main() {
    let (n, f) = (12, 2);
    let es = [0, 1, 2, 3, 4];
    println!("Theorem 6.3: SODAerr costs on n={n}, f={f} with e corrupted-disk servers\n");
    let rows = sodaerr_sweep(n, f, &es, 8 * 1024, 19);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.e.to_string(),
                r.faulty_disks.to_string(),
                format!("{:.3}", r.storage_measured),
                format!("{:.3}", r.storage_paper),
                format!("{:.2}", r.read_measured),
                format!("{:.2}", r.read_paper),
                format!("{:.2}", r.write_measured),
                format!("{:.0}", r.write_bound),
                r.atomic.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "e",
                "bad disks",
                "storage",
                "n/(n-f-2e)",
                "read",
                "paper read",
                "write",
                "5f^2",
                "atomic",
            ],
            &body
        )
    );
    println!("Shape check: storage and read cost grow as e grows (the code dimension shrinks), the write bound is unchanged, and every read still returns the correct value.");
    maybe_write_json(json_path_from_args().as_deref(), &to_json(&rows));
}
