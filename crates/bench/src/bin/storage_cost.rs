//! Experiment F1 — Theorem 5.3: SODA's total storage cost is `n/(n−f)`.
//!
//! Usage: `cargo run -p soda-bench --release --bin storage_cost [out.json]`

use soda_bench::{json_path_from_args, maybe_write_json};
use soda_workload::experiments::{render_table, storage_cost_sweep, to_json};

fn main() {
    let points: Vec<(usize, usize)> = vec![
        (4, 1),
        (6, 2),
        (10, 4),
        (20, 9),
        (30, 5),
        (50, 24),
        (100, 49),
    ];
    println!("Theorem 5.3: total storage cost of SODA = n/(n-f)\n");
    let rows = storage_cost_sweep(&points, 16 * 1024, 7);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.f.to_string(),
                format!("{:.3}", r.measured),
                format!("{:.3}", r.paper),
                format!("{:+.3}", r.measured - r.paper),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["n", "f", "measured", "n/(n-f)", "diff"], &body)
    );
    maybe_write_json(json_path_from_args().as_deref(), &to_json(&rows));
}
