//! Experiment F2 — Theorem 5.4: SODA's write communication cost is `O(f²)`,
//! bounded by `5f²`, compared against ABD's cost of `n`.
//!
//! Usage: `cargo run -p soda-bench --release --bin write_cost [out.json]`

use soda_bench::{json_path_from_args, maybe_write_json};
use soda_workload::experiments::{render_table, to_json, write_cost_sweep};

fn main() {
    let fs = [1, 2, 3, 4, 6, 8, 10];
    println!("Theorem 5.4: SODA write cost <= 5f^2 (n = 2f+1, the maximum-resilience point)\n");
    let rows = write_cost_sweep(&fs, 16 * 1024, 11);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.f.to_string(),
                format!("{:.2}", r.soda),
                format!("{:.0}", r.bound),
                format!("{:.2}", r.abd),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["n", "f", "SODA write", "5f^2 bound", "ABD write"], &body)
    );
    println!("Shape check: SODA's measured cost grows roughly quadratically in f but stays far below the 5f^2 bound; ABD grows linearly in n = 2f+1.");
    maybe_write_json(json_path_from_args().as_deref(), &to_json(&rows));
}
