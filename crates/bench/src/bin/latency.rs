//! Experiment F4 — Theorem 5.7: with message delays bounded by Δ, a SODA
//! write finishes within 5Δ and a read within 6Δ.
//!
//! Usage: `cargo run -p soda-bench --release --bin latency [out.json]`

use soda_bench::{json_path_from_args, maybe_write_json};
use soda_workload::experiments::{latency_sweep, render_table, to_json};

fn main() {
    let points = [(5, 2), (10, 4), (20, 9), (30, 14)];
    let delta = 100;
    println!(
        "Theorem 5.7: operation latency under a constant per-message delay Δ = {delta} ticks\n"
    );
    let rows = latency_sweep(&points, delta, 4 * 1024, 17);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.f.to_string(),
                format!("{:.2}", r.write_deltas),
                format!("{:.0}", r.write_bound),
                format!("{:.2}", r.read_deltas),
                format!("{:.0}", r.read_bound),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "n",
                "f",
                "write (Δ units)",
                "bound",
                "read (Δ units)",
                "bound"
            ],
            &body
        )
    );
    println!("Shape check: measured latencies are independent of the number of concurrent writers and stay within 5Δ / 6Δ.");
    maybe_write_json(json_path_from_args().as_deref(), &to_json(&rows));
}
