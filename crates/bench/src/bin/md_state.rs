//! Experiment F6 — Theorem 3.2: after an MD-VALUE dispersal completes, no
//! server retains the value or any coded element beyond the single stored one,
//! even when the writer crashes mid-dispersal.
//!
//! Usage: `cargo run -p soda-bench --release --bin md_state [out.json]`

use soda_bench::{json_path_from_args, maybe_write_json};
use soda_workload::experiments::{md_state_experiment, render_table, to_json};

fn main() {
    let points = [(5, 2), (10, 4), (15, 7), (25, 12)];
    println!(
        "Theorem 3.2: residual state after MD-VALUE completes (with and without a writer crash)\n"
    );
    let rows = md_state_experiment(&points, 8 * 1024, 23);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.f.to_string(),
                r.writer_crashed.to_string(),
                format!("{:.1}", r.stored_bytes_per_server),
                r.residual_bytes.to_string(),
                r.residual_registrations.to_string(),
                r.residual_history.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "n",
                "f",
                "writer crashed",
                "stored bytes/server",
                "residual value bytes",
                "residual registrations",
                "residual H entries",
            ],
            &body
        )
    );
    println!("Shape check: residual value bytes must be 0 in every row — each server keeps exactly one coded element and nothing else.");
    maybe_write_json(json_path_from_args().as_deref(), &to_json(&rows));
}
