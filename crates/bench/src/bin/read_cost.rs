//! Experiment F3 — Theorem 5.6: SODA's read communication cost is
//! `n/(n−f) · (δw + 1)` where `δw` is the number of writes concurrent with the
//! read.
//!
//! Usage: `cargo run -p soda-bench --release --bin read_cost [out.json]`

use soda_bench::{json_path_from_args, maybe_write_json};
use soda_workload::experiments::{read_cost_sweep, render_table, to_json};

fn main() {
    let (n, f) = (10, 4);
    let delta_ws = [0, 1, 2, 4, 8, 12, 16];
    println!("Theorem 5.6: read cost of SODA = n/(n-f) * (δw + 1), n={n}, f={f}\n");
    let rows = read_cost_sweep(n, f, &delta_ws, 8 * 1024, 13);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.delta_w_target.to_string(),
                r.delta_w_actual.to_string(),
                format!("{:.2}", r.measured),
                format!("{:.2}", r.paper),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "δw target",
                "δw actual",
                "measured read cost",
                "n/(n-f)(δw+1)"
            ],
            &body
        )
    );
    println!("Shape check: the measured cost tracks the formula and is *elastic* — it grows only with the concurrency a read actually experiences.");
    maybe_write_json(json_path_from_args().as_deref(), &to_json(&rows));
}
