//! Ablation A2 — CASGC's rigid, provisioned storage versus SODA's elastic
//! read cost (Section I-B, point (ii) of the CASGC comparison).
//!
//! CASGC must be provisioned for a worst-case concurrency bound δ and then
//! pays `n/(n−2f)·(δ+1)` storage even when the actual concurrency is tiny.
//! SODA always stores `n/(n−f)` and instead pays per-read communication
//! proportional to the concurrency that actually happened.
//!
//! Usage: `cargo run -p soda-bench --release --bin ablation_storage_elasticity [out.json]`

use soda_bench::{json_path_from_args, maybe_write_json};
use soda_workload::experiments::{render_table, storage_elasticity, to_json};

fn main() {
    let (n, f) = (10, 4);
    let provisioned = [0, 1, 2, 4, 8];
    let actual = 1;
    println!("Ablation A2: storage elasticity, n={n}, f={f}, actual concurrency δw={actual}\n");
    let rows = storage_elasticity(n, f, &provisioned, actual, 8 * 1024, 31);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.provisioned_delta.to_string(),
                r.actual_delta_w.to_string(),
                format!("{:.2}", r.soda_storage),
                format!("{:.2}", r.casgc_storage),
                format!("{:.2}", r.soda_read),
                format!("{:.2}", r.casgc_read),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "provisioned δ",
                "actual δw",
                "SODA storage",
                "CASGC storage",
                "SODA read",
                "CASGC read",
            ],
            &body
        )
    );
    println!("Shape check: CASGC storage grows with the provisioned δ even though actual concurrency is constant; SODA storage stays flat at n/(n-f).");
    maybe_write_json(json_path_from_args().as_deref(), &to_json(&rows));
}
