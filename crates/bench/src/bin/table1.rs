//! Experiment T1 — reproduces Table I of the paper: write cost, read cost and
//! total storage cost of ABD, CASGC and SODA at `f = fmax = ⌊(n−1)/2⌋`.
//!
//! Usage: `cargo run -p soda-bench --release --bin table1 [out.json]`

use soda_bench::{json_path_from_args, maybe_write_json};
use soda_workload::experiments::{table1, table1_text, to_json};

fn main() {
    let ns = [10, 20, 50];
    let delta_w = 2;
    let value_size = 8 * 1024;
    println!("Table I reproduction (f = fmax, {delta_w} writes concurrent with the measured read)");
    println!("value size = {value_size} bytes; costs normalized to the value size\n");
    let rows = table1(&ns, delta_w, value_size, 42);
    println!("{}", table1_text(&rows));
    println!(
        "Shape check: SODA storage ≤ 2 and elastic read cost vs CASGC's δ-provisioned storage; ABD pays n everywhere."
    );
    maybe_write_json(json_path_from_args().as_deref(), &to_json(&rows));
}
