//! Ablation A1 — what the reader-registration + relay mechanism buys.
//!
//! A write's dispersal reaches one backbone server quickly and every other
//! server slowly; a read starts in that window, so its requested tag `t_r` is
//! the new tag while only one server can supply an element for it. With the
//! paper's relay mechanism (Fig. 5, response 3) the read completes as soon as
//! the slow dispersal lands; with the mechanism disabled the read never
//! terminates — the liveness hole Theorem 5.1 closes.
//!
//! Usage: `cargo run -p soda-bench --release --bin ablation_relay [out.json]`

use soda_bench::{json_path_from_args, maybe_write_json};
use soda_workload::experiments::{relay_ablation, render_table, to_json};

fn main() {
    println!("Ablation A1: a read racing a slowly-dispersing write (n=5, f=2), with and without concurrent-write relaying\n");
    let rows = relay_ablation(4 * 1024, 29);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.relay_enabled.to_string(),
                r.read_completed.to_string(),
                r.read_latency.to_string(),
                r.write_completed.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "relay enabled",
                "read completed",
                "read latency (ticks)",
                "write completed"
            ],
            &body
        )
    );
    println!("Shape check: with the relay the read completes (albeit slowly, once the dispersal lands); without it the read never terminates even though the write itself finishes.");
    maybe_write_json(json_path_from_args().as_deref(), &to_json(&rows));
}
