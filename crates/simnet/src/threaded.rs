//! Shared-memory threaded runtime.
//!
//! Runs the same [`Process`] implementations as the discrete-event simulator,
//! but on real OS threads connected by mpsc channels. This gives actual
//! parallel execution and wall-clock timings for the benchmark harness, at the
//! cost of determinism (interleavings depend on the OS scheduler). Crash
//! injection is supported by marking a process halted before the run starts or
//! through [`Context::halt`]; timers are ignored. The protocols' client/server
//! message flow never needs them — the only timers in the workspace drive
//! repair *retries* against partition windows, and this runtime has neither
//! partitions nor loss (channels deliver everything), so the initial attempt
//! always gets through and the retry/give-up machinery stays idle. (The
//! store's `Threaded` runtime is unaffected: it runs full deterministic
//! `Simulation`s on OS threads, timers included.)
//!
//! Quiescence detection uses an in-flight message counter: every enqueue
//! increments it and every completed handler decrements it, so the run
//! terminates exactly when no messages remain anywhere in the system.

use crate::process::{Action, Context, Message, Process, ProcessId};
use crate::time::SimTime;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// One message in flight between two processes.
enum Envelope<M> {
    Deliver { from: ProcessId, msg: M },
    Stop,
}

/// Result of a threaded run: the processes (for state inspection) and
/// aggregate counters.
pub struct ThreadedResult<M: Message> {
    /// The process objects in registration order, returned for inspection.
    pub processes: Vec<Box<dyn Process<M>>>,
    /// Total messages exchanged (including externally injected ones).
    pub messages_sent: u64,
    /// Total object-value data bytes carried by those messages.
    pub data_bytes_sent: u64,
    /// Wall-clock duration of the run (from first injection to quiescence).
    pub elapsed: Duration,
}

impl<M: Message> ThreadedResult<M> {
    /// Typed access to a process's final state.
    pub fn process_as<T: 'static>(&self, id: ProcessId) -> Option<&T> {
        self.processes.get(id.index())?.as_any().downcast_ref::<T>()
    }
}

/// Runs the given processes on one OS thread each, injects the external
/// messages, waits for quiescence and returns the final states.
///
/// `injections` pairs a target process index with a message; all injections are
/// delivered from [`ProcessId::ENV`] at the start of the run.
pub fn run_threaded<M: Message>(
    processes: Vec<Box<dyn Process<M>>>,
    injections: Vec<(ProcessId, M)>,
    seed: u64,
) -> ThreadedResult<M> {
    let n = processes.len();
    let in_flight = Arc::new(AtomicI64::new(0));
    let started = Arc::new(AtomicU64::new(0));
    let messages_sent = Arc::new(AtomicU64::new(0));
    let data_bytes_sent = Arc::new(AtomicU64::new(0));

    let mut senders: Vec<Sender<Envelope<M>>> = Vec::with_capacity(n);
    let mut receivers: Vec<Receiver<Envelope<M>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = channel();
        senders.push(tx);
        receivers.push(rx);
    }

    let start = Instant::now();
    let mut handles = Vec::with_capacity(n);
    for (idx, (mut process, rx)) in processes.into_iter().zip(receivers).enumerate() {
        let senders = senders.clone();
        let in_flight = Arc::clone(&in_flight);
        let started = Arc::clone(&started);
        let messages_sent = Arc::clone(&messages_sent);
        let data_bytes_sent = Arc::clone(&data_bytes_sent);
        let handle = thread::spawn(move || {
            let self_id = ProcessId(idx as u32);
            let mut rng = ChaCha12Rng::seed_from_u64(seed ^ (idx as u64).wrapping_mul(0x9E37_79B9));
            let mut halted = false;

            // on_start with an isolated context.
            let start_instant = Instant::now();
            let run_handler = |process: &mut Box<dyn Process<M>>,
                               rng: &mut ChaCha12Rng,
                               halted: &mut bool,
                               from: Option<(ProcessId, M)>| {
                let now = SimTime::from_ticks(start_instant.elapsed().as_micros() as u64);
                let mut ctx = Context {
                    self_id,
                    now,
                    actions: Vec::new(),
                    rng,
                };
                match from {
                    None => process.on_start(&mut ctx),
                    Some((sender, msg)) => process.on_message(sender, msg, &mut ctx),
                }
                for action in ctx.actions {
                    match action {
                        Action::Send { to, msg } => {
                            if to.index() < senders.len() {
                                in_flight.fetch_add(1, Ordering::SeqCst);
                                messages_sent.fetch_add(1, Ordering::Relaxed);
                                data_bytes_sent
                                    .fetch_add(msg.data_bytes() as u64, Ordering::Relaxed);
                                // A send to a stopped channel means the peer
                                // finished; treat as a drop.
                                if senders[to.index()]
                                    .send(Envelope::Deliver { from: self_id, msg })
                                    .is_err()
                                {
                                    in_flight.fetch_sub(1, Ordering::SeqCst);
                                }
                            }
                        }
                        Action::SetTimer { .. } => {
                            // Timers are not supported in the threaded runtime.
                        }
                        Action::Halt => *halted = true,
                    }
                }
            };

            run_handler(&mut process, &mut rng, &mut halted, None);
            // Publish start completion only after on_start's sends have
            // incremented in_flight, so the quiescence wait below cannot
            // pass before they are counted.
            started.fetch_add(1, Ordering::SeqCst);

            while let Ok(envelope) = rx.recv() {
                match envelope {
                    Envelope::Stop => break,
                    Envelope::Deliver { from, msg } => {
                        if !halted {
                            run_handler(&mut process, &mut rng, &mut halted, Some((from, msg)));
                        }
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            }
            process
        });
        handles.push(handle);
    }

    // Inject external messages (counted as in-flight before sending).
    for (to, msg) in injections {
        if to.index() < senders.len() {
            in_flight.fetch_add(1, Ordering::SeqCst);
            messages_sent.fetch_add(1, Ordering::Relaxed);
            data_bytes_sent.fetch_add(msg.data_bytes() as u64, Ordering::Relaxed);
            let _ = senders[to.index()].send(Envelope::Deliver {
                from: ProcessId::ENV,
                msg,
            });
        }
    }

    // Wait until every worker has completed on_start (whose sends must be
    // counted before quiescence can be judged), then for quiescence proper:
    // no messages in flight anywhere.
    while started.load(Ordering::SeqCst) < n as u64 {
        thread::yield_now();
    }
    while in_flight.load(Ordering::SeqCst) > 0 {
        thread::yield_now();
    }

    // Shut down workers and collect their process objects.
    for tx in &senders {
        let _ = tx.send(Envelope::Stop);
    }
    let processes: Vec<Box<dyn Process<M>>> = handles
        .into_iter()
        .map(|h| h.join().expect("worker thread panicked"))
        .collect();

    ThreadedResult {
        processes,
        messages_sent: messages_sent.load(Ordering::Relaxed),
        data_bytes_sent: data_bytes_sent.load(Ordering::Relaxed),
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    enum Msg {
        Token(u32),
        Blob(Vec<u8>),
    }
    impl Message for Msg {
        fn data_bytes(&self) -> usize {
            match self {
                Msg::Token(_) => 0,
                Msg::Blob(b) => b.len(),
            }
        }
    }

    /// Passes a token around a ring `rounds` times.
    struct RingNode {
        n: usize,
        rounds: u32,
        seen: u32,
    }
    impl Process<Msg> for RingNode {
        fn on_message(&mut self, _from: ProcessId, msg: Msg, ctx: &mut Context<'_, Msg>) {
            if let Msg::Token(v) = msg {
                self.seen += 1;
                if v < self.rounds * self.n as u32 {
                    let next = ProcessId(((ctx.self_id().0 as usize + 1) % self.n) as u32);
                    ctx.send(next, Msg::Token(v + 1));
                }
            }
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn token_ring_completes_and_counts() {
        let n = 4;
        let rounds = 3;
        let processes: Vec<Box<dyn Process<Msg>>> = (0..n)
            .map(|_| Box::new(RingNode { n, rounds, seen: 0 }) as Box<dyn Process<Msg>>)
            .collect();
        let result = run_threaded(processes, vec![(ProcessId(0), Msg::Token(0))], 1);
        let total_seen: u32 = (0..n)
            .map(|i| {
                result
                    .process_as::<RingNode>(ProcessId(i as u32))
                    .unwrap()
                    .seen
            })
            .sum();
        assert_eq!(total_seen, rounds * n as u32 + 1);
        assert_eq!(result.messages_sent as u32, total_seen);
    }

    #[test]
    fn data_bytes_accounting() {
        struct Forwarder;
        impl Process<Msg> for Forwarder {
            fn on_message(&mut self, from: ProcessId, msg: Msg, ctx: &mut Context<'_, Msg>) {
                if from == ProcessId::ENV {
                    if let Msg::Blob(b) = msg {
                        ctx.send(ProcessId(1), Msg::Blob(b));
                    }
                }
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        struct Sink {
            bytes: usize,
        }
        impl Process<Msg> for Sink {
            fn on_message(&mut self, _f: ProcessId, msg: Msg, _c: &mut Context<'_, Msg>) {
                if let Msg::Blob(b) = msg {
                    self.bytes += b.len();
                }
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let processes: Vec<Box<dyn Process<Msg>>> =
            vec![Box::new(Forwarder), Box::new(Sink { bytes: 0 })];
        let result = run_threaded(processes, vec![(ProcessId(0), Msg::Blob(vec![7u8; 64]))], 2);
        assert_eq!(result.data_bytes_sent, 128, "injection + forward");
        assert_eq!(result.process_as::<Sink>(ProcessId(1)).unwrap().bytes, 64);
    }

    #[test]
    fn empty_system_terminates() {
        let result: ThreadedResult<Msg> = run_threaded(Vec::new(), Vec::new(), 0);
        assert_eq!(result.messages_sent, 0);
        assert!(result.processes.is_empty());
    }

    #[test]
    fn halted_process_ignores_messages() {
        struct HaltOnFirst {
            handled: u32,
        }
        impl Process<Msg> for HaltOnFirst {
            fn on_message(&mut self, _f: ProcessId, _m: Msg, ctx: &mut Context<'_, Msg>) {
                self.handled += 1;
                ctx.halt();
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let processes: Vec<Box<dyn Process<Msg>>> = vec![Box::new(HaltOnFirst { handled: 0 })];
        let result = run_threaded(
            processes,
            vec![
                (ProcessId(0), Msg::Token(1)),
                (ProcessId(0), Msg::Token(2)),
                (ProcessId(0), Msg::Token(3)),
            ],
            3,
        );
        assert_eq!(
            result
                .process_as::<HaltOnFirst>(ProcessId(0))
                .unwrap()
                .handled,
            1
        );
    }
}
