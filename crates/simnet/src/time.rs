//! Simulated time.
//!
//! Time is a dimensionless `u64` tick count. The latency analysis of the paper
//! (Section V-C) expresses bounds in multiples of Δ, the maximum message
//! delivery delay; experiments pick a Δ in ticks and report latencies as
//! `ticks / Δ`.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (ticks since the start of the execution).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero — the start of every execution.
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable time.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs a time from raw ticks.
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// The raw tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating difference in ticks.
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0.saturating_add(rhs))
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, rhs: u64) {
        self.0 = self.0.saturating_add(rhs);
    }
}

impl Sub for SimTime {
    type Output = u64;
    fn sub(self, rhs: SimTime) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_ordering() {
        let a = SimTime::from_ticks(10);
        let b = a + 5;
        assert_eq!(b.ticks(), 15);
        assert!(b > a);
        assert_eq!(b - a, 5);
        assert_eq!(a - b, 0, "difference saturates at zero");
        assert_eq!(b.since(a), 5);
        assert_eq!(a.since(b), 0);
    }

    #[test]
    fn saturating_add_at_max() {
        let m = SimTime::MAX;
        assert_eq!(m + 10, SimTime::MAX);
    }

    #[test]
    fn display_format() {
        assert_eq!(SimTime::from_ticks(7).to_string(), "t=7");
    }
}
