//! Deterministic discrete-event simulation of an asynchronous message-passing
//! system, used as the execution substrate for the SODA / SODAerr / ABD / CAS
//! protocol implementations.
//!
//! The paper's model (Section II) is: a set of client and server processes,
//! each pair connected by a **reliable point-to-point channel** — a message
//! sent to a non-faulty destination is eventually delivered, after an
//! arbitrary finite delay, with no ordering guarantees; processes may **crash**
//! (servers up to `f` of them, clients arbitrarily); computation is
//! asynchronous. This crate reproduces that model exactly:
//!
//! * [`Simulation`] — a seeded, deterministic event-driven scheduler. Message
//!   delays are sampled from a configurable [`DelayModel`], so the same seed
//!   always produces the same interleaving (important for debugging and for
//!   property tests that shrink on failure).
//! * [`Process`] — the actor trait protocol automata implement
//!   (`on_start` / `on_message` / `on_timer`).
//! * [`FaultPlan`] / [`Simulation::schedule_crash`] — crash injection at
//!   arbitrary points, including mid-operation client crashes — and
//!   crash–*recovery*: [`Simulation::schedule_recovery`] replaces a crashed
//!   process with a fresh (empty-state) one, modelling server repair.
//! * [`NetFaultPlan`] / [`Simulation::set_net_fault_plan`] — the network
//!   adversary: per-link message drop, extra delay, reordering (hold-back),
//!   duplication, byzantine payload corruption via a message-type specific
//!   [`CorruptionHook`], and scheduled [`LinkWindow`] / [`Partition`]
//!   outages that cut links during `[start, end)` and heal — without
//!   consuming any randomness, so seeds keep their schedules.
//! * [`Trace`] / [`Stats`] — accounting of messages and **data bytes** (bytes
//!   of object-value payload, excluding metadata) exactly mirroring the
//!   paper's storage/communication cost model, which ignores metadata.
//! * [`threaded`] — a shared-memory runtime that executes the same `Process`
//!   objects on OS threads with real channels, for wall-clock benchmarking.
//!
//! # Example
//!
//! ```
//! use soda_simnet::{Context, Message, NetworkConfig, Process, ProcessId, Simulation};
//!
//! #[derive(Clone, Debug)]
//! struct Ping(u32);
//! impl Message for Ping {}
//!
//! struct Echo { peer: ProcessId, got: Vec<u32> }
//! impl Process<Ping> for Echo {
//!     fn on_message(&mut self, _from: ProcessId, msg: Ping, ctx: &mut Context<'_, Ping>) {
//!         self.got.push(msg.0);
//!         if msg.0 < 3 { ctx.send(self.peer, Ping(msg.0 + 1)); }
//!     }
//!     fn as_any(&self) -> &dyn std::any::Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
//! }
//!
//! let mut sim = Simulation::new(42, NetworkConfig::default());
//! // Ids are assigned densely in registration order: 0 then 1.
//! let a = sim.add_process(Box::new(Echo { peer: ProcessId(1), got: vec![] }));
//! let b = sim.add_process(Box::new(Echo { peer: ProcessId(0), got: vec![] }));
//! sim.send_external(a, Ping(0));
//! sim.run_to_quiescence();
//! let a_state: &Echo = sim.process_as(a).unwrap();
//! assert_eq!(a_state.got, vec![0, 2]);
//! let b_state: &Echo = sim.process_as(b).unwrap();
//! assert_eq!(b_state.got, vec![1, 3]);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod fasthash;
mod fault;
mod netfault;
mod process;
mod sim;
pub mod testkit;
pub mod threaded;
mod time;
mod trace;
mod wheel;

pub use config::{DelayModel, NetworkConfig};
pub use fasthash::{BuildFastHasher, FastHashMap, FastHashSet, FastHasher};
pub use fault::{CrashEvent, FaultPlan, RecoveryEvent};
pub use netfault::{LinkFaults, LinkWindow, NetFaultPlan, Partition};
pub use process::{Context, Message, Process, ProcessId};
pub use sim::{CorruptionHook, RunOutcome, Simulation};
pub use time::SimTime;
pub use trace::{ProcessStats, Stats, Trace, TraceEvent};
