//! Crash-fault injection.
//!
//! The paper tolerates up to `f ≤ (n−1)/2` server crashes and arbitrarily many
//! client crashes. A [`FaultPlan`] describes which processes crash and when;
//! it can be handed to the simulation up front or crashes can be scheduled
//! dynamically with [`crate::Simulation::schedule_crash`].
//!
//! A [`FaultPlan`] models **crash-stop faults with replacement**: a crashed
//! process permanently stops receiving events, but messages it already sent
//! stay in the channels (the paper's channel model) and its state remains
//! inspectable by the harness. It does *not* model message loss, delay,
//! reordering, duplication, or corruption — message-level (network) faults
//! live in [`crate::NetFaultPlan`], and the two compose: schedule crashes
//! from a `FaultPlan` (merging independent plans with [`FaultPlan::merge`])
//! and install the network adversary with
//! [`crate::Simulation::set_net_fault_plan`] in the same execution.
//!
//! **Recovery** is modelled as *replacement*, never resurrection: a
//! [`RecoveryEvent`] says that a **fresh process with empty state** takes
//! over the crashed process's id at time `at` (the paper's §V / RADON repair
//! setting — a repaired server re-joins with none of its pre-crash state and
//! must re-acquire it from survivors via a protocol-level repair procedure).
//! Because the replacement's initial state is protocol-specific, a
//! `FaultPlan` records only *that* a recovery happens; the replacement
//! process itself is supplied by the harness, either directly via
//! [`crate::Simulation::schedule_recovery`] or through the factory passed to
//! [`crate::Simulation::apply_fault_plan_with`].

use crate::process::ProcessId;
use crate::time::SimTime;

/// A single scheduled crash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashEvent {
    /// The process that crashes.
    pub process: ProcessId,
    /// When the crash takes effect. No events are delivered to the process at
    /// or after this time.
    pub at: SimTime,
}

/// A single scheduled recovery: a fresh, empty-state replacement process
/// takes over `process`'s id at time `at`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryEvent {
    /// The process id the replacement takes over.
    pub process: ProcessId,
    /// When the replacement joins. Events are delivered to it from this time
    /// on (its `on_start` runs before the next event is processed).
    pub at: SimTime,
}

/// A collection of scheduled crashes and recoveries.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    crashes: Vec<CrashEvent>,
    recoveries: Vec<RecoveryEvent>,
}

impl FaultPlan {
    /// An empty plan (no failures).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Adds a crash of `process` at time `at` (builder style).
    pub fn crash(mut self, process: ProcessId, at: SimTime) -> Self {
        self.crashes.push(CrashEvent { process, at });
        self
    }

    /// Crashes every process in the iterator at the same time.
    pub fn crash_all<I: IntoIterator<Item = ProcessId>>(
        mut self,
        processes: I,
        at: SimTime,
    ) -> Self {
        for p in processes {
            self.crashes.push(CrashEvent { process: p, at });
        }
        self
    }

    /// Adds a recovery of `process` at time `at` (builder style): a fresh
    /// replacement with empty state takes over the id. The replacement
    /// process itself is supplied when the plan is applied (see
    /// [`crate::Simulation::apply_fault_plan_with`]).
    pub fn recover(mut self, process: ProcessId, at: SimTime) -> Self {
        self.recoveries.push(RecoveryEvent { process, at });
        self
    }

    /// Merges another plan's crashes and recoveries into this one (builder
    /// style), so independently built crash plans — e.g. a baseline
    /// server-crash plan and a scenario-specific client-crash plan, alongside
    /// a [`crate::NetFaultPlan`] — compose into one schedule. Events are
    /// concatenated; duplicates are harmless (crashing a crashed process is a
    /// no-op, recovering a live one replaces it).
    pub fn merge(mut self, other: FaultPlan) -> Self {
        self.crashes.extend(other.crashes);
        self.recoveries.extend(other.recoveries);
        self
    }

    /// The scheduled crashes.
    pub fn crashes(&self) -> &[CrashEvent] {
        &self.crashes
    }

    /// The scheduled recoveries.
    pub fn recoveries(&self) -> &[RecoveryEvent] {
        &self.recoveries
    }

    /// Number of scheduled crashes.
    pub fn len(&self) -> usize {
        self.crashes.len()
    }

    /// Whether the plan schedules nothing at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.recoveries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_crashes() {
        let plan = FaultPlan::none()
            .crash(ProcessId(1), SimTime::from_ticks(10))
            .crash_all([ProcessId(2), ProcessId(3)], SimTime::from_ticks(20));
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
        assert_eq!(plan.crashes()[0].process, ProcessId(1));
        assert_eq!(plan.crashes()[2].at, SimTime::from_ticks(20));
    }

    #[test]
    fn empty_plan() {
        assert!(FaultPlan::none().is_empty());
        assert_eq!(FaultPlan::none().len(), 0);
    }

    #[test]
    fn merge_concatenates_crashes() {
        let servers = FaultPlan::none().crash(ProcessId(0), SimTime::from_ticks(5));
        let clients = FaultPlan::none()
            .crash(ProcessId(7), SimTime::from_ticks(1))
            .crash(ProcessId(8), SimTime::from_ticks(2));
        let merged = servers.merge(clients);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged.crashes()[0].process, ProcessId(0));
        assert_eq!(merged.crashes()[2].process, ProcessId(8));
        // Merging an empty plan changes nothing.
        let same = merged.clone().merge(FaultPlan::none());
        assert_eq!(same, merged);
    }

    #[test]
    fn recoveries_accumulate_and_merge() {
        let plan = FaultPlan::none()
            .crash(ProcessId(1), SimTime::from_ticks(10))
            .recover(ProcessId(1), SimTime::from_ticks(30));
        assert_eq!(plan.recoveries().len(), 1);
        assert_eq!(plan.recoveries()[0].process, ProcessId(1));
        assert_eq!(plan.recoveries()[0].at, SimTime::from_ticks(30));
        assert!(!plan.is_empty());

        // A plan with only recoveries is non-empty even though len() (crash
        // count) is zero.
        let only_recovery = FaultPlan::none().recover(ProcessId(2), SimTime::from_ticks(5));
        assert_eq!(only_recovery.len(), 0);
        assert!(!only_recovery.is_empty());

        let merged = plan.clone().merge(only_recovery);
        assert_eq!(merged.recoveries().len(), 2);
    }
}
