//! Message accounting and optional event tracing.
//!
//! The paper's cost model (Section II-h) counts, for communication, the bytes
//! of object-value data carried in messages and, for storage, the bytes of
//! coded elements held by servers; metadata is free. The [`Trace`] collects the
//! communication side of this: every send is recorded with its data-byte count
//! (as reported by [`crate::Message::data_bytes`]), aggregated globally and per
//! process, with support for windowed measurements via [`Stats`] snapshots.

use crate::process::ProcessId;
use crate::time::SimTime;

/// A single recorded message transfer (kept only when detailed tracing is on).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Time the message was sent.
    pub sent_at: SimTime,
    /// Time the message will be / was delivered.
    pub delivered_at: SimTime,
    /// Sender.
    pub from: ProcessId,
    /// Receiver.
    pub to: ProcessId,
    /// Bytes of object-value data carried.
    pub data_bytes: usize,
    /// Message kind label.
    pub kind: &'static str,
    /// Whether the message was dropped because the destination had crashed.
    pub dropped: bool,
}

/// Per-process message counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProcessStats {
    /// Messages sent by this process.
    pub messages_sent: u64,
    /// Messages delivered to this process.
    pub messages_received: u64,
    /// Object-value data bytes sent by this process.
    pub data_bytes_sent: u64,
    /// Object-value data bytes delivered to this process.
    pub data_bytes_received: u64,
}

/// Aggregate message counters for a whole execution (or a window of it).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Total messages sent.
    pub messages_sent: u64,
    /// Total messages delivered.
    pub messages_delivered: u64,
    /// Messages dropped because the destination crashed, or lost by the
    /// network adversary (see [`Stats::messages_lost`] for the latter alone).
    pub messages_dropped: u64,
    /// Messages dropped by the network adversary
    /// ([`crate::NetFaultPlan`] drop faults). Also counted in
    /// [`Stats::messages_dropped`].
    pub messages_lost: u64,
    /// Messages cut by a scheduled partition window
    /// ([`crate::LinkWindow`]). Deterministic drops, counted separately from
    /// the probabilistic [`Stats::messages_lost`]; also counted in
    /// [`Stats::messages_dropped`].
    pub messages_partitioned: u64,
    /// Extra deliveries created by adversarial duplication. Duplicates are
    /// channel artifacts: they are *not* counted in [`Stats::messages_sent`]
    /// or [`Stats::data_bytes_sent`] (the protocol's communication cost),
    /// only here and in the delivery-side counters.
    pub messages_duplicated: u64,
    /// Messages whose payload the byzantine corruption hook mutated.
    pub messages_corrupted: u64,
    /// Total object-value data bytes sent (the paper's communication cost,
    /// un-normalized).
    pub data_bytes_sent: u64,
    /// Messages that carried no object-value data (metadata-only).
    pub metadata_messages: u64,
    /// Per-process counters, indexed by process id.
    pub per_process: Vec<ProcessStats>,
}

impl Stats {
    /// Difference `self - earlier`, used for windowed measurements
    /// (e.g. the communication cost of a single operation).
    pub fn since(&self, earlier: &Stats) -> Stats {
        let per_process = self
            .per_process
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let e = earlier.per_process.get(i).copied().unwrap_or_default();
                ProcessStats {
                    messages_sent: p.messages_sent - e.messages_sent,
                    messages_received: p.messages_received - e.messages_received,
                    data_bytes_sent: p.data_bytes_sent - e.data_bytes_sent,
                    data_bytes_received: p.data_bytes_received - e.data_bytes_received,
                }
            })
            .collect();
        Stats {
            messages_sent: self.messages_sent - earlier.messages_sent,
            messages_delivered: self.messages_delivered - earlier.messages_delivered,
            messages_dropped: self.messages_dropped - earlier.messages_dropped,
            messages_lost: self.messages_lost - earlier.messages_lost,
            messages_partitioned: self.messages_partitioned - earlier.messages_partitioned,
            messages_duplicated: self.messages_duplicated - earlier.messages_duplicated,
            messages_corrupted: self.messages_corrupted - earlier.messages_corrupted,
            data_bytes_sent: self.data_bytes_sent - earlier.data_bytes_sent,
            metadata_messages: self.metadata_messages - earlier.metadata_messages,
            per_process,
        }
    }
}

/// Accumulates statistics (always) and raw events (only when `detailed` is on,
/// since event logs grow linearly with the execution).
#[derive(Debug, Default)]
pub struct Trace {
    stats: Stats,
    detailed: bool,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates a trace; `detailed` controls whether individual events are kept.
    pub fn new(detailed: bool) -> Self {
        Trace {
            stats: Stats::default(),
            detailed,
            events: Vec::new(),
        }
    }

    fn ensure_process(&mut self, id: ProcessId) -> Option<&mut ProcessStats> {
        if id == ProcessId::ENV {
            return None;
        }
        let idx = id.index();
        if self.stats.per_process.len() <= idx {
            self.stats
                .per_process
                .resize(idx + 1, ProcessStats::default());
        }
        Some(&mut self.stats.per_process[idx])
    }

    /// Records a message send (called by the simulation at send time).
    #[allow(clippy::too_many_arguments)] // mirrors the event tuple one-to-one
    pub fn record_send(
        &mut self,
        sent_at: SimTime,
        delivered_at: SimTime,
        from: ProcessId,
        to: ProcessId,
        data_bytes: usize,
        kind: &'static str,
        dropped: bool,
    ) {
        self.stats.messages_sent += 1;
        self.stats.data_bytes_sent += data_bytes as u64;
        if data_bytes == 0 {
            self.stats.metadata_messages += 1;
        }
        if dropped {
            self.stats.messages_dropped += 1;
        }
        if let Some(p) = self.ensure_process(from) {
            p.messages_sent += 1;
            p.data_bytes_sent += data_bytes as u64;
        }
        if self.detailed {
            self.events.push(TraceEvent {
                sent_at,
                delivered_at,
                from,
                to,
                data_bytes,
                kind,
                dropped,
            });
        }
    }

    /// Records a message that was dropped at delivery time because its
    /// destination had crashed in the meantime.
    pub fn record_drop(&mut self) {
        self.stats.messages_dropped += 1;
    }

    /// Records a message lost to the network adversary. The send itself is
    /// recorded separately (with `dropped = true`), so this only bumps the
    /// adversary-specific counter.
    pub fn record_net_drop(&mut self) {
        self.stats.messages_lost += 1;
    }

    /// Records a message cut by a scheduled partition window. The send itself
    /// is recorded separately (with `dropped = true`), so this only bumps the
    /// partition-specific counter.
    pub fn record_net_partition(&mut self) {
        self.stats.messages_partitioned += 1;
    }

    /// Records an extra delivery created by adversarial duplication.
    pub fn record_net_duplicate(&mut self) {
        self.stats.messages_duplicated += 1;
    }

    /// Records a payload mutation by the byzantine corruption hook.
    pub fn record_net_corrupt(&mut self) {
        self.stats.messages_corrupted += 1;
    }

    /// Records a message delivery (called by the simulation at delivery time).
    pub fn record_delivery(&mut self, to: ProcessId, data_bytes: usize) {
        self.stats.messages_delivered += 1;
        if let Some(p) = self.ensure_process(to) {
            p.messages_received += 1;
            p.data_bytes_received += data_bytes as u64;
        }
    }

    /// Current aggregate statistics (cloned snapshot).
    pub fn stats(&self) -> Stats {
        self.stats.clone()
    }

    /// Recorded events (empty unless detailed tracing was enabled).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Whether detailed tracing is enabled.
    pub fn is_detailed(&self) -> bool {
        self.detailed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_and_per_process_counters() {
        let mut trace = Trace::new(false);
        trace.record_send(
            SimTime::from_ticks(1),
            SimTime::from_ticks(3),
            ProcessId(0),
            ProcessId(1),
            100,
            "value",
            false,
        );
        trace.record_send(
            SimTime::from_ticks(2),
            SimTime::from_ticks(4),
            ProcessId(1),
            ProcessId(0),
            0,
            "ack",
            false,
        );
        trace.record_delivery(ProcessId(1), 100);
        let s = trace.stats();
        assert_eq!(s.messages_sent, 2);
        assert_eq!(s.messages_delivered, 1);
        assert_eq!(s.data_bytes_sent, 100);
        assert_eq!(s.metadata_messages, 1);
        assert_eq!(s.per_process[0].messages_sent, 1);
        assert_eq!(s.per_process[0].data_bytes_sent, 100);
        assert_eq!(s.per_process[1].messages_received, 1);
        assert_eq!(s.per_process[1].data_bytes_received, 100);
        assert!(trace.events().is_empty(), "detailed tracing is off");
    }

    #[test]
    fn detailed_trace_keeps_events() {
        let mut trace = Trace::new(true);
        assert!(trace.is_detailed());
        trace.record_send(
            SimTime::ZERO,
            SimTime::from_ticks(2),
            ProcessId(0),
            ProcessId(2),
            7,
            "coded",
            true,
        );
        assert_eq!(trace.events().len(), 1);
        assert!(trace.events()[0].dropped);
        assert_eq!(trace.stats().messages_dropped, 1);
    }

    #[test]
    fn env_sender_is_not_tracked_per_process() {
        let mut trace = Trace::new(false);
        trace.record_send(
            SimTime::ZERO,
            SimTime::from_ticks(1),
            ProcessId::ENV,
            ProcessId(0),
            50,
            "invoke",
            false,
        );
        let s = trace.stats();
        assert_eq!(s.messages_sent, 1);
        // ENV has no per-process slot; only process 0 exists after delivery.
        trace.record_delivery(ProcessId(0), 50);
        let s = trace.stats();
        assert_eq!(s.per_process[0].messages_received, 1);
    }

    #[test]
    fn stats_since_computes_window() {
        let mut trace = Trace::new(false);
        trace.record_send(
            SimTime::ZERO,
            SimTime::from_ticks(1),
            ProcessId(0),
            ProcessId(1),
            10,
            "a",
            false,
        );
        let snapshot = trace.stats();
        trace.record_send(
            SimTime::from_ticks(5),
            SimTime::from_ticks(6),
            ProcessId(0),
            ProcessId(1),
            30,
            "b",
            false,
        );
        trace.record_delivery(ProcessId(1), 30);
        let window = trace.stats().since(&snapshot);
        assert_eq!(window.messages_sent, 1);
        assert_eq!(window.data_bytes_sent, 30);
        assert_eq!(window.messages_delivered, 1);
        assert_eq!(window.per_process[0].data_bytes_sent, 30);
    }
}
