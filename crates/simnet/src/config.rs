//! Network configuration: message delay models and per-link overrides.

use crate::process::ProcessId;
use rand::Rng;
use std::collections::HashMap;

/// Distribution from which per-message delivery delays are sampled (in ticks).
///
/// The paper assumes arbitrary finite delays for the asynchronous model and a
/// bound Δ for the latency analysis (Section V-C); both are expressible here.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DelayModel {
    /// Every message takes exactly this many ticks.
    Constant(u64),
    /// Uniformly distributed in `[min, max]` (inclusive).
    Uniform {
        /// Minimum delay in ticks.
        min: u64,
        /// Maximum delay in ticks.
        max: u64,
    },
    /// Geometric-tailed delay: `min + Geometric(p)` capped at `cap`, a simple
    /// heavy-ish tail for adversarial reordering without unbounded delays.
    GeometricTail {
        /// Minimum delay in ticks.
        min: u64,
        /// Success probability of the geometric component (0 < p ≤ 1).
        p: f64,
        /// Hard cap on the sampled delay.
        cap: u64,
    },
}

impl DelayModel {
    /// Samples a delay in ticks. Always returns at least 1 so that causality
    /// (send strictly-before delivery) is preserved.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let raw = match *self {
            DelayModel::Constant(d) => d,
            DelayModel::Uniform { min, max } => {
                let (lo, hi) = if min <= max { (min, max) } else { (max, min) };
                rng.gen_range(lo..=hi)
            }
            DelayModel::GeometricTail { min, p, cap } => {
                let p = p.clamp(1e-6, 1.0);
                let mut extra = 0u64;
                while extra < cap && !rng.gen_bool(p) {
                    extra += 1;
                }
                (min + extra).min(cap.max(min))
            }
        };
        raw.max(1)
    }

    /// An upper bound on the delays this model can produce, if one exists.
    /// Used by the latency experiments to convert ticks into Δ units.
    pub fn upper_bound(&self) -> Option<u64> {
        match *self {
            DelayModel::Constant(d) => Some(d.max(1)),
            DelayModel::Uniform { min, max } => Some(max.max(min).max(1)),
            DelayModel::GeometricTail { min, cap, .. } => Some(cap.max(min).max(1)),
        }
    }
}

impl Default for DelayModel {
    fn default() -> Self {
        DelayModel::Uniform { min: 1, max: 10 }
    }
}

/// Configuration of the simulated network.
#[derive(Clone, Debug, Default)]
pub struct NetworkConfig {
    /// Default delay model for every channel.
    pub default_delay: DelayModel,
    /// Per-directed-link overrides of the delay model (e.g. to make one
    /// server arbitrarily slow, producing adversarial schedules).
    pub link_overrides: HashMap<(ProcessId, ProcessId), DelayModel>,
}

impl NetworkConfig {
    /// Configuration in which every message takes exactly `delta` ticks.
    pub fn constant(delta: u64) -> Self {
        NetworkConfig {
            default_delay: DelayModel::Constant(delta),
            link_overrides: HashMap::new(),
        }
    }

    /// Configuration with uniformly random delays in `[1, delta]`, i.e. the
    /// bounded-delay network of the latency analysis with bound Δ = `delta`.
    pub fn uniform(delta: u64) -> Self {
        NetworkConfig {
            default_delay: DelayModel::Uniform { min: 1, max: delta },
            link_overrides: HashMap::new(),
        }
    }

    /// Adds a per-link delay override and returns `self` (builder style).
    pub fn with_link(mut self, from: ProcessId, to: ProcessId, model: DelayModel) -> Self {
        self.link_overrides.insert((from, to), model);
        self
    }

    /// The delay model applying to a particular directed link.
    pub fn delay_for(&self, from: ProcessId, to: ProcessId) -> DelayModel {
        // Fast path: without overrides (the common case) skip the hash-map
        // probe — it would hash the pair on every single message.
        if self.link_overrides.is_empty() {
            return self.default_delay;
        }
        self.link_overrides
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default_delay)
    }

    /// Upper bound Δ on message delay across all links, if every model is
    /// bounded.
    pub fn delta_bound(&self) -> Option<u64> {
        let mut bound = self.default_delay.upper_bound()?;
        for model in self.link_overrides.values() {
            bound = bound.max(model.upper_bound()?);
        }
        Some(bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn constant_delay_is_constant_and_at_least_one() {
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let m = DelayModel::Constant(5);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), 5);
        }
        assert_eq!(DelayModel::Constant(0).sample(&mut rng), 1);
    }

    #[test]
    fn uniform_delay_stays_in_range() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let m = DelayModel::Uniform { min: 2, max: 9 };
        for _ in 0..200 {
            let d = m.sample(&mut rng);
            assert!((2..=9).contains(&d));
        }
        // Swapped bounds are tolerated.
        let swapped = DelayModel::Uniform { min: 9, max: 2 };
        for _ in 0..50 {
            assert!((2..=9).contains(&swapped.sample(&mut rng)));
        }
    }

    #[test]
    fn geometric_tail_respects_cap() {
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let m = DelayModel::GeometricTail {
            min: 3,
            p: 0.2,
            cap: 20,
        };
        for _ in 0..200 {
            let d = m.sample(&mut rng);
            assert!((3..=23).contains(&d));
        }
    }

    #[test]
    fn upper_bounds() {
        assert_eq!(DelayModel::Constant(4).upper_bound(), Some(4));
        assert_eq!(
            DelayModel::Uniform { min: 1, max: 7 }.upper_bound(),
            Some(7)
        );
        assert_eq!(
            DelayModel::GeometricTail {
                min: 2,
                p: 0.5,
                cap: 11
            }
            .upper_bound(),
            Some(11)
        );
    }

    #[test]
    fn link_override_changes_delay_model() {
        let cfg = NetworkConfig::constant(3).with_link(
            ProcessId(0),
            ProcessId(1),
            DelayModel::Constant(50),
        );
        assert_eq!(
            cfg.delay_for(ProcessId(0), ProcessId(1)),
            DelayModel::Constant(50)
        );
        assert_eq!(
            cfg.delay_for(ProcessId(1), ProcessId(0)),
            DelayModel::Constant(3)
        );
        assert_eq!(cfg.delta_bound(), Some(50));
    }

    #[test]
    fn uniform_constructor_gives_delta_bound() {
        let cfg = NetworkConfig::uniform(12);
        assert_eq!(cfg.delta_bound(), Some(12));
    }
}
