//! Adversarial message-delivery faults.
//!
//! [`crate::FaultPlan`] models *crash* faults only; this module models the
//! *network* adversary of the asynchronous model: an execution in which
//! messages may be *dropped*, *delayed* by arbitrary finite amounts,
//! *reordered*, *duplicated*, or — for senders designated byzantine —
//! *corrupted* in flight. The SODA/SODAerr atomicity proofs (and the ABD and
//! CAS proofs they are compared against) are stated for exactly this
//! adversary, so a reproduction that only ever runs clean schedules is not
//! exercising the claims.
//!
//! A [`NetFaultPlan`] holds a default [`LinkFaults`] applying to every
//! directed link, optional per-link overrides, and the set of corrupt
//! senders. It is handed to [`crate::Simulation::set_net_fault_plan`] and
//! consulted on every process-to-process send (externally injected
//! invocations and timers are never faulted). Payload corruption is
//! message-type specific, so the plan only *selects* the corrupt senders; the
//! mutation itself is performed by a [`crate::CorruptionHook`] installed
//! with [`crate::Simulation::set_corruption_hook`].
//!
//! Probabilistic faults are sampled per message from the simulation's seeded
//! RNG, so a given `(seed, plan)` pair still produces a fully deterministic
//! execution — failing schedules can be replayed exactly.
//!
//! On top of the probabilistic adversary, the plan carries *scheduled*
//! [`LinkWindow`]s: a directed link is unreachable during `[start, end)` and
//! heals at `end`. Windows are deterministic — a partitioned send is dropped
//! by a membership test that consumes **no** RNG draws, so adding windows to
//! a plan never perturbs the schedule an existing seed produces on the
//! still-connected links. The [`Partition`] helper expands a symmetric
//! multi-group partition into the cross-group windows it implies.
//!
//! What is *not* modeled: unbounded delay (delays are finite so that
//! `run_to_quiescence` terminates; liveness under a fair adversary is
//! approximated by `drop_p < 1` and by partitions that heal).

use crate::config::DelayModel;
use crate::process::ProcessId;
use crate::time::SimTime;
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Adversarial behaviour of one directed link (probabilities are per
/// message).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFaults {
    /// Probability that a message is silently dropped.
    pub drop_p: f64,
    /// Probability that a message is delivered twice (the duplicate gets an
    /// independently sampled delay; duplicates are never themselves
    /// duplicated, so executions stay finite).
    pub duplicate_p: f64,
    /// Extra delay added to every message on top of the base
    /// [`crate::NetworkConfig`] delay.
    pub extra_delay: Option<DelayModel>,
    /// Probability that a message is *held back*: an additional uniform delay
    /// in `[1, reorder_window]` is added, letting later sends overtake it.
    pub reorder_p: f64,
    /// Size of the hold-back window used when a message is reordered.
    pub reorder_window: u64,
}

impl LinkFaults {
    /// A fault-free link (the default).
    pub const NONE: LinkFaults = LinkFaults {
        drop_p: 0.0,
        duplicate_p: 0.0,
        extra_delay: None,
        reorder_p: 0.0,
        reorder_window: 0,
    };

    /// Whether this link behaves like a reliable channel.
    pub fn is_clean(&self) -> bool {
        self.drop_p <= 0.0
            && self.duplicate_p <= 0.0
            && self.extra_delay.is_none()
            && (self.reorder_p <= 0.0 || self.reorder_window == 0)
    }

    /// Samples whether the adversary drops a message on this link.
    pub(crate) fn sample_drop<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.drop_p > 0.0 && rng.gen_bool(self.drop_p.min(1.0))
    }

    /// Samples whether the adversary duplicates a message on this link.
    pub(crate) fn sample_duplicate<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.duplicate_p > 0.0 && rng.gen_bool(self.duplicate_p.min(1.0))
    }

    /// Samples the extra delay (delay faults plus reordering hold-back) the
    /// adversary adds to one delivery on this link.
    pub(crate) fn sample_extra_delay<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let mut extra = match self.extra_delay {
            // The +1 floor of DelayModel::sample is about causality of the
            // base delay; an *extra* delay of a model that can produce "no
            // extra" should be allowed to be 0, so Constant(0) is kept as-is.
            Some(DelayModel::Constant(d)) => d,
            Some(model) => model.sample(rng),
            None => 0,
        };
        if self.reorder_p > 0.0 && self.reorder_window > 0 && rng.gen_bool(self.reorder_p.min(1.0))
        {
            extra = extra.saturating_add(rng.gen_range(1..=self.reorder_window));
        }
        extra
    }
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults::NONE
    }
}

/// A scheduled outage of one directed link: messages sent from `from` to
/// `to` while `start <= now < end` are dropped deterministically (no RNG
/// draw), and the link heals at `end`. Use `end = SimTime::MAX` for a
/// partition that never heals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkWindow {
    /// Sender side of the cut link.
    pub from: ProcessId,
    /// Receiver side of the cut link.
    pub to: ProcessId,
    /// First instant at which sends are cut (inclusive).
    pub start: SimTime,
    /// Heal time: first instant at which sends go through again (exclusive
    /// end of the outage).
    pub end: SimTime,
}

impl LinkWindow {
    /// A window cutting `from → to` during `[start, end)`.
    pub fn new(from: ProcessId, to: ProcessId, start: SimTime, end: SimTime) -> Self {
        LinkWindow {
            from,
            to,
            start,
            end,
        }
    }

    /// Whether a send at `now` falls inside the outage.
    pub fn covers(&self, now: SimTime) -> bool {
        self.start <= now && now < self.end
    }
}

/// A symmetric network partition: during `[start, end)` every link that
/// crosses a group boundary is cut in both directions; links inside a group
/// are untouched. Expands to the [`LinkWindow`]s it implies via
/// [`Partition::split`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    windows: Vec<LinkWindow>,
}

impl Partition {
    /// Cuts all cross-group links symmetrically during `[start, end)`; the
    /// partition heals at `end`. Processes not listed in any group are
    /// unaffected (they stay reachable from everyone). A process listed in
    /// two groups keeps its links to both (the groups overlap there), so
    /// callers normally pass disjoint groups.
    pub fn split(groups: &[Vec<ProcessId>], start: SimTime, end: SimTime) -> Self {
        let mut windows = Vec::new();
        for (i, a) in groups.iter().enumerate() {
            for b in groups.iter().skip(i + 1) {
                for &p in a {
                    for &q in b {
                        if p == q {
                            continue;
                        }
                        windows.push(LinkWindow::new(p, q, start, end));
                        windows.push(LinkWindow::new(q, p, start, end));
                    }
                }
            }
        }
        Partition { windows }
    }

    /// The directed link windows this partition expands to.
    pub fn windows(&self) -> &[LinkWindow] {
        &self.windows
    }

    /// Consumes the partition, yielding its link windows.
    pub fn into_windows(self) -> Vec<LinkWindow> {
        self.windows
    }
}

/// The network adversary for one execution: per-link fault behaviour plus the
/// set of byzantine (payload-corrupting) senders.
///
/// Composes with [`crate::FaultPlan`]: crashes are scheduled through the
/// fault plan, message-level faults through this plan, and both can be active
/// in the same execution (see [`crate::FaultPlan::merge`] for combining crash
/// plans).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NetFaultPlan {
    default: LinkFaults,
    link_overrides: HashMap<(ProcessId, ProcessId), LinkFaults>,
    corrupt_senders: BTreeSet<ProcessId>,
    /// Scheduled outages per directed link (sorted map so iteration — e.g.
    /// for display — is deterministic).
    windows: BTreeMap<(ProcessId, ProcessId), Vec<(SimTime, SimTime)>>,
}

impl NetFaultPlan {
    /// A plan with no faults at all (reliable channels).
    pub fn none() -> Self {
        NetFaultPlan::default()
    }

    /// Sets the fault behaviour applying to every link without an override.
    pub fn with_default(mut self, faults: LinkFaults) -> Self {
        self.default = faults;
        self
    }

    /// Overrides the fault behaviour of one directed link.
    pub fn with_link(mut self, from: ProcessId, to: ProcessId, faults: LinkFaults) -> Self {
        self.link_overrides.insert((from, to), faults);
        self
    }

    /// Marks a sender as byzantine: every message it sends is offered to the
    /// corruption hook installed with
    /// [`crate::Simulation::set_corruption_hook`].
    pub fn with_corrupt_sender(mut self, sender: ProcessId) -> Self {
        self.corrupt_senders.insert(sender);
        self
    }

    /// Marks several senders as byzantine.
    pub fn with_corrupt_senders<I: IntoIterator<Item = ProcessId>>(mut self, senders: I) -> Self {
        self.corrupt_senders.extend(senders);
        self
    }

    /// Adds one scheduled link outage.
    pub fn with_window(mut self, window: LinkWindow) -> Self {
        self.windows
            .entry((window.from, window.to))
            .or_default()
            .push((window.start, window.end));
        self
    }

    /// Adds several scheduled link outages.
    pub fn with_windows<I: IntoIterator<Item = LinkWindow>>(mut self, windows: I) -> Self {
        for w in windows {
            self = self.with_window(w);
        }
        self
    }

    /// Adds every link window a symmetric [`Partition`] implies.
    pub fn with_partition(self, partition: Partition) -> Self {
        self.with_windows(partition.into_windows())
    }

    /// Whether a send from `from` to `to` at time `now` falls inside a
    /// scheduled outage. This is a pure membership test — it consumes no
    /// randomness — so plans that only differ in windows produce identical
    /// RNG streams on the links that stay connected.
    pub fn is_partitioned(&self, from: ProcessId, to: ProcessId, now: SimTime) -> bool {
        if self.windows.is_empty() {
            return false;
        }
        self.windows
            .get(&(from, to))
            .is_some_and(|spans| spans.iter().any(|&(start, end)| start <= now && now < end))
    }

    /// Whether the plan carries any scheduled link outages (past, present or
    /// future).
    pub fn has_windows(&self) -> bool {
        !self.windows.is_empty()
    }

    /// The scheduled link outages, in deterministic (link, insertion) order.
    pub fn link_windows(&self) -> impl Iterator<Item = LinkWindow> + '_ {
        self.windows.iter().flat_map(|(&(from, to), spans)| {
            spans
                .iter()
                .map(move |&(start, end)| LinkWindow::new(from, to, start, end))
        })
    }

    /// When the last scheduled outage heals: `None` if the plan has no
    /// windows, `Some(SimTime::MAX)` if any window never heals.
    pub fn final_heal(&self) -> Option<SimTime> {
        self.windows
            .values()
            .flat_map(|spans| spans.iter().map(|&(_, end)| end))
            .max()
    }

    /// The fault behaviour applying to a particular directed link.
    pub fn faults_for(&self, from: ProcessId, to: ProcessId) -> LinkFaults {
        self.link_overrides
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default)
    }

    /// Whether `sender`'s messages are offered to the corruption hook.
    pub fn corrupts_sends_of(&self, sender: ProcessId) -> bool {
        self.corrupt_senders.contains(&sender)
    }

    /// The byzantine senders.
    pub fn corrupt_senders(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.corrupt_senders.iter().copied()
    }

    /// Whether the plan changes nothing about delivery (the state a fresh
    /// [`crate::Simulation`] starts in). A passthrough plan consumes no
    /// randomness, so executions with and without it are identical.
    ///
    /// Any scheduled window disqualifies the plan — even one entirely in the
    /// past or future. The simulation caches this answer once at
    /// [`crate::Simulation::set_net_fault_plan`] time, so a plan that is
    /// clean *now* but partitions *later* must never report passthrough.
    pub fn is_passthrough(&self) -> bool {
        self.default.is_clean()
            && self.link_overrides.values().all(LinkFaults::is_clean)
            && self.corrupt_senders.is_empty()
            && self.windows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn default_plan_is_passthrough() {
        let plan = NetFaultPlan::none();
        assert!(plan.is_passthrough());
        assert!(plan.faults_for(ProcessId(0), ProcessId(1)).is_clean());
        assert!(!plan.corrupts_sends_of(ProcessId(0)));
    }

    #[test]
    fn link_overrides_and_corrupt_senders() {
        let lossy = LinkFaults {
            drop_p: 0.5,
            ..LinkFaults::NONE
        };
        let plan = NetFaultPlan::none()
            .with_link(ProcessId(0), ProcessId(1), lossy)
            .with_corrupt_sender(ProcessId(3));
        assert!(!plan.is_passthrough());
        assert_eq!(plan.faults_for(ProcessId(0), ProcessId(1)), lossy);
        assert!(plan.faults_for(ProcessId(1), ProcessId(0)).is_clean());
        assert!(plan.corrupts_sends_of(ProcessId(3)));
        assert_eq!(plan.corrupt_senders().collect::<Vec<_>>(), [ProcessId(3)]);
    }

    #[test]
    fn clean_links_consume_no_randomness() {
        let mut a = ChaCha12Rng::seed_from_u64(9);
        let mut b = ChaCha12Rng::seed_from_u64(9);
        let clean = LinkFaults::NONE;
        assert!(!clean.sample_drop(&mut a));
        assert!(!clean.sample_duplicate(&mut a));
        assert_eq!(clean.sample_extra_delay(&mut a), 0);
        // `b` was never advanced; the streams must still agree.
        use rand::Rng;
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn windowed_plan_is_never_passthrough() {
        // Regression: the simulation caches `is_passthrough` once, so a plan
        // that is clean at t=0 but partitions later must not pass through.
        let future = NetFaultPlan::none().with_window(LinkWindow::new(
            ProcessId(0),
            ProcessId(1),
            SimTime::from_ticks(100),
            SimTime::from_ticks(200),
        ));
        assert!(!future.is_partitioned(ProcessId(0), ProcessId(1), SimTime::ZERO));
        assert!(!future.is_passthrough(), "clean-now, partitioned-later");

        // Even a window entirely in the past keeps the general path.
        let past = NetFaultPlan::none().with_window(LinkWindow::new(
            ProcessId(0),
            ProcessId(1),
            SimTime::ZERO,
            SimTime::from_ticks(1),
        ));
        assert!(!past.is_passthrough());
    }

    #[test]
    fn window_membership_is_half_open() {
        let plan = NetFaultPlan::none().with_window(LinkWindow::new(
            ProcessId(2),
            ProcessId(3),
            SimTime::from_ticks(10),
            SimTime::from_ticks(20),
        ));
        let cut = |t| plan.is_partitioned(ProcessId(2), ProcessId(3), SimTime::from_ticks(t));
        assert!(!cut(9));
        assert!(cut(10), "start is inclusive");
        assert!(cut(19));
        assert!(!cut(20), "end is the heal instant");
        // Only the scheduled direction is cut.
        assert!(!plan.is_partitioned(ProcessId(3), ProcessId(2), SimTime::from_ticks(15)));
        assert_eq!(plan.final_heal(), Some(SimTime::from_ticks(20)));
        assert!(plan.has_windows());
        assert_eq!(plan.link_windows().count(), 1);
    }

    #[test]
    fn partition_split_cuts_cross_group_links_symmetrically() {
        let g0 = vec![ProcessId(0), ProcessId(1)];
        let g1 = vec![ProcessId(2)];
        let part = Partition::split(&[g0, g1], SimTime::from_ticks(5), SimTime::from_ticks(15));
        // 2 cross-group pairs, both directions.
        assert_eq!(part.windows().len(), 4);
        let plan = NetFaultPlan::none().with_partition(part);
        let at = SimTime::from_ticks(7);
        assert!(plan.is_partitioned(ProcessId(0), ProcessId(2), at));
        assert!(plan.is_partitioned(ProcessId(2), ProcessId(0), at));
        assert!(plan.is_partitioned(ProcessId(1), ProcessId(2), at));
        assert!(plan.is_partitioned(ProcessId(2), ProcessId(1), at));
        // Intra-group links stay connected.
        assert!(!plan.is_partitioned(ProcessId(0), ProcessId(1), at));
        // Heals at end.
        assert!(!plan.is_partitioned(ProcessId(0), ProcessId(2), SimTime::from_ticks(15)));
    }

    #[test]
    fn never_healing_window_reports_max_heal() {
        let plan = NetFaultPlan::none().with_window(LinkWindow::new(
            ProcessId(0),
            ProcessId(1),
            SimTime::from_ticks(3),
            SimTime::MAX,
        ));
        assert_eq!(plan.final_heal(), Some(SimTime::MAX));
        assert!(plan.is_partitioned(ProcessId(0), ProcessId(1), SimTime::from_ticks(1 << 40)));
    }

    #[test]
    fn drop_probability_one_always_drops() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let always = LinkFaults {
            drop_p: 1.0,
            ..LinkFaults::NONE
        };
        for _ in 0..20 {
            assert!(always.sample_drop(&mut rng));
        }
    }

    #[test]
    fn extra_delay_and_reorder_window_bound_the_hold_back() {
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let faults = LinkFaults {
            extra_delay: Some(DelayModel::Uniform { min: 1, max: 5 }),
            reorder_p: 1.0,
            reorder_window: 10,
            ..LinkFaults::NONE
        };
        for _ in 0..200 {
            let extra = faults.sample_extra_delay(&mut rng);
            assert!(
                (2..=15).contains(&extra),
                "extra delay {extra} out of range"
            );
        }
        let constant = LinkFaults {
            extra_delay: Some(DelayModel::Constant(0)),
            ..LinkFaults::NONE
        };
        assert_eq!(constant.sample_extra_delay(&mut rng), 0);
    }
}
