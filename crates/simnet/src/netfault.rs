//! Adversarial message-delivery faults.
//!
//! [`crate::FaultPlan`] models *crash* faults only; this module models the
//! *network* adversary of the asynchronous model: an execution in which
//! messages may be *dropped*, *delayed* by arbitrary finite amounts,
//! *reordered*, *duplicated*, or — for senders designated byzantine —
//! *corrupted* in flight. The SODA/SODAerr atomicity proofs (and the ABD and
//! CAS proofs they are compared against) are stated for exactly this
//! adversary, so a reproduction that only ever runs clean schedules is not
//! exercising the claims.
//!
//! A [`NetFaultPlan`] holds a default [`LinkFaults`] applying to every
//! directed link, optional per-link overrides, and the set of corrupt
//! senders. It is handed to [`crate::Simulation::set_net_fault_plan`] and
//! consulted on every process-to-process send (externally injected
//! invocations and timers are never faulted). Payload corruption is
//! message-type specific, so the plan only *selects* the corrupt senders; the
//! mutation itself is performed by a [`crate::CorruptionHook`] installed
//! with [`crate::Simulation::set_corruption_hook`].
//!
//! Faults here are probabilistic per message and sampled from the
//! simulation's seeded RNG, so a given `(seed, plan)` pair still produces a
//! fully deterministic execution — failing schedules can be replayed
//! exactly.
//!
//! What is *not* modeled: link partitions that heal (compose per-link drop
//! probabilities over time windows instead), and unbounded delay (delays are
//! finite so that `run_to_quiescence` terminates; liveness under a fair
//! adversary is approximated by `drop_p < 1`).

use crate::config::DelayModel;
use crate::process::ProcessId;
use rand::Rng;
use std::collections::{BTreeSet, HashMap};

/// Adversarial behaviour of one directed link (probabilities are per
/// message).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFaults {
    /// Probability that a message is silently dropped.
    pub drop_p: f64,
    /// Probability that a message is delivered twice (the duplicate gets an
    /// independently sampled delay; duplicates are never themselves
    /// duplicated, so executions stay finite).
    pub duplicate_p: f64,
    /// Extra delay added to every message on top of the base
    /// [`crate::NetworkConfig`] delay.
    pub extra_delay: Option<DelayModel>,
    /// Probability that a message is *held back*: an additional uniform delay
    /// in `[1, reorder_window]` is added, letting later sends overtake it.
    pub reorder_p: f64,
    /// Size of the hold-back window used when a message is reordered.
    pub reorder_window: u64,
}

impl LinkFaults {
    /// A fault-free link (the default).
    pub const NONE: LinkFaults = LinkFaults {
        drop_p: 0.0,
        duplicate_p: 0.0,
        extra_delay: None,
        reorder_p: 0.0,
        reorder_window: 0,
    };

    /// Whether this link behaves like a reliable channel.
    pub fn is_clean(&self) -> bool {
        self.drop_p <= 0.0
            && self.duplicate_p <= 0.0
            && self.extra_delay.is_none()
            && (self.reorder_p <= 0.0 || self.reorder_window == 0)
    }

    /// Samples whether the adversary drops a message on this link.
    pub(crate) fn sample_drop<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.drop_p > 0.0 && rng.gen_bool(self.drop_p.min(1.0))
    }

    /// Samples whether the adversary duplicates a message on this link.
    pub(crate) fn sample_duplicate<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.duplicate_p > 0.0 && rng.gen_bool(self.duplicate_p.min(1.0))
    }

    /// Samples the extra delay (delay faults plus reordering hold-back) the
    /// adversary adds to one delivery on this link.
    pub(crate) fn sample_extra_delay<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let mut extra = match self.extra_delay {
            // The +1 floor of DelayModel::sample is about causality of the
            // base delay; an *extra* delay of a model that can produce "no
            // extra" should be allowed to be 0, so Constant(0) is kept as-is.
            Some(DelayModel::Constant(d)) => d,
            Some(model) => model.sample(rng),
            None => 0,
        };
        if self.reorder_p > 0.0 && self.reorder_window > 0 && rng.gen_bool(self.reorder_p.min(1.0))
        {
            extra = extra.saturating_add(rng.gen_range(1..=self.reorder_window));
        }
        extra
    }
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults::NONE
    }
}

/// The network adversary for one execution: per-link fault behaviour plus the
/// set of byzantine (payload-corrupting) senders.
///
/// Composes with [`crate::FaultPlan`]: crashes are scheduled through the
/// fault plan, message-level faults through this plan, and both can be active
/// in the same execution (see [`crate::FaultPlan::merge`] for combining crash
/// plans).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NetFaultPlan {
    default: LinkFaults,
    link_overrides: HashMap<(ProcessId, ProcessId), LinkFaults>,
    corrupt_senders: BTreeSet<ProcessId>,
}

impl NetFaultPlan {
    /// A plan with no faults at all (reliable channels).
    pub fn none() -> Self {
        NetFaultPlan::default()
    }

    /// Sets the fault behaviour applying to every link without an override.
    pub fn with_default(mut self, faults: LinkFaults) -> Self {
        self.default = faults;
        self
    }

    /// Overrides the fault behaviour of one directed link.
    pub fn with_link(mut self, from: ProcessId, to: ProcessId, faults: LinkFaults) -> Self {
        self.link_overrides.insert((from, to), faults);
        self
    }

    /// Marks a sender as byzantine: every message it sends is offered to the
    /// corruption hook installed with
    /// [`crate::Simulation::set_corruption_hook`].
    pub fn with_corrupt_sender(mut self, sender: ProcessId) -> Self {
        self.corrupt_senders.insert(sender);
        self
    }

    /// Marks several senders as byzantine.
    pub fn with_corrupt_senders<I: IntoIterator<Item = ProcessId>>(mut self, senders: I) -> Self {
        self.corrupt_senders.extend(senders);
        self
    }

    /// The fault behaviour applying to a particular directed link.
    pub fn faults_for(&self, from: ProcessId, to: ProcessId) -> LinkFaults {
        self.link_overrides
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default)
    }

    /// Whether `sender`'s messages are offered to the corruption hook.
    pub fn corrupts_sends_of(&self, sender: ProcessId) -> bool {
        self.corrupt_senders.contains(&sender)
    }

    /// The byzantine senders.
    pub fn corrupt_senders(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.corrupt_senders.iter().copied()
    }

    /// Whether the plan changes nothing about delivery (the state a fresh
    /// [`crate::Simulation`] starts in). A passthrough plan consumes no
    /// randomness, so executions with and without it are identical.
    pub fn is_passthrough(&self) -> bool {
        self.default.is_clean()
            && self.link_overrides.values().all(LinkFaults::is_clean)
            && self.corrupt_senders.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn default_plan_is_passthrough() {
        let plan = NetFaultPlan::none();
        assert!(plan.is_passthrough());
        assert!(plan.faults_for(ProcessId(0), ProcessId(1)).is_clean());
        assert!(!plan.corrupts_sends_of(ProcessId(0)));
    }

    #[test]
    fn link_overrides_and_corrupt_senders() {
        let lossy = LinkFaults {
            drop_p: 0.5,
            ..LinkFaults::NONE
        };
        let plan = NetFaultPlan::none()
            .with_link(ProcessId(0), ProcessId(1), lossy)
            .with_corrupt_sender(ProcessId(3));
        assert!(!plan.is_passthrough());
        assert_eq!(plan.faults_for(ProcessId(0), ProcessId(1)), lossy);
        assert!(plan.faults_for(ProcessId(1), ProcessId(0)).is_clean());
        assert!(plan.corrupts_sends_of(ProcessId(3)));
        assert_eq!(plan.corrupt_senders().collect::<Vec<_>>(), [ProcessId(3)]);
    }

    #[test]
    fn clean_links_consume_no_randomness() {
        let mut a = ChaCha12Rng::seed_from_u64(9);
        let mut b = ChaCha12Rng::seed_from_u64(9);
        let clean = LinkFaults::NONE;
        assert!(!clean.sample_drop(&mut a));
        assert!(!clean.sample_duplicate(&mut a));
        assert_eq!(clean.sample_extra_delay(&mut a), 0);
        // `b` was never advanced; the streams must still agree.
        use rand::Rng;
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn drop_probability_one_always_drops() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let always = LinkFaults {
            drop_p: 1.0,
            ..LinkFaults::NONE
        };
        for _ in 0..20 {
            assert!(always.sample_drop(&mut rng));
        }
    }

    #[test]
    fn extra_delay_and_reorder_window_bound_the_hold_back() {
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let faults = LinkFaults {
            extra_delay: Some(DelayModel::Uniform { min: 1, max: 5 }),
            reorder_p: 1.0,
            reorder_window: 10,
            ..LinkFaults::NONE
        };
        for _ in 0..200 {
            let extra = faults.sample_extra_delay(&mut rng);
            assert!(
                (2..=15).contains(&extra),
                "extra delay {extra} out of range"
            );
        }
        let constant = LinkFaults {
            extra_delay: Some(DelayModel::Constant(0)),
            ..LinkFaults::NONE
        };
        assert_eq!(constant.sample_extra_delay(&mut rng), 0);
    }
}
