//! The discrete-event scheduler.

use crate::config::NetworkConfig;
use crate::fault::FaultPlan;
use crate::netfault::NetFaultPlan;
use crate::process::{Action, Context, Message, Process, ProcessId};
use crate::time::SimTime;
use crate::trace::{Stats, Trace};
use crate::wheel::{EventWheel, Scheduled};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::cmp::Ordering;

/// Message-type-specific payload corruption, applied to sends of processes a
/// [`NetFaultPlan`] marks as byzantine. Receives `(from, to, message, rng)`
/// and returns whether it actually mutated the message (so the trace can
/// count corrupted deliveries). Installed with
/// [`Simulation::set_corruption_hook`]; protocol crates provide hooks that
/// corrupt only the payloads their threat model allows (e.g. SODAerr corrupts
/// coded elements sent to readers, never metadata).
pub type CorruptionHook<M> =
    Box<dyn FnMut(ProcessId, ProcessId, &mut M, &mut ChaCha12Rng) -> bool + Send>;

/// What happens when an event fires.
enum EventKind<M> {
    /// Deliver a message from `from`.
    Deliver { from: ProcessId, msg: M },
    /// Fire a timer with the given token.
    Timer { token: u64 },
    /// Crash the target process.
    Crash,
    /// Replace the target process with a fresh one (crash recovery). The
    /// replacement's `on_start` runs before the next event is processed.
    Recover { replacement: Box<dyn Process<M>> },
}

// Manual impl: `Box<dyn Process<M>>` is not `Debug`, so the derive would
// reject the `Recover` variant.
impl<M: std::fmt::Debug> std::fmt::Debug for EventKind<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventKind::Deliver { from, msg } => f
                .debug_struct("Deliver")
                .field("from", from)
                .field("msg", msg)
                .finish(),
            EventKind::Timer { token } => f.debug_struct("Timer").field("token", token).finish(),
            EventKind::Crash => f.write_str("Crash"),
            EventKind::Recover { .. } => f.write_str("Recover"),
        }
    }
}

/// A scheduled event. Ordering is by `(time, sequence number)`, which makes
/// executions fully deterministic for a fixed seed.
#[derive(Debug)]
struct Event<M> {
    at: SimTime,
    seq: u64,
    target: ProcessId,
    kind: EventKind<M>,
    /// Data bytes carried (cached so delivery accounting does not need the
    /// message after a drop).
    data_bytes: usize,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}
impl<M> Scheduled for Event<M> {
    fn at_ticks(&self) -> u64 {
        self.at.ticks()
    }
    fn seq(&self) -> u64 {
        self.seq
    }
}

/// Result of running the simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunOutcome {
    /// Number of events processed during this run call.
    pub events_processed: u64,
    /// Simulated time when the run stopped.
    pub final_time: SimTime,
    /// True if the run stopped because the event cap was reached rather than
    /// because the system became quiescent (usually indicates a protocol bug
    /// such as an infinite relay loop).
    pub hit_event_cap: bool,
}

/// A deterministic discrete-event simulation of asynchronous processes
/// connected by reliable point-to-point channels.
pub struct Simulation<M: Message> {
    config: NetworkConfig,
    processes: Vec<Option<Box<dyn Process<M>>>>,
    crashed: Vec<bool>,
    started: Vec<bool>,
    queue: EventWheel<Event<M>>,
    now: SimTime,
    seq: u64,
    /// True once every registered, non-crashed process has had `on_start`
    /// run; cleared when a process is added or replaced. Lets the event loop
    /// skip the all-processes scan on the hot path.
    all_started: bool,
    /// Scratch buffer handed to handlers through [`Context`], reused across
    /// dispatches so the hot path does not allocate an actions vector per
    /// event.
    scratch_actions: Vec<Action<M>>,
    rng: ChaCha12Rng,
    trace: Trace,
    event_cap: u64,
    net_faults: NetFaultPlan,
    /// Cached [`NetFaultPlan::is_passthrough`] so the per-send fast path is a
    /// single flag test instead of a per-link fault lookup.
    net_passthrough: bool,
    corruptor: Option<CorruptionHook<M>>,
}

impl<M: Message> Simulation<M> {
    /// Creates a simulation with the given RNG seed and network configuration.
    pub fn new(seed: u64, config: NetworkConfig) -> Self {
        Simulation {
            config,
            processes: Vec::new(),
            crashed: Vec::new(),
            started: Vec::new(),
            queue: EventWheel::new(),
            now: SimTime::ZERO,
            seq: 0,
            all_started: true,
            scratch_actions: Vec::new(),
            rng: ChaCha12Rng::seed_from_u64(seed),
            trace: Trace::new(false),
            event_cap: 50_000_000,
            net_faults: NetFaultPlan::none(),
            net_passthrough: true,
            corruptor: None,
        }
    }

    /// Installs the network adversary consulted on every process-to-process
    /// send (externally injected messages and timers are never faulted).
    /// A passthrough plan consumes no randomness, so installing
    /// [`NetFaultPlan::none`] leaves executions bit-identical.
    pub fn set_net_fault_plan(&mut self, plan: NetFaultPlan) {
        self.net_passthrough = plan.is_passthrough();
        self.net_faults = plan;
    }

    /// The installed network adversary.
    pub fn net_fault_plan(&self) -> &NetFaultPlan {
        &self.net_faults
    }

    /// Installs the payload-corruption hook applied to sends of the
    /// byzantine senders in the installed [`NetFaultPlan`]. Without a hook,
    /// marking senders byzantine has no effect.
    pub fn set_corruption_hook(&mut self, hook: CorruptionHook<M>) {
        self.corruptor = Some(hook);
    }

    /// Enables detailed per-message tracing (memory grows with the execution).
    pub fn with_detailed_trace(mut self) -> Self {
        self.trace = Trace::new(true);
        self
    }

    /// Overrides the safety cap on processed events per run call.
    pub fn with_event_cap(mut self, cap: u64) -> Self {
        self.event_cap = cap;
        self
    }

    /// Registers a process and returns its id. Ids are assigned densely in
    /// registration order, giving the total order on processes the protocols
    /// rely on.
    pub fn add_process(&mut self, process: Box<dyn Process<M>>) -> ProcessId {
        let id = ProcessId(self.processes.len() as u32);
        self.processes.push(Some(process));
        self.crashed.push(false);
        self.started.push(false);
        self.all_started = false;
        id
    }

    /// Number of registered processes.
    pub fn num_processes(&self) -> usize {
        self.processes.len()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Whether a process has crashed.
    pub fn is_crashed(&self, id: ProcessId) -> bool {
        self.crashed.get(id.index()).copied().unwrap_or(false)
    }

    /// Aggregate message statistics so far.
    pub fn stats(&self) -> Stats {
        self.trace.stats()
    }

    /// Access to the trace (for detailed event logs).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Immutable typed access to a process's state.
    pub fn process_as<T: 'static>(&self, id: ProcessId) -> Option<&T> {
        self.processes
            .get(id.index())?
            .as_ref()?
            .as_any()
            .downcast_ref::<T>()
    }

    /// Mutable typed access to a process's state.
    pub fn process_as_mut<T: 'static>(&mut self, id: ProcessId) -> Option<&mut T> {
        self.processes
            .get_mut(id.index())?
            .as_mut()?
            .as_any_mut()
            .downcast_mut::<T>()
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Injects a message from the environment, delivered at the current time
    /// (before any later-scheduled events).
    pub fn send_external(&mut self, to: ProcessId, msg: M) {
        self.send_external_at(self.now, to, msg);
    }

    /// Injects a message from the environment for delivery at `at`.
    pub fn send_external_at(&mut self, at: SimTime, to: ProcessId, msg: M) {
        let at = at.max(self.now);
        let data_bytes = msg.data_bytes();
        let kind = msg.kind();
        self.trace
            .record_send(self.now, at, ProcessId::ENV, to, data_bytes, kind, false);
        let seq = self.next_seq();
        self.queue.push(Event {
            at,
            seq,
            target: to,
            kind: EventKind::Deliver {
                from: ProcessId::ENV,
                msg,
            },
            data_bytes,
        });
    }

    /// Schedules a crash of `process` at time `at`.
    pub fn schedule_crash(&mut self, at: SimTime, process: ProcessId) {
        let at = at.max(self.now);
        let seq = self.next_seq();
        self.queue.push(Event {
            at,
            seq,
            target: process,
            kind: EventKind::Crash,
            data_bytes: 0,
        });
    }

    /// Schedules a recovery of `process` at time `at`: `replacement` (a fresh
    /// process, typically with empty state) takes over the id, the crashed
    /// flag is cleared, and the replacement's `on_start` runs before the next
    /// event is processed. Messages still in flight towards the id — whether
    /// sent before the crash or during the outage — are delivered to the
    /// replacement, exactly as an asynchronous network may deliver arbitrarily
    /// old messages to a repaired server.
    pub fn schedule_recovery(
        &mut self,
        at: SimTime,
        process: ProcessId,
        replacement: Box<dyn Process<M>>,
    ) {
        let at = at.max(self.now);
        let seq = self.next_seq();
        self.queue.push(Event {
            at,
            seq,
            target: process,
            kind: EventKind::Recover { replacement },
            data_bytes: 0,
        });
    }

    /// Schedules every crash in the plan. Recovery events in the plan are
    /// **ignored** — they need protocol-specific replacement processes; use
    /// [`Self::apply_fault_plan_with`] to schedule those too.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        for crash in plan.crashes() {
            self.schedule_crash(crash.at, crash.process);
        }
    }

    /// Schedules every crash **and recovery** in the plan; `replacement_for`
    /// builds the fresh process that takes over each recovering id.
    pub fn apply_fault_plan_with<F>(&mut self, plan: &FaultPlan, mut replacement_for: F)
    where
        F: FnMut(ProcessId) -> Box<dyn Process<M>>,
    {
        self.apply_fault_plan(plan);
        for recovery in plan.recoveries() {
            let replacement = replacement_for(recovery.process);
            self.schedule_recovery(recovery.at, recovery.process, replacement);
        }
    }

    /// Crashes a process immediately.
    pub fn crash_now(&mut self, process: ProcessId) {
        if let Some(flag) = self.crashed.get_mut(process.index()) {
            *flag = true;
        }
    }

    /// Replaces a process immediately (see [`Self::schedule_recovery`]). The
    /// replacement's `on_start` runs before the next event is processed.
    pub fn recover_now(&mut self, process: ProcessId, replacement: Box<dyn Process<M>>) {
        let idx = process.index();
        if idx >= self.processes.len() {
            return;
        }
        self.processes[idx] = Some(replacement);
        self.crashed[idx] = false;
        self.started[idx] = false;
        self.all_started = false;
    }

    /// Number of processes currently crashed (and not yet recovered) — the
    /// quantity the dynamic fault-tolerance invariant "at most `f`
    /// *currently-dead* servers" is stated over.
    pub fn crashed_count(&self) -> usize {
        self.crashed.iter().filter(|&&c| c).count()
    }

    /// Ensures `on_start` has run for every registered process. A dirty
    /// flag makes the per-event call a single branch once everything has
    /// started.
    fn ensure_started(&mut self) {
        if self.all_started {
            return;
        }
        self.all_started = true;
        for idx in 0..self.processes.len() {
            if self.started[idx] || self.crashed[idx] {
                continue;
            }
            self.started[idx] = true;
            self.dispatch(ProcessId(idx as u32), |process, ctx| process.on_start(ctx));
        }
    }

    /// Runs a handler on a process and applies the actions it produced.
    fn dispatch<F>(&mut self, target: ProcessId, handler: F)
    where
        F: FnOnce(&mut dyn Process<M>, &mut Context<'_, M>),
    {
        let idx = target.index();
        let Some(slot) = self.processes.get_mut(idx) else {
            return;
        };
        let Some(mut process) = slot.take() else {
            return;
        };
        let mut ctx = Context {
            self_id: target,
            now: self.now,
            actions: std::mem::take(&mut self.scratch_actions),
            rng: &mut self.rng,
        };
        handler(process.as_mut(), &mut ctx);
        let actions = ctx.actions;
        self.processes[idx] = Some(process);
        self.apply_actions(target, actions);
    }

    fn apply_actions(&mut self, source: ProcessId, mut actions: Vec<Action<M>>) {
        for action in actions.drain(..) {
            match action {
                Action::Send { to, msg } => self.enqueue_send(source, to, msg),
                Action::SetTimer { delay, token } => {
                    let at = self.now + delay.max(1);
                    let seq = self.next_seq();
                    self.queue.push(Event {
                        at,
                        seq,
                        target: source,
                        kind: EventKind::Timer { token },
                        data_bytes: 0,
                    });
                }
                Action::Halt => {
                    self.crash_now(source);
                }
            }
        }
        // Hand the (now empty) buffer back for the next dispatch. Nested
        // dispatches (recovery on_start) already took the scratch, so only
        // keep the larger buffer.
        if actions.capacity() > self.scratch_actions.capacity() {
            self.scratch_actions = actions;
        }
    }

    fn enqueue_send(&mut self, from: ProcessId, to: ProcessId, mut msg: M) {
        if self.net_passthrough {
            // Reliable network (the common case): no drop/duplicate/corrupt
            // sampling to do. A passthrough plan consumes no randomness, so
            // this is the exact same execution as the general path below.
            let data_bytes = msg.data_bytes();
            let kind = msg.kind();
            let delay = self.config.delay_for(from, to).sample(&mut self.rng);
            let at = self.now + delay;
            let already_crashed = self.is_crashed(to);
            self.trace
                .record_send(self.now, at, from, to, data_bytes, kind, already_crashed);
            let seq = self.next_seq();
            self.queue.push(Event {
                at,
                seq,
                target: to,
                kind: EventKind::Deliver { from, msg },
                data_bytes,
            });
            return;
        }
        // Scheduled partition windows cut the link deterministically. The
        // membership test consumes no randomness and runs before every
        // sampling step (including the corruption hook), so seeds without
        // windows keep their schedules and seeds with windows keep the RNG
        // stream of the still-connected links.
        if self.net_faults.is_partitioned(from, to, self.now) {
            let data_bytes = msg.data_bytes();
            let kind = msg.kind();
            self.trace
                .record_send(self.now, self.now, from, to, data_bytes, kind, true);
            self.trace.record_net_partition();
            return;
        }
        let faults = self.net_faults.faults_for(from, to);
        // Byzantine senders: let the installed hook corrupt the payload
        // before delivery (and before duplication, so both copies carry the
        // same corruption, as a byzantine sender would produce).
        if self.net_faults.corrupts_sends_of(from) {
            if let Some(mut hook) = self.corruptor.take() {
                if hook(from, to, &mut msg, &mut self.rng) {
                    self.trace.record_net_corrupt();
                }
                self.corruptor = Some(hook);
            }
        }
        let data_bytes = msg.data_bytes();
        let kind = msg.kind();
        if faults.sample_drop(&mut self.rng) {
            // The send happened (and is charged) but the channel lost it.
            self.trace
                .record_send(self.now, self.now, from, to, data_bytes, kind, true);
            self.trace.record_net_drop();
            return;
        }
        if faults.sample_duplicate(&mut self.rng) {
            let copy = msg.clone();
            // The duplicate is a channel artifact, not a protocol send: it
            // is excluded from the sent-side cost accounting (the paper's
            // communication cost counts what the protocol sends) and shows
            // up only in `messages_duplicated` and the delivery-side
            // counters.
            self.enqueue_delivery(&faults, from, to, copy, data_bytes, kind, false);
            self.trace.record_net_duplicate();
        }
        self.enqueue_delivery(&faults, from, to, msg, data_bytes, kind, true);
    }

    /// Samples the (possibly adversarially extended) delay for one delivery
    /// and schedules it. `count_send` is false for adversarial duplicates,
    /// which must not inflate the protocol's communication cost.
    #[allow(clippy::too_many_arguments)]
    fn enqueue_delivery(
        &mut self,
        faults: &crate::netfault::LinkFaults,
        from: ProcessId,
        to: ProcessId,
        msg: M,
        data_bytes: usize,
        kind: &'static str,
        count_send: bool,
    ) {
        let delay = self.config.delay_for(from, to).sample(&mut self.rng)
            + faults.sample_extra_delay(&mut self.rng);
        let at = self.now + delay;
        let already_crashed = self.is_crashed(to);
        if count_send {
            self.trace
                .record_send(self.now, at, from, to, data_bytes, kind, already_crashed);
        }
        let seq = self.next_seq();
        self.queue.push(Event {
            at,
            seq,
            target: to,
            kind: EventKind::Deliver { from, msg },
            data_bytes,
        });
    }

    /// Processes the next scheduled event. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        let Some(event) = self.queue.pop() else {
            return false;
        };
        self.now = self.now.max(event.at);
        let target = event.target;
        match event.kind {
            EventKind::Crash => {
                self.crash_now(target);
            }
            EventKind::Recover { replacement } => {
                self.recover_now(target, replacement);
                // Run the replacement's `on_start` before the next event so
                // repair begins at the recovery time, not at the next
                // delivery.
                self.ensure_started();
            }
            EventKind::Timer { token } => {
                if !self.is_crashed(target) {
                    self.dispatch(target, |process, ctx| process.on_timer(token, ctx));
                }
            }
            EventKind::Deliver { from, msg } => {
                if self.is_crashed(target) || target.index() >= self.processes.len() {
                    self.trace.record_drop();
                } else {
                    self.trace.record_delivery(target, event.data_bytes);
                    self.dispatch(target, |process, ctx| process.on_message(from, msg, ctx));
                }
            }
        }
        true
    }

    /// Runs until no events remain (or the event cap is hit).
    pub fn run_to_quiescence(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX)
    }

    /// Runs until the next event is strictly after `deadline`, the queue is
    /// empty, or the event cap is hit.
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        self.ensure_started();
        let mut processed = 0u64;
        loop {
            if processed >= self.event_cap {
                return RunOutcome {
                    events_processed: processed,
                    final_time: self.now,
                    hit_event_cap: true,
                };
            }
            match self.queue.peek_at() {
                None => break,
                Some(at) if at > deadline.ticks() => break,
                Some(_) => {}
            }
            if !self.step() {
                break;
            }
            processed += 1;
        }
        RunOutcome {
            events_processed: processed,
            final_time: self.now,
            hit_event_cap: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DelayModel;
    use crate::netfault::{LinkFaults, NetFaultPlan};

    #[derive(Clone, Debug)]
    enum TestMsg {
        Ping(u64),
        Data(Vec<u8>),
    }

    impl Message for TestMsg {
        fn data_bytes(&self) -> usize {
            match self {
                TestMsg::Ping(_) => 0,
                TestMsg::Data(d) => d.len(),
            }
        }
        fn kind(&self) -> &'static str {
            match self {
                TestMsg::Ping(_) => "ping",
                TestMsg::Data(_) => "data",
            }
        }
    }

    /// Echoes pings back with an incremented counter until a limit.
    struct PingPong {
        limit: u64,
        received: Vec<u64>,
        started: bool,
        timer_fired: bool,
    }

    impl PingPong {
        fn new(limit: u64) -> Self {
            PingPong {
                limit,
                received: Vec::new(),
                started: false,
                timer_fired: false,
            }
        }
    }

    impl Process<TestMsg> for PingPong {
        fn on_start(&mut self, _ctx: &mut Context<'_, TestMsg>) {
            self.started = true;
        }
        fn on_message(&mut self, from: ProcessId, msg: TestMsg, ctx: &mut Context<'_, TestMsg>) {
            if let TestMsg::Ping(v) = msg {
                self.received.push(v);
                if v < self.limit && from != ProcessId::ENV {
                    ctx.send(from, TestMsg::Ping(v + 1));
                } else if from == ProcessId::ENV {
                    // Kick off by pinging the next process.
                    let next = ProcessId(ctx.self_id().0 + 1);
                    ctx.send(next, TestMsg::Ping(v + 1));
                }
            }
        }
        fn on_timer(&mut self, _token: u64, _ctx: &mut Context<'_, TestMsg>) {
            self.timer_fired = true;
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn two_process_sim(seed: u64) -> (Simulation<TestMsg>, ProcessId, ProcessId) {
        let mut sim = Simulation::new(seed, NetworkConfig::uniform(5));
        let a = sim.add_process(Box::new(PingPong::new(6)));
        let b = sim.add_process(Box::new(PingPong::new(6)));
        (sim, a, b)
    }

    #[test]
    fn ping_pong_reaches_limit_and_quiesces() {
        let (mut sim, a, b) = two_process_sim(1);
        sim.send_external(a, TestMsg::Ping(0));
        let outcome = sim.run_to_quiescence();
        assert!(!outcome.hit_event_cap);
        let pa: &PingPong = sim.process_as(a).unwrap();
        let pb: &PingPong = sim.process_as(b).unwrap();
        assert!(pa.started && pb.started);
        assert_eq!(pa.received, vec![0, 2, 4, 6]);
        assert_eq!(pb.received, vec![1, 3, 5]);
    }

    #[test]
    fn same_seed_same_execution_different_seed_may_differ() {
        let run = |seed| {
            let (mut sim, a, _b) = two_process_sim(seed);
            sim.send_external(a, TestMsg::Ping(0));
            sim.run_to_quiescence();
            (sim.now(), sim.stats().messages_sent)
        };
        assert_eq!(run(7), run(7), "determinism for equal seeds");
    }

    #[test]
    fn crashed_process_receives_nothing() {
        let (mut sim, a, b) = two_process_sim(3);
        sim.schedule_crash(SimTime::ZERO, b);
        sim.send_external(a, TestMsg::Ping(0));
        sim.run_to_quiescence();
        let pb: &PingPong = sim.process_as(b).unwrap();
        assert!(pb.received.is_empty());
        assert!(sim.is_crashed(b));
        assert!(!sim.is_crashed(a));
        assert!(sim.stats().messages_dropped > 0);
    }

    #[test]
    fn data_bytes_are_accounted() {
        let mut sim: Simulation<TestMsg> = Simulation::new(0, NetworkConfig::constant(2));
        struct Sink;
        impl Process<TestMsg> for Sink {
            fn on_message(&mut self, _f: ProcessId, _m: TestMsg, _c: &mut Context<'_, TestMsg>) {}
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let s = sim.add_process(Box::new(Sink));
        sim.send_external(s, TestMsg::Data(vec![0u8; 123]));
        sim.send_external(s, TestMsg::Ping(1));
        sim.run_to_quiescence();
        let stats = sim.stats();
        assert_eq!(stats.data_bytes_sent, 123);
        assert_eq!(stats.metadata_messages, 1);
        assert_eq!(stats.messages_delivered, 2);
        assert_eq!(stats.per_process[0].data_bytes_received, 123);
    }

    #[test]
    fn timers_fire_unless_crashed() {
        struct TimerProc {
            fired: bool,
        }
        #[derive(Clone, Debug)]
        struct Nothing;
        impl Message for Nothing {}
        impl Process<Nothing> for TimerProc {
            fn on_start(&mut self, ctx: &mut Context<'_, Nothing>) {
                ctx.set_timer(10, 1);
            }
            fn on_message(&mut self, _f: ProcessId, _m: Nothing, _c: &mut Context<'_, Nothing>) {}
            fn on_timer(&mut self, token: u64, _ctx: &mut Context<'_, Nothing>) {
                assert_eq!(token, 1);
                self.fired = true;
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut sim: Simulation<Nothing> = Simulation::new(0, NetworkConfig::default());
        let p = sim.add_process(Box::new(TimerProc { fired: false }));
        let q = sim.add_process(Box::new(TimerProc { fired: false }));
        sim.schedule_crash(SimTime::from_ticks(5), q);
        sim.run_to_quiescence();
        assert!(sim.process_as::<TimerProc>(p).unwrap().fired);
        assert!(!sim.process_as::<TimerProc>(q).unwrap().fired);
    }

    #[test]
    fn run_until_respects_deadline() {
        let (mut sim, a, _b) = two_process_sim(9);
        sim.send_external_at(SimTime::from_ticks(100), a, TestMsg::Ping(0));
        let outcome = sim.run_until(SimTime::from_ticks(50));
        assert_eq!(outcome.events_processed, 0);
        assert!(sim.now() <= SimTime::from_ticks(50));
        let outcome = sim.run_to_quiescence();
        assert!(outcome.events_processed > 0);
    }

    #[test]
    fn event_cap_detects_livelock() {
        // Two processes that ping forever.
        struct Forever;
        impl Process<TestMsg> for Forever {
            fn on_message(
                &mut self,
                from: ProcessId,
                msg: TestMsg,
                ctx: &mut Context<'_, TestMsg>,
            ) {
                if let TestMsg::Ping(v) = msg {
                    let peer = if from == ProcessId::ENV {
                        ProcessId(1)
                    } else {
                        from
                    };
                    ctx.send(peer, TestMsg::Ping(v + 1));
                }
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut sim: Simulation<TestMsg> =
            Simulation::new(0, NetworkConfig::constant(1)).with_event_cap(500);
        let a = sim.add_process(Box::new(Forever));
        let _b = sim.add_process(Box::new(Forever));
        sim.send_external(a, TestMsg::Ping(0));
        let outcome = sim.run_to_quiescence();
        assert!(outcome.hit_event_cap);
        assert_eq!(outcome.events_processed, 500);
    }

    #[test]
    fn link_override_slows_one_direction() {
        let cfg = NetworkConfig::constant(1).with_link(
            ProcessId(0),
            ProcessId(1),
            DelayModel::Constant(100),
        );
        let mut sim: Simulation<TestMsg> = Simulation::new(0, cfg);
        let a = sim.add_process(Box::new(PingPong::new(2)));
        let b = sim.add_process(Box::new(PingPong::new(2)));
        sim.send_external(a, TestMsg::Ping(0));
        sim.run_to_quiescence();
        // a -> b took 100 ticks, b -> a took 1 tick.
        assert!(sim.now() >= SimTime::from_ticks(101));
        let pb: &PingPong = sim.process_as(b).unwrap();
        assert_eq!(pb.received, vec![1]);
    }

    #[test]
    fn net_fault_plan_passthrough_preserves_executions_bit_for_bit() {
        let run = |install_plan: bool| {
            let (mut sim, a, _b) = two_process_sim(11);
            if install_plan {
                sim.set_net_fault_plan(NetFaultPlan::none());
            }
            sim.send_external(a, TestMsg::Ping(0));
            sim.run_to_quiescence();
            (sim.now(), sim.stats().messages_sent)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn future_partition_window_disables_passthrough_but_keeps_the_schedule() {
        // A window that never overlaps the execution forces the general
        // (non-passthrough) send path; since the membership test consumes no
        // randomness the execution must still be bit-identical.
        let run = |with_window: bool| {
            let (mut sim, a, _b) = two_process_sim(11);
            if with_window {
                let plan = NetFaultPlan::none().with_window(crate::netfault::LinkWindow::new(
                    ProcessId(0),
                    ProcessId(1),
                    SimTime::from_ticks(1_000_000),
                    SimTime::from_ticks(2_000_000),
                ));
                assert!(!plan.is_passthrough());
                sim.set_net_fault_plan(plan);
            }
            sim.send_external(a, TestMsg::Ping(0));
            sim.run_to_quiescence();
            (
                sim.now(),
                sim.stats().messages_sent,
                sim.stats().messages_delivered,
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn partition_window_cuts_then_heals_and_is_counted_separately() {
        let (mut sim, a, b) = two_process_sim(13);
        // Cut a → b during [0, 50): the first relay is lost; a retry kicked
        // off after the heal goes through and the ping-pong completes.
        sim.set_net_fault_plan(
            NetFaultPlan::none().with_window(crate::netfault::LinkWindow::new(
                a,
                b,
                SimTime::ZERO,
                SimTime::from_ticks(50),
            )),
        );
        sim.send_external(a, TestMsg::Ping(0));
        sim.send_external_at(SimTime::from_ticks(100), a, TestMsg::Ping(0));
        sim.run_to_quiescence();
        let pb: &PingPong = sim.process_as(b).unwrap();
        assert_eq!(pb.received, vec![1, 3, 5], "post-heal traffic flows");
        let stats = sim.stats();
        assert_eq!(stats.messages_partitioned, 1, "one send hit the window");
        assert_eq!(stats.messages_lost, 0, "partition drops are not net drops");
        assert!(stats.messages_dropped >= 1);
    }

    #[test]
    fn adversarial_drops_lose_messages_and_are_counted() {
        // Drop everything: the ping never reaches b after the ENV kick-off.
        let (mut sim, a, b) = two_process_sim(5);
        sim.set_net_fault_plan(NetFaultPlan::none().with_default(LinkFaults {
            drop_p: 1.0,
            ..LinkFaults::NONE
        }));
        sim.send_external(a, TestMsg::Ping(0));
        sim.run_to_quiescence();
        let pb: &PingPong = sim.process_as(b).unwrap();
        assert!(pb.received.is_empty(), "every relayed ping was dropped");
        let stats = sim.stats();
        assert!(stats.messages_lost > 0);
        assert!(stats.messages_dropped >= stats.messages_lost);
    }

    #[test]
    fn adversarial_duplication_delivers_twice() {
        struct Counter {
            seen: u64,
        }
        impl Process<TestMsg> for Counter {
            fn on_message(&mut self, from: ProcessId, _m: TestMsg, ctx: &mut Context<'_, TestMsg>) {
                self.seen += 1;
                // First delivery from ENV: fire one process-to-process send
                // that the adversary can duplicate.
                if from == ProcessId::ENV {
                    ctx.send(ProcessId(1), TestMsg::Ping(1));
                }
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut sim: Simulation<TestMsg> = Simulation::new(3, NetworkConfig::constant(2));
        let a = sim.add_process(Box::new(Counter { seen: 0 }));
        let b = sim.add_process(Box::new(Counter { seen: 0 }));
        sim.set_net_fault_plan(NetFaultPlan::none().with_default(LinkFaults {
            duplicate_p: 1.0,
            ..LinkFaults::NONE
        }));
        sim.send_external(a, TestMsg::Ping(0));
        sim.run_to_quiescence();
        assert_eq!(sim.process_as::<Counter>(b).unwrap().seen, 2);
        let stats = sim.stats();
        assert_eq!(stats.messages_duplicated, 1);
        // The duplicate is a channel artifact: sent-side cost accounting
        // counts the ENV injection and one protocol send, while the
        // delivery side sees all three arrivals.
        assert_eq!(stats.messages_sent, 2);
        assert_eq!(stats.messages_delivered, 3);
        assert_eq!(stats.per_process[a.index()].messages_sent, 1);
        assert_eq!(stats.per_process[b.index()].messages_received, 2);
    }

    #[test]
    fn extra_delay_slows_delivery_and_corruption_hook_mutates_payloads() {
        struct Sink {
            got: Vec<Vec<u8>>,
        }
        impl Process<TestMsg> for Sink {
            fn on_message(&mut self, from: ProcessId, m: TestMsg, ctx: &mut Context<'_, TestMsg>) {
                if from == ProcessId::ENV {
                    ctx.send(ProcessId(1), TestMsg::Data(vec![7, 7, 7]));
                } else if let TestMsg::Data(d) = m {
                    self.got.push(d);
                }
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut sim: Simulation<TestMsg> = Simulation::new(0, NetworkConfig::constant(1));
        let a = sim.add_process(Box::new(Sink { got: vec![] }));
        let b = sim.add_process(Box::new(Sink { got: vec![] }));
        sim.set_net_fault_plan(
            NetFaultPlan::none()
                .with_default(LinkFaults {
                    extra_delay: Some(DelayModel::Constant(100)),
                    ..LinkFaults::NONE
                })
                .with_corrupt_sender(a),
        );
        sim.set_corruption_hook(Box::new(|_from, _to, msg, _rng| {
            if let TestMsg::Data(d) = msg {
                for byte in d.iter_mut() {
                    *byte ^= 0xFF;
                }
                true
            } else {
                false
            }
        }));
        sim.send_external(a, TestMsg::Ping(0));
        sim.run_to_quiescence();
        let pb: &Sink = sim.process_as(b).unwrap();
        assert_eq!(pb.got, vec![vec![0xF8, 0xF8, 0xF8]]);
        assert!(sim.now() >= SimTime::from_ticks(101), "extra delay applied");
        assert_eq!(sim.stats().messages_corrupted, 1);
    }

    #[test]
    fn recovery_replaces_a_crashed_process_with_fresh_state() {
        let (mut sim, a, b) = two_process_sim(3);
        sim.schedule_crash(SimTime::ZERO, b);
        sim.send_external(a, TestMsg::Ping(0));
        sim.run_to_quiescence();
        assert!(sim.is_crashed(b));
        assert_eq!(sim.crashed_count(), 1);

        // A fresh replacement joins: crashed flag clears, on_start runs, and
        // new messages reach it.
        sim.schedule_recovery(sim.now(), b, Box::new(PingPong::new(6)));
        sim.send_external_at(sim.now() + 50, b, TestMsg::Ping(0));
        sim.run_to_quiescence();
        assert!(!sim.is_crashed(b));
        assert_eq!(sim.crashed_count(), 0);
        let pb: &PingPong = sim.process_as(b).unwrap();
        assert!(pb.started, "replacement's on_start must run");
        assert_eq!(pb.received, vec![0], "replacement state is fresh");
    }

    #[test]
    fn messages_in_flight_during_the_outage_reach_the_replacement() {
        // Crash b, send while dead with a delivery time after the recovery:
        // the replacement receives it (asynchronous channels may deliver
        // arbitrarily late).
        let (mut sim, _a, b) = two_process_sim(5);
        sim.schedule_crash(SimTime::from_ticks(10), b);
        sim.send_external_at(SimTime::from_ticks(50), b, TestMsg::Ping(9));
        sim.schedule_recovery(SimTime::from_ticks(30), b, Box::new(PingPong::new(6)));
        sim.run_to_quiescence();
        let pb: &PingPong = sim.process_as(b).unwrap();
        assert_eq!(pb.received, vec![9]);
    }

    #[test]
    fn fault_plan_with_recoveries_applies_both() {
        let (mut sim, _a, b) = two_process_sim(7);
        let plan = FaultPlan::none()
            .crash(b, SimTime::from_ticks(5))
            .recover(b, SimTime::from_ticks(20));
        sim.apply_fault_plan_with(&plan, |id| {
            assert_eq!(id, b);
            Box::new(PingPong::new(6))
        });
        sim.send_external_at(SimTime::from_ticks(10), b, TestMsg::Ping(1));
        sim.run_until(SimTime::from_ticks(15));
        assert!(sim.is_crashed(b));
        sim.run_to_quiescence();
        assert!(!sim.is_crashed(b));
        assert!(sim.process_as::<PingPong>(b).unwrap().started);
    }

    #[test]
    fn downcast_to_wrong_type_is_none() {
        let (sim, a, _b) = two_process_sim(0);
        assert!(sim.process_as::<String>(a).is_none());
        assert!(sim.process_as::<PingPong>(ProcessId(99)).is_none());
    }

    #[test]
    fn halt_action_crashes_self() {
        struct Suicidal;
        #[derive(Clone, Debug)]
        struct Poke;
        impl Message for Poke {}
        impl Process<Poke> for Suicidal {
            fn on_message(&mut self, _f: ProcessId, _m: Poke, ctx: &mut Context<'_, Poke>) {
                ctx.halt();
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut sim: Simulation<Poke> = Simulation::new(0, NetworkConfig::default());
        let p = sim.add_process(Box::new(Suicidal));
        sim.send_external(p, Poke);
        sim.send_external_at(SimTime::from_ticks(100), p, Poke);
        sim.run_to_quiescence();
        assert!(sim.is_crashed(p));
        assert_eq!(sim.stats().messages_dropped, 1);
    }
}
