//! A timing-wheel event queue: the scheduler's hot path.
//!
//! The simulator schedules almost every event a handful of ticks into the
//! future (message delays are small integers), so a classic binary heap pays
//! an `O(log n)` sift of large event structs on every push and pop for
//! ordering power it never needs. This wheel keeps a ring of FIFO buckets for
//! the next [`SPAN`] ticks — push and pop are `O(1)` — and spills the rare
//! far-future event (long timers, fault-plan crashes) into an overflow heap
//! that migrates events into the ring as the cursor approaches them.
//!
//! Pop order is exactly ascending `(at, seq)`, identical to the binary heap
//! it replaces, so seeded executions are bit-for-bit unchanged:
//!
//! * Within one bucket, events are FIFO. Sequence numbers are assigned in
//!   push order, so FIFO equals ascending `seq`.
//! * A tick's bucket only receives *near* pushes after the tick has entered
//!   the wheel's window, and all overflow events for that tick migrate (in
//!   heap order) at the moment the window reaches it — before any near push
//!   can target it — so migrated events keep their lower sequence numbers
//!   ahead of later near pushes.

use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, VecDeque};

/// Width of the near window in ticks. Power of two (the bucket index is
/// `at % SPAN`); comfortably larger than every delay model's typical range so
/// the overflow heap stays empty in ordinary executions.
const SPAN: u64 = 64;

/// An entry the wheel can order: a scheduled time in ticks plus the
/// monotonically increasing sequence number assigned at push time.
pub(crate) trait Scheduled {
    /// Scheduled time in ticks.
    fn at_ticks(&self) -> u64;
    /// Global push sequence number (strictly increasing across pushes).
    fn seq(&self) -> u64;
}

/// Overflow-heap wrapper ordering events by `(at, seq)` without requiring
/// `Ord` on the event type itself.
struct FarEntry<E>(E);

impl<E: Scheduled> PartialEq for FarEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at_ticks() == other.0.at_ticks() && self.0.seq() == other.0.seq()
    }
}
impl<E: Scheduled> Eq for FarEntry<E> {}
impl<E: Scheduled> PartialOrd for FarEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E: Scheduled> Ord for FarEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.0.at_ticks(), self.0.seq()).cmp(&(other.0.at_ticks(), other.0.seq()))
    }
}

/// The event queue: a near ring of FIFO buckets plus a far overflow heap.
pub(crate) struct EventWheel<E: Scheduled> {
    /// `near[t % SPAN]` holds the events scheduled for tick `t` with
    /// `cursor <= t < cursor + SPAN`, in push (= seq) order.
    near: Vec<VecDeque<E>>,
    /// Events at `cursor + SPAN` or later, ordered by `(at, seq)`.
    far: BinaryHeap<Reverse<FarEntry<E>>>,
    /// The earliest tick that may still hold events. Monotone.
    cursor: u64,
    near_len: usize,
    len: usize,
}

impl<E: Scheduled> EventWheel<E> {
    pub(crate) fn new() -> Self {
        EventWheel {
            near: (0..SPAN).map(|_| VecDeque::with_capacity(8)).collect(),
            far: BinaryHeap::new(),
            cursor: 0,
            near_len: 0,
            len: 0,
        }
    }

    /// Number of queued events (used by the equivalence tests).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn push(&mut self, event: E) {
        // Past times cannot occur (delays are >= 1 and external injections
        // clamp to `now`), but clamping keeps the wheel safe regardless.
        let at = event.at_ticks().max(self.cursor);
        self.len += 1;
        if at - self.cursor < SPAN {
            self.near[(at % SPAN) as usize].push_back(event);
            self.near_len += 1;
        } else {
            self.far.push(Reverse(FarEntry(event)));
        }
    }

    /// Time of the next event, if any.
    pub(crate) fn peek_at(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        if self.near_len > 0 {
            let mut tick = self.cursor;
            loop {
                if !self.near[(tick % SPAN) as usize].is_empty() {
                    return Some(tick);
                }
                tick += 1;
            }
        }
        self.far.peek().map(|Reverse(e)| e.0.at_ticks())
    }

    /// Removes and returns the next event in ascending `(at, seq)` order.
    pub(crate) fn pop(&mut self) -> Option<E> {
        if self.len == 0 {
            return None;
        }
        loop {
            if self.near_len > 0 {
                if let Some(event) = self.near[(self.cursor % SPAN) as usize].pop_front() {
                    self.len -= 1;
                    self.near_len -= 1;
                    return Some(event);
                }
                self.cursor += 1;
            } else {
                // Near ring drained: jump straight to the overflow head.
                let head_at = self
                    .far
                    .peek()
                    .map(|Reverse(e)| e.0.at_ticks())
                    .expect("len > 0 and near empty imply far non-empty");
                self.cursor = head_at;
            }
            self.migrate();
        }
    }

    /// Moves every overflow event that has entered the near window into its
    /// bucket. The heap yields them in `(at, seq)` order, so same-tick events
    /// land in their bucket in seq order, ahead of any later near push.
    fn migrate(&mut self) {
        let horizon = self.cursor.saturating_add(SPAN);
        while let Some(Reverse(head)) = self.far.peek() {
            if head.0.at_ticks() >= horizon {
                break;
            }
            let Reverse(FarEntry(event)) = self.far.pop().expect("peeked above");
            self.near[(event.at_ticks() % SPAN) as usize].push_back(event);
            self.near_len += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha12Rng;

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    struct Ev {
        at: u64,
        seq: u64,
    }
    impl Scheduled for Ev {
        fn at_ticks(&self) -> u64 {
            self.at
        }
        fn seq(&self) -> u64 {
            self.seq
        }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut wheel = EventWheel::new();
        wheel.push(Ev { at: 5, seq: 1 });
        wheel.push(Ev { at: 3, seq: 2 });
        wheel.push(Ev { at: 5, seq: 3 });
        wheel.push(Ev { at: 3, seq: 4 });
        let order: Vec<_> = std::iter::from_fn(|| wheel.pop()).collect();
        assert_eq!(
            order,
            vec![
                Ev { at: 3, seq: 2 },
                Ev { at: 3, seq: 4 },
                Ev { at: 5, seq: 1 },
                Ev { at: 5, seq: 3 },
            ]
        );
    }

    #[test]
    fn far_events_interleave_correctly_with_near_pushes() {
        let mut wheel = EventWheel::new();
        // Far event for tick 100, pushed first (lowest seq).
        wheel.push(Ev { at: 100, seq: 1 });
        wheel.push(Ev { at: 1, seq: 2 });
        assert_eq!(wheel.pop(), Some(Ev { at: 1, seq: 2 }));
        // Cursor is now at tick 1; tick 100 is outside the window until the
        // queue drains towards it. A near push for 100 after it has entered
        // the window must pop *after* the far event despite arriving through
        // a different path.
        assert_eq!(wheel.pop(), Some(Ev { at: 100, seq: 1 }));
        assert_eq!(wheel.pop(), None);
    }

    #[test]
    fn empty_wheel_behaves() {
        let mut wheel: EventWheel<Ev> = EventWheel::new();
        assert_eq!(wheel.len(), 0);
        assert_eq!(wheel.peek_at(), None);
        assert_eq!(wheel.pop(), None);
    }

    #[test]
    fn matches_reference_heap_on_random_workload() {
        // Drive the wheel and a (at, seq)-ordered reference heap with the
        // same randomized monotone workload and demand identical pop order,
        // including pushes relative to the advancing current time and
        // far-future outliers.
        let mut rng = ChaCha12Rng::seed_from_u64(42);
        let mut wheel = EventWheel::new();
        let mut reference: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut now = 0u64;
        let mut seq = 0u64;
        let mut popped = 0usize;
        for _ in 0..20_000 {
            if rng.gen_bool(0.55) || reference.is_empty() {
                // Mostly short delays, occasionally far-future ones.
                let delay = if rng.gen_bool(0.05) {
                    rng.gen_range(SPAN..SPAN * 20)
                } else {
                    rng.gen_range(0..12)
                };
                seq += 1;
                wheel.push(Ev {
                    at: now + delay,
                    seq,
                });
                reference.push(Reverse((now + delay, seq)));
            } else {
                let Reverse((at, expect_seq)) = reference.pop().unwrap();
                let got = wheel.pop().expect("wheel has the same events");
                assert_eq!((got.at, got.seq), (at, expect_seq));
                assert!(at >= now, "time went backwards");
                now = at;
                popped += 1;
            }
            assert_eq!(wheel.len(), reference.len());
            assert_eq!(
                wheel.peek_at(),
                reference.peek().map(|Reverse((at, _))| *at)
            );
        }
        assert!(popped > 5_000, "workload actually exercised pops");
        while let Some(Reverse((at, expect_seq))) = reference.pop() {
            let got = wheel.pop().unwrap();
            assert_eq!((got.at, got.seq), (at, expect_seq));
        }
        assert_eq!(wheel.pop(), None);
    }
}
