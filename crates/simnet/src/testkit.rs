//! Utilities for unit-testing [`Process`] implementations without a full
//! simulation: deliver a single message (or the start event) to a process and
//! observe exactly which sends, timers and halts it produced.

use crate::process::{Action, Context, Message, Process, ProcessId};
use crate::time::SimTime;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// The externally visible effects of delivering one event to a process.
#[derive(Debug)]
pub struct StepResult<M> {
    /// Messages the process sent, in order.
    pub sends: Vec<(ProcessId, M)>,
    /// Timers the process set, as `(delay, token)` pairs.
    pub timers: Vec<(u64, u64)>,
    /// Whether the process halted itself.
    pub halted: bool,
}

impl<M> StepResult<M> {
    fn from_actions(actions: Vec<Action<M>>) -> Self {
        let mut result = StepResult {
            sends: Vec::new(),
            timers: Vec::new(),
            halted: false,
        };
        for action in actions {
            match action {
                Action::Send { to, msg } => result.sends.push((to, msg)),
                Action::SetTimer { delay, token } => result.timers.push((delay, token)),
                Action::Halt => result.halted = true,
            }
        }
        result
    }

    /// The messages sent to a particular destination.
    pub fn sent_to(&self, to: ProcessId) -> Vec<&M> {
        self.sends
            .iter()
            .filter(|(dest, _)| *dest == to)
            .map(|(_, m)| m)
            .collect()
    }
}

fn run_step<M: Message, P: Process<M> + ?Sized>(
    process: &mut P,
    self_id: ProcessId,
    now: SimTime,
    seed: u64,
    event: Option<(ProcessId, M)>,
) -> StepResult<M> {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut ctx = Context {
        self_id,
        now,
        actions: Vec::new(),
        rng: &mut rng,
    };
    match event {
        None => process.on_start(&mut ctx),
        Some((from, msg)) => process.on_message(from, msg, &mut ctx),
    }
    StepResult::from_actions(ctx.actions)
}

/// Delivers the start event to a process and returns its effects.
pub fn start<M: Message, P: Process<M> + ?Sized>(
    process: &mut P,
    self_id: ProcessId,
    now: SimTime,
) -> StepResult<M> {
    run_step(process, self_id, now, 0, None)
}

/// Delivers one message to a process and returns its effects.
pub fn deliver<M: Message, P: Process<M> + ?Sized>(
    process: &mut P,
    self_id: ProcessId,
    now: SimTime,
    from: ProcessId,
    msg: M,
) -> StepResult<M> {
    run_step(process, self_id, now, 0, Some((from, msg)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct Echo(u32);
    impl Message for Echo {}

    struct Doubler;
    impl Process<Echo> for Doubler {
        fn on_start(&mut self, ctx: &mut Context<'_, Echo>) {
            ctx.set_timer(5, 77);
        }
        fn on_message(&mut self, from: ProcessId, msg: Echo, ctx: &mut Context<'_, Echo>) {
            ctx.send(from, Echo(msg.0 * 2));
            if msg.0 == 0 {
                ctx.halt();
            }
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn start_and_deliver_capture_effects() {
        let mut p = Doubler;
        let started = start(&mut p, ProcessId(0), SimTime::ZERO);
        assert_eq!(started.timers, vec![(5, 77)]);
        assert!(started.sends.is_empty());

        let stepped = deliver(
            &mut p,
            ProcessId(0),
            SimTime::from_ticks(3),
            ProcessId(9),
            Echo(21),
        );
        assert_eq!(stepped.sends.len(), 1);
        assert_eq!(stepped.sends[0].0, ProcessId(9));
        assert_eq!(stepped.sends[0].1 .0, 42);
        assert!(!stepped.halted);
        assert_eq!(stepped.sent_to(ProcessId(9)).len(), 1);
        assert!(stepped.sent_to(ProcessId(1)).is_empty());

        let halted = deliver(
            &mut p,
            ProcessId(0),
            SimTime::from_ticks(4),
            ProcessId(9),
            Echo(0),
        );
        assert!(halted.halted);
    }
}
