//! Process (actor) abstraction and the handler-side context.

use crate::time::SimTime;
use rand_chacha::ChaCha12Rng;
use std::any::Any;
use std::fmt;

/// Identifier of a process in the simulation.
///
/// Identifiers are assigned densely starting at 0 in the order processes are
/// added, and form a totally ordered set as the paper requires (the
/// message-disperse primitive relies on an agreed ordering of the servers).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ProcessId(pub u32);

impl ProcessId {
    /// The distinguished "environment" sender used for externally injected
    /// messages (operation invocations from the workload driver).
    pub const ENV: ProcessId = ProcessId(u32::MAX);

    /// Raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == ProcessId::ENV {
            write!(f, "env")
        } else {
            write!(f, "p{}", self.0)
        }
    }
}

/// Trait for messages exchanged between processes.
///
/// `data_bytes` reports how many bytes of *object-value data* (full values or
/// coded elements) the message carries. The paper's communication-cost model
/// counts only these bytes and treats metadata (tags, ids, acknowledgements)
/// as free, so metadata-only messages keep the default of `0`.
pub trait Message: Clone + fmt::Debug + Send + 'static {
    /// Bytes of object-value data carried by this message (0 for metadata).
    fn data_bytes(&self) -> usize {
        0
    }

    /// A short human-readable kind, used in traces.
    fn kind(&self) -> &'static str {
        "msg"
    }
}

/// A protocol automaton.
///
/// Handlers receive a [`Context`] through which they can send messages, set
/// timers and read the current simulated time. State inspection from tests and
/// experiment harnesses goes through `as_any` downcasting.
pub trait Process<M: Message>: Send {
    /// Called once when the simulation starts (before any message delivery).
    fn on_start(&mut self, _ctx: &mut Context<'_, M>) {}

    /// Called when a message is delivered to this process.
    fn on_message(&mut self, from: ProcessId, msg: M, ctx: &mut Context<'_, M>);

    /// Called when a timer set through [`Context::set_timer`] fires.
    fn on_timer(&mut self, _token: u64, _ctx: &mut Context<'_, M>) {}

    /// Downcasting support for state inspection.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcasting support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Actions a handler can emit; collected by the simulation after the handler
/// returns and turned into future events.
#[derive(Debug)]
pub(crate) enum Action<M> {
    Send { to: ProcessId, msg: M },
    SetTimer { delay: u64, token: u64 },
    Halt,
}

/// Handler-side view of the simulation: lets a process send messages, set
/// timers, sample randomness and read the clock. All effects are buffered and
/// applied by the scheduler after the handler returns, which keeps handlers
/// deterministic and side-effect free.
pub struct Context<'a, M: Message> {
    pub(crate) self_id: ProcessId,
    pub(crate) now: SimTime,
    pub(crate) actions: Vec<Action<M>>,
    pub(crate) rng: &'a mut ChaCha12Rng,
}

impl<'a, M: Message> Context<'a, M> {
    /// The id of the process whose handler is running.
    pub fn self_id(&self) -> ProcessId {
        self.self_id
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends `msg` to `to` over the reliable point-to-point channel. Delivery
    /// is asynchronous; the delay is sampled from the network configuration.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Sends the same message to every process in `to`, in order.
    pub fn send_all<I: IntoIterator<Item = ProcessId>>(&mut self, to: I, msg: M) {
        for dest in to {
            self.send(dest, msg.clone());
        }
    }

    /// Schedules `on_timer(token)` on this process after `delay` ticks.
    pub fn set_timer(&mut self, delay: u64, token: u64) {
        self.actions.push(Action::SetTimer { delay, token });
    }

    /// Crashes this process at the end of the current handler: no further
    /// events will be delivered to it (messages already sent by it remain in
    /// the channels, matching the paper's channel model).
    pub fn halt(&mut self) {
        self.actions.push(Action::Halt);
    }

    /// Deterministic per-simulation random number generator.
    pub fn rng(&mut self) -> &mut ChaCha12Rng {
        self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_display_and_order() {
        assert_eq!(ProcessId(3).to_string(), "p3");
        assert_eq!(ProcessId::ENV.to_string(), "env");
        assert!(ProcessId(1) < ProcessId(2));
        assert_eq!(ProcessId(5).index(), 5);
    }

    #[derive(Clone, Debug)]
    struct Dummy;
    impl Message for Dummy {}

    #[test]
    fn default_message_metadata_is_free() {
        assert_eq!(Dummy.data_bytes(), 0);
        assert_eq!(Dummy.kind(), "msg");
    }

    #[test]
    fn context_buffers_actions() {
        use rand::SeedableRng;
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let mut ctx: Context<'_, Dummy> = Context {
            self_id: ProcessId(0),
            now: SimTime::from_ticks(5),
            actions: Vec::new(),
            rng: &mut rng,
        };
        ctx.send(ProcessId(1), Dummy);
        ctx.send_all([ProcessId(2), ProcessId(3)], Dummy);
        ctx.set_timer(10, 99);
        ctx.halt();
        assert_eq!(ctx.actions.len(), 5);
        assert_eq!(ctx.now().ticks(), 5);
        assert_eq!(ctx.self_id(), ProcessId(0));
    }
}
