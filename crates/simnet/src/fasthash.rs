//! A fast, non-cryptographic hasher for hot-path lookup tables.
//!
//! The simulator and the protocol handlers key hash tables with small fixed
//! integers (message ids, ticket numbers, process pairs) that are touched on
//! every message. `std`'s default SipHash is DoS-resistant but shows up as a
//! measurable slice of the per-message budget; none of these tables are fed
//! attacker-chosen keys, so a multiply-xor hash in the fxhash family is the
//! right trade. Deliberately `std`-only.
//!
//! **Not for iteration-order-sensitive tables.** Changing a hasher changes
//! iteration order; every use must be membership/lookup only (or the
//! container's iteration order must not influence behavior).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the golden ratio (same constant family as fxhash /
/// FNV-style mixers): odd, high bit entropy.
const K: u64 = 0x9e37_79b9_7f4a_7c15;

/// Word-at-a-time multiply-xor hasher.
#[derive(Default, Clone)]
pub struct FastHasher {
    state: u64,
}

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Length-tag the tail so "ab" and "ab\0" hash differently.
            word[7] = rest.len() as u8;
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }
    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.mix(v as u64);
        self.mix((v >> 64) as u64);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// `BuildHasher` for [`FastHasher`].
pub type BuildFastHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed with [`FastHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, BuildFastHasher>;

/// A `HashSet` keyed with [`FastHasher`].
pub type FastHashSet<T> = HashSet<T, BuildFastHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinguishes_nearby_keys() {
        let build = BuildFastHasher::default();
        let hashes: HashSet<u64> = (0u64..10_000)
            .map(|k| std::hash::BuildHasher::hash_one(&build, k))
            .collect();
        assert_eq!(hashes.len(), 10_000, "sequential keys must not collide");
    }

    #[test]
    fn byte_tail_is_length_tagged() {
        let build = BuildFastHasher::default();
        let h = |bytes: &[u8]| std::hash::BuildHasher::hash_one(&build, bytes);
        assert_ne!(h(b"ab"), h(b"ab\0"));
        assert_ne!(h(b""), h(b"\0"));
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut map: FastHashMap<(u32, u64), &str> = FastHashMap::default();
        map.insert((1, 2), "a");
        map.insert((1, 3), "b");
        assert_eq!(map.get(&(1, 2)), Some(&"a"));
        let mut set: FastHashSet<u64> = FastHashSet::default();
        assert!(set.insert(7));
        assert!(!set.insert(7));
    }
}
