//! Value ↔ shard conversion.
//!
//! A value is an arbitrary byte string. To feed it through an `[n, k]` code it
//! is (1) prefixed with an 8-byte little-endian length header, (2) padded with
//! zeros to a multiple of `k`, and (3) split column-wise into `k` equal data
//! shards. Each byte column `j` across the `k` data shards is one Reed–Solomon
//! message word, so shard length = coded-element length = `ceil((len+8)/k)`,
//! matching the paper's "each coded element has size 1/k" accounting.

use std::fmt;

/// One coded element `c_i = Φ_i(v)`: the index identifies which of the `n`
/// code positions (equivalently, which server) this element belongs to.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct CodedElement {
    /// Code position in `0..n`.
    pub index: usize,
    /// The element payload (all elements of one codeword have equal length).
    pub data: Vec<u8>,
}

impl CodedElement {
    /// Creates a coded element.
    pub fn new(index: usize, data: Vec<u8>) -> Self {
        CodedElement { index, data }
    }

    /// Length of the payload in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl fmt::Debug for CodedElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CodedElement(idx={}, {} bytes)",
            self.index,
            self.data.len()
        )
    }
}

/// Length of the length header prepended to every value before splitting.
pub const LENGTH_HEADER: usize = 8;

/// Prefixes the value with its length, pads it to a multiple of `k`, and
/// splits it into `k` equal-length data shards.
///
/// The split is *striped*: byte `j` of shard `i` is byte `j * k + i` of the
/// padded payload, so that each byte column of the shards is an independent
/// codeword symbol vector.
pub fn pad_and_split(value: &[u8], k: usize) -> Vec<Vec<u8>> {
    assert!(k > 0, "k must be positive");
    let total = value.len() + LENGTH_HEADER;
    let shard_len = total.div_ceil(k);
    let padded_len = shard_len * k;
    let mut padded = Vec::with_capacity(padded_len);
    padded.extend_from_slice(&(value.len() as u64).to_le_bytes());
    padded.extend_from_slice(value);
    padded.resize(padded_len, 0);

    let mut shards = vec![vec![0u8; shard_len]; k];
    for (pos, &byte) in padded.iter().enumerate() {
        shards[pos % k][pos / k] = byte;
    }
    shards
}

/// Inverse of [`pad_and_split`]: reassembles the original value from the `k`
/// data shards. Returns `None` if the embedded length header is inconsistent
/// with the shard sizes (which indicates corruption).
pub fn reassemble(shards: &[Vec<u8>]) -> Option<Vec<u8>> {
    let k = shards.len();
    if k == 0 {
        return None;
    }
    let shard_len = shards[0].len();
    if shards.iter().any(|s| s.len() != shard_len) {
        return None;
    }
    let padded_len = shard_len * k;
    if padded_len < LENGTH_HEADER {
        return None;
    }
    let mut padded = vec![0u8; padded_len];
    for (i, shard) in shards.iter().enumerate() {
        for (j, &byte) in shard.iter().enumerate() {
            padded[j * k + i] = byte;
        }
    }
    let mut len_bytes = [0u8; 8];
    len_bytes.copy_from_slice(&padded[..LENGTH_HEADER]);
    let value_len = u64::from_le_bytes(len_bytes) as usize;
    if value_len > padded_len - LENGTH_HEADER {
        return None;
    }
    Some(padded[LENGTH_HEADER..LENGTH_HEADER + value_len].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_various_sizes_and_k() {
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let value: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            for k in [1usize, 2, 3, 5, 8, 17] {
                let shards = pad_and_split(&value, k);
                assert_eq!(shards.len(), k);
                let shard_len = shards[0].len();
                assert!(shards.iter().all(|s| s.len() == shard_len));
                assert!(shard_len * k >= value.len() + LENGTH_HEADER);
                assert_eq!(
                    reassemble(&shards).expect("reassemble"),
                    value,
                    "len={len} k={k}"
                );
            }
        }
    }

    #[test]
    fn empty_value_round_trips() {
        let shards = pad_and_split(&[], 4);
        assert_eq!(reassemble(&shards).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn shard_length_is_ceiling_of_total_over_k() {
        let shards = pad_and_split(&[0u8; 100], 7);
        assert_eq!(shards[0].len(), (100usize + LENGTH_HEADER).div_ceil(7));
    }

    #[test]
    fn reassemble_rejects_ragged_shards() {
        let mut shards = pad_and_split(b"hello world", 3);
        shards[1].push(0);
        assert!(reassemble(&shards).is_none());
    }

    #[test]
    fn reassemble_rejects_empty_input() {
        assert!(reassemble(&[]).is_none());
    }

    #[test]
    fn reassemble_rejects_corrupt_length_header() {
        let mut shards = pad_and_split(b"abc", 2);
        // Overwrite the length header with an absurd value.
        shards[0][0] = 0xff;
        shards[1][0] = 0xff;
        shards[0][1] = 0xff;
        assert!(reassemble(&shards).is_none());
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = pad_and_split(b"x", 0);
    }

    #[test]
    fn coded_element_accessors() {
        let e = CodedElement::new(3, vec![1, 2, 3]);
        assert_eq!(e.index, 3);
        assert_eq!(e.len(), 3);
        assert!(!e.is_empty());
        assert!(CodedElement::new(0, vec![]).is_empty());
        let dbg = format!("{e:?}");
        assert!(dbg.contains("idx=3"));
    }
}
