//! Value ↔ shard conversion.
//!
//! A value is an arbitrary byte string. To feed it through an `[n, k]` code it
//! is (1) prefixed with an 8-byte little-endian length header, (2) padded with
//! zeros to a multiple of `k`, and (3) split column-wise into `k` equal data
//! shards. Each byte column `j` across the `k` data shards is one Reed–Solomon
//! message word, so shard length = coded-element length = `ceil((len+8)/k)`,
//! matching the paper's "each coded element has size 1/k" accounting.

use crate::Bytes;
use std::fmt;

/// One coded element `c_i = Φ_i(v)`: the index identifies which of the `n`
/// code positions (equivalently, which server) this element belongs to.
///
/// The payload is a [`Bytes`] buffer: cloning an element — which the
/// simulated network does on every relay, duplication and storage step — is
/// O(1) and shares the underlying bytes.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct CodedElement {
    /// Code position in `0..n`.
    pub index: usize,
    /// The element payload (all elements of one codeword have equal length).
    pub data: Bytes,
}

impl CodedElement {
    /// Creates a coded element from anything convertible to [`Bytes`]
    /// (`Vec<u8>`, `&[u8]`, an existing `Bytes`, …).
    pub fn new(index: usize, data: impl Into<Bytes>) -> Self {
        CodedElement {
            index,
            data: data.into(),
        }
    }

    /// Length of the payload in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl fmt::Debug for CodedElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CodedElement(idx={}, {} bytes)",
            self.index,
            self.data.len()
        )
    }
}

/// Length of the length header prepended to every value before splitting.
pub const LENGTH_HEADER: usize = 8;

/// Why [`reassemble`] rejected its input. Every variant indicates corruption
/// (or a protocol bug): honestly encoded shards always reassemble.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReassembleError {
    /// No shards were supplied.
    NoShards,
    /// The shards do not all have the same length.
    RaggedShards,
    /// The combined shards are shorter than the 8-byte length header, so no
    /// length can even be read.
    TruncatedHeader {
        /// Combined payload bytes available.
        available: usize,
    },
    /// The embedded length header claims more payload bytes than the shards
    /// can hold (`shards.len() * shard_len − 8`).
    LengthOutOfBounds {
        /// The length the header claims.
        claimed: usize,
        /// Maximum payload the shards could carry.
        capacity: usize,
    },
}

impl fmt::Display for ReassembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReassembleError::NoShards => write!(f, "no shards to reassemble"),
            ReassembleError::RaggedShards => write!(f, "shards have unequal lengths"),
            ReassembleError::TruncatedHeader { available } => write!(
                f,
                "shards too short for the {LENGTH_HEADER}-byte length header \
                 ({available} bytes available)"
            ),
            ReassembleError::LengthOutOfBounds { claimed, capacity } => write!(
                f,
                "length header claims {claimed} bytes but shards hold at most {capacity}"
            ),
        }
    }
}

impl std::error::Error for ReassembleError {}

/// Prefixes the value with its length, pads it to a multiple of `k`, and
/// splits it into `k` equal-length data shards.
///
/// The split is *striped*: byte `j` of shard `i` is byte `j * k + i` of the
/// padded payload, so that each byte column of the shards is an independent
/// codeword symbol vector.
pub fn pad_and_split(value: &[u8], k: usize) -> Vec<Vec<u8>> {
    assert!(k > 0, "k must be positive");
    let total = value.len() + LENGTH_HEADER;
    let shard_len = total.div_ceil(k);
    let padded_len = shard_len * k;
    let mut padded = Vec::with_capacity(padded_len);
    padded.extend_from_slice(&(value.len() as u64).to_le_bytes());
    padded.extend_from_slice(value);
    padded.resize(padded_len, 0);

    let mut shards = vec![vec![0u8; shard_len]; k];
    // Gather stride-k: sequential writes per shard, no div/mod per byte.
    for (i, shard) in shards.iter_mut().enumerate() {
        for (slot, &byte) in shard.iter_mut().zip(padded[i..].iter().step_by(k)) {
            *slot = byte;
        }
    }
    shards
}

/// Inverse of [`pad_and_split`]: reassembles the original value from the `k`
/// data shards, validating the 8-byte length header against the shard
/// capacity before trusting it.
pub fn reassemble(shards: &[Vec<u8>]) -> Result<Vec<u8>, ReassembleError> {
    let k = shards.len();
    if k == 0 {
        return Err(ReassembleError::NoShards);
    }
    let shard_len = shards[0].len();
    if shards.iter().any(|s| s.len() != shard_len) {
        return Err(ReassembleError::RaggedShards);
    }
    let padded_len = shard_len * k;
    if padded_len < LENGTH_HEADER {
        return Err(ReassembleError::TruncatedHeader {
            available: padded_len,
        });
    }
    let mut padded = vec![0u8; padded_len];
    // Scatter stride-k: sequential reads per shard, no multiply per byte.
    for (i, shard) in shards.iter().enumerate() {
        for (slot, &byte) in padded[i..].iter_mut().step_by(k).zip(shard.iter()) {
            *slot = byte;
        }
    }
    let mut len_bytes = [0u8; 8];
    len_bytes.copy_from_slice(&padded[..LENGTH_HEADER]);
    let claimed = u64::from_le_bytes(len_bytes);
    let capacity = padded_len - LENGTH_HEADER;
    // Compare in u64: a header claiming close to 2^64 must not wrap when cast
    // to usize on 32-bit targets.
    if claimed > capacity as u64 {
        return Err(ReassembleError::LengthOutOfBounds {
            claimed: claimed.min(usize::MAX as u64) as usize,
            capacity,
        });
    }
    let value_len = claimed as usize;
    padded.truncate(LENGTH_HEADER + value_len);
    padded.drain(..LENGTH_HEADER);
    Ok(padded)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_various_sizes_and_k() {
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let value: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            for k in [1usize, 2, 3, 5, 8, 17] {
                let shards = pad_and_split(&value, k);
                assert_eq!(shards.len(), k);
                let shard_len = shards[0].len();
                assert!(shards.iter().all(|s| s.len() == shard_len));
                assert!(shard_len * k >= value.len() + LENGTH_HEADER);
                assert_eq!(
                    reassemble(&shards).expect("reassemble"),
                    value,
                    "len={len} k={k}"
                );
            }
        }
    }

    #[test]
    fn empty_value_round_trips() {
        let shards = pad_and_split(&[], 4);
        assert_eq!(reassemble(&shards).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn shard_length_is_ceiling_of_total_over_k() {
        let shards = pad_and_split(&[0u8; 100], 7);
        assert_eq!(shards[0].len(), (100usize + LENGTH_HEADER).div_ceil(7));
    }

    #[test]
    fn reassemble_rejects_ragged_shards() {
        let mut shards = pad_and_split(b"hello world", 3);
        shards[1].push(0);
        assert_eq!(reassemble(&shards), Err(ReassembleError::RaggedShards));
    }

    #[test]
    fn reassemble_rejects_empty_input() {
        assert_eq!(reassemble(&[]), Err(ReassembleError::NoShards));
    }

    #[test]
    fn reassemble_rejects_truncated_header() {
        // 3 shards of 2 bytes = 6 bytes total, shorter than the 8-byte header.
        let shards = vec![vec![0u8; 2]; 3];
        assert_eq!(
            reassemble(&shards),
            Err(ReassembleError::TruncatedHeader { available: 6 })
        );
        // Zero-length shards: 0 bytes available.
        let shards = vec![Vec::new(); 4];
        assert_eq!(
            reassemble(&shards),
            Err(ReassembleError::TruncatedHeader { available: 0 })
        );
    }

    #[test]
    fn reassemble_rejects_oversized_length_header() {
        let mut shards = pad_and_split(b"abc", 2);
        // Overwrite the length header with an absurd value.
        shards[0][0] = 0xff;
        shards[1][0] = 0xff;
        shards[0][1] = 0xff;
        let err = reassemble(&shards).unwrap_err();
        assert!(
            matches!(err, ReassembleError::LengthOutOfBounds { claimed, capacity }
                if claimed > capacity),
            "got {err:?}"
        );
    }

    #[test]
    fn reassemble_rejects_length_one_past_capacity() {
        // The tightest off-by-one: header claims exactly capacity + 1.
        let value = vec![7u8; 10];
        let mut shards = pad_and_split(&value, 3);
        let capacity = shards[0].len() * 3 - LENGTH_HEADER;
        let claimed = (capacity + 1) as u64;
        for (pos, byte) in claimed.to_le_bytes().into_iter().enumerate() {
            shards[pos % 3][pos / 3] = byte;
        }
        assert_eq!(
            reassemble(&shards),
            Err(ReassembleError::LengthOutOfBounds {
                claimed: capacity + 1,
                capacity,
            })
        );
        // Claiming exactly `capacity` is structurally valid (padding bytes
        // become payload, but the header is in bounds).
        let claimed = capacity as u64;
        for (pos, byte) in claimed.to_le_bytes().into_iter().enumerate() {
            shards[pos % 3][pos / 3] = byte;
        }
        assert_eq!(reassemble(&shards).unwrap().len(), capacity);
    }

    #[test]
    fn reassemble_error_display_is_informative() {
        let msgs = [
            ReassembleError::NoShards.to_string(),
            ReassembleError::RaggedShards.to_string(),
            ReassembleError::TruncatedHeader { available: 4 }.to_string(),
            ReassembleError::LengthOutOfBounds {
                claimed: 100,
                capacity: 8,
            }
            .to_string(),
        ];
        for m in &msgs {
            assert!(!m.is_empty());
        }
        assert!(msgs[3].contains("100"));
        assert!(msgs[3].contains('8'));
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = pad_and_split(b"x", 0);
    }

    #[test]
    fn coded_element_accessors() {
        let e = CodedElement::new(3, vec![1, 2, 3]);
        assert_eq!(e.index, 3);
        assert_eq!(e.len(), 3);
        assert!(!e.is_empty());
        assert!(CodedElement::new(0, vec![]).is_empty());
        let dbg = format!("{e:?}");
        assert!(dbg.contains("idx=3"));
    }

    #[test]
    fn coded_element_clone_shares_payload() {
        let e = CodedElement::new(1, vec![1u8; 4096]);
        let f = e.clone();
        assert!(Bytes::ptr_eq(&e.data, &f.data), "clone must be zero-copy");
    }
}
