//! Reed–Solomon `[n, k]` MDS codes for the SODA reproduction.
//!
//! The paper abstracts erasure coding as three functions over a value `v`:
//!
//! * `Φ(v)` — the encoder, producing `n` coded elements `c_1 … c_n`, one per
//!   server (`Φ_i(v)` is the projection onto server `i`'s element);
//! * `Φ⁻¹(C)` — the erasure decoder, recovering `v` from any `k` coded
//!   elements with **known** indices (used by SODA with `k = n − f`);
//! * `Φ⁻¹_err(C)` — the error-and-erasure decoder, recovering `v` from
//!   `k + 2e` coded elements of which up to `e` may be **silently corrupted**
//!   (used by SODAerr with `k = n − f − 2e`).
//!
//! Two interchangeable MDS code implementations are provided behind the
//! [`MdsCode`] trait:
//!
//! * [`VandermondeCode`] — a systematic generator-matrix code. Encoding is a
//!   matrix–shard product; erasure decoding inverts the `k × k` submatrix of
//!   surviving rows. It has the cheapest encoder but no error correction.
//! * [`BerlekampWelchCode`] — the same systematic code equipped with a
//!   Berlekamp–Welch error-and-erasure decoder, able to recover the value from
//!   `k + 2e` elements of which up to `e` are silently corrupted. It realizes
//!   `Φ⁻¹_err`.
//!
//! Values of arbitrary byte length are chunked column-wise into `k` data
//! shards (see [`pad_and_split`]); each byte column is an independent RS
//! codeword.
//!
//! # Example
//!
//! ```
//! use soda_rs_code::{MdsCode, VandermondeCode};
//!
//! let code = VandermondeCode::new(5, 3).unwrap();            // tolerate f = 2 erasures
//! let value = b"atomic registers from coded shards".to_vec();
//! let elements = code.encode(&value).unwrap();                 // Φ(v): 5 coded elements
//! // Any 3 of the 5 elements reconstruct the value (here: 0, 2, 4).
//! let subset = vec![elements[0].clone(), elements[2].clone(), elements[4].clone()];
//! assert_eq!(code.decode(&subset).unwrap(), value);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod bw;
mod bytes;
mod cache;
mod error;
mod shard;
mod vandermonde;

pub use bw::BerlekampWelchCode;
pub use bytes::Bytes;
pub use cache::CodeCacheStats;
pub use error::CodeError;
pub use shard::{pad_and_split, reassemble, CodedElement, ReassembleError, LENGTH_HEADER};
pub use vandermonde::VandermondeCode;

/// Common interface of the `[n, k]` MDS codes used by the protocols.
///
/// All methods operate on whole values (arbitrary byte strings); the
/// implementation chunks them into per-server coded elements internally.
pub trait MdsCode: Send + Sync {
    /// Total number of coded elements (= number of servers), the `n` in `[n, k]`.
    fn n(&self) -> usize;

    /// Number of data elements required for reconstruction, the `k` in `[n, k]`.
    fn k(&self) -> usize;

    /// Encodes the value into `n` coded elements, one per server index
    /// `0..n`. This is the paper's `Φ(v)`.
    fn encode(&self, value: &[u8]) -> Result<Vec<CodedElement>, CodeError>;

    /// Encodes and returns only the element for server `index`
    /// (the paper's `Φ_i(v)`).
    fn encode_one(&self, value: &[u8], index: usize) -> Result<CodedElement, CodeError> {
        if index >= self.n() {
            return Err(CodeError::InvalidIndex { index, n: self.n() });
        }
        Ok(self.encode(value)?.swap_remove(index))
    }

    /// Decodes a value from at least `k` coded elements with distinct, known
    /// indices and no corruption. This is the paper's `Φ⁻¹(C)`.
    fn decode(&self, elements: &[CodedElement]) -> Result<Vec<u8>, CodeError>;

    /// Decodes a value from coded elements of which up to `max_errors` may be
    /// silently corrupted (wrong bytes under a correct index). Requires at
    /// least `k + 2 * max_errors` elements. This is the paper's `Φ⁻¹_err(C)`.
    ///
    /// Implementations without error-correction capability return
    /// [`CodeError::ErrorsNotSupported`] whenever `max_errors > 0`.
    fn decode_with_errors(
        &self,
        elements: &[CodedElement],
        max_errors: usize,
    ) -> Result<Vec<u8>, CodeError>;

    /// The normalized size of one coded element relative to the value size
    /// (`1/k` in the paper's cost model).
    fn element_fraction(&self) -> f64 {
        1.0 / self.k() as f64
    }

    /// Normalized total storage cost when every server stores one coded
    /// element (`n/k` in the paper's cost model).
    fn total_storage_fraction(&self) -> f64 {
        self.n() as f64 / self.k() as f64
    }

    /// Decode-matrix cache counters of this code instance (hits, misses,
    /// inversions performed). Codes without a cache report all zeros.
    fn cache_stats(&self) -> CodeCacheStats {
        CodeCacheStats::default()
    }
}

/// Validates `[n, k]` code parameters shared by both implementations.
pub(crate) fn validate_params(n: usize, k: usize) -> Result<(), CodeError> {
    if k == 0 || n == 0 || k > n || n > 255 {
        return Err(CodeError::InvalidParameters { n, k });
    }
    Ok(())
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn element_and_storage_fractions() {
        let code = VandermondeCode::new(10, 5).unwrap();
        assert!((code.element_fraction() - 0.2).abs() < 1e-12);
        assert!((code.total_storage_fraction() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        assert!(validate_params(0, 0).is_err());
        assert!(validate_params(5, 0).is_err());
        assert!(validate_params(4, 5).is_err());
        assert!(validate_params(256, 100).is_err());
        assert!(validate_params(255, 255).is_ok());
        assert!(validate_params(5, 5).is_ok());
    }

    #[test]
    fn encode_one_matches_full_encode() {
        let code = VandermondeCode::new(7, 4).unwrap();
        let value = b"projection check".to_vec();
        let all = code.encode(&value).unwrap();
        for (i, expected) in all.iter().enumerate() {
            let one = code.encode_one(&value, i).unwrap();
            assert_eq!(&one, expected);
        }
        assert!(code.encode_one(&value, 7).is_err());
    }
}
