//! Berlekamp–Welch error-and-erasure decoding (`Φ⁻¹_err`).
//!
//! SODAerr must reconstruct a value from `k + 2e` coded elements when up to
//! `e` of them are *silently corrupted* — the indices are right but the bytes
//! are wrong, and the decoder does not know which ones. Missing elements
//! (crashed servers) are simply absent, i.e. they never enter the decoder, so
//! erasures are handled implicitly by decoding from whatever subset arrived.
//!
//! The code here is the same systematic `[n, k]` MDS code as
//! [`VandermondeCode`]: every codeword is the evaluation of a degree-`< k`
//! polynomial `p` at the points `x_i = i` (as GF(2^8) elements), and the data
//! symbols are the first `k` evaluations. The Berlekamp–Welch algorithm
//! recovers `p` from `m ≥ k + 2e` evaluations with at most `e` wrong values by
//! solving a single linear system for an error-locator polynomial `E` (monic,
//! degree `e`) and a product polynomial `Q = p·E` (degree `< k + e`) such that
//! `Q(x_i) = y_i · E(x_i)` at every received point; then `p = Q / E`.
//!
//! Because corruption happens at *element* granularity (a corrupt element is
//! wrong in the same position of every byte column), the decoder runs
//! Berlekamp–Welch on the first byte column only, derives the set of corrupt
//! element indices, drops them, and bulk erasure-decodes the rest — with a
//! verification pass and a per-column fallback for the (adversarial) case
//! where a corrupt element happens to agree with the true codeword in the
//! probed column.

use crate::{reassemble, CodeError, CodedElement, MdsCode, VandermondeCode};
use soda_gf::{Gf256, Poly};

/// Systematic `[n, k]` MDS code with a Berlekamp–Welch error-and-erasure
/// decoder. This is the code used by SODAerr (`k = n − f − 2e`).
#[derive(Clone, Debug)]
pub struct BerlekampWelchCode {
    inner: VandermondeCode,
}

impl BerlekampWelchCode {
    /// Creates an `[n, k]` code with error correction support.
    pub fn new(n: usize, k: usize) -> Result<Self, CodeError> {
        Ok(BerlekampWelchCode {
            inner: VandermondeCode::new(n, k)?,
        })
    }

    /// Convenience constructor matching SODAerr's choice `k = n − f − 2e`.
    pub fn for_fault_tolerance(n: usize, f: usize, e: usize) -> Result<Self, CodeError> {
        if f + 2 * e >= n {
            return Err(CodeError::InvalidParameters { n, k: 0 });
        }
        BerlekampWelchCode::new(n, n - f - 2 * e)
    }

    /// Evaluation point associated with code position `i`.
    fn point(i: usize) -> Gf256 {
        Gf256::new(i as u8)
    }

    /// Recovers the message polynomial of one byte column via
    /// Berlekamp–Welch. `points` are `(x_i, y_i)` pairs; at most `max_errors`
    /// of the `y_i` may be wrong. Returns the polynomial `p` (degree `< k`)
    /// or `None` when no consistent decoding exists.
    fn solve_column(points: &[(Gf256, Gf256)], k: usize, max_errors: usize) -> Option<Poly> {
        let e = max_errors;
        let m = points.len();
        debug_assert!(m >= k + 2 * e);
        if e == 0 {
            // Plain interpolation through the first k points would ignore the
            // rest; instead solve the overdetermined system to catch
            // inconsistencies — equivalent to BW with an empty locator.
            return Self::interpolate_checked(points, k);
        }
        // Unknowns: q_0..q_{k+e-1} (Q coefficients) then e_0..e_{e-1}
        // (non-leading E coefficients, E is monic of degree e).
        let unknowns = k + 2 * e;
        let mut rows: Vec<Vec<Gf256>> = Vec::with_capacity(m);
        let mut rhs: Vec<Gf256> = Vec::with_capacity(m);
        for &(x, y) in points {
            let mut row = vec![Gf256::ZERO; unknowns];
            let mut xp = Gf256::ONE;
            for coeff in row.iter_mut().take(k + e) {
                *coeff = xp;
                xp *= x;
            }
            // -y * (e_0 + e_1 x + … + e_{e-1} x^{e-1}); minus is plus in GF(2^8).
            let mut xp = Gf256::ONE;
            for j in 0..e {
                row[k + e + j] = y * xp;
                xp *= x;
            }
            // Right-hand side: y * x^e (from the monic leading term of E).
            rhs.push(y * x.pow(e as u64));
            rows.push(row);
        }
        let solution = solve_linear_system(&mut rows, &mut rhs)?;
        let q = Poly::from_coeffs(solution[..k + e].to_vec());
        let mut e_coeffs = solution[k + e..].to_vec();
        e_coeffs.push(Gf256::ONE); // monic leading term
        let e_poly = Poly::from_coeffs(e_coeffs);
        let (p, rem) = q.div_rem(&e_poly);
        if !rem.is_zero() {
            return None;
        }
        if p.degree().is_some_and(|d| d >= k) {
            return None;
        }
        // Sanity: p must agree with all but at most e received points.
        let disagreements = points.iter().filter(|&&(x, y)| p.eval(x) != y).count();
        if disagreements > e {
            return None;
        }
        Some(p)
    }

    /// Interpolates a degree-`< k` polynomial through the points and checks it
    /// is consistent with *all* of them (used for the `max_errors == 0` path).
    fn interpolate_checked(points: &[(Gf256, Gf256)], k: usize) -> Option<Poly> {
        let mut rows: Vec<Vec<Gf256>> = Vec::with_capacity(points.len());
        let mut rhs: Vec<Gf256> = Vec::with_capacity(points.len());
        for &(x, y) in points {
            let mut row = vec![Gf256::ZERO; k];
            let mut xp = Gf256::ONE;
            for coeff in row.iter_mut() {
                *coeff = xp;
                xp *= x;
            }
            rows.push(row);
            rhs.push(y);
        }
        let solution = solve_linear_system(&mut rows, &mut rhs)?;
        let p = Poly::from_coeffs(solution);
        if points.iter().all(|&(x, y)| p.eval(x) == y) {
            Some(p)
        } else {
            None
        }
    }

    /// Validates elements (distinct, in-range, equal length) without requiring
    /// a particular count.
    fn validate(&self, elements: &[CodedElement]) -> Result<(), CodeError> {
        let n = self.inner.n();
        let mut seen = vec![false; n];
        let len = elements.first().map_or(0, |e| e.data.len());
        for e in elements {
            if e.index >= n {
                return Err(CodeError::InvalidIndex { index: e.index, n });
            }
            if seen[e.index] {
                return Err(CodeError::DuplicateIndex { index: e.index });
            }
            seen[e.index] = true;
            if e.data.len() != len {
                return Err(CodeError::InconsistentElementLength);
            }
        }
        Ok(())
    }

    /// Full per-column Berlekamp–Welch decode (slow path).
    fn decode_per_column(
        &self,
        elements: &[CodedElement],
        max_errors: usize,
    ) -> Result<Vec<u8>, CodeError> {
        let k = self.inner.k();
        let shard_len = elements[0].data.len();
        let mut data_shards = vec![vec![0u8; shard_len]; k];
        for col in 0..shard_len {
            let points: Vec<(Gf256, Gf256)> = elements
                .iter()
                .map(|e| (Self::point(e.index), Gf256::new(e.data[col])))
                .collect();
            let p = Self::solve_column(&points, k, max_errors).ok_or(CodeError::TooManyErrors)?;
            for (i, shard) in data_shards.iter_mut().enumerate() {
                shard[col] = p.eval(Self::point(i)).value();
            }
        }
        Ok(reassemble(&data_shards)?)
    }
}

impl MdsCode for BerlekampWelchCode {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn k(&self) -> usize {
        self.inner.k()
    }

    fn encode(&self, value: &[u8]) -> Result<Vec<CodedElement>, CodeError> {
        self.inner.encode(value)
    }

    fn encode_one(&self, value: &[u8], index: usize) -> Result<CodedElement, CodeError> {
        self.inner.encode_one(value, index)
    }

    fn decode(&self, elements: &[CodedElement]) -> Result<Vec<u8>, CodeError> {
        self.inner.decode(elements)
    }

    fn cache_stats(&self) -> crate::CodeCacheStats {
        self.inner.cache_stats()
    }

    fn decode_with_errors(
        &self,
        elements: &[CodedElement],
        max_errors: usize,
    ) -> Result<Vec<u8>, CodeError> {
        if max_errors == 0 {
            return self.inner.decode(elements);
        }
        let k = self.inner.k();
        let need = k + 2 * max_errors;
        if elements.len() < need {
            return Err(CodeError::NotEnoughElements {
                have: elements.len(),
                need,
            });
        }
        self.validate(elements)?;
        if elements[0].data.is_empty() {
            return Err(CodeError::CorruptPayload);
        }

        // Fast path: locate corrupt elements using the first byte column, drop
        // them, and bulk erasure-decode from the survivors.
        let col0: Vec<(Gf256, Gf256)> = elements
            .iter()
            .map(|e| (Self::point(e.index), Gf256::new(e.data[0])))
            .collect();
        if let Some(p0) = Self::solve_column(&col0, k, max_errors) {
            let good: Vec<CodedElement> = elements
                .iter()
                .filter(|e| p0.eval(Self::point(e.index)) == Gf256::new(e.data[0]))
                .cloned()
                .collect();
            if good.len() >= k {
                if let Ok(value) = self.inner.decode(&good) {
                    // Verify the decoded value explains every element we kept;
                    // if a corrupt element slipped into `good` (it matched the
                    // true codeword in column 0 only), fall back to the exact
                    // per-column decoder.
                    if let Ok(reencoded) = self.inner.encode(&value) {
                        let consistent = good.iter().all(|e| reencoded[e.index].data == e.data);
                        if consistent {
                            return Ok(value);
                        }
                    }
                }
            }
        }
        // Slow path: exact Berlekamp–Welch on every byte column.
        self.decode_per_column(elements, max_errors)
    }
}

/// Solves `A·x = b` over GF(2^8) by Gaussian elimination, returning one
/// solution (free variables set to zero) or `None` if the system is
/// inconsistent. `rows` and `rhs` are consumed as scratch space.
fn solve_linear_system(rows: &mut [Vec<Gf256>], rhs: &mut [Gf256]) -> Option<Vec<Gf256>> {
    let m = rows.len();
    if m == 0 {
        return Some(Vec::new());
    }
    let n = rows[0].len();
    let mut pivot_of_col: Vec<Option<usize>> = vec![None; n];
    let mut rank = 0;
    for col in 0..n {
        // Find a pivot row at or below `rank`.
        let pivot = (rank..m).find(|&r| !rows[r][col].is_zero());
        let Some(pivot) = pivot else { continue };
        rows.swap(rank, pivot);
        rhs.swap(rank, pivot);
        let inv = rows[rank][col].inverse();
        for val in rows[rank].iter_mut() {
            *val *= inv;
        }
        rhs[rank] *= inv;
        for r in 0..m {
            if r == rank {
                continue;
            }
            let factor = rows[r][col];
            if factor.is_zero() {
                continue;
            }
            let (pivot_row, pivot_rhs) = (rows[rank].clone(), rhs[rank]);
            for (dst, &src) in rows[r].iter_mut().zip(pivot_row.iter()) {
                *dst -= factor * src;
            }
            rhs[r] -= factor * pivot_rhs;
        }
        pivot_of_col[col] = Some(rank);
        rank += 1;
        if rank == m {
            break;
        }
    }
    // Inconsistency check: a zero row with non-zero rhs.
    for r in rank..m {
        if rows[r].iter().all(|v| v.is_zero()) && !rhs[r].is_zero() {
            return None;
        }
    }
    // Rows below `rank` that are non-zero were never used as pivots; they must
    // also be consistent. Because we eliminated every column with a pivot,
    // any remaining non-zero row would have its leading entry in a pivot-free
    // column; setting free variables to zero could violate it, so check.
    let mut solution = vec![Gf256::ZERO; n];
    for (col, pivot) in pivot_of_col.iter().enumerate() {
        if let Some(r) = *pivot {
            solution[col] = rhs[r];
        }
    }
    // Final verification against all original (now reduced) rows: cheap and
    // guards the free-variable choice.
    for (r, row) in rows.iter().enumerate() {
        let lhs: Gf256 = row.iter().zip(solution.iter()).map(|(&a, &x)| a * x).sum();
        if lhs != rhs[r] {
            return None;
        }
    }
    Some(solution)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_value(len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| (i.wrapping_mul(131) % 256) as u8)
            .collect()
    }

    fn corrupt(element: &mut CodedElement, seed: u8) {
        for (i, b) in element.data.make_mut().iter_mut().enumerate() {
            *b ^= seed.wrapping_add(i as u8) | 1;
        }
    }

    #[test]
    fn decode_without_errors_matches_erasure_decode() {
        let code = BerlekampWelchCode::new(7, 3).unwrap();
        let value = sample_value(64);
        let elements = code.encode(&value).unwrap();
        assert_eq!(code.decode(&elements[2..5]).unwrap(), value);
        assert_eq!(code.decode_with_errors(&elements[2..5], 0).unwrap(), value);
    }

    #[test]
    fn corrects_single_corrupt_element() {
        // n = 7, k = 3, f = 2, e = 1  (n = k + f + 2e)
        let code = BerlekampWelchCode::for_fault_tolerance(7, 2, 1).unwrap();
        assert_eq!(code.k(), 3);
        let value = sample_value(100);
        let mut elements = code.encode(&value).unwrap();
        // Two servers "crash": drop elements 0 and 3. Corrupt element 5.
        elements.remove(3);
        elements.remove(0);
        let corrupt_pos = elements.iter().position(|e| e.index == 5).unwrap();
        corrupt(&mut elements[corrupt_pos], 0xA5);
        let decoded = code.decode_with_errors(&elements, 1).unwrap();
        assert_eq!(decoded, value);
    }

    #[test]
    fn corrects_two_corrupt_elements() {
        // n = 9, k = 3, e = 2 (f = 2).
        let code = BerlekampWelchCode::for_fault_tolerance(9, 2, 2).unwrap();
        let value = sample_value(257);
        let mut elements = code.encode(&value).unwrap();
        elements.remove(8);
        elements.remove(1); // two crashes
        corrupt(&mut elements[0], 0x3C);
        corrupt(&mut elements[4], 0x77);
        assert_eq!(code.decode_with_errors(&elements, 2).unwrap(), value);
    }

    #[test]
    fn corrupt_element_matching_first_column_still_decodes() {
        // Adversarial case for the fast path: the corrupted element keeps the
        // first byte (column 0) identical to the true value and differs later,
        // forcing the verification + per-column fallback.
        let code = BerlekampWelchCode::new(6, 2).unwrap(); // 2e <= 4
        let value = sample_value(40);
        let mut elements = code.encode(&value).unwrap();
        let original_first = elements[3].data[0];
        corrupt(&mut elements[3], 0x55);
        elements[3].data.make_mut()[0] = original_first;
        let decoded = code.decode_with_errors(&elements, 2).unwrap();
        assert_eq!(decoded, value);
    }

    #[test]
    fn zero_magnitude_columns_do_not_confuse_decoder() {
        // Corrupt only a single byte in the middle of one element.
        let code = BerlekampWelchCode::new(5, 3).unwrap();
        let value = sample_value(30);
        let mut elements = code.encode(&value).unwrap();
        let mid = elements[2].data.len() / 2;
        elements[2].data.make_mut()[mid] ^= 0xFF;
        assert_eq!(code.decode_with_errors(&elements, 1).unwrap(), value);
    }

    #[test]
    fn too_few_elements_for_error_correction() {
        let code = BerlekampWelchCode::new(6, 3).unwrap();
        let value = sample_value(10);
        let elements = code.encode(&value).unwrap();
        let err = code.decode_with_errors(&elements[..4], 1);
        assert_eq!(err, Err(CodeError::NotEnoughElements { have: 4, need: 5 }));
    }

    #[test]
    fn more_errors_than_budget_is_detected_or_fails() {
        // With e = 1 budget but 2 corrupted elements out of 5 (k = 3), decoding
        // must not silently return the wrong value when detection is possible.
        let code = BerlekampWelchCode::new(5, 3).unwrap();
        let value = sample_value(50);
        let mut elements = code.encode(&value).unwrap();
        corrupt(&mut elements[0], 0x13);
        corrupt(&mut elements[4], 0x87);
        match code.decode_with_errors(&elements, 1) {
            Err(_) => {} // detected — fine
            Ok(v) => assert_ne!(v, value, "cannot be the true value by construction"),
        }
    }

    #[test]
    fn all_elements_intact_with_error_budget() {
        let code = BerlekampWelchCode::new(8, 4).unwrap();
        let value = sample_value(80);
        let elements = code.encode(&value).unwrap();
        assert_eq!(code.decode_with_errors(&elements, 2).unwrap(), value);
    }

    #[test]
    fn duplicate_and_out_of_range_indices_rejected() {
        let code = BerlekampWelchCode::new(6, 2).unwrap();
        let value = sample_value(12);
        let elements = code.encode(&value).unwrap();
        let mut dup = elements.clone();
        dup[1] = dup[0].clone();
        assert!(matches!(
            code.decode_with_errors(&dup, 1),
            Err(CodeError::DuplicateIndex { .. })
        ));
        let mut oob = elements;
        oob[0].index = 42;
        assert!(matches!(
            code.decode_with_errors(&oob, 1),
            Err(CodeError::InvalidIndex { index: 42, .. })
        ));
    }

    #[test]
    fn sodaerr_parameterization() {
        // n - k = f + 2e exactly as Section VI prescribes.
        for (n, f, e) in [(5, 1, 1), (7, 1, 2), (9, 3, 2), (11, 5, 1)] {
            let code = BerlekampWelchCode::for_fault_tolerance(n, f, e).unwrap();
            assert_eq!(code.k(), n - f - 2 * e, "n={n} f={f} e={e}");
        }
        assert!(BerlekampWelchCode::for_fault_tolerance(5, 3, 1).is_err());
    }

    #[test]
    fn empty_value_with_errors() {
        let code = BerlekampWelchCode::new(6, 2).unwrap();
        let mut elements = code.encode(&[]).unwrap();
        corrupt(&mut elements[1], 0x2F);
        assert_eq!(
            code.decode_with_errors(&elements, 2).unwrap(),
            Vec::<u8>::new()
        );
    }

    #[test]
    fn linear_solver_handles_inconsistent_system() {
        // x = 1 and x = 2 simultaneously.
        let mut rows = vec![vec![Gf256::ONE], vec![Gf256::ONE]];
        let mut rhs = vec![Gf256::new(1), Gf256::new(2)];
        assert!(solve_linear_system(&mut rows, &mut rhs).is_none());
    }

    #[test]
    fn linear_solver_solves_underdetermined_system() {
        // x + y = 5 with one equation, two unknowns: free variable set to 0.
        let mut rows = vec![vec![Gf256::ONE, Gf256::ONE]];
        let mut rhs = vec![Gf256::new(5)];
        let sol = solve_linear_system(&mut rows, &mut rhs).unwrap();
        assert_eq!(sol[0] + sol[1], Gf256::new(5));
    }

    #[test]
    fn linear_solver_exact_square_system() {
        // Build a random invertible system and verify the solution.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let n = 5;
            let a: Vec<Vec<Gf256>> = (0..n)
                .map(|_| (0..n).map(|_| Gf256::new(rng.gen())).collect())
                .collect();
            let x: Vec<Gf256> = (0..n).map(|_| Gf256::new(rng.gen())).collect();
            let b: Vec<Gf256> = a
                .iter()
                .map(|row| row.iter().zip(&x).map(|(&r, &xx)| r * xx).sum())
                .collect();
            let mut rows = a.clone();
            let mut rhs = b.clone();
            if let Some(sol) = solve_linear_system(&mut rows, &mut rhs) {
                // Solution must satisfy the original system (may differ from x
                // only if `a` is singular).
                for (row, &bb) in a.iter().zip(b.iter()) {
                    let lhs: Gf256 = row.iter().zip(&sol).map(|(&r, &s)| r * s).sum();
                    assert_eq!(lhs, bb);
                }
            }
        }
    }

    #[test]
    fn data_shard_split_consistency_with_inner_code() {
        // The first k coded elements must equal the striped data shards; the BW
        // decoder reconstructs exactly those symbols.
        let code = BerlekampWelchCode::new(9, 4).unwrap();
        let value = sample_value(77);
        let elements = code.encode(&value).unwrap();
        let shards = crate::pad_and_split(&value, 4);
        for i in 0..4 {
            assert_eq!(elements[i].data, shards[i]);
        }
    }
}
