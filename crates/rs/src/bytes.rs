//! A cheaply-clonable immutable byte buffer.
//!
//! Coded-element payloads flow through the simulated network (which clones
//! every message on duplication and relay), through per-server storage, and
//! through reader-side collection maps. With `Vec<u8>` payloads each of those
//! steps memcpy'd the element bytes; [`Bytes`] wraps them in an `Arc<[u8]>`
//! so a clone is one atomic increment and the bytes are shared — a single
//! allocation with no extra indirection (unlike `Arc<Vec<u8>>`, the length
//! lives in the fat pointer, not behind a second pointer chase).
//!
//! Cost accounting is unaffected: every message still reports the full byte
//! length of the payload it carries, matching the paper's model where sending
//! a value costs its size regardless of sharing tricks inside the simulator.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply-clonable byte buffer (`Arc<[u8]>` with ergonomics).
#[derive(Clone, PartialOrd, Ord)]
pub struct Bytes(Arc<[u8]>);

// Manual impl alongside the manual `PartialEq`: both look only at the byte
// contents, so equal buffers hash equally whether or not they share an
// allocation.
impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl Bytes {
    /// An empty buffer (no allocation is shared, but creation is cheap).
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// The bytes as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Copies the bytes into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }

    /// Mutable access via copy-on-write: if this buffer is shared, the bytes
    /// are copied into a fresh unique allocation first. Used by fault
    /// injection (disk corruption, byzantine senders) and tests; the protocol
    /// hot paths never mutate payloads.
    pub fn make_mut(&mut self) -> &mut [u8] {
        if Arc::get_mut(&mut self.0).is_none() {
            self.0 = Arc::from(&self.0[..]);
        }
        Arc::get_mut(&mut self.0).expect("unique after copy-on-write")
    }

    /// True if two buffers share the same allocation (zero-copy check).
    pub fn ptr_eq(a: &Bytes, b: &Bytes) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for Bytes {
    #[inline]
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(Arc::from(v))
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Self {
        Bytes(Arc::from(&v[..]))
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes(Arc::from(&v[..]))
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes(iter.into_iter().collect())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.0[..] == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == &other.0[..]
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.0[..] == other[..]
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.0.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_the_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert!(Bytes::ptr_eq(&a, &b));
        assert_eq!(a, b);
    }

    #[test]
    fn make_mut_copies_only_when_shared() {
        let mut a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        a.make_mut()[0] = 9;
        assert_eq!(a, vec![9u8, 2, 3]);
        assert_eq!(b, vec![1u8, 2, 3], "shared copy untouched");
        assert!(!Bytes::ptr_eq(&a, &b));
        // Unique buffer: mutation happens in place, no new allocation.
        let before = a.as_slice().as_ptr();
        a.make_mut()[1] = 8;
        assert_eq!(a.as_slice().as_ptr(), before);
        assert_eq!(a, vec![9u8, 8, 3]);
    }

    #[test]
    fn equality_and_conversions() {
        let a = Bytes::from(vec![5u8, 6]);
        assert_eq!(a, [5u8, 6]);
        assert_eq!(a, vec![5u8, 6]);
        assert_eq!(a[..], [5u8, 6][..]);
        assert_eq!(a.to_vec(), vec![5, 6]);
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
        assert!(Bytes::default().is_empty());
        let c: Bytes = (0u8..4).collect();
        assert_eq!(c, vec![0u8, 1, 2, 3]);
        assert_eq!(Bytes::from(&[7u8, 8][..]), Bytes::from([7u8, 8]));
        assert!(format!("{a:?}").contains("2 bytes"));
    }
}
