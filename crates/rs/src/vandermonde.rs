//! Systematic generator-matrix Reed–Solomon code.
//!
//! The encoding matrix is built from an `n × k` Vandermonde matrix `V` by
//! right-multiplying with the inverse of its top `k × k` block, yielding a
//! systematic matrix whose first `k` rows are the identity: coded elements
//! `0..k` are the data shards verbatim and elements `k..n` are parity. Any
//! `k` rows of the resulting matrix remain linearly independent (the MDS
//! property is preserved by column operations), so the value can be decoded
//! from any `k` coded elements by inverting the corresponding row submatrix.

use crate::{pad_and_split, reassemble, validate_params, CodeError, CodedElement, MdsCode};
use soda_gf::Matrix;

/// Systematic Vandermonde-derived `[n, k]` MDS code (erasure decoding only).
#[derive(Clone)]
pub struct VandermondeCode {
    n: usize,
    k: usize,
    /// The full `n × k` systematic encoding matrix.
    encoding: Matrix,
}

impl std::fmt::Debug for VandermondeCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VandermondeCode[n={}, k={}]", self.n, self.k)
    }
}

impl VandermondeCode {
    /// Creates an `[n, k]` systematic code. Fails if the parameters are not
    /// representable in GF(2^8) (`k = 0`, `k > n`, or `n > 255`).
    pub fn new(n: usize, k: usize) -> Result<Self, CodeError> {
        validate_params(n, k)?;
        let vandermonde = Matrix::vandermonde(n, k);
        let top: Vec<usize> = (0..k).collect();
        let top_inv = vandermonde
            .select_rows(&top)
            .inverse()
            .expect("top block of a Vandermonde matrix is invertible");
        let encoding = vandermonde
            .mul(&top_inv)
            .expect("dimensions agree by construction");
        Ok(VandermondeCode { n, k, encoding })
    }

    /// Convenience constructor matching SODA's choice `k = n - f`.
    pub fn for_fault_tolerance(n: usize, f: usize) -> Result<Self, CodeError> {
        if f >= n {
            return Err(CodeError::InvalidParameters { n, k: 0 });
        }
        VandermondeCode::new(n, n - f)
    }

    /// The systematic encoding matrix (first `k` rows are the identity).
    pub fn encoding_matrix(&self) -> &Matrix {
        &self.encoding
    }

    /// Validates a set of coded elements: distinct in-range indices, equal
    /// lengths, at least `need` of them. Returns the (index, data) selection
    /// truncated to exactly `need` elements.
    fn validate_elements<'a>(
        &self,
        elements: &'a [CodedElement],
        need: usize,
    ) -> Result<Vec<&'a CodedElement>, CodeError> {
        if elements.len() < need {
            return Err(CodeError::NotEnoughElements {
                have: elements.len(),
                need,
            });
        }
        let mut seen = vec![false; self.n];
        let len = elements[0].data.len();
        for e in elements {
            if e.index >= self.n {
                return Err(CodeError::InvalidIndex {
                    index: e.index,
                    n: self.n,
                });
            }
            if seen[e.index] {
                return Err(CodeError::DuplicateIndex { index: e.index });
            }
            seen[e.index] = true;
            if e.data.len() != len {
                return Err(CodeError::InconsistentElementLength);
            }
        }
        Ok(elements.iter().take(need).collect())
    }
}

impl MdsCode for VandermondeCode {
    fn n(&self) -> usize {
        self.n
    }

    fn k(&self) -> usize {
        self.k
    }

    fn encode(&self, value: &[u8]) -> Result<Vec<CodedElement>, CodeError> {
        let data_shards = pad_and_split(value, self.k);
        let refs: Vec<&[u8]> = data_shards.iter().map(|s| s.as_slice()).collect();
        let coded = self
            .encoding
            .apply_to_shards(&refs)
            .expect("shard count equals k by construction");
        Ok(coded
            .into_iter()
            .enumerate()
            .map(|(i, data)| CodedElement::new(i, data))
            .collect())
    }

    fn decode(&self, elements: &[CodedElement]) -> Result<Vec<u8>, CodeError> {
        let chosen = self.validate_elements(elements, self.k)?;
        let indices: Vec<usize> = chosen.iter().map(|e| e.index).collect();
        let sub = self.encoding.select_rows(&indices);
        let inv = sub.inverse().map_err(|_| CodeError::TooManyErrors)?;
        let shard_refs: Vec<&[u8]> = chosen.iter().map(|e| e.data.as_slice()).collect();
        let data_shards = inv
            .apply_to_shards(&shard_refs)
            .expect("dimensions agree by construction");
        reassemble(&data_shards).ok_or(CodeError::CorruptPayload)
    }

    fn decode_with_errors(
        &self,
        elements: &[CodedElement],
        max_errors: usize,
    ) -> Result<Vec<u8>, CodeError> {
        if max_errors == 0 {
            return self.decode(elements);
        }
        Err(CodeError::ErrorsNotSupported)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_value(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i.wrapping_mul(37) % 256) as u8).collect()
    }

    #[test]
    fn systematic_property_first_k_elements_are_data() {
        let code = VandermondeCode::new(6, 4).unwrap();
        let value = sample_value(50);
        let elements = code.encode(&value).unwrap();
        let data_shards = pad_and_split(&value, 4);
        for i in 0..4 {
            assert_eq!(
                elements[i].data, data_shards[i],
                "element {i} not systematic"
            );
        }
    }

    #[test]
    fn decode_from_any_k_subset() {
        let code = VandermondeCode::new(7, 3).unwrap();
        let value = sample_value(100);
        let elements = code.encode(&value).unwrap();
        // Try every 3-subset of the 7 elements.
        for a in 0..7 {
            for b in (a + 1)..7 {
                for c in (b + 1)..7 {
                    let subset = vec![
                        elements[a].clone(),
                        elements[b].clone(),
                        elements[c].clone(),
                    ];
                    assert_eq!(code.decode(&subset).unwrap(), value, "subset {a},{b},{c}");
                }
            }
        }
    }

    #[test]
    fn decode_uses_first_k_of_more_than_k_elements() {
        let code = VandermondeCode::new(5, 2).unwrap();
        let value = sample_value(33);
        let elements = code.encode(&value).unwrap();
        assert_eq!(code.decode(&elements).unwrap(), value);
    }

    #[test]
    fn decode_with_insufficient_elements_fails() {
        let code = VandermondeCode::new(5, 3).unwrap();
        let value = sample_value(10);
        let elements = code.encode(&value).unwrap();
        let result = code.decode(&elements[..2]);
        assert_eq!(
            result,
            Err(CodeError::NotEnoughElements { have: 2, need: 3 })
        );
    }

    #[test]
    fn decode_rejects_duplicate_indices() {
        let code = VandermondeCode::new(5, 3).unwrap();
        let value = sample_value(10);
        let elements = code.encode(&value).unwrap();
        let bad = vec![
            elements[0].clone(),
            elements[0].clone(),
            elements[1].clone(),
        ];
        assert_eq!(
            code.decode(&bad),
            Err(CodeError::DuplicateIndex { index: 0 })
        );
    }

    #[test]
    fn decode_rejects_out_of_range_index() {
        let code = VandermondeCode::new(4, 2).unwrap();
        let bad = vec![
            CodedElement::new(9, vec![0; 4]),
            CodedElement::new(1, vec![0; 4]),
        ];
        assert!(matches!(
            code.decode(&bad),
            Err(CodeError::InvalidIndex { index: 9, .. })
        ));
    }

    #[test]
    fn decode_rejects_inconsistent_lengths() {
        let code = VandermondeCode::new(4, 2).unwrap();
        let value = sample_value(20);
        let mut elements = code.encode(&value).unwrap();
        elements[1].data.pop();
        assert_eq!(
            code.decode(&elements[..2]),
            Err(CodeError::InconsistentElementLength)
        );
    }

    #[test]
    fn errors_not_supported() {
        let code = VandermondeCode::new(5, 3).unwrap();
        let value = sample_value(10);
        let elements = code.encode(&value).unwrap();
        assert_eq!(
            code.decode_with_errors(&elements, 1),
            Err(CodeError::ErrorsNotSupported)
        );
        // max_errors = 0 falls back to plain decode
        assert_eq!(code.decode_with_errors(&elements, 0).unwrap(), value);
    }

    #[test]
    fn replication_degenerate_case_k_equals_one() {
        let code = VandermondeCode::new(3, 1).unwrap();
        let value = sample_value(40);
        let elements = code.encode(&value).unwrap();
        for e in &elements {
            assert_eq!(code.decode(std::slice::from_ref(e)).unwrap(), value);
        }
    }

    #[test]
    fn trivial_case_k_equals_n() {
        let code = VandermondeCode::new(4, 4).unwrap();
        let value = sample_value(25);
        let elements = code.encode(&value).unwrap();
        assert_eq!(code.decode(&elements).unwrap(), value);
    }

    #[test]
    fn for_fault_tolerance_sets_k() {
        let code = VandermondeCode::for_fault_tolerance(9, 4).unwrap();
        assert_eq!(code.n(), 9);
        assert_eq!(code.k(), 5);
        assert!(VandermondeCode::for_fault_tolerance(5, 5).is_err());
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(VandermondeCode::new(3, 5).is_err());
        assert!(VandermondeCode::new(0, 0).is_err());
        assert!(VandermondeCode::new(300, 10).is_err());
    }

    #[test]
    fn large_value_round_trip() {
        let code = VandermondeCode::new(12, 8).unwrap();
        let value = sample_value(64 * 1024);
        let elements = code.encode(&value).unwrap();
        let subset: Vec<CodedElement> = elements.into_iter().skip(4).collect();
        assert_eq!(code.decode(&subset).unwrap(), value);
    }

    #[test]
    fn empty_value_round_trip() {
        let code = VandermondeCode::new(5, 3).unwrap();
        let elements = code.encode(&[]).unwrap();
        let subset = vec![
            elements[4].clone(),
            elements[2].clone(),
            elements[0].clone(),
        ];
        assert_eq!(code.decode(&subset).unwrap(), Vec::<u8>::new());
    }
}
