//! Systematic generator-matrix Reed–Solomon code.
//!
//! The encoding matrix is built from an `n × k` Vandermonde matrix `V` by
//! right-multiplying with the inverse of its top `k × k` block, yielding a
//! systematic matrix whose first `k` rows are the identity: coded elements
//! `0..k` are the data shards verbatim and elements `k..n` are parity. Any
//! `k` rows of the resulting matrix remain linearly independent (the MDS
//! property is preserved by column operations), so the value can be decoded
//! from any `k` coded elements by inverting the corresponding row submatrix.
//!
//! Matrix construction and inversion are cached (see [`crate::cache`]): the
//! encoding matrix is shared process-wide per `(n, k)`, and decode matrices
//! are memoized per survivor index set in an LRU shared by clones of the
//! instance — one inversion per survivor set, not one per decode.

use crate::cache::{encode_matrix_for, DecodeCache};
use crate::{
    pad_and_split, reassemble, validate_params, CodeCacheStats, CodeError, CodedElement, MdsCode,
};
use soda_gf::Matrix;
use std::sync::Arc;

/// Systematic Vandermonde-derived `[n, k]` MDS code (erasure decoding only).
#[derive(Clone)]
pub struct VandermondeCode {
    n: usize,
    k: usize,
    /// The full `n × k` systematic encoding matrix (shared per `(n, k)`).
    encoding: Arc<Matrix>,
    /// Rows `k..n` of `encoding` — the parity rows. Encoding only multiplies
    /// these: the systematic rows are the identity, so the data shards are
    /// the first `k` coded elements verbatim.
    parity: Matrix,
    /// Survivor-set → inverted-matrix LRU, shared by clones of this instance.
    decode_cache: Arc<DecodeCache>,
}

impl std::fmt::Debug for VandermondeCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VandermondeCode[n={}, k={}]", self.n, self.k)
    }
}

impl VandermondeCode {
    /// Creates an `[n, k]` systematic code. Fails if the parameters are not
    /// representable in GF(2^8) (`k = 0`, `k > n`, or `n > 255`).
    pub fn new(n: usize, k: usize) -> Result<Self, CodeError> {
        validate_params(n, k)?;
        let encoding = encode_matrix_for(n, k, || {
            let vandermonde = Matrix::vandermonde(n, k);
            let top: Vec<usize> = (0..k).collect();
            let top_inv = vandermonde
                .select_rows(&top)
                .inverse()
                .expect("top block of a Vandermonde matrix is invertible");
            vandermonde
                .mul(&top_inv)
                .expect("dimensions agree by construction")
        });
        let parity_rows: Vec<usize> = (k..n).collect();
        let parity = encoding.select_rows(&parity_rows);
        Ok(VandermondeCode {
            n,
            k,
            encoding,
            parity,
            decode_cache: Arc::new(DecodeCache::default()),
        })
    }

    /// Convenience constructor matching SODA's choice `k = n - f`.
    pub fn for_fault_tolerance(n: usize, f: usize) -> Result<Self, CodeError> {
        if f >= n {
            return Err(CodeError::InvalidParameters { n, k: 0 });
        }
        VandermondeCode::new(n, n - f)
    }

    /// The systematic encoding matrix (first `k` rows are the identity).
    pub fn encoding_matrix(&self) -> &Matrix {
        &self.encoding
    }

    /// Validates a set of coded elements: distinct in-range indices, equal
    /// lengths, at least `need` of them. Returns the selection truncated to
    /// exactly `need` elements, **sorted by index** — decode output is
    /// independent of row order, and the sorted index set is the canonical
    /// decode-cache key.
    fn validate_elements<'a>(
        &self,
        elements: &'a [CodedElement],
        need: usize,
    ) -> Result<Vec<&'a CodedElement>, CodeError> {
        if elements.len() < need {
            return Err(CodeError::NotEnoughElements {
                have: elements.len(),
                need,
            });
        }
        let mut seen = vec![false; self.n];
        let len = elements[0].data.len();
        for e in elements {
            if e.index >= self.n {
                return Err(CodeError::InvalidIndex {
                    index: e.index,
                    n: self.n,
                });
            }
            if seen[e.index] {
                return Err(CodeError::DuplicateIndex { index: e.index });
            }
            seen[e.index] = true;
            if e.data.len() != len {
                return Err(CodeError::InconsistentElementLength);
            }
        }
        let mut chosen: Vec<&CodedElement> = elements.iter().take(need).collect();
        chosen.sort_unstable_by_key(|e| e.index);
        Ok(chosen)
    }
}

impl MdsCode for VandermondeCode {
    fn n(&self) -> usize {
        self.n
    }

    fn k(&self) -> usize {
        self.k
    }

    fn encode(&self, value: &[u8]) -> Result<Vec<CodedElement>, CodeError> {
        // Systematic fast path: rows `0..k` of the encoding matrix are the
        // identity, so the data shards *are* the first `k` coded elements —
        // only the `n - k` parity rows need GF multiplies.
        let data_shards = pad_and_split(value, self.k);
        let refs: Vec<&[u8]> = data_shards.iter().map(|s| s.as_slice()).collect();
        let parity = self
            .parity
            .apply_to_shards(&refs)
            .expect("shard count equals k by construction");
        let mut out = Vec::with_capacity(self.n);
        out.extend(
            data_shards
                .into_iter()
                .enumerate()
                .map(|(i, data)| CodedElement::new(i, data)),
        );
        out.extend(
            parity
                .into_iter()
                .enumerate()
                .map(|(j, data)| CodedElement::new(self.k + j, data)),
        );
        Ok(out)
    }

    fn encode_one(&self, value: &[u8], index: usize) -> Result<CodedElement, CodeError> {
        if index >= self.n {
            return Err(CodeError::InvalidIndex { index, n: self.n });
        }
        let mut data_shards = pad_and_split(value, self.k);
        if index < self.k {
            // Systematic row: the coded element is the data shard itself.
            return Ok(CodedElement::new(index, data_shards.swap_remove(index)));
        }
        let refs: Vec<&[u8]> = data_shards.iter().map(|s| s.as_slice()).collect();
        let data = self
            .parity
            .apply_row_to_shards(index - self.k, &refs)
            .expect("shard count equals k by construction");
        Ok(CodedElement::new(index, data))
    }

    fn decode(&self, elements: &[CodedElement]) -> Result<Vec<u8>, CodeError> {
        let chosen = self.validate_elements(elements, self.k)?;
        let indices: Vec<usize> = chosen.iter().map(|e| e.index).collect();
        let inv = self.decode_cache.get_or_invert(&indices, || {
            self.encoding
                .select_rows(&indices)
                .inverse()
                .map_err(|_| CodeError::TooManyErrors)
        })?;
        let shard_refs: Vec<&[u8]> = chosen.iter().map(|e| &e.data[..]).collect();
        let data_shards = inv
            .apply_to_shards(&shard_refs)
            .expect("dimensions agree by construction");
        Ok(reassemble(&data_shards)?)
    }

    fn decode_with_errors(
        &self,
        elements: &[CodedElement],
        max_errors: usize,
    ) -> Result<Vec<u8>, CodeError> {
        if max_errors == 0 {
            return self.decode(elements);
        }
        Err(CodeError::ErrorsNotSupported)
    }

    fn cache_stats(&self) -> CodeCacheStats {
        self.decode_cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_value(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i.wrapping_mul(37) % 256) as u8).collect()
    }

    #[test]
    fn systematic_property_first_k_elements_are_data() {
        let code = VandermondeCode::new(6, 4).unwrap();
        let value = sample_value(50);
        let elements = code.encode(&value).unwrap();
        let data_shards = pad_and_split(&value, 4);
        for i in 0..4 {
            assert_eq!(
                elements[i].data, data_shards[i],
                "element {i} not systematic"
            );
        }
    }

    #[test]
    fn decode_from_any_k_subset() {
        let code = VandermondeCode::new(7, 3).unwrap();
        let value = sample_value(100);
        let elements = code.encode(&value).unwrap();
        // Try every 3-subset of the 7 elements.
        for a in 0..7 {
            for b in (a + 1)..7 {
                for c in (b + 1)..7 {
                    let subset = vec![
                        elements[a].clone(),
                        elements[b].clone(),
                        elements[c].clone(),
                    ];
                    assert_eq!(code.decode(&subset).unwrap(), value, "subset {a},{b},{c}");
                }
            }
        }
    }

    #[test]
    fn decode_is_order_independent() {
        let code = VandermondeCode::new(6, 3).unwrap();
        let value = sample_value(64);
        let elements = code.encode(&value).unwrap();
        let orders: [[usize; 3]; 4] = [[5, 1, 3], [3, 5, 1], [1, 3, 5], [5, 3, 1]];
        for order in orders {
            let subset: Vec<CodedElement> = order.iter().map(|&i| elements[i].clone()).collect();
            assert_eq!(code.decode(&subset).unwrap(), value, "order {order:?}");
        }
        // All four permutations share one survivor set {1, 3, 5}: exactly one
        // inversion.
        let stats = code.cache_stats();
        assert_eq!(stats.inversions, 1);
        assert_eq!(stats.hits, 3);
    }

    #[test]
    fn repeated_decodes_invert_once_per_survivor_set() {
        let code = VandermondeCode::new(5, 3).unwrap();
        let value = sample_value(80);
        let elements = code.encode(&value).unwrap();
        let set_a = vec![
            elements[0].clone(),
            elements[1].clone(),
            elements[4].clone(),
        ];
        let set_b = vec![
            elements[2].clone(),
            elements[3].clone(),
            elements[4].clone(),
        ];
        for _ in 0..10 {
            assert_eq!(code.decode(&set_a).unwrap(), value);
        }
        for _ in 0..5 {
            assert_eq!(code.decode(&set_b).unwrap(), value);
        }
        let stats = code.cache_stats();
        assert_eq!(stats.inversions, 2, "one inversion per survivor set");
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 13);
        assert!(stats.hit_rate() > 0.85);
    }

    #[test]
    fn clones_share_the_decode_cache() {
        let code = VandermondeCode::new(5, 2).unwrap();
        let value = sample_value(16);
        let elements = code.encode(&value).unwrap();
        let subset = vec![elements[0].clone(), elements[3].clone()];
        code.decode(&subset).unwrap();
        let clone = code.clone();
        clone.decode(&subset).unwrap();
        assert_eq!(clone.cache_stats().hits, 1, "clone hits the shared cache");
        assert_eq!(code.cache_stats().inversions, 1);
    }

    #[test]
    fn separate_instances_have_separate_counters() {
        let a = VandermondeCode::new(5, 3).unwrap();
        let b = VandermondeCode::new(5, 3).unwrap();
        let value = sample_value(30);
        let elements = a.encode(&value).unwrap();
        a.decode(&elements[..3]).unwrap();
        assert_eq!(a.cache_stats().misses, 1);
        assert_eq!(b.cache_stats(), CodeCacheStats::default());
    }

    #[test]
    fn decode_uses_first_k_of_more_than_k_elements() {
        let code = VandermondeCode::new(5, 2).unwrap();
        let value = sample_value(33);
        let elements = code.encode(&value).unwrap();
        assert_eq!(code.decode(&elements).unwrap(), value);
    }

    #[test]
    fn decode_with_insufficient_elements_fails() {
        let code = VandermondeCode::new(5, 3).unwrap();
        let value = sample_value(10);
        let elements = code.encode(&value).unwrap();
        let result = code.decode(&elements[..2]);
        assert_eq!(
            result,
            Err(CodeError::NotEnoughElements { have: 2, need: 3 })
        );
    }

    #[test]
    fn decode_rejects_duplicate_indices() {
        let code = VandermondeCode::new(5, 3).unwrap();
        let value = sample_value(10);
        let elements = code.encode(&value).unwrap();
        let bad = vec![
            elements[0].clone(),
            elements[0].clone(),
            elements[1].clone(),
        ];
        assert_eq!(
            code.decode(&bad),
            Err(CodeError::DuplicateIndex { index: 0 })
        );
    }

    #[test]
    fn decode_rejects_out_of_range_index() {
        let code = VandermondeCode::new(4, 2).unwrap();
        let bad = vec![
            CodedElement::new(9, vec![0; 4]),
            CodedElement::new(1, vec![0; 4]),
        ];
        assert!(matches!(
            code.decode(&bad),
            Err(CodeError::InvalidIndex { index: 9, .. })
        ));
    }

    #[test]
    fn decode_rejects_inconsistent_lengths() {
        let code = VandermondeCode::new(4, 2).unwrap();
        let value = sample_value(20);
        let mut elements = code.encode(&value).unwrap();
        let mut shorter = elements[1].data.to_vec();
        shorter.pop();
        elements[1].data = shorter.into();
        assert_eq!(
            code.decode(&elements[..2]),
            Err(CodeError::InconsistentElementLength)
        );
    }

    #[test]
    fn errors_not_supported() {
        let code = VandermondeCode::new(5, 3).unwrap();
        let value = sample_value(10);
        let elements = code.encode(&value).unwrap();
        assert_eq!(
            code.decode_with_errors(&elements, 1),
            Err(CodeError::ErrorsNotSupported)
        );
        // max_errors = 0 falls back to plain decode
        assert_eq!(code.decode_with_errors(&elements, 0).unwrap(), value);
    }

    #[test]
    fn replication_degenerate_case_k_equals_one() {
        let code = VandermondeCode::new(3, 1).unwrap();
        let value = sample_value(40);
        let elements = code.encode(&value).unwrap();
        for e in &elements {
            assert_eq!(code.decode(std::slice::from_ref(e)).unwrap(), value);
        }
    }

    #[test]
    fn trivial_case_k_equals_n() {
        let code = VandermondeCode::new(4, 4).unwrap();
        let value = sample_value(25);
        let elements = code.encode(&value).unwrap();
        assert_eq!(code.decode(&elements).unwrap(), value);
    }

    #[test]
    fn for_fault_tolerance_sets_k() {
        let code = VandermondeCode::for_fault_tolerance(9, 4).unwrap();
        assert_eq!(code.n(), 9);
        assert_eq!(code.k(), 5);
        assert!(VandermondeCode::for_fault_tolerance(5, 5).is_err());
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(VandermondeCode::new(3, 5).is_err());
        assert!(VandermondeCode::new(0, 0).is_err());
        assert!(VandermondeCode::new(300, 10).is_err());
    }

    #[test]
    fn encoding_matrix_is_shared_across_instances() {
        let a = VandermondeCode::new(11, 7).unwrap();
        let b = VandermondeCode::new(11, 7).unwrap();
        assert!(
            std::ptr::eq(a.encoding_matrix(), a.encoding_matrix()),
            "sanity"
        );
        assert!(
            Arc::ptr_eq(&a.encoding, &b.encoding),
            "same (n, k) shares one matrix"
        );
    }

    #[test]
    fn large_value_round_trip() {
        let code = VandermondeCode::new(12, 8).unwrap();
        let value = sample_value(64 * 1024);
        let elements = code.encode(&value).unwrap();
        let subset: Vec<CodedElement> = elements.into_iter().skip(4).collect();
        assert_eq!(code.decode(&subset).unwrap(), value);
    }

    #[test]
    fn empty_value_round_trip() {
        let code = VandermondeCode::new(5, 3).unwrap();
        let elements = code.encode(&[]).unwrap();
        let subset = vec![
            elements[4].clone(),
            elements[2].clone(),
            elements[0].clone(),
        ];
        assert_eq!(code.decode(&subset).unwrap(), Vec::<u8>::new());
    }
}
