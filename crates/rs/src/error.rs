//! Error type shared by the MDS code implementations.

use std::fmt;

/// Errors produced when encoding or decoding with an `[n, k]` MDS code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeError {
    /// The `[n, k]` parameters are not representable (k = 0, k > n or n > 255
    /// for a GF(2^8) code).
    InvalidParameters {
        /// Requested code length.
        n: usize,
        /// Requested code dimension.
        k: usize,
    },
    /// A coded-element index was outside `0..n`.
    InvalidIndex {
        /// The offending index.
        index: usize,
        /// The code length.
        n: usize,
    },
    /// Two coded elements carried the same index.
    DuplicateIndex {
        /// The repeated index.
        index: usize,
    },
    /// Fewer than the required number of coded elements were supplied.
    NotEnoughElements {
        /// How many were supplied.
        have: usize,
        /// How many are required.
        need: usize,
    },
    /// The coded elements do not all have the same length.
    InconsistentElementLength,
    /// The decoder cannot handle silent corruption (erasure-only code) but
    /// `max_errors > 0` was requested.
    ErrorsNotSupported,
    /// The error-correcting decoder could not produce a consistent codeword
    /// (more corrupt elements than the code can tolerate).
    TooManyErrors,
    /// The decoded payload failed structural validation (length header larger
    /// than the padded payload), indicating corruption beyond repair.
    CorruptPayload,
}

impl From<crate::ReassembleError> for CodeError {
    /// Any reassembly failure after a successful decode means the decoded
    /// symbols are structurally corrupt.
    fn from(_: crate::ReassembleError) -> Self {
        CodeError::CorruptPayload
    }
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::InvalidParameters { n, k } => {
                write!(f, "invalid [n={n}, k={k}] code parameters")
            }
            CodeError::InvalidIndex { index, n } => {
                write!(f, "coded element index {index} out of range 0..{n}")
            }
            CodeError::DuplicateIndex { index } => {
                write!(f, "duplicate coded element index {index}")
            }
            CodeError::NotEnoughElements { have, need } => {
                write!(f, "not enough coded elements: have {have}, need {need}")
            }
            CodeError::InconsistentElementLength => {
                write!(f, "coded elements have inconsistent lengths")
            }
            CodeError::ErrorsNotSupported => {
                write!(f, "this code does not support decoding with silent errors")
            }
            CodeError::TooManyErrors => {
                write!(f, "too many corrupted coded elements to decode")
            }
            CodeError::CorruptPayload => write!(f, "decoded payload is structurally corrupt"),
        }
    }
}

impl std::error::Error for CodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let msgs = [
            CodeError::InvalidParameters { n: 4, k: 9 }.to_string(),
            CodeError::InvalidIndex { index: 7, n: 5 }.to_string(),
            CodeError::DuplicateIndex { index: 2 }.to_string(),
            CodeError::NotEnoughElements { have: 1, need: 3 }.to_string(),
            CodeError::InconsistentElementLength.to_string(),
            CodeError::ErrorsNotSupported.to_string(),
            CodeError::TooManyErrors.to_string(),
            CodeError::CorruptPayload.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
        assert!(CodeError::InvalidParameters { n: 4, k: 9 }
            .to_string()
            .contains("n=4"));
    }
}
