//! Encode- and decode-matrix caches.
//!
//! Building a systematic `[n, k]` encoding matrix costs a `k × k` inversion
//! plus an `n × k` multiply, and every erasure decode costs another `k × k`
//! inversion — yet a deployment uses one `(n, k)` pair for its whole
//! lifetime, and reads, reassembly and repair overwhelmingly see the *same*
//! survivor index sets over and over. Two caches remove that repeated work:
//!
//! * a process-wide encode-matrix cache keyed by `(n, k)` (the matrix is
//!   identical for every code instance with the same parameters, so a
//!   sharded store spinning up hundreds of per-key clusters builds it once);
//! * a per-code-instance LRU cache of decode (inverted sub-)matrices keyed
//!   by the sorted survivor index set, shared by clones of the instance, so
//!   inversion happens once per survivor set, not once per operation.
//!
//! The decode cache counts hits, misses and inversions; the counters surface
//! through [`crate::MdsCode::cache_stats`] and, at the top of the stack,
//! through the store's `StoreMetrics`.

use soda_gf::Matrix;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Decode-matrix cache counters of one code instance (and its clones).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CodeCacheStats {
    /// Decodes served from a cached inverted matrix.
    pub hits: u64,
    /// Decodes that had to invert (first sight of the survivor set, or the
    /// set had been evicted).
    pub misses: u64,
    /// Matrix inversions actually performed (= misses; kept separate so the
    /// invariant is visible in metrics).
    pub inversions: u64,
}

impl CodeCacheStats {
    /// Fraction of decodes served from cache (0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Field-wise sum, for aggregating across clusters.
    pub fn merge(&mut self, other: &CodeCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.inversions += other.inversions;
    }
}

/// Map from code parameters `(n, k)` to the shared encoding matrix.
type EncodeMatrixMap = HashMap<(usize, usize), Arc<Matrix>>;

/// Process-wide cache of systematic encoding matrices, keyed by `(n, k)`.
static ENCODE_MATRICES: OnceLock<Mutex<EncodeMatrixMap>> = OnceLock::new();

/// Returns the cached systematic encoding matrix for `(n, k)`, building it
/// with `build` on first use.
pub(crate) fn encode_matrix_for(n: usize, k: usize, build: impl FnOnce() -> Matrix) -> Arc<Matrix> {
    let cache = ENCODE_MATRICES.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("encode-matrix cache poisoned");
    map.entry((n, k))
        .or_insert_with(|| Arc::new(build()))
        .clone()
}

/// Maximum survivor sets a decode cache retains before evicting the least
/// recently used. `n ≤ 255` bounds the universe of sets, but a handful
/// covers real traffic (fault-free reads see one set; each crash pattern
/// adds one more).
const DECODE_CACHE_CAPACITY: usize = 64;

/// LRU map from sorted survivor index sets to the inverted decode matrix.
#[derive(Debug, Default)]
struct DecodeCacheState {
    /// Insertion/recency order: most recently used last.
    order: Vec<Box<[usize]>>,
    map: HashMap<Box<[usize]>, Arc<Matrix>>,
}

/// Shared decode-matrix cache of one code instance; clones of the instance
/// share it (an `Arc` of this sits inside `VandermondeCode`).
#[derive(Debug, Default)]
pub(crate) struct DecodeCache {
    state: Mutex<DecodeCacheState>,
    hits: AtomicU64,
    misses: AtomicU64,
    inversions: AtomicU64,
}

impl DecodeCache {
    /// Returns the inverted decode matrix for the given **sorted** survivor
    /// index set, calling `invert` (and counting an inversion) on a miss.
    /// `invert` failures are not cached.
    pub(crate) fn get_or_invert<E>(
        &self,
        indices: &[usize],
        invert: impl FnOnce() -> Result<Matrix, E>,
    ) -> Result<Arc<Matrix>, E> {
        debug_assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "key must be sorted"
        );
        {
            let mut state = self.state.lock().expect("decode cache poisoned");
            if let Some(matrix) = state.map.get(indices).cloned() {
                self.hits.fetch_add(1, Ordering::Relaxed);
                // Refresh recency.
                if let Some(pos) = state.order.iter().position(|key| **key == *indices) {
                    let key = state.order.remove(pos);
                    state.order.push(key);
                }
                return Ok(matrix);
            }
        }
        // Invert outside the lock: inversion is the expensive part, and a
        // racing decode of the same set at worst inverts twice.
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.inversions.fetch_add(1, Ordering::Relaxed);
        let matrix = Arc::new(invert()?);
        let mut state = self.state.lock().expect("decode cache poisoned");
        if !state.map.contains_key(indices) {
            let key: Box<[usize]> = indices.into();
            state.order.push(key.clone());
            state.map.insert(key, matrix.clone());
            if state.map.len() > DECODE_CACHE_CAPACITY {
                let evicted = state.order.remove(0);
                state.map.remove(&evicted);
            }
        }
        Ok(matrix)
    }

    /// Snapshot of the counters.
    pub(crate) fn stats(&self) -> CodeCacheStats {
        CodeCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inversions: self.inversions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_gf::MatrixError;

    fn identity(n: usize) -> Result<Matrix, MatrixError> {
        Ok(Matrix::identity(n))
    }

    #[test]
    fn encode_matrix_is_shared_per_parameters() {
        let a = encode_matrix_for(201, 7, || Matrix::vandermonde(201, 7));
        let b = encode_matrix_for(201, 7, || panic!("must be cached"));
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn decode_cache_counts_hits_and_misses() {
        let cache = DecodeCache::default();
        let set_a = [0usize, 2, 4];
        let set_b = [1usize, 2, 3];
        cache
            .get_or_invert::<MatrixError>(&set_a, || identity(3))
            .unwrap();
        cache
            .get_or_invert::<MatrixError>(&set_a, || panic!("cached"))
            .unwrap();
        cache
            .get_or_invert::<MatrixError>(&set_a, || panic!("cached"))
            .unwrap();
        cache
            .get_or_invert::<MatrixError>(&set_b, || identity(3))
            .unwrap();
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.inversions, 2);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn failed_inversions_are_not_cached() {
        let cache = DecodeCache::default();
        let set = [0usize, 1];
        let err: Result<Arc<Matrix>, MatrixError> =
            cache.get_or_invert(&set, || Err(MatrixError::Singular));
        assert!(err.is_err());
        // The next lookup must try again (miss), not return a phantom entry.
        cache
            .get_or_invert::<MatrixError>(&set, || identity(2))
            .unwrap();
        let stats = cache.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_set() {
        let cache = DecodeCache::default();
        // Fill beyond capacity with distinct single-index sets.
        for i in 0..=DECODE_CACHE_CAPACITY {
            cache
                .get_or_invert::<MatrixError>(&[i], || identity(1))
                .unwrap();
        }
        // Set [0] was the oldest and must have been evicted: a fresh lookup
        // is a miss. Set [1] survived: a hit. (Check [1] first — re-inserting
        // [0] evicts the then-oldest [1].)
        let before = cache.stats();
        cache
            .get_or_invert::<MatrixError>(&[1], || panic!("must be cached"))
            .unwrap();
        cache
            .get_or_invert::<MatrixError>(&[0], || identity(1))
            .unwrap();
        let after = cache.stats();
        assert_eq!(after.misses, before.misses + 1);
        assert_eq!(after.hits, before.hits + 1);
    }

    #[test]
    fn hit_refreshes_recency() {
        let cache = DecodeCache::default();
        for i in 0..DECODE_CACHE_CAPACITY {
            cache
                .get_or_invert::<MatrixError>(&[i], || identity(1))
                .unwrap();
        }
        // Touch the oldest set, then insert one more: the eviction victim
        // must be [1] (now oldest), not [0].
        cache
            .get_or_invert::<MatrixError>(&[0], || panic!("cached"))
            .unwrap();
        cache
            .get_or_invert::<MatrixError>(&[DECODE_CACHE_CAPACITY], || identity(1))
            .unwrap();
        cache
            .get_or_invert::<MatrixError>(&[0], || panic!("still cached"))
            .unwrap();
        let stats = cache.stats();
        // [1] is gone.
        cache
            .get_or_invert::<MatrixError>(&[1], || identity(1))
            .unwrap();
        assert_eq!(cache.stats().misses, stats.misses + 1);
    }

    #[test]
    fn stats_merge_sums_fields() {
        let mut a = CodeCacheStats {
            hits: 1,
            misses: 2,
            inversions: 2,
        };
        let b = CodeCacheStats {
            hits: 10,
            misses: 0,
            inversions: 0,
        };
        a.merge(&b);
        assert_eq!(a.hits, 11);
        assert_eq!(a.misses, 2);
        assert!(a.hit_rate() > 0.8);
        assert_eq!(CodeCacheStats::default().hit_rate(), 0.0);
    }
}
