//! Property-based tests for the MDS codes: random values, random [n, k]
//! parameters, random erasure patterns and random corruption patterns must
//! always round-trip (or be detected) according to the code's guarantees.

use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use soda_rs_code::{BerlekampWelchCode, CodedElement, MdsCode, VandermondeCode};

/// Strategy producing (n, k, value, seed).
fn code_params() -> impl Strategy<Value = (usize, usize, Vec<u8>, u64)> {
    (2usize..=12)
        .prop_flat_map(|n| (Just(n), 1usize..=n))
        .prop_flat_map(|(n, k)| {
            (
                Just(n),
                Just(k),
                proptest::collection::vec(any::<u8>(), 0..300),
                any::<u64>(),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn vandermonde_round_trips_any_k_subset((n, k, value, seed) in code_params()) {
        let code = VandermondeCode::new(n, k).unwrap();
        let elements = code.encode(&value).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut shuffled = elements;
        shuffled.shuffle(&mut rng);
        shuffled.truncate(k);
        prop_assert_eq!(code.decode(&shuffled).unwrap(), value);
    }

    #[test]
    fn element_sizes_are_value_over_k((n, k, value, _seed) in code_params()) {
        let code = VandermondeCode::new(n, k).unwrap();
        let elements = code.encode(&value).unwrap();
        let expected = (value.len() + 8).div_ceil(k);
        for e in &elements {
            prop_assert_eq!(e.data.len(), expected);
        }
        prop_assert_eq!(elements.len(), n);
    }

    #[test]
    fn bw_code_corrects_random_corruption(
        (n, k, value, seed) in code_params(),
        e_budget in 0usize..=2,
    ) {
        prop_assume!(k + 2 * e_budget <= n);
        let code = BerlekampWelchCode::new(n, k).unwrap();
        let elements = code.encode(&value).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

        // Keep exactly k + 2e elements (simulating f crashes), corrupt up to e of them.
        let mut kept = elements;
        kept.shuffle(&mut rng);
        kept.truncate(k + 2 * e_budget);
        let corrupt_count = e_budget.min(kept.len());
        let mut indices: Vec<usize> = (0..kept.len()).collect();
        indices.shuffle(&mut rng);
        for &i in indices.iter().take(corrupt_count) {
            for b in kept[i].data.iter_mut() {
                *b ^= 0x5A;
            }
        }
        let decoded = code.decode_with_errors(&kept, e_budget).unwrap();
        prop_assert_eq!(decoded, value);
    }

    #[test]
    fn bw_partial_byte_corruption_is_corrected(
        (n, k, value, seed) in code_params(),
    ) {
        prop_assume!(k + 2 <= n);
        prop_assume!(!value.is_empty());
        let code = BerlekampWelchCode::new(n, k).unwrap();
        let mut elements = code.encode(&value).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // Corrupt a random subset of bytes within one random element.
        let victim = seed as usize % n;
        let len = elements[victim].data.len();
        for j in 0..len {
            if rand::Rng::gen_bool(&mut rng, 0.5) {
                elements[victim].data[j] ^= 0xFF;
            }
        }
        let decoded = code.decode_with_errors(&elements, 1).unwrap();
        prop_assert_eq!(decoded, value);
    }

    #[test]
    fn decode_never_panics_on_garbage(
        n in 2usize..=8,
        k in 1usize..=8,
        garbage in proptest::collection::vec(
            (0usize..16, proptest::collection::vec(any::<u8>(), 0..32)), 0..8),
    ) {
        prop_assume!(k <= n);
        let code = VandermondeCode::new(n, k).unwrap();
        let elements: Vec<CodedElement> = garbage
            .into_iter()
            .map(|(idx, data)| CodedElement::new(idx, data))
            .collect();
        // Must return an error or a value, never panic.
        let _ = code.decode(&elements);
        let bw = BerlekampWelchCode::new(n, k).unwrap();
        let _ = bw.decode_with_errors(&elements, 1);
    }
}
