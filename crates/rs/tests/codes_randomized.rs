//! Randomized tests for the MDS codes: random values, random `[n, k]`
//! parameters, random erasure patterns and random corruption patterns must
//! always round-trip (or be detected) according to the code's guarantees
//! (formerly a proptest suite; now driven by the deterministic `rand` shim).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use soda_rs_code::{BerlekampWelchCode, CodedElement, MdsCode, VandermondeCode};

const CASES: usize = 64;

fn rng(salt: u64) -> StdRng {
    StdRng::seed_from_u64(0x7275_5400 ^ salt)
}

/// Draws `(n, k, value)` with `2 <= n <= 12`, `1 <= k <= n` and a value of up
/// to 300 bytes.
fn code_params(rng: &mut StdRng) -> (usize, usize, Vec<u8>) {
    let n = rng.gen_range(2usize..=12);
    let k = rng.gen_range(1usize..=n);
    let len = rng.gen_range(0usize..300);
    let value: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
    (n, k, value)
}

#[test]
fn vandermonde_round_trips_any_k_subset() {
    let mut rng = rng(1);
    for _ in 0..CASES {
        let (n, k, value) = code_params(&mut rng);
        let code = VandermondeCode::new(n, k).unwrap();
        let mut shuffled = code.encode(&value).unwrap();
        shuffled.shuffle(&mut rng);
        shuffled.truncate(k);
        assert_eq!(code.decode(&shuffled).unwrap(), value);
    }
}

#[test]
fn element_sizes_are_value_over_k() {
    let mut rng = rng(2);
    for _ in 0..CASES {
        let (n, k, value) = code_params(&mut rng);
        let code = VandermondeCode::new(n, k).unwrap();
        let elements = code.encode(&value).unwrap();
        let expected = (value.len() + 8).div_ceil(k);
        for e in &elements {
            assert_eq!(e.data.len(), expected);
        }
        assert_eq!(elements.len(), n);
    }
}

#[test]
fn bw_code_corrects_random_corruption() {
    let mut rng = rng(3);
    let mut checked = 0usize;
    while checked < CASES {
        let (n, k, value) = code_params(&mut rng);
        let e_budget = rng.gen_range(0usize..=2);
        if k + 2 * e_budget > n {
            continue;
        }
        checked += 1;
        let code = BerlekampWelchCode::new(n, k).unwrap();
        // Keep exactly k + 2e elements (simulating f crashes), corrupt up to
        // e of them.
        let mut kept = code.encode(&value).unwrap();
        kept.shuffle(&mut rng);
        kept.truncate(k + 2 * e_budget);
        let corrupt_count = e_budget.min(kept.len());
        let mut indices: Vec<usize> = (0..kept.len()).collect();
        indices.shuffle(&mut rng);
        for &i in indices.iter().take(corrupt_count) {
            for b in kept[i].data.make_mut() {
                *b ^= 0x5A;
            }
        }
        let decoded = code.decode_with_errors(&kept, e_budget).unwrap();
        assert_eq!(decoded, value);
    }
}

#[test]
fn bw_partial_byte_corruption_is_corrected() {
    let mut rng = rng(4);
    let mut checked = 0usize;
    while checked < CASES {
        let (n, k, value) = code_params(&mut rng);
        if k + 2 > n || value.is_empty() {
            continue;
        }
        checked += 1;
        let code = BerlekampWelchCode::new(n, k).unwrap();
        let mut elements = code.encode(&value).unwrap();
        // Corrupt a random subset of bytes within one random element.
        let victim = rng.gen_range(0usize..n);
        let bytes = elements[victim].data.make_mut();
        for byte in bytes.iter_mut() {
            if rng.gen_bool(0.5) {
                *byte ^= 0xFF;
            }
        }
        let decoded = code.decode_with_errors(&elements, 1).unwrap();
        assert_eq!(decoded, value);
    }
}

#[test]
fn encode_one_repair_matches_full_encode() {
    // Server repair re-encodes a single element from the decoded value; the
    // single-row fast path must produce bit-identical elements to Φ(v).
    let mut rng = rng(6);
    for _ in 0..CASES {
        let (n, k, value) = code_params(&mut rng);
        let code = VandermondeCode::new(n, k).unwrap();
        let all = code.encode(&value).unwrap();
        let index = rng.gen_range(0usize..n);
        let one = code.encode_one(&value, index).unwrap();
        assert_eq!(one, all[index], "n={n} k={k} index={index}");
        let bw = BerlekampWelchCode::new(n, k).unwrap();
        assert_eq!(bw.encode_one(&value, index).unwrap(), all[index]);
    }
}

#[test]
fn decode_after_cache_hit_is_identical_to_first_decode() {
    // The cached inverted matrix must yield byte-identical reconstructions.
    let mut rng = rng(7);
    for _ in 0..CASES {
        let (n, k, value) = code_params(&mut rng);
        let code = VandermondeCode::new(n, k).unwrap();
        let mut subset = code.encode(&value).unwrap();
        subset.shuffle(&mut rng);
        subset.truncate(k);
        let first = code.decode(&subset).unwrap();
        let second = code.decode(&subset).unwrap();
        assert_eq!(first, second);
        assert_eq!(first, value);
    }
}

#[test]
fn decode_never_panics_on_garbage() {
    let mut rng = rng(5);
    for _ in 0..CASES {
        let n = rng.gen_range(2usize..=8);
        let k = rng.gen_range(1usize..=n);
        let num_elements = rng.gen_range(0usize..8);
        let elements: Vec<CodedElement> = (0..num_elements)
            .map(|_| {
                let idx = rng.gen_range(0usize..16);
                let len = rng.gen_range(0usize..32);
                CodedElement::new(idx, (0..len).map(|_| rng.gen()).collect::<Vec<u8>>())
            })
            .collect();
        // Must return an error or a value, never panic.
        let code = VandermondeCode::new(n, k).unwrap();
        let _ = code.decode(&elements);
        let bw = BerlekampWelchCode::new(n, k).unwrap();
        let _ = bw.decode_with_errors(&elements, 1);
    }
}
