//! Scheduled partition windows at the store level: windows cut every
//! cross-group link of a shard's clusters and heal on schedule, repairs
//! survive partition/heal cycles (failing with a typed, retryable error when
//! the window outlives the whole retry budget), and everything stays
//! deterministic across runtimes.

use soda_registry::ProtocolKind;
use soda_store::{ShardedStore, StoreBuildError, StoreBuilder, StoreRuntime};

/// The 8-shard mixed-protocol fleet with rank 4 partitioned away from every
/// other process during `[0, 200)` ticks on every shard.
fn partitioned_mixed_store(runtime: StoreRuntime, seed: u64) -> ShardedStore {
    let mut builder = StoreBuilder::new(8, ProtocolKind::Soda, 5, 2)
        .with_shard_kinds(vec![
            ProtocolKind::Soda,
            ProtocolKind::SodaErr { e: 1 },
            ProtocolKind::Abd,
            ProtocolKind::Cas,
            ProtocolKind::Casgc { gc: 2 },
            ProtocolKind::Soda,
            ProtocolKind::Abd,
            ProtocolKind::Casgc { gc: 1 },
        ])
        .with_clients_per_key(1, 2)
        .with_seed(seed)
        .with_runtime(runtime);
    for shard in 0..8 {
        builder = builder.with_shard_partition(shard, vec![4], 0, 200);
    }
    builder.build().unwrap()
}

/// Operations racing a partition window complete through the reachable
/// majority side (isolating 1 ≤ f ranks leaves the `n − f` quorum intact),
/// the cuts are counted separately from probabilistic loss, and per-key
/// atomicity holds through the heal. Each round quiesces between puts and
/// gets so the gets observe the round's value; simulated time advances with
/// the traffic, so early rounds run inside the window and late rounds past
/// the heal at tick 200 with all five servers participating again.
fn drive_partitioned_round_trip(runtime: StoreRuntime, seed: u64) -> ShardedStore {
    let mut store = partitioned_mixed_store(runtime, seed);
    // Pick keys so every shard (hence every protocol) holds exactly two —
    // consistent hashing alone can leave a shard empty.
    let mut keys: Vec<Vec<u8>> = Vec::new();
    let mut placed = vec![0usize; store.num_shards()];
    for i in 0.. {
        if placed.iter().all(|&c| c >= 2) {
            break;
        }
        let key = format!("pw/{i}").into_bytes();
        let shard = store.shard_of(&key);
        if placed[shard] < 2 {
            placed[shard] += 1;
            keys.push(key);
        }
    }
    for round in 0..4 {
        let value = format!("round-{round}").into_bytes();
        store.put_batch(keys.iter().map(|k| (k.clone(), value.clone())));
        let outcome = store.run_until_quiescent();
        assert!(!outcome.hit_event_cap);
        assert_eq!(
            outcome.pending_tickets, 0,
            "a ≤ f partition must not starve operations (round {round})"
        );
        let gets = store.multi_get(keys.iter().cloned());
        store.run_until_quiescent();
        for get in gets {
            assert_eq!(store.poll(get).value(), Some(value.as_slice()));
        }
    }
    store
}

#[test]
fn partition_window_heals_and_the_store_stays_atomic() {
    let store = drive_partitioned_round_trip(StoreRuntime::Simulation, 17);
    store.check_per_key_atomicity().unwrap();

    let m = store.metrics();
    assert!(
        m.aggregate.messages_partitioned > 0,
        "round 1 must have hit the window"
    );
    assert_eq!(
        m.aggregate.messages_lost, 0,
        "partition cuts are deterministic, not probabilistic loss"
    );
    for shard in &m.per_shard {
        assert!(
            shard.messages_partitioned > 0,
            "shard {} ({}) never hit its window",
            shard.shard,
            shard.protocol
        );
    }
}

#[test]
fn partitioned_store_is_bit_identical_across_runtimes() {
    let mut results = Vec::new();
    for runtime in [
        StoreRuntime::Simulation,
        StoreRuntime::Threaded,
        StoreRuntime::WorkStealing { workers: 4 },
    ] {
        let store = drive_partitioned_round_trip(runtime, 23);
        store.check_per_key_atomicity().unwrap();
        let m = store.metrics();
        results.push((
            m.aggregate.messages_sent,
            m.aggregate.messages_partitioned,
            m.aggregate.data_bytes_sent,
            m.aggregate.completed_puts,
            m.aggregate.completed_gets,
            m.aggregate.put_latency.mean().to_bits(),
            m.aggregate.get_latency.mean().to_bits(),
            store.total_simulated_ticks(),
        ));
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[0], results[2]);
}

/// The crash → partition → heal → repair cycle: a repair scheduled while the
/// replacement is cut off from every survivor exhausts its retry budget and
/// fails with the typed, retryable error — the rank returns to the crash
/// budget as plain dead — and a *second* repair attempt, whose retries
/// straddle the heal, succeeds.
#[test]
fn repair_behind_a_partition_fails_retryably_then_succeeds_after_heal() {
    // Rank 0 is unreachable from everyone during [0, 4000): long enough to
    // outlive the first repair's whole retry budget (8 attempts spanning
    // 2800 ticks), short enough that the second repair's retries cross it.
    let mut store = StoreBuilder::new(1, ProtocolKind::Soda, 5, 2)
        .with_seed(9)
        .with_shard_partition(0, vec![0], 0, 4000)
        .build()
        .unwrap();
    store.put(b"k".to_vec(), b"survives-partitions".to_vec());
    store.run_until_quiescent();

    // Crash the isolated rank and try to repair it mid-window: the
    // replacement's survivor fan-outs are all cut, every retry included.
    store.crash_shard_server(0, 0).unwrap();
    store.repair_shard_server(0, 0).unwrap();
    assert_eq!(store.shard_dead_or_repairing(0), 1);
    store.run_until_quiescent();

    // The repair gave up: the rank is plain dead again (still holding its
    // crash-budget slot), and the give-up is visible in the metrics.
    assert_eq!(store.shard_downed_servers(0), vec![0]);
    assert_eq!(store.shard_dead_or_repairing(0), 1);
    let m = store.metrics();
    assert_eq!(m.aggregate.repairs_failed, 1);
    assert_eq!(m.aggregate.repairs_completed, 0);

    // Retry. The replacement starts inside the window but its retry cadence
    // reaches past the heal at tick 4000, where survivors answer.
    store.repair_shard_server(0, 0).unwrap();
    store.run_until_quiescent();
    assert_eq!(store.shard_dead_or_repairing(0), 0);
    let m = store.metrics();
    assert_eq!(m.aggregate.repairs_completed, 1);
    assert_eq!(
        m.aggregate.repairs_failed, 0,
        "the retry replaced the failure"
    );
    assert!(m.aggregate.repair_traffic_bytes > 0);

    // The repaired shard serves the pre-partition value and stays atomic.
    let get = store.get(b"k".to_vec());
    store.run_until_quiescent();
    assert_eq!(
        store.poll(get).value(),
        Some(b"survives-partitions".as_slice())
    );
    store.check_per_key_atomicity().unwrap();
}

#[test]
fn malformed_partitions_are_rejected_at_build() {
    let err = StoreBuilder::new(2, ProtocolKind::Soda, 5, 2)
        .with_shard_partition(1, vec![6], 0, 100)
        .build()
        .unwrap_err();
    assert!(
        matches!(
            err,
            StoreBuildError::PartitionRankOutOfRange {
                shard: 1,
                rank: 6,
                n: 5
            }
        ),
        "{err}"
    );

    let err = StoreBuilder::new(2, ProtocolKind::Soda, 5, 2)
        .with_shard_partition(0, vec![1], 200, 200)
        .build()
        .unwrap_err();
    assert!(
        matches!(err, StoreBuildError::PartitionEmptyWindow { shard: 0, .. }),
        "{err}"
    );

    let err = StoreBuilder::new(2, ProtocolKind::Soda, 5, 2)
        .with_shard_partition(9, vec![1], 0, 100)
        .build()
        .unwrap_err();
    assert!(
        matches!(err, StoreBuildError::ShardOutOfRange { shard: 9, .. }),
        "{err}"
    );
}
