//! Cross-protocol conformance: the same store scenario over every
//! [`ProtocolKind`], with per-key atomicity machine-checked.

use soda_registry::ProtocolKind;
use soda_store::{ShardedStore, StoreBuilder, Ticket};

/// `(kind, n, f)` cluster shapes valid for every protocol.
fn all_kinds() -> Vec<(ProtocolKind, usize, usize)> {
    vec![
        (ProtocolKind::Soda, 5, 2),
        (ProtocolKind::SodaErr { e: 1 }, 7, 2),
        (ProtocolKind::Abd, 5, 2),
        (ProtocolKind::Cas, 5, 2),
        (ProtocolKind::Casgc { gc: 2 }, 5, 2),
    ]
}

/// Drives the shared scenario: three rounds of batched puts over 12 keys with
/// interleaved gets, all queued before a single drain so every key sees
/// write/read concurrency.
fn drive(store: &mut ShardedStore) -> (Vec<Ticket>, Vec<Ticket>) {
    let keys: Vec<Vec<u8>> = (0..12).map(|i| format!("obj/{i}").into_bytes()).collect();
    let mut puts = Vec::new();
    let mut gets = Vec::new();
    for round in 0..3 {
        puts.extend(store.put_batch(keys.iter().map(|k| {
            let mut v = k.clone();
            v.extend_from_slice(format!("=r{round}").as_bytes());
            (k.clone(), v)
        })));
        gets.extend(store.multi_get(keys.iter().cloned()));
    }
    let outcome = store.run_until_quiescent();
    assert!(
        !outcome.hit_event_cap,
        "no simulation may hit its event cap"
    );
    (puts, gets)
}

#[test]
fn every_protocol_serves_the_same_store_scenario_atomically() {
    for (kind, n, f) in all_kinds() {
        let mut store = StoreBuilder::new(3, kind, n, f)
            .with_clients_per_key(2, 2)
            .with_seed(11)
            .build()
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        let (puts, gets) = drive(&mut store);
        for &t in puts.iter().chain(&gets) {
            assert!(
                store.poll(t).is_done(),
                "{}: ticket left pending in a fault-free run",
                kind.name()
            );
        }
        store
            .check_per_key_atomicity()
            .unwrap_or_else(|v| panic!("{}: per-key atomicity violated: {v}", kind.name()));

        let metrics = store.metrics();
        assert_eq!(metrics.aggregate.completed_puts, 36, "{}", kind.name());
        assert_eq!(metrics.aggregate.completed_gets, 36, "{}", kind.name());
        assert_eq!(metrics.aggregate.pending_tickets, 0, "{}", kind.name());
        assert_eq!(metrics.aggregate.keys, 12, "{}", kind.name());
        assert!(metrics.aggregate.messages_sent > 0, "{}", kind.name());
        assert!(metrics.aggregate.stored_bytes > 0, "{}", kind.name());
        assert_eq!(metrics.per_shard.len(), 3, "{}", kind.name());
        assert_eq!(metrics.aggregate.put_latency.count(), 36, "{}", kind.name());
    }
}

#[test]
fn gets_after_a_drained_put_return_the_latest_value() {
    for (kind, n, f) in all_kinds() {
        let mut store = StoreBuilder::new(4, kind, n, f)
            .with_seed(3)
            .build()
            .unwrap();
        let keys: Vec<Vec<u8>> = (0..8).map(|i| format!("user:{i}").into_bytes()).collect();
        store.put_batch(
            keys.iter()
                .map(|k| (k.clone(), [k.as_slice(), b"#v1"].concat())),
        );
        store.run_until_quiescent();
        store.put_batch(
            keys.iter()
                .map(|k| (k.clone(), [k.as_slice(), b"#v2"].concat())),
        );
        store.run_until_quiescent();

        let gets = store.multi_get(keys.iter().cloned());
        store.run_until_quiescent();
        for (key, &t) in keys.iter().zip(&gets) {
            let expected = [key.as_slice(), b"#v2"].concat();
            assert_eq!(
                store.poll(t).value(),
                Some(expected.as_slice()),
                "{}: stale or missing read of {}",
                kind.name(),
                String::from_utf8_lossy(key)
            );
        }
        store.check_per_key_atomicity().unwrap();
    }
}

#[test]
fn absent_keys_read_as_none() {
    let mut store = StoreBuilder::new(2, ProtocolKind::Soda, 5, 2)
        .build()
        .unwrap();
    let t = store.get(b"never-written".to_vec());
    store.run_until_quiescent();
    let status = store.poll(t);
    assert!(status.is_done());
    assert_eq!(status.value(), None);
}

#[test]
fn mixed_fleets_route_keys_to_their_shards_protocol() {
    let kinds = vec![
        ProtocolKind::Soda,
        ProtocolKind::Abd,
        ProtocolKind::Cas,
        ProtocolKind::Casgc { gc: 1 },
    ];
    let mut store = StoreBuilder::new(4, ProtocolKind::Soda, 5, 2)
        .with_shard_kinds(kinds.clone())
        .with_seed(9)
        .build()
        .unwrap();
    let (puts, gets) = drive(&mut store);
    assert!(puts.iter().chain(&gets).all(|&t| store.poll(t).is_done()));
    store.check_per_key_atomicity().unwrap();
    let metrics = store.metrics();
    for (shard, m) in metrics.per_shard.iter().enumerate() {
        assert_eq!(m.protocol, kinds[shard].name());
    }
    // 12 keys spread over 4 shards: the consistent-hash ring must not dump
    // everything on one shard.
    let populated = metrics.per_shard.iter().filter(|m| m.keys > 0).count();
    assert!(
        populated >= 2,
        "placement too skewed: {:?}",
        store.keys_per_shard()
    );
}

#[test]
fn deterministic_replay_per_seed() {
    let run = || {
        let mut store = StoreBuilder::new(4, ProtocolKind::Soda, 5, 2)
            .with_seed(77)
            .build()
            .unwrap();
        drive(&mut store);
        let m = store.metrics();
        (
            m.aggregate.messages_sent,
            m.aggregate.data_bytes_sent,
            m.aggregate.put_latency.mean(),
            store.total_simulated_ticks(),
        )
    };
    assert_eq!(run(), run(), "same seed must reproduce the same execution");
}

#[test]
fn repeated_reads_hit_the_decode_matrix_cache() {
    let mut store = StoreBuilder::new(1, ProtocolKind::Soda, 5, 2)
        .with_seed(5)
        .build()
        .unwrap();
    let key = b"hot-object".to_vec();
    let put = store.put(key.clone(), b"decoded once, served many times".to_vec());
    store.run_until_quiescent();
    assert!(store.poll(put).is_done());

    const READS: usize = 120;
    let mut gets = Vec::with_capacity(READS);
    for _ in 0..READS {
        gets.push(store.get(key.clone()));
        store.run_until_quiescent();
    }
    assert!(gets.iter().all(|&t| store.poll(t).is_done()));

    let totals = store.metrics().aggregate;
    let decodes = totals.decode_cache_hits + totals.decode_cache_misses;
    assert!(decodes as usize >= READS, "every read decodes: {totals:?}");
    assert_eq!(
        totals.decode_inversions, totals.decode_cache_misses,
        "inversions are exactly the cache misses"
    );
    // With n = 5, k = 3 there are only C(5, 3) = 10 possible survivor sets,
    // so inversions are bounded by 10 no matter how network latencies shuffle
    // which k elements reach the reader first; every further decode is a hit.
    assert!(totals.decode_inversions <= 10, "{totals:?}");
    let hit_rate = totals.decode_cache_hits as f64 / decodes as f64;
    assert!(
        hit_rate >= 0.9,
        "hit rate {hit_rate:.2} below 90%: {totals:?}"
    );
}

#[test]
fn replication_shards_report_zero_decode_cache_activity() {
    let mut store = StoreBuilder::new(1, ProtocolKind::Abd, 5, 2)
        .with_seed(5)
        .build()
        .unwrap();
    let put = store.put(b"k".to_vec(), b"replicated".to_vec());
    let get = store.get(b"k".to_vec());
    store.run_until_quiescent();
    assert!(store.poll(put).is_done() && store.poll(get).is_done());
    let totals = store.metrics().aggregate;
    assert_eq!(totals.decode_cache_hits, 0);
    assert_eq!(totals.decode_cache_misses, 0);
    assert_eq!(totals.decode_inversions, 0);
}
