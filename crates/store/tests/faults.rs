//! Fault handling at the store layer: crashed shards must not block the
//! rest of the fleet, and adversarial networks must never break per-key
//! atomicity — in either runtime.

use soda_registry::ProtocolKind;
use soda_simnet::{DelayModel, LinkFaults, NetFaultPlan};
use soda_store::{ShardedStore, StoreBuilder, StoreError, StoreRuntime, TicketStatus};

fn adversary() -> NetFaultPlan {
    NetFaultPlan::none().with_default(LinkFaults {
        drop_p: 0.08,
        duplicate_p: 0.15,
        extra_delay: Some(DelayModel::Uniform { min: 1, max: 25 }),
        reorder_p: 0.2,
        reorder_window: 40,
    })
}

/// The acceptance scenario: an 8-shard mixed-protocol store, one writer
/// handle per key, under adversarial network faults.
fn mixed_adversarial_store(runtime: StoreRuntime, seed: u64) -> ShardedStore {
    StoreBuilder::new(8, ProtocolKind::Soda, 5, 2)
        .with_shard_kinds(vec![
            ProtocolKind::Soda,
            ProtocolKind::SodaErr { e: 1 }, // k = n - f - 2e = 1 at (5, 2)
            ProtocolKind::Abd,
            ProtocolKind::Cas,
            ProtocolKind::Casgc { gc: 2 },
            ProtocolKind::Soda,
            ProtocolKind::Abd,
            ProtocolKind::Casgc { gc: 1 },
        ])
        .with_clients_per_key(1, 2)
        .with_net_faults(adversary())
        .with_seed(seed)
        .with_runtime(runtime)
        .build()
        .unwrap()
}

fn drive_mixed(store: &mut ShardedStore) {
    let keys: Vec<Vec<u8>> = (0..24).map(|i| format!("acc/{i}").into_bytes()).collect();
    for round in 0..3 {
        store.put_batch(
            keys.iter()
                .map(|k| (k.clone(), format!("r{round}").into_bytes())),
        );
        store.multi_get(keys.iter().cloned());
    }
    let outcome = store.run_until_quiescent();
    assert!(!outcome.hit_event_cap);
}

#[test]
fn mixed_store_under_net_faults_is_per_key_atomic_in_the_simulator() {
    for seed in 0..4 {
        let mut store = mixed_adversarial_store(StoreRuntime::Simulation, seed);
        drive_mixed(&mut store);
        store
            .check_per_key_atomicity()
            .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        // The adversary must actually have been active for the run to mean
        // anything.
        assert!(store.metrics().aggregate.messages_lost > 0, "seed {seed}");
    }
}

#[test]
fn mixed_store_under_net_faults_is_per_key_atomic_in_the_threaded_runtime() {
    let mut store = mixed_adversarial_store(StoreRuntime::Threaded, 1);
    drive_mixed(&mut store);
    store.check_per_key_atomicity().unwrap();
    assert!(store.metrics().aggregate.completed_ops() > 0);
}

#[test]
fn threaded_and_simulated_runs_agree_exactly() {
    // Shards are driven by self-contained deterministic simulations, so the
    // parallel runtimes must reproduce the serial backend's histories bit
    // for bit — worker threads only change wall-clock, never outcomes. The
    // explicit work-stealing worker count keeps the pool machinery exercised
    // even on single-core hosts.
    let mut results = Vec::new();
    for runtime in [
        StoreRuntime::Simulation,
        StoreRuntime::Threaded,
        StoreRuntime::WorkStealing { workers: 3 },
    ] {
        let mut store = mixed_adversarial_store(runtime, 5);
        drive_mixed(&mut store);
        let m = store.metrics();
        results.push((
            m.aggregate.messages_sent,
            m.aggregate.data_bytes_sent,
            m.aggregate.completed_puts,
            m.aggregate.completed_gets,
            m.aggregate.put_latency.mean(),
            store.total_simulated_ticks(),
        ));
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[0], results[2]);
}

#[test]
fn a_crashed_shard_does_not_block_the_others() {
    let mut store = StoreBuilder::new(4, ProtocolKind::Soda, 5, 2)
        .with_seed(13)
        .build()
        .unwrap();

    // Find keys on two different shards.
    let keys: Vec<Vec<u8>> = (0..32).map(|i| format!("k{i}").into_bytes()).collect();
    let dead_shard = store.shard_of(&keys[0]);
    let victim = keys[0].clone();
    let survivor = keys
        .iter()
        .find(|k| store.shard_of(k) != dead_shard)
        .expect("32 keys must hit at least two of four shards")
        .clone();

    // Kill the victim's shard beyond its fault tolerance (f = 2, so three
    // crashed servers leave no majority). The checked API refuses …
    let err = store.crash_shard_servers(dead_shard, 3).unwrap_err();
    assert!(
        matches!(
            err,
            StoreError::ExceedsCrashBudget {
                requested: 3,
                tolerated: 2,
                ..
            }
        ),
        "{err}"
    );
    // … so wedging the shard takes the explicitly-adversarial entry point.
    store.crash_shard_servers_unchecked(dead_shard, 3);

    let doomed_put = store.put(victim.clone(), b"lost".to_vec());
    let doomed_get = store.get(victim);
    let live_put = store.put(survivor.clone(), b"alive".to_vec());
    let live_get = store.get(survivor);

    // Must terminate (the dead shard quiesces with its ops pending) …
    let outcome = store.run_until_quiescent();
    assert!(!outcome.hit_event_cap);

    // … with the dead shard's operations pending and the live shard served.
    assert!(matches!(store.poll(doomed_put), TicketStatus::Pending));
    assert!(matches!(store.poll(doomed_get), TicketStatus::Pending));
    assert!(store.poll(live_put).is_done());
    assert_eq!(store.poll(live_get).value(), Some(b"alive".as_slice()));
    assert_eq!(outcome.pending_tickets, 2);

    // The surviving history still checks out (the doomed write is closed
    // under pending).
    store.check_per_key_atomicity().unwrap();

    // Late arrivals on the dead shard stay pending too, without hanging.
    let late = store.put(b"k0-late-sibling".to_vec(), b"x".to_vec());
    store.run_until_quiescent();
    if store.shard_of(b"k0-late-sibling") == dead_shard {
        assert!(matches!(store.poll(late), TicketStatus::Pending));
    } else {
        assert!(store.poll(late).is_done());
    }
}
