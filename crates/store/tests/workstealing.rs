//! Runtime-conformance suite for the work-stealing pool: the scheduling
//! backend must be invisible in every observable outcome. The acceptance
//! scenario is an 8-shard mixed-protocol store under adversarial network
//! faults with crash → repair chains running *while* writes are in flight —
//! the full fault surface — and the assertion is not a digest but the whole
//! per-key history, op for op, across all three runtimes.

use soda_registry::ProtocolKind;
use soda_simnet::{DelayModel, LinkFaults, NetFaultPlan};
use soda_store::{ShardedStore, StoreBuilder, StoreRuntime};

fn adversary() -> NetFaultPlan {
    NetFaultPlan::none().with_default(LinkFaults {
        drop_p: 0.06,
        duplicate_p: 0.1,
        extra_delay: Some(DelayModel::Uniform { min: 1, max: 20 }),
        reorder_p: 0.15,
        reorder_window: 32,
    })
}

/// Build the 8-shard mixed-protocol store, then drive three write/read
/// rounds interleaved with a crash → repair chain on every shard.
fn drive_chaos(runtime: StoreRuntime, seed: u64) -> ShardedStore {
    let mut store = StoreBuilder::new(8, ProtocolKind::Soda, 5, 2)
        .with_shard_kinds(vec![
            ProtocolKind::Soda,
            ProtocolKind::SodaErr { e: 1 },
            ProtocolKind::Abd,
            ProtocolKind::Cas,
            ProtocolKind::Casgc { gc: 2 },
            ProtocolKind::Soda,
            ProtocolKind::Abd,
            ProtocolKind::Casgc { gc: 1 },
        ])
        .with_clients_per_key(1, 2)
        .with_net_faults(adversary())
        .with_seed(seed)
        .with_runtime(runtime)
        .build()
        .unwrap();

    let keys: Vec<Vec<u8>> = (0..32).map(|i| format!("ws/{i}").into_bytes()).collect();

    // Round 1: populate every key, fault-free apart from the adversary.
    store.put_batch(keys.iter().map(|k| (k.clone(), b"one".to_vec())));
    store.run_until_quiescent();

    // Crash rank 0 on every shard, keep serving degraded.
    for shard in 0..store.num_shards() {
        store.crash_shard_server(shard, 0).unwrap();
    }
    store.put_batch(keys.iter().map(|k| (k.clone(), b"two".to_vec())));
    store.multi_get(keys.iter().cloned());
    store.run_until_quiescent();

    // Repair every crashed rank while round-three writes race the repairs.
    store.put_batch(keys.iter().map(|k| (k.clone(), b"three".to_vec())));
    for shard in 0..store.num_shards() {
        store.repair_shard_server(shard, 0).unwrap();
    }
    store.multi_get(keys.iter().cloned());
    let outcome = store.run_until_quiescent();
    assert!(!outcome.hit_event_cap);
    store
}

#[test]
fn chaos_histories_and_metrics_are_bit_identical_across_all_runtimes() {
    let runtimes = [
        StoreRuntime::Simulation,
        StoreRuntime::Threaded,
        // An explicit worker count keeps the pool machinery (deques,
        // stealing, cluster ownership transfer) exercised even when the
        // test host has a single hardware thread.
        StoreRuntime::WorkStealing { workers: 4 },
    ];
    let stores: Vec<ShardedStore> = runtimes
        .iter()
        .map(|&runtime| {
            let store = drive_chaos(runtime, 11);
            store.check_per_key_atomicity().unwrap();
            store
        })
        .collect();

    // The entire per-key history — every op's key, kind, value, tag and
    // interval — must be bit-identical, not merely digest-equal.
    let baseline_history = stores[0].keyed_history();
    assert!(!baseline_history.ops().is_empty());
    for store in &stores[1..] {
        assert_eq!(baseline_history, store.keyed_history());
    }

    // Per-shard operation counts and cost metrics must agree too: the
    // runtime may only change wall-clock, never who did what.
    let baseline = stores[0].metrics();
    for store in &stores[1..] {
        let m = store.metrics();
        for (a, b) in baseline.per_shard.iter().zip(&m.per_shard) {
            assert_eq!(a.shard, b.shard);
            assert_eq!(a.completed_puts, b.completed_puts, "shard {}", a.shard);
            assert_eq!(a.completed_gets, b.completed_gets, "shard {}", a.shard);
            assert_eq!(a.pending_tickets, b.pending_tickets, "shard {}", a.shard);
            assert_eq!(a.messages_sent, b.messages_sent, "shard {}", a.shard);
            assert_eq!(a.data_bytes_sent, b.data_bytes_sent, "shard {}", a.shard);
            assert_eq!(
                a.repairs_completed, b.repairs_completed,
                "shard {}",
                a.shard
            );
            assert_eq!(
                a.repair_traffic_bytes, b.repair_traffic_bytes,
                "shard {}",
                a.shard
            );
        }
        assert_eq!(
            baseline.aggregate.completed_ops(),
            m.aggregate.completed_ops()
        );
    }

    // The scheduling counters, by contrast, tell the three backends apart:
    // no pool under Simulation, a live one under the parallel runtimes.
    assert!(stores[0].pool_metrics().is_none());
    assert_eq!(stores[0].pool_workers(), 1);
    let ws = stores[2]
        .pool_metrics()
        .expect("WorkStealing with explicit workers always builds a pool");
    assert_eq!(ws.workers, 4);
    assert_eq!(stores[2].pool_workers(), 4);
    assert!(
        ws.tasks_executed > 0,
        "the pool must have run the cluster tasks"
    );
}

#[test]
fn a_single_hot_shard_fans_out_one_task_per_key_cluster() {
    // The whole point of WorkStealing over Threaded: a 1-shard store is one
    // task total under Threaded but one task *per key cluster* per drain
    // under WorkStealing, so a hot shard can use every core.
    let keys: Vec<Vec<u8>> = (0..48).map(|i| format!("hot/{i}").into_bytes()).collect();

    let mut results = Vec::new();
    let mut pool_tasks = Vec::new();
    for runtime in [
        StoreRuntime::Simulation,
        StoreRuntime::WorkStealing { workers: 3 },
    ] {
        let mut store = StoreBuilder::new(1, ProtocolKind::Soda, 5, 2)
            .with_seed(7)
            .with_runtime(runtime)
            .build()
            .unwrap();
        for round in 0..2 {
            store.put_batch(
                keys.iter()
                    .map(|k| (k.clone(), format!("v{round}").into_bytes())),
            );
            store.multi_get(keys.iter().cloned());
            store.run_until_quiescent();
        }
        store.check_per_key_atomicity().unwrap();
        results.push(store.keyed_history());
        pool_tasks.push(store.pool_metrics().map_or(0, |m| m.tasks_executed));
    }

    assert_eq!(results[0], results[1]);
    // Each of the two drains dispatches every active cluster as its own
    // task, so the counter must reach well past the key count.
    assert!(
        pool_tasks[1] >= keys.len() as u64,
        "expected at least {} cluster tasks, saw {}",
        keys.len(),
        pool_tasks[1]
    );
}
