//! Shard-level crash–recovery: the dynamic fault-tolerance invariant (at
//! most `f` *currently*-dead-or-repairing servers), repair metrics, and the
//! acceptance scenario — crash a server, repair it, crash a *different* one,
//! and the store stays per-key atomic.

use soda_registry::ProtocolKind;
use soda_store::{ShardedStore, StoreBuilder, StoreError, StoreRuntime};

/// The 8-shard mixed-protocol acceptance fleet (all five protocols).
fn mixed_store(runtime: StoreRuntime, seed: u64) -> ShardedStore {
    StoreBuilder::new(8, ProtocolKind::Soda, 5, 2)
        .with_shard_kinds(vec![
            ProtocolKind::Soda,
            ProtocolKind::SodaErr { e: 1 }, // k = n - f - 2e = 1 at (5, 2)
            ProtocolKind::Abd,
            ProtocolKind::Cas,
            ProtocolKind::Casgc { gc: 2 },
            ProtocolKind::Soda,
            ProtocolKind::Abd,
            ProtocolKind::Casgc { gc: 1 },
        ])
        .with_clients_per_key(1, 2)
        .with_seed(seed)
        .with_runtime(runtime)
        .build()
        .unwrap()
}

/// Crash → repair → crash-a-different-server on every shard of the mixed
/// fleet, with writes racing the repairs, in the given runtime. Returns the
/// store for further inspection.
fn drive_crash_repair_crash(runtime: StoreRuntime, seed: u64) -> ShardedStore {
    let mut store = mixed_store(runtime, seed);
    // Pick keys so every shard (hence every protocol) holds exactly two —
    // consistent hashing alone can leave a shard empty.
    let mut keys: Vec<Vec<u8>> = Vec::new();
    let mut placed = vec![0usize; store.num_shards()];
    for i in 0.. {
        if placed.iter().all(|&c| c >= 2) {
            break;
        }
        let key = format!("rep/{i}").into_bytes();
        let shard = store.shard_of(&key);
        if placed[shard] < 2 {
            placed[shard] += 1;
            keys.push(key);
        }
    }

    // Round 1: populate every shard, fault-free.
    store.put_batch(keys.iter().map(|k| (k.clone(), b"round-one".to_vec())));
    store.run_until_quiescent();

    // Crash rank 0 everywhere and keep serving.
    for shard in 0..store.num_shards() {
        store.crash_shard_server(shard, 0).unwrap();
    }
    store.put_batch(keys.iter().map(|k| (k.clone(), b"round-two".to_vec())));
    store.multi_get(keys.iter().cloned());
    store.run_until_quiescent();

    // Repair rank 0 everywhere *while* round-three writes are in flight.
    store.put_batch(keys.iter().map(|k| (k.clone(), b"round-three".to_vec())));
    for shard in 0..store.num_shards() {
        store.repair_shard_server(shard, 0).unwrap();
        assert_eq!(store.shard_dead_or_repairing(shard), 1);
    }
    store.run_until_quiescent();

    // Repairs completed, so the budget is free again: crash a *different*
    // rank — the request the static watermark could never have granted after
    // an earlier f-sized crash.
    for shard in 0..store.num_shards() {
        assert_eq!(store.shard_dead_or_repairing(shard), 0, "shard {shard}");
        store.crash_shard_server(shard, 1).unwrap();
    }
    store.put_batch(keys.iter().map(|k| (k.clone(), b"round-four".to_vec())));
    store.multi_get(keys.iter().cloned());
    let outcome = store.run_until_quiescent();
    assert!(!outcome.hit_event_cap);
    assert_eq!(outcome.pending_tickets, 0, "every shard kept its quorums");
    store
}

#[test]
fn crash_repair_crash_a_different_server_stays_per_key_atomic() {
    let store = drive_crash_repair_crash(StoreRuntime::Simulation, 11);
    store.check_per_key_atomicity().unwrap();

    let m = store.metrics();
    // Every populated cluster of every shard was repaired exactly once.
    let clusters: usize = store.keys_per_shard().iter().sum();
    assert_eq!(m.aggregate.repairs_completed, clusters as u64);
    assert_eq!(
        m.aggregate.repair_latency.count(),
        m.aggregate.repairs_completed
    );
    assert!(m.aggregate.repair_traffic_bytes > 0);
    assert!(m.aggregate.repair_latency.max() > 0);
    for shard in &m.per_shard {
        assert!(
            shard.repairs_completed > 0,
            "shard {} ({}) repaired nothing",
            shard.shard,
            shard.protocol
        );
    }
}

#[test]
fn crash_repair_crash_is_bit_identical_across_runtimes() {
    let mut results = Vec::new();
    for runtime in [
        StoreRuntime::Simulation,
        StoreRuntime::Threaded,
        StoreRuntime::WorkStealing { workers: 4 },
    ] {
        let store = drive_crash_repair_crash(runtime, 5);
        store.check_per_key_atomicity().unwrap();
        let m = store.metrics();
        results.push((
            m.aggregate.messages_sent,
            m.aggregate.data_bytes_sent,
            m.aggregate.completed_puts,
            m.aggregate.completed_gets,
            m.aggregate.repairs_completed,
            m.aggregate.repair_traffic_bytes,
            m.aggregate.repair_latency.mean().to_bits(),
            store.total_simulated_ticks(),
        ));
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[0], results[2]);
}

#[test]
fn crash_budget_is_dynamic_and_validated() {
    let mut store = StoreBuilder::new(1, ProtocolKind::Soda, 5, 2)
        .with_seed(3)
        .build()
        .unwrap();
    store.put(b"k".to_vec(), b"v".to_vec());
    store.run_until_quiescent();

    // Addressing errors.
    assert!(matches!(
        store.crash_shard_servers(9, 1),
        Err(StoreError::ShardOutOfRange {
            shard: 9,
            shards: 1
        })
    ));
    assert!(matches!(
        store.crash_shard_server(0, 7),
        Err(StoreError::RankOutOfRange { rank: 7, n: 5, .. })
    ));
    assert!(matches!(
        store.repair_shard_server(0, 3),
        Err(StoreError::ServerNotDown { rank: 3, .. })
    ));

    // Fill the budget, then one more is refused.
    store.crash_shard_servers(0, 2).unwrap();
    assert!(matches!(
        store.crash_shard_server(0, 2),
        Err(StoreError::ExceedsCrashBudget {
            requested: 3,
            tolerated: 2,
            ..
        })
    ));
    // Re-crashing an already-dead rank is a no-op, not a budget violation.
    store.crash_shard_server(0, 1).unwrap();
    assert_eq!(store.shard_downed_servers(0), vec![0, 1]);

    // A *scheduled* repair does not free the budget yet …
    store.repair_shard_server(0, 0).unwrap();
    assert_eq!(store.shard_dead_or_repairing(0), 2);
    assert!(matches!(
        store.crash_shard_server(0, 2),
        Err(StoreError::ExceedsCrashBudget { .. })
    ));

    // … only an observed-complete repair does.
    store.run_until_quiescent();
    assert_eq!(store.shard_dead_or_repairing(0), 1);
    store.crash_shard_server(0, 2).unwrap();
    assert_eq!(store.shard_downed_servers(0), vec![1, 2]);

    store.run_until_quiescent();
    store.check_per_key_atomicity().unwrap();
}

#[test]
fn soda_repair_bandwidth_is_coded_not_replicated() {
    // One SODA shard, n = 5, f = 2 ⇒ k = 3. A repaired server must fetch
    // k coded elements of ⌈(size + 8) / k⌉ bytes — (n/k)·size + O(metadata)
    // spread across survivors — never the n·size of full replication.
    let (n, k, size, num_keys) = (5usize, 3usize, 300usize, 6usize);
    let mut store = StoreBuilder::new(1, ProtocolKind::Soda, n, 2)
        .with_seed(21)
        .build()
        .unwrap();
    let keys: Vec<Vec<u8>> = (0..num_keys)
        .map(|i| format!("bw/{i}").into_bytes())
        .collect();
    store.put_batch(keys.iter().map(|key| (key.clone(), vec![0xAB; size])));
    store.run_until_quiescent();

    store.crash_shard_server(0, 2).unwrap();
    store.repair_shard_server(0, 2).unwrap();
    store.run_until_quiescent();

    let m = store.metrics();
    assert_eq!(m.aggregate.repairs_completed, num_keys as u64);
    let elem_len = (size + 8).div_ceil(k) as u64;
    let per_cluster = m.aggregate.repair_traffic_bytes / num_keys as u64;
    assert_eq!(per_cluster, k as u64 * elem_len);
    assert!(
        per_cluster <= (n as u64) * elem_len,
        "exceeds the paper bound"
    );
    assert!(
        per_cluster < (n * size) as u64,
        "repair must beat full replication"
    );

    // And the repaired shard still serves reads of the pre-crash values.
    let gets = store.multi_get(keys.iter().cloned());
    store.run_until_quiescent();
    for get in gets {
        assert_eq!(store.poll(get).value(), Some(vec![0xAB; size].as_slice()));
    }
    store.check_per_key_atomicity().unwrap();
}
