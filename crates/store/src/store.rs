//! The sharded multi-object store proper.

use crate::builder::{ShardSpec, StoreRuntime};
use crate::map::{fnv1a, ShardMap};
use crate::metrics::{LatencyHistogram, PoolMetrics, ShardMetrics, StoreMetrics, StoreTotals};
use crate::pool::{Task, WorkerPool};
use soda_consistency::{KeyViolation, KeyedHistory, KeyedOp};
use soda_registry::{OpKind, OpRecord, RegisterCluster};
use soda_simnet::FastHashMap;
use soda_simnet::SimTime;
use std::collections::BTreeSet;
use std::fmt;

/// Why the store refused a runtime fault-injection request.
///
/// Unlike [`StoreBuildError`](crate::StoreBuildError) (construction-time
/// parameter validation), these arise while a built store is being driven —
/// most importantly when a crash request would push a shard past its declared
/// fault tolerance and silently wedge every operation routed to it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The named shard does not exist.
    ShardOutOfRange {
        /// The offending shard index.
        shard: usize,
        /// Number of shards in the store.
        shards: usize,
    },
    /// The named server rank does not exist in the shard's clusters.
    RankOutOfRange {
        /// The shard addressed.
        shard: usize,
        /// The offending rank.
        rank: usize,
        /// Servers per cluster on that shard.
        n: usize,
    },
    /// Applying the crash would leave more than `f` servers simultaneously
    /// dead or under repair, so the shard would lose its quorums and wedge
    /// with pending operations. The budget is *dynamic*: repaired servers
    /// return to it, so the bound is on currently-dead servers, not crashes
    /// in total.
    ExceedsCrashBudget {
        /// The shard addressed.
        shard: usize,
        /// Servers that would be dead or repairing after the request.
        requested: usize,
        /// The shard's crash budget ([`ShardSpec::crash_budget`](crate::ShardSpec::crash_budget)).
        tolerated: usize,
    },
    /// Repair was requested for a server that is not currently down.
    ServerNotDown {
        /// The shard addressed.
        shard: usize,
        /// The rank that is already healthy (or already repairing).
        rank: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::ShardOutOfRange { shard, shards } => {
                write!(out, "shard {shard} out of range for {shards} shards")
            }
            StoreError::RankOutOfRange { shard, rank, n } => {
                write!(
                    out,
                    "shard {shard}: server rank {rank} out of range for n = {n}"
                )
            }
            StoreError::ExceedsCrashBudget {
                shard,
                requested,
                tolerated,
            } => write!(
                out,
                "shard {shard}: {requested} servers would be dead or repairing, \
                 exceeding the crash budget f = {tolerated} (the shard would wedge)"
            ),
            StoreError::ServerNotDown { shard, rank } => write!(
                out,
                "shard {shard}: server rank {rank} is not down (nothing to repair)"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

/// Hardware thread count, queried once — `available_parallelism` hits the OS
/// on every call and the answer cannot change under us.
fn hardware_parallelism() -> usize {
    use std::sync::OnceLock;
    static PARALLELISM: OnceLock<usize> = OnceLock::new();
    *PARALLELISM.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// The worker pool a store with `shards` shards needs for `runtime`, or
/// `None` where the serial loop is the right (or only useful) backend:
/// always for [`StoreRuntime::Simulation`]; for [`StoreRuntime::Threaded`]
/// on single-shard stores or single-hardware-thread hosts (the documented
/// serial degradation — threads buy no parallelism there); and for
/// [`StoreRuntime::WorkStealing`] when the worker count resolves to one. An
/// *explicit* work-stealing worker count is honored even on a single core,
/// so tests can exercise the pool machinery on any host.
fn pool_for(runtime: StoreRuntime, shards: usize) -> Option<WorkerPool> {
    let workers = match runtime {
        StoreRuntime::Simulation => 1,
        StoreRuntime::Threaded => {
            if shards <= 1 {
                1
            } else {
                shards.min(hardware_parallelism())
            }
        }
        StoreRuntime::WorkStealing { workers: 0 } => hardware_parallelism(),
        StoreRuntime::WorkStealing { workers } => workers,
    };
    (workers > 1).then(|| WorkerPool::new(workers))
}

/// Handle for one asynchronously-invoked store operation. Obtained from
/// [`ShardedStore::put`] / [`ShardedStore::get`] (and their batched
/// variants), redeemed with [`ShardedStore::poll`] once the store has been
/// driven by [`ShardedStore::run_until_quiescent`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Ticket(u64);

/// What happened to a ticketed operation.
#[derive(Clone, Debug)]
pub enum TicketStatus {
    /// The operation has not completed (still queued, in flight, or starved
    /// by crashes/network faults).
    Pending,
    /// The operation completed.
    Done(OpOutcome),
}

impl TicketStatus {
    /// True once the operation completed.
    pub fn is_done(&self) -> bool {
        matches!(self, TicketStatus::Done(_))
    }

    /// The returned value: `Some` for a get that found a value, `None` for a
    /// pending ticket, a put, or a get of an absent key.
    pub fn value(&self) -> Option<&[u8]> {
        match self {
            TicketStatus::Done(outcome) if outcome.kind == OpKind::Read => outcome.value.as_deref(),
            _ => None,
        }
    }
}

/// A completed store operation.
#[derive(Clone, Debug)]
pub struct OpOutcome {
    /// The key the operation addressed.
    pub key: Vec<u8>,
    /// The shard that served it.
    pub shard: usize,
    /// Put ([`OpKind::Write`]) or get ([`OpKind::Read`]).
    pub kind: OpKind,
    /// The value written, or the value a get returned (`None` when the key
    /// had never been written — the store treats the registers' empty initial
    /// value as *absent*, so empty values cannot be stored).
    pub value: Option<Vec<u8>>,
    /// Operation latency in the shard's simulated ticks.
    pub latency_ticks: u64,
}

/// Result of one [`ShardedStore::run_until_quiescent`] call.
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreRunOutcome {
    /// Tickets completed so far (store lifetime total).
    pub completed_tickets: usize,
    /// Tickets still pending after quiescence (their operations were starved
    /// by crashes or never got a client handle).
    pub pending_tickets: usize,
    /// True if any shard's simulation hit its event cap (indicates a protocol
    /// bug; never expected).
    pub hit_event_cap: bool,
}

/// One key's register cluster within a shard, plus the ticket bookkeeping
/// that maps the cluster's per-client operation records back to store
/// tickets.
struct KeyCluster {
    key: Vec<u8>,
    cluster: Box<dyn RegisterCluster>,
    /// Round-robin cursors over the writer/reader handles.
    next_writer: usize,
    next_reader: usize,
    /// FIFO ticket ids per writer handle, in invocation order. A handle's
    /// operations complete in invocation order (clients queue), so the i-th
    /// completed record of the handle's process settles the i-th ticket.
    writer_tickets: Vec<Vec<u64>>,
    reader_tickets: Vec<Vec<u64>>,
    /// How many tickets per handle have already been settled.
    writer_done: Vec<usize>,
    reader_done: Vec<usize>,
}

/// Scratch buffers [`KeyCluster::harvest`] reuses across every cluster of
/// every drain, replacing the per-call, per-handle record allocations the
/// old settling path made.
#[derive(Default)]
struct HarvestScratch {
    /// The cluster's completed records (cleared and refilled per cluster).
    ops: Vec<OpRecord>,
    /// Indices into `ops` belonging to one client handle, in `seq` order
    /// (cleared and refilled per handle).
    order: Vec<usize>,
}

impl KeyCluster {
    /// Settles newly completed operations into `outcomes`.
    fn harvest(
        &mut self,
        shard: usize,
        outcomes: &mut FastHashMap<u64, OpOutcome>,
        scratch: &mut HarvestScratch,
    ) {
        if self.settled() == self.issued() {
            // Every ticket already settled — nothing new can appear, so skip
            // cloning the cluster's whole record list.
            return;
        }
        scratch.ops.clear();
        self.cluster.completed_ops_into(&mut scratch.ops);
        let ops = &scratch.ops;
        let descriptor = *self.cluster.descriptor();
        for w in 0..descriptor.num_writers {
            let client = self.cluster.writer_process(w).0 as u64;
            let order = &mut scratch.order;
            order.clear();
            order.extend(
                ops.iter()
                    .enumerate()
                    .filter(|(_, op)| op.client == client)
                    .map(|(i, _)| i),
            );
            order.sort_unstable_by_key(|&i| ops[i].seq);
            let settled = order.len().min(self.writer_tickets[w].len());
            for (&idx, &ticket) in order
                .iter()
                .zip(&self.writer_tickets[w])
                .take(settled)
                .skip(self.writer_done[w])
            {
                let record = &ops[idx];
                outcomes.insert(
                    ticket,
                    OpOutcome {
                        key: self.key.clone(),
                        shard,
                        kind: OpKind::Write,
                        value: record.value.clone(),
                        latency_ticks: record.latency(),
                    },
                );
            }
            self.writer_done[w] = settled;
        }
        for r in 0..descriptor.num_readers {
            let client = self.cluster.reader_process(r).0 as u64;
            let order = &mut scratch.order;
            order.clear();
            order.extend(
                ops.iter()
                    .enumerate()
                    .filter(|(_, op)| op.client == client)
                    .map(|(i, _)| i),
            );
            order.sort_unstable_by_key(|&i| ops[i].seq);
            let settled = order.len().min(self.reader_tickets[r].len());
            for (&idx, &ticket) in order
                .iter()
                .zip(&self.reader_tickets[r])
                .take(settled)
                .skip(self.reader_done[r])
            {
                let record = &ops[idx];
                let value = record.value.clone().filter(|v| !v.is_empty());
                outcomes.insert(
                    ticket,
                    OpOutcome {
                        key: self.key.clone(),
                        shard,
                        kind: OpKind::Read,
                        value,
                        latency_ticks: record.latency(),
                    },
                );
            }
            self.reader_done[r] = settled;
        }
    }

    fn issued(&self) -> usize {
        self.writer_tickets.iter().map(Vec::len).sum::<usize>()
            + self.reader_tickets.iter().map(Vec::len).sum::<usize>()
    }

    fn settled(&self) -> usize {
        self.writer_done.iter().sum::<usize>() + self.reader_done.iter().sum::<usize>()
    }
}

/// What one pool task sends back to the draining thread: the clusters it
/// ran (a single key cluster under the work-stealing runtime, a whole
/// shard's batch under the threaded runtime), addressed by their original
/// `(shard, first-cluster-index)` slot so reinstallation is order-exact.
struct DrainedBatch {
    shard: usize,
    first: usize,
    clusters: Vec<KeyCluster>,
    hit_cap: bool,
}

/// One shard: a fleet of per-key register clusters sharing a [`ShardSpec`]
/// (protocol, `n`/`f`, fault plan and client-handle shape).
struct Shard {
    index: usize,
    spec: ShardSpec,
    clusters: Vec<KeyCluster>,
    key_index: FastHashMap<Vec<u8>, usize>,
    /// Ranks currently crashed in every cluster of the shard, existing and
    /// future.
    downed: BTreeSet<usize>,
    /// Ranks whose repair has been scheduled but not yet observed complete in
    /// every existing cluster. They still count against the crash budget.
    repairing: BTreeSet<usize>,
}

impl Shard {
    /// The cluster for `key`, created lazily from the shard spec.
    fn cluster_for(&mut self, key: &[u8], store_seed: u64) -> &mut KeyCluster {
        if let Some(&idx) = self.key_index.get(key) {
            return &mut self.clusters[idx];
        }
        let seed = store_seed
            ^ fnv1a(key).rotate_left(17)
            ^ (self.index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut cluster = self
            .spec
            .cluster_builder(seed)
            .build()
            .expect("spec was validated at store build time");
        // A fresh cluster starts with all servers alive; only the ranks that
        // are *currently* down get crashed. Ranks mid-repair elsewhere were
        // never crashed here, so they simply stay healthy.
        for &rank in &self.downed {
            cluster.crash_server_at(cluster.now(), rank);
        }
        let descriptor = *cluster.descriptor();
        let idx = self.clusters.len();
        self.key_index.insert(key.to_vec(), idx);
        self.clusters.push(KeyCluster {
            key: key.to_vec(),
            cluster,
            next_writer: 0,
            next_reader: 0,
            writer_tickets: vec![Vec::new(); descriptor.num_writers],
            reader_tickets: vec![Vec::new(); descriptor.num_readers],
            writer_done: vec![0; descriptor.num_writers],
            reader_done: vec![0; descriptor.num_readers],
        });
        &mut self.clusters[idx]
    }

    /// Runs every cluster of the shard to quiescence. Returns true if any
    /// simulation hit its event cap.
    fn run_to_quiescence(&mut self) -> bool {
        let mut hit_cap = false;
        for kc in &mut self.clusters {
            hit_cap |= kc.cluster.run_to_quiescence().hit_event_cap;
        }
        hit_cap
    }
}

/// A sharded, multi-object atomic KV store: a byte-string keyspace placed
/// onto `S` shards by consistent hashing, each shard a register-cluster fleet
/// with its own protocol choice (mixed fleets allowed), fault plan and client
/// handles. See the crate docs for the composition argument and
/// [`StoreBuilder`](crate::StoreBuilder) for construction.
pub struct ShardedStore {
    map: ShardMap,
    shards: Vec<Shard>,
    seed: u64,
    runtime: StoreRuntime,
    /// The persistent worker pool behind the parallel runtimes, created once
    /// at build time (`None` when the serial loop is the backend — see
    /// [`pool_for`]).
    pool: Option<WorkerPool>,
    next_ticket: u64,
    outcomes: FastHashMap<u64, OpOutcome>,
    scratch: HarvestScratch,
}

impl std::fmt::Debug for ShardedStore {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        out.debug_struct("ShardedStore")
            .field("shards", &self.shards.len())
            .field("keys_per_shard", &self.keys_per_shard())
            .field("runtime", &self.runtime)
            .field("tickets_issued", &(self.next_ticket - 1))
            .field("tickets_done", &self.outcomes.len())
            .finish()
    }
}

impl ShardedStore {
    pub(crate) fn new(
        map: ShardMap,
        specs: Vec<ShardSpec>,
        seed: u64,
        runtime: StoreRuntime,
    ) -> Self {
        let specs_len = specs.len();
        let shards = specs
            .into_iter()
            .enumerate()
            .map(|(index, spec)| Shard {
                index,
                spec,
                clusters: Vec::new(),
                key_index: FastHashMap::default(),
                downed: BTreeSet::new(),
                repairing: BTreeSet::new(),
            })
            .collect();
        let pool = pool_for(runtime, specs_len);
        ShardedStore {
            map,
            shards,
            seed,
            runtime,
            pool,
            next_ticket: 1,
            outcomes: FastHashMap::default(),
            scratch: HarvestScratch::default(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The placement ring.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// The shard that serves `key`.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        self.map.shard_of(key)
    }

    /// The spec shard `shard` was built with.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn shard_spec(&self, shard: usize) -> &ShardSpec {
        &self.shards[shard].spec
    }

    /// Distinct keys the store has seen, per shard.
    pub fn keys_per_shard(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.clusters.len()).collect()
    }

    /// The execution backend the store was built with.
    pub fn runtime(&self) -> StoreRuntime {
        self.runtime
    }

    /// Scheduling counters of the persistent worker pool: tasks executed,
    /// steals, and summed worker busy-time. `None` when the store runs the
    /// serial loop ([`StoreRuntime::Simulation`], or a parallel runtime
    /// degraded to serial — single shard under `Threaded`, automatic worker
    /// count on a single-hardware-thread host). Unlike [`Self::metrics`],
    /// steal and busy-time counts are wall-clock artifacts and vary run to
    /// run; histories never do.
    pub fn pool_metrics(&self) -> Option<PoolMetrics> {
        self.pool.as_ref().map(WorkerPool::metrics)
    }

    /// Worker threads driving the store: the pool size, or 1 on the serial
    /// loop.
    pub fn pool_workers(&self) -> usize {
        self.pool.as_ref().map_or(1, WorkerPool::num_workers)
    }

    fn issue_ticket(&mut self) -> Ticket {
        let id = self.next_ticket;
        self.next_ticket += 1;
        Ticket(id)
    }

    /// Queues a put of `value` under `key`. Empty values are rejected (the
    /// registers' empty initial value encodes *absent*).
    ///
    /// # Panics
    /// Panics if `value` is empty or the store has no writer handles.
    pub fn put(&mut self, key: Vec<u8>, value: Vec<u8>) -> Ticket {
        assert!(
            !value.is_empty(),
            "empty values are reserved for 'absent' (key {:?})",
            String::from_utf8_lossy(&key)
        );
        let ticket = self.issue_ticket();
        let shard_idx = self.map.shard_of(&key);
        let seed = self.seed;
        let shard = &mut self.shards[shard_idx];
        let kc = shard.cluster_for(&key, seed);
        let writers = kc.writer_tickets.len();
        assert!(writers > 0, "store built with zero writer handles per key");
        let handle = kc.next_writer;
        kc.next_writer = (kc.next_writer + 1) % writers;
        kc.writer_tickets[handle].push(ticket.0);
        kc.cluster.invoke_write(handle, value);
        ticket
    }

    /// Queues a get of `key`.
    ///
    /// # Panics
    /// Panics if the store has no reader handles.
    pub fn get(&mut self, key: Vec<u8>) -> Ticket {
        let ticket = self.issue_ticket();
        let shard_idx = self.map.shard_of(&key);
        let seed = self.seed;
        let shard = &mut self.shards[shard_idx];
        let kc = shard.cluster_for(&key, seed);
        let readers = kc.reader_tickets.len();
        assert!(readers > 0, "store built with zero reader handles per key");
        let handle = kc.next_reader;
        kc.next_reader = (kc.next_reader + 1) % readers;
        kc.reader_tickets[handle].push(ticket.0);
        kc.cluster.invoke_read(handle);
        ticket
    }

    /// Queues one put per `(key, value)` pair, routing each to its shard.
    pub fn put_batch(
        &mut self,
        pairs: impl IntoIterator<Item = (Vec<u8>, Vec<u8>)>,
    ) -> Vec<Ticket> {
        pairs
            .into_iter()
            .map(|(key, value)| self.put(key, value))
            .collect()
    }

    /// Queues one get per key, routing each to its shard.
    pub fn multi_get(&mut self, keys: impl IntoIterator<Item = Vec<u8>>) -> Vec<Ticket> {
        keys.into_iter().map(|key| self.get(key)).collect()
    }

    /// The status of a ticket. Completions are harvested by
    /// [`Self::run_until_quiescent`], not here.
    ///
    /// This clones the outcome (key and value included) so `TicketStatus` can
    /// be held while the store is driven further; a hot loop that only
    /// inspects outcomes should use the borrowing [`Self::outcome`] instead.
    ///
    /// # Panics
    /// Panics on a ticket this store never issued.
    pub fn poll(&self, ticket: Ticket) -> TicketStatus {
        match self.outcome(ticket) {
            Some(outcome) => TicketStatus::Done(outcome.clone()),
            None => TicketStatus::Pending,
        }
    }

    /// Borrowed view of a completed ticket's outcome — `None` while the
    /// ticket is pending. The allocation-free twin of [`Self::poll`].
    ///
    /// # Panics
    /// Panics on a ticket this store never issued.
    pub fn outcome(&self, ticket: Ticket) -> Option<&OpOutcome> {
        assert!(
            ticket.0 > 0 && ticket.0 < self.next_ticket,
            "ticket {} was not issued by this store",
            ticket.0
        );
        self.outcomes.get(&ticket.0)
    }

    /// Drives every shard until no messages remain anywhere, then settles
    /// tickets. With [`StoreRuntime::Simulation`] shards run serially in
    /// shard order; with [`StoreRuntime::Threaded`] each shard is one task on
    /// the store's persistent worker pool; with [`StoreRuntime::WorkStealing`]
    /// each **key cluster** is its own task, so even a single hot shard
    /// drains in parallel. All three produce bit-identical histories:
    /// clusters are self-contained deterministic simulations, and tickets and
    /// repairs are settled on the calling thread in `(shard, cluster-index)`
    /// order after the drain, whatever order the workers finished in. The
    /// threaded runtime (and the work-stealing runtime at its automatic
    /// worker count) degrades to the serial loop on single-hardware-thread
    /// hosts, where extra threads buy no parallelism and cost real time.
    ///
    /// A shard whose clusters cannot make progress (e.g. a majority of its
    /// servers crashed) still quiesces — its operations simply stay pending —
    /// so a dead shard never blocks the others.
    pub fn run_until_quiescent(&mut self) -> StoreRunOutcome {
        let hit_event_cap = if self.pool.is_some() {
            let per_cluster = matches!(self.runtime, StoreRuntime::WorkStealing { .. });
            self.drain_on_pool(per_cluster)
        } else {
            let mut hit = false;
            for shard in &mut self.shards {
                hit |= shard.run_to_quiescence();
            }
            hit
        };
        let scratch = &mut self.scratch;
        for shard in &mut self.shards {
            let index = shard.index;
            for kc in &mut shard.clusters {
                kc.harvest(index, &mut self.outcomes, scratch);
            }
            // Settle repairs per rank from the clusters' typed repair
            // reports. A rank leaves `repairing` once every cluster that
            // repaired it reports completion (clusters created after the
            // crash never repaired it and stay healthy there). A rank whose
            // repair *failed* anywhere (RepairError::Unreachable — the
            // replacement exhausted its retry budget, e.g. behind a partition
            // that outlived every retry) goes back to `downed`: it is crashed
            // in any cluster where it is still healthy so the whole shard
            // agrees the rank is plain dead, and a later
            // `repair_shard_server` may retry it.
            if !shard.repairing.is_empty() {
                let mut settled = Vec::new();
                let mut failed = Vec::new();
                'ranks: for &rank in &shard.repairing {
                    let mut any_failed = false;
                    for kc in &shard.clusters {
                        match kc.cluster.repair_reports().iter().find(|r| r.rank == rank) {
                            Some(report) if report.failed() => any_failed = true,
                            // Still pulling state somewhere (only reachable
                            // when a simulation hit its event cap) — leave
                            // the rank in `repairing` for the next run.
                            Some(report) if report.completed_at.is_none() => continue 'ranks,
                            _ => {}
                        }
                    }
                    if any_failed {
                        failed.push(rank);
                    } else {
                        settled.push(rank);
                    }
                }
                for rank in settled {
                    shard.repairing.remove(&rank);
                }
                for rank in failed {
                    shard.repairing.remove(&rank);
                    shard.downed.insert(rank);
                    for kc in &mut shard.clusters {
                        kc.cluster.crash_server_at(kc.cluster.now(), rank);
                    }
                }
            }
        }
        StoreRunOutcome {
            completed_tickets: self.outcomes.len(),
            pending_tickets: (self.next_ticket - 1) as usize - self.outcomes.len(),
            hit_event_cap,
        }
    }

    /// Drains every shard on the persistent worker pool: key clusters are
    /// moved out of their shards (the only mutable state a task touches),
    /// scheduled one task per cluster (`per_cluster`, the work-stealing
    /// runtime) or one task per shard (the threaded runtime), and reinstalled
    /// at their original `(shard, cluster-index)` slots once every task has
    /// reported back — so everything after the drain observes the same
    /// deterministic order the serial loop produces, whatever order the
    /// workers finished in.
    ///
    /// # Panics
    /// Panics if a worker task panicked (the underlying cluster simulation
    /// raised; its state is lost, so the store cannot continue).
    fn drain_on_pool(&mut self, per_cluster: bool) -> bool {
        let pool = self.pool.as_ref().expect("pool drain without a pool");
        let (tx, rx) = std::sync::mpsc::channel::<DrainedBatch>();
        let mut tasks: Vec<Task> = Vec::new();
        let mut staging: Vec<Vec<Option<KeyCluster>>> = Vec::with_capacity(self.shards.len());
        for shard in &mut self.shards {
            let clusters = std::mem::take(&mut shard.clusters);
            staging.push((0..clusters.len()).map(|_| None).collect());
            let shard_index = shard.index;
            if per_cluster {
                for (index, kc) in clusters.into_iter().enumerate() {
                    let tx = tx.clone();
                    let mut kc = kc;
                    tasks.push(Box::new(move || {
                        let hit_cap = kc.cluster.run_to_quiescence().hit_event_cap;
                        let _ = tx.send(DrainedBatch {
                            shard: shard_index,
                            first: index,
                            clusters: vec![kc],
                            hit_cap,
                        });
                    }));
                }
            } else if !clusters.is_empty() {
                let tx = tx.clone();
                tasks.push(Box::new(move || {
                    let mut clusters = clusters;
                    let mut hit_cap = false;
                    for kc in &mut clusters {
                        hit_cap |= kc.cluster.run_to_quiescence().hit_event_cap;
                    }
                    let _ = tx.send(DrainedBatch {
                        shard: shard_index,
                        first: 0,
                        clusters,
                        hit_cap,
                    });
                }));
            }
        }
        drop(tx);
        let expected = tasks.len();
        pool.submit(tasks);
        let mut hit_event_cap = false;
        for collected in 0..expected {
            // Results arrive in completion order; the staging slots restore
            // cluster order. A disconnect short of `expected` means a task
            // panicked instead of reporting (its queued siblings still ran
            // and their buffered results were received first).
            let batch = rx.recv().unwrap_or_else(|_| {
                panic!(
                    "a store worker task panicked while draining \
                     ({collected} of {expected} results collected, \
                     {} panics observed pool-lifetime)",
                    pool.panics()
                )
            });
            hit_event_cap |= batch.hit_cap;
            let slots = &mut staging[batch.shard];
            for (offset, kc) in batch.clusters.into_iter().enumerate() {
                slots[batch.first + offset] = Some(kc);
            }
        }
        for (shard, slots) in self.shards.iter_mut().zip(staging) {
            shard.clusters = slots
                .into_iter()
                .map(|slot| slot.expect("every drained cluster reports back exactly once"))
                .collect();
        }
        hit_event_cap
    }

    /// Crashes server ranks `0..count` in every cluster of `shard`, existing
    /// and future, after validating the shard's **dynamic** fault-tolerance
    /// invariant: at most [`ShardSpec::crash_budget`](crate::ShardSpec::crash_budget)
    /// (`= f`) servers simultaneously dead or under repair. A request that
    /// would exceed the budget is refused with
    /// [`StoreError::ExceedsCrashBudget`] and changes nothing — previously
    /// such a request silently wedged the shard with pending operations.
    pub fn crash_shard_servers(&mut self, shard: usize, count: usize) -> Result<(), StoreError> {
        self.crash_shard_ranks(shard, 0..count)
    }

    /// Crashes one specific server rank in every cluster of `shard`, existing
    /// and future, under the same validation as
    /// [`Self::crash_shard_servers`].
    pub fn crash_shard_server(&mut self, shard: usize, rank: usize) -> Result<(), StoreError> {
        self.crash_shard_ranks(shard, std::iter::once(rank))
    }

    fn crash_shard_ranks(
        &mut self,
        shard: usize,
        ranks: impl IntoIterator<Item = usize>,
    ) -> Result<(), StoreError> {
        let shards = self.shards.len();
        let s = self
            .shards
            .get_mut(shard)
            .ok_or(StoreError::ShardOutOfRange { shard, shards })?;
        let ranks: BTreeSet<usize> = ranks.into_iter().collect();
        if let Some(&rank) = ranks.iter().find(|&&r| r >= s.spec.n) {
            return Err(StoreError::RankOutOfRange {
                shard,
                rank,
                n: s.spec.n,
            });
        }
        let mut down_after: BTreeSet<usize> = s.downed.union(&s.repairing).copied().collect();
        down_after.extend(ranks.iter().copied());
        let tolerated = s.spec.crash_budget();
        if down_after.len() > tolerated {
            return Err(StoreError::ExceedsCrashBudget {
                shard,
                requested: down_after.len(),
                tolerated,
            });
        }
        for rank in ranks {
            if s.downed.insert(rank) {
                // Crashing a server that was mid-repair kills its replacement;
                // either way the rank is now plain dead.
                s.repairing.remove(&rank);
                for kc in &mut s.clusters {
                    kc.cluster.crash_server_at(kc.cluster.now(), rank);
                }
            }
        }
        Ok(())
    }

    /// Crashes server ranks `0..count` in every cluster of `shard` **without**
    /// the fault-tolerance validation of [`Self::crash_shard_servers`]. With
    /// `count > f` the shard loses its quorums: its operations stop
    /// completing (they stay pending), while other shards are unaffected.
    /// This is the adversarial entry point for tests that deliberately kill a
    /// shard.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn crash_shard_servers_unchecked(&mut self, shard: usize, count: usize) {
        assert!(shard < self.shards.len(), "shard {shard} out of range");
        let s = &mut self.shards[shard];
        for rank in 0..count.min(s.spec.n) {
            if s.downed.insert(rank) {
                s.repairing.remove(&rank);
                for kc in &mut s.clusters {
                    kc.cluster.crash_server_at(kc.cluster.now(), rank);
                }
            }
        }
    }

    /// Schedules the **repair** of a downed server rank in every existing
    /// cluster of `shard`: a fresh replacement with empty state takes over
    /// the rank and re-acquires its state from survivors (re-encoding fetched
    /// coded elements on SODA/SODAerr shards, adopting the majority maximum
    /// on ABD shards, full-replica state transfer on CAS/CASGC shards — see
    /// [`soda_registry::RegisterCluster::repair_server_at`]).
    ///
    /// The rank keeps counting against the crash budget until the next
    /// [`Self::run_until_quiescent`] observes every cluster's repair
    /// complete; after that the budget is free again, so a *different* rank
    /// can be crashed — the dynamic invariant the static `downed_servers`
    /// watermark could not express. Clusters created for new keys after the
    /// repair start healthy at this rank.
    pub fn repair_shard_server(&mut self, shard: usize, rank: usize) -> Result<(), StoreError> {
        let shards = self.shards.len();
        let s = self
            .shards
            .get_mut(shard)
            .ok_or(StoreError::ShardOutOfRange { shard, shards })?;
        if rank >= s.spec.n {
            return Err(StoreError::RankOutOfRange {
                shard,
                rank,
                n: s.spec.n,
            });
        }
        if !s.downed.remove(&rank) {
            return Err(StoreError::ServerNotDown { shard, rank });
        }
        s.repairing.insert(rank);
        for kc in &mut s.clusters {
            kc.cluster.repair_server_at(kc.cluster.now(), rank);
        }
        Ok(())
    }

    /// The ranks currently crashed on `shard` (repaired ranks have left the
    /// set).
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn shard_downed_servers(&self, shard: usize) -> Vec<usize> {
        self.shards[shard].downed.iter().copied().collect()
    }

    /// Servers on `shard` currently dead or still under repair — the quantity
    /// the dynamic fault-tolerance invariant bounds by the shard's crash
    /// budget.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn shard_dead_or_repairing(&self, shard: usize) -> usize {
        let s = &self.shards[shard];
        s.downed.len() + s.repairing.len()
    }

    /// The store-wide operation history, labeled by key, with every cluster's
    /// completed operations closed under its pending writes. Client ids are
    /// namespaced per cluster so the per-key projections are well-formed.
    pub fn keyed_history(&self) -> KeyedHistory {
        let mut history = KeyedHistory::new(Vec::new());
        for (shard_idx, shard) in self.shards.iter().enumerate() {
            for (key_idx, kc) in shard.clusters.iter().enumerate() {
                let namespace = ((shard_idx as u64) << 48) | (((key_idx as u64) & 0xFF_FFFF) << 24);
                for op in kc.cluster.closed_history(&[]).ops() {
                    history.push(KeyedOp {
                        key: kc.key.clone(),
                        client: namespace | (op.client & 0xFF_FFFF),
                        kind: op.kind,
                        invoked: op.invoked,
                        responded: op.responded,
                        value: op.value.clone(),
                        version: op.version,
                    });
                }
            }
        }
        history
    }

    /// Machine-checks atomicity of every key's projected history (atomic
    /// registers compose, so this is the store-level correctness condition).
    pub fn check_per_key_atomicity(&self) -> Result<(), KeyViolation> {
        self.keyed_history().check_each_key()
    }

    /// Per-shard and aggregate operation counts, message/storage costs and
    /// latency histograms.
    pub fn metrics(&self) -> StoreMetrics {
        let mut per_shard = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let mut m = ShardMetrics {
                shard: shard.index,
                protocol: shard.spec.kind.name(),
                keys: shard.clusters.len(),
                completed_puts: 0,
                completed_gets: 0,
                pending_tickets: 0,
                messages_sent: 0,
                messages_lost: 0,
                messages_partitioned: 0,
                data_bytes_sent: 0,
                stored_bytes: 0,
                put_latency: LatencyHistogram::default(),
                get_latency: LatencyHistogram::default(),
                repairs_completed: 0,
                repair_traffic_bytes: 0,
                repair_latency: LatencyHistogram::default(),
                repairs_failed: 0,
                decode_cache_hits: 0,
                decode_cache_misses: 0,
                decode_inversions: 0,
            };
            for kc in &shard.clusters {
                let stats = kc.cluster.stats();
                let cache = kc.cluster.decode_cache_stats();
                m.decode_cache_hits += cache.hits;
                m.decode_cache_misses += cache.misses;
                m.decode_inversions += cache.inversions;
                m.messages_sent += stats.messages_sent;
                m.messages_lost += stats.messages_lost;
                m.messages_partitioned += stats.messages_partitioned;
                m.data_bytes_sent += stats.data_bytes_sent;
                m.stored_bytes += kc.cluster.total_stored_bytes();
                m.pending_tickets += (kc.issued() - kc.settled()) as u64;
                for report in kc.cluster.repair_reports() {
                    m.repair_traffic_bytes += report.traffic_bytes;
                    if let Some(latency) = report.latency() {
                        m.repairs_completed += 1;
                        m.repair_latency.record(latency);
                    }
                    if report.failed() {
                        m.repairs_failed += 1;
                    }
                }
                for op in kc.cluster.completed_ops() {
                    match op.kind {
                        OpKind::Write => {
                            m.completed_puts += 1;
                            m.put_latency.record(op.latency());
                        }
                        OpKind::Read => {
                            m.completed_gets += 1;
                            m.get_latency.record(op.latency());
                        }
                    }
                }
            }
            per_shard.push(m);
        }
        let aggregate = StoreTotals::from_shards(&per_shard);
        StoreMetrics {
            per_shard,
            aggregate,
        }
    }

    /// Total simulated ticks advanced across all clusters (a deterministic
    /// "work" proxy usable by either runtime).
    pub fn total_simulated_ticks(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|s| s.clusters.iter())
            .map(|kc| kc.cluster.now().since(SimTime::from_ticks(0)))
            .sum()
    }
}
