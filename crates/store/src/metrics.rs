//! Store-level metrics: per-shard and aggregate operation counts,
//! message/storage costs, and latency histograms.

use std::fmt;

/// A power-of-two latency histogram over simulated ticks: bucket `i` counts
/// operations with latency in `[2^(i-1), 2^i)` (bucket 0 is latency 0).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 24],
    count: u64,
    total_ticks: u64,
    max_ticks: u64,
}

impl LatencyHistogram {
    /// Records one operation latency.
    pub fn record(&mut self, ticks: u64) {
        let bucket = (64 - u64::leading_zeros(ticks) as usize).min(self.buckets.len() - 1);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.total_ticks += ticks;
        self.max_ticks = self.max_ticks.max(ticks);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.total_ticks += other.total_ticks;
        self.max_ticks = self.max_ticks.max(other.max_ticks);
    }

    /// Number of recorded operations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in ticks (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ticks as f64 / self.count as f64
        }
    }

    /// Maximum recorded latency in ticks.
    pub fn max(&self) -> u64 {
        self.max_ticks
    }

    /// The smallest latency bound `2^i` such that at least `quantile` of the
    /// recorded operations finished within it (an upper bound on the
    /// quantile, at bucket resolution). Returns 0 when empty.
    pub fn quantile_bound(&self, quantile: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let threshold = (self.count as f64 * quantile.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0;
        for (i, &bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= threshold {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max_ticks
    }

    /// The raw buckets.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            out,
            "n={} mean={:.1} p99≤{} max={}",
            self.count,
            self.mean(),
            self.quantile_bound(0.99),
            self.max_ticks
        )
    }
}

/// Metrics for one shard, aggregated over all its per-key clusters.
#[derive(Clone, Debug)]
pub struct ShardMetrics {
    /// Shard index.
    pub shard: usize,
    /// Name of the protocol the shard runs.
    pub protocol: &'static str,
    /// Distinct keys placed on the shard so far.
    pub keys: usize,
    /// Completed put operations.
    pub completed_puts: u64,
    /// Completed get operations.
    pub completed_gets: u64,
    /// Tickets routed to this shard that have not completed.
    pub pending_tickets: u64,
    /// Messages sent by the shard's clusters.
    pub messages_sent: u64,
    /// Messages the network adversary dropped.
    pub messages_lost: u64,
    /// Messages cut by scheduled partition windows (deterministic outages,
    /// counted separately from the probabilistic `messages_lost`).
    pub messages_partitioned: u64,
    /// Object-value data bytes sent (the paper's communication cost,
    /// un-normalized).
    pub data_bytes_sent: u64,
    /// Object-value bytes currently stored across the shard's servers.
    pub stored_bytes: u64,
    /// Put latency histogram (simulated ticks).
    pub put_latency: LatencyHistogram,
    /// Get latency histogram (simulated ticks).
    pub get_latency: LatencyHistogram,
    /// Server repairs completed across the shard's clusters (replacement
    /// servers whose state re-acquisition from survivors finished).
    pub repairs_completed: u64,
    /// Repair bandwidth: bytes of value / coded-element data received by
    /// replacement servers while repairing. For SODA this is bounded by
    /// `(k + 2e) · ⌈size/k⌉` per repaired server per cluster — the
    /// erasure-coding advantage over full-replica transfer.
    pub repair_traffic_bytes: u64,
    /// Repair latency histogram (simulated ticks from repair start to
    /// completion).
    pub repair_latency: LatencyHistogram,
    /// Repairs that gave up with a typed error (survivors unreachable for
    /// the whole retry budget — e.g. behind a partition window). Failed
    /// repairs are retryable; this counts the give-ups, not the ranks.
    pub repairs_failed: u64,
    /// Decode-matrix cache hits across the shard's clusters (coded protocols
    /// only; replication shards report 0).
    pub decode_cache_hits: u64,
    /// Decode-matrix cache misses across the shard's clusters.
    pub decode_cache_misses: u64,
    /// Matrix inversions actually performed by the shard's erasure decoders.
    pub decode_inversions: u64,
}

/// Aggregate totals across all shards.
#[derive(Clone, Debug, Default)]
pub struct StoreTotals {
    /// Distinct keys store-wide.
    pub keys: usize,
    /// Completed puts store-wide.
    pub completed_puts: u64,
    /// Completed gets store-wide.
    pub completed_gets: u64,
    /// Pending tickets store-wide.
    pub pending_tickets: u64,
    /// Messages sent store-wide.
    pub messages_sent: u64,
    /// Adversary-dropped messages store-wide.
    pub messages_lost: u64,
    /// Partition-window-cut messages store-wide.
    pub messages_partitioned: u64,
    /// Data bytes sent store-wide.
    pub data_bytes_sent: u64,
    /// Stored bytes store-wide.
    pub stored_bytes: u64,
    /// Merged put latency histogram.
    pub put_latency: LatencyHistogram,
    /// Merged get latency histogram.
    pub get_latency: LatencyHistogram,
    /// Server repairs completed store-wide.
    pub repairs_completed: u64,
    /// Repair bandwidth store-wide.
    pub repair_traffic_bytes: u64,
    /// Merged repair latency histogram.
    pub repair_latency: LatencyHistogram,
    /// Repair give-ups store-wide.
    pub repairs_failed: u64,
    /// Decode-matrix cache hits store-wide.
    pub decode_cache_hits: u64,
    /// Decode-matrix cache misses store-wide.
    pub decode_cache_misses: u64,
    /// Matrix inversions performed store-wide.
    pub decode_inversions: u64,
}

impl StoreTotals {
    pub(crate) fn from_shards(shards: &[ShardMetrics]) -> Self {
        let mut totals = StoreTotals::default();
        for m in shards {
            totals.keys += m.keys;
            totals.completed_puts += m.completed_puts;
            totals.completed_gets += m.completed_gets;
            totals.pending_tickets += m.pending_tickets;
            totals.messages_sent += m.messages_sent;
            totals.messages_lost += m.messages_lost;
            totals.messages_partitioned += m.messages_partitioned;
            totals.data_bytes_sent += m.data_bytes_sent;
            totals.stored_bytes += m.stored_bytes;
            totals.put_latency.merge(&m.put_latency);
            totals.get_latency.merge(&m.get_latency);
            totals.repairs_completed += m.repairs_completed;
            totals.repair_traffic_bytes += m.repair_traffic_bytes;
            totals.repair_latency.merge(&m.repair_latency);
            totals.repairs_failed += m.repairs_failed;
            totals.decode_cache_hits += m.decode_cache_hits;
            totals.decode_cache_misses += m.decode_cache_misses;
            totals.decode_inversions += m.decode_inversions;
        }
        totals
    }

    /// Completed operations of both kinds.
    pub fn completed_ops(&self) -> u64 {
        self.completed_puts + self.completed_gets
    }
}

/// Per-shard metrics plus the aggregate, as returned by
/// [`crate::ShardedStore::metrics`].
#[derive(Clone, Debug)]
pub struct StoreMetrics {
    /// One entry per shard, in shard order.
    pub per_shard: Vec<ShardMetrics>,
    /// Totals across all shards.
    pub aggregate: StoreTotals,
}

/// Lifetime counters of the persistent worker pool behind
/// [`StoreRuntime::Threaded`](crate::StoreRuntime::Threaded) and
/// [`StoreRuntime::WorkStealing`](crate::StoreRuntime::WorkStealing), as
/// returned by [`crate::ShardedStore::pool_metrics`].
///
/// These are **scheduling** counters: unlike everything in [`StoreMetrics`],
/// which is derived from deterministic simulations and is bit-identical
/// across runtimes, `steals` and `busy_nanos` depend on which worker reached
/// which cluster first and vary run to run. `tasks_executed` is deterministic
/// for a fixed operation sequence (one task per key cluster per drain under
/// the work-stealing runtime, one per non-empty shard under the threaded
/// runtime).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolMetrics {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Tasks executed since the store was built (including panicked ones).
    pub tasks_executed: u64,
    /// Tasks a worker took from another worker's deque.
    pub steals: u64,
    /// Wall-clock nanoseconds workers spent inside task bodies, summed over
    /// workers (so up to `workers ×` the drain's wall-clock time).
    pub busy_nanos: u64,
}

impl PoolMetrics {
    /// Wall-clock time workers spent executing tasks, summed over workers.
    pub fn busy(&self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.busy_nanos)
    }
}

impl fmt::Display for PoolMetrics {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            out,
            "workers={} tasks={} steals={} busy={:.1?}",
            self.workers,
            self.tasks_executed,
            self.steals,
            self.busy()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_records_and_merges() {
        let mut a = LatencyHistogram::default();
        a.record(0);
        a.record(3);
        a.record(100);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 100);
        assert!((a.mean() - 103.0 / 3.0).abs() < 1e-9);

        let mut b = LatencyHistogram::default();
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.max(), 1000);
        // All four ops finished within 2^10 = 1024 ticks.
        assert!(a.quantile_bound(1.0) <= 1024);
        // Buckets: 0 → bucket 0; 3 → bucket 2; 100 → bucket 7; 1000 → 10.
        assert_eq!(a.buckets()[0], 1);
        assert_eq!(a.buckets()[2], 1);
        assert_eq!(a.buckets()[7], 1);
        assert_eq!(a.buckets()[10], 1);
    }

    #[test]
    fn empty_histogram_is_benign() {
        let h = LatencyHistogram::default();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile_bound(0.5), 0);
        assert!(h.to_string().contains("n=0"));
    }

    #[test]
    fn totals_sum_shards() {
        let shard = |i: usize, puts: u64| ShardMetrics {
            shard: i,
            protocol: "SODA",
            keys: 2,
            completed_puts: puts,
            completed_gets: 1,
            pending_tickets: 0,
            messages_sent: 10,
            messages_lost: 1,
            messages_partitioned: 2,
            data_bytes_sent: 100,
            stored_bytes: 50,
            put_latency: LatencyHistogram::default(),
            get_latency: LatencyHistogram::default(),
            repairs_completed: 1,
            repair_traffic_bytes: 30,
            repair_latency: LatencyHistogram::default(),
            repairs_failed: 1,
            decode_cache_hits: 9,
            decode_cache_misses: 1,
            decode_inversions: 1,
        };
        let totals = StoreTotals::from_shards(&[shard(0, 3), shard(1, 4)]);
        assert_eq!(totals.keys, 4);
        assert_eq!(totals.completed_puts, 7);
        assert_eq!(totals.completed_ops(), 9);
        assert_eq!(totals.messages_sent, 20);
        assert_eq!(totals.messages_partitioned, 4);
        assert_eq!(totals.stored_bytes, 100);
        assert_eq!(totals.repairs_completed, 2);
        assert_eq!(totals.repair_traffic_bytes, 60);
        assert_eq!(totals.repairs_failed, 2);
        assert_eq!(totals.decode_cache_hits, 18);
        assert_eq!(totals.decode_cache_misses, 2);
        assert_eq!(totals.decode_inversions, 2);
    }
}
