//! The persistent worker pool behind the store's parallel runtimes.
//!
//! [`crate::StoreBuilder`] creates one [`WorkerPool`] when the store is built
//! (never per drain — the old threaded runtime re-spawned one OS thread per
//! shard on *every* `run_until_quiescent` call). Workers live as long as the
//! store and park on a condvar between drains.
//!
//! Scheduling follows the chase-lev work-stealing discipline, implemented
//! std-only because the workspace vendors no crossbeam and the store crate
//! forbids unsafe code: every worker owns one double-ended queue, pushes and
//! pops at the back (newest first, likely cache-warm), and steals from the
//! *front* of another worker's queue when its own runs dry (oldest first, the
//! task its owner is furthest from reaching). A mutex per deque stands in for
//! the lock-free bottom/top indices of the real thing; tasks here are whole
//! cluster simulations, so queue operations are noise next to task bodies.
//!
//! Determinism is unaffected by any of this: a task owns its key cluster
//! outright while it runs (no shard state is shared), each cluster is a
//! self-contained deterministic simulation, and the store reinstalls and
//! harvests results in `(shard, cluster-index)` order after the pool drains.
//! Which worker ran which cluster first is the *only* nondeterminism, and it
//! is visible only in the [`PoolMetrics`] counters.

use crate::metrics::PoolMetrics;
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// A unit of pool work: run one key cluster (or one shard's whole batch) to
/// quiescence and report back through the channel the task captured.
pub(crate) type Task = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the pool handle and its workers.
struct PoolShared {
    /// One deque per worker; see the module docs for the stealing discipline.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Tasks pushed but not yet taken, across all queues. Lets sleepy workers
    /// notice work without locking every queue.
    queued: AtomicUsize,
    /// Workers park on this pair when every queue is empty.
    idle: Mutex<()>,
    work_ready: Condvar,
    shutdown: AtomicBool,
    /// Tasks whose body panicked. The submitter re-raises once its result
    /// channel disconnects short of the expected count.
    panics: AtomicUsize,
    tasks_executed: AtomicU64,
    steals: AtomicU64,
    busy_nanos: AtomicU64,
}

/// A fixed-size pool of persistent worker threads with work-stealing deques.
/// Dropping the pool shuts the workers down and joins them.
pub(crate) struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` (at least one) persistent worker threads.
    pub(crate) fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            queued: AtomicUsize::new(0),
            idle: Mutex::new(()),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            panics: AtomicUsize::new(0),
            tasks_executed: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("soda-store-worker-{index}"))
                    .spawn(move || worker_loop(index, &shared))
                    .expect("spawning a store worker thread")
            })
            .collect();
        WorkerPool {
            shared,
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub(crate) fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Distributes `tasks` round-robin across the worker deques and wakes
    /// every worker. Returns immediately; completion is observed through
    /// whatever channel the tasks capture.
    pub(crate) fn submit(&self, tasks: Vec<Task>) {
        if tasks.is_empty() {
            return;
        }
        let count = tasks.len();
        let queues = self.shared.queues.len();
        for (i, task) in tasks.into_iter().enumerate() {
            self.shared.queues[i % queues]
                .lock()
                .expect("worker queue poisoned")
                .push_back(task);
        }
        self.shared.queued.fetch_add(count, Ordering::Release);
        // Notify while holding the idle lock: every worker is then either
        // before its own emptiness re-check (it will observe `queued > 0`) or
        // already waiting (the notification reaches it) — no missed wakeups.
        let _idle = self.shared.idle.lock().expect("idle lock poisoned");
        self.shared.work_ready.notify_all();
    }

    /// Tasks whose body panicked since the pool was created.
    pub(crate) fn panics(&self) -> usize {
        self.shared.panics.load(Ordering::Acquire)
    }

    /// Lifetime scheduling counters.
    pub(crate) fn metrics(&self) -> PoolMetrics {
        PoolMetrics {
            workers: self.workers.len(),
            tasks_executed: self.shared.tasks_executed.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            busy_nanos: self.shared.busy_nanos.load(Ordering::Relaxed),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _idle = self.shared.idle.lock().expect("idle lock poisoned");
            self.shared.work_ready.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(index: usize, shared: &PoolShared) {
    loop {
        if let Some(task) = take_task(index, shared) {
            let started = Instant::now();
            // A panicking task must not take the whole pool (and every
            // following drain) down with it; the drain that submitted the
            // task re-raises when its results come up short.
            if std::panic::catch_unwind(AssertUnwindSafe(task)).is_err() {
                shared.panics.fetch_add(1, Ordering::Release);
            }
            shared
                .busy_nanos
                .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
            shared.tasks_executed.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        let idle = shared.idle.lock().expect("idle lock poisoned");
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if shared.queued.load(Ordering::Acquire) > 0 {
            continue; // work arrived between the scan and the lock
        }
        drop(
            shared
                .work_ready
                .wait(idle)
                .expect("idle lock poisoned while waiting"),
        );
    }
}

/// Pops the newest task of the worker's own deque, or steals the oldest task
/// of another worker's, scanning ring-order from the right-hand neighbor.
fn take_task(index: usize, shared: &PoolShared) -> Option<Task> {
    let n = shared.queues.len();
    for offset in 0..n {
        let victim = (index + offset) % n;
        let task = {
            let mut queue = shared.queues[victim].lock().expect("worker queue poisoned");
            if offset == 0 {
                queue.pop_back()
            } else {
                queue.pop_front()
            }
        };
        if let Some(task) = task {
            shared.queued.fetch_sub(1, Ordering::Release);
            if offset != 0 {
                shared.steals.fetch_add(1, Ordering::Relaxed);
            }
            return Some(task);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = WorkerPool::new(3);
        let (tx, rx) = channel();
        let tasks: Vec<Task> = (0..64u64)
            .map(|i| {
                let tx = tx.clone();
                Box::new(move || tx.send(i).unwrap()) as Task
            })
            .collect();
        drop(tx);
        pool.submit(tasks);
        let mut seen: Vec<u64> = rx.iter().take(64).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..64).collect::<Vec<_>>());
        let m = pool.metrics();
        assert_eq!(m.tasks_executed, 64);
        assert_eq!(m.workers, 3);
    }

    #[test]
    fn survives_repeated_drains_and_a_panicking_task() {
        let pool = WorkerPool::new(2);
        for round in 0..3u64 {
            let (tx, rx) = channel();
            let mut tasks: Vec<Task> = (0..8u64)
                .map(|i| {
                    let tx = tx.clone();
                    Box::new(move || tx.send(round * 100 + i).unwrap()) as Task
                })
                .collect();
            if round == 1 {
                tasks.push(Box::new(|| panic!("task panic must stay contained")));
            }
            drop(tx);
            pool.submit(tasks);
            assert_eq!(rx.iter().count(), 8, "round {round}");
        }
        assert_eq!(pool.panics(), 1);
        assert_eq!(pool.metrics().tasks_executed, 25);
    }

    #[test]
    fn zero_workers_is_clamped_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.num_workers(), 1);
        let (tx, rx) = channel();
        pool.submit(vec![Box::new(move || tx.send(7u32).unwrap()) as Task]);
        assert_eq!(rx.recv().unwrap(), 7);
    }
}
