//! Consistent-hash placement of a byte-string keyspace onto shards.
//!
//! The map is an explicit, inspectable ring of virtual nodes rather than a
//! closed-form `hash(key) % shards`, so a later rebalancing PR can move
//! individual ring points between shards (and stream the affected keys)
//! without rehashing the whole keyspace. With `V` virtual nodes per shard the
//! expected keyspace share of each shard concentrates around `1/S` with
//! relative deviation `O(1/√V)`.

/// 64-bit FNV-1a — the store's only hashing need is deterministic, seedable
/// dispersion (no adversarial collision resistance), and the container has no
/// crates.io hashers.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The ring: sorted virtual-node points, each owned by a shard.
///
/// A key is placed on the shard owning the first point clockwise of the key's
/// hash (wrapping at the top of the 64-bit space).
#[derive(Clone, Debug)]
pub struct ShardMap {
    /// `(ring position, shard index)`, sorted by position.
    points: Vec<(u64, u32)>,
    shards: usize,
    vnodes_per_shard: usize,
}

impl ShardMap {
    /// Builds the ring for `shards` shards with `vnodes_per_shard` virtual
    /// nodes each. Positions are derived from the shard/vnode indices alone,
    /// so every store with the same shape agrees on placement.
    ///
    /// # Panics
    /// Panics if `shards` or `vnodes_per_shard` is zero.
    pub fn new(shards: usize, vnodes_per_shard: usize) -> Self {
        assert!(shards > 0, "a shard map needs at least one shard");
        assert!(vnodes_per_shard > 0, "each shard needs at least one vnode");
        let mut points = Vec::with_capacity(shards * vnodes_per_shard);
        for shard in 0..shards {
            for vnode in 0..vnodes_per_shard {
                let mut label = Vec::with_capacity(17);
                label.extend_from_slice(&(shard as u64).to_le_bytes());
                label.push(b'/');
                label.extend_from_slice(&(vnode as u64).to_le_bytes());
                points.push((fnv1a(&label), shard as u32));
            }
        }
        points.sort_unstable();
        points.dedup_by_key(|p| p.0);
        ShardMap {
            points,
            shards,
            vnodes_per_shard,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Virtual nodes per shard the ring was built with.
    pub fn vnodes_per_shard(&self) -> usize {
        self.vnodes_per_shard
    }

    /// The ring points, sorted by position: `(position, shard)`.
    pub fn points(&self) -> &[(u64, u32)] {
        &self.points
    }

    /// The shard responsible for `key`.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        let h = fnv1a(key);
        let idx = match self.points.binary_search(&(h, 0)) {
            Ok(i) => i,
            Err(i) if i == self.points.len() => 0, // wrap past the top
            Err(i) => i,
        };
        self.points[idx].1 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic_and_in_range() {
        let map = ShardMap::new(8, 16);
        for i in 0..1000 {
            let key = format!("key-{i}");
            let a = map.shard_of(key.as_bytes());
            let b = map.shard_of(key.as_bytes());
            assert_eq!(a, b);
            assert!(a < 8);
        }
    }

    #[test]
    fn every_shard_owns_a_slice_of_the_keyspace() {
        let map = ShardMap::new(8, 32);
        let mut hit = vec![0usize; 8];
        for i in 0..4000 {
            hit[map.shard_of(format!("k{i}").as_bytes())] += 1;
        }
        for (shard, &count) in hit.iter().enumerate() {
            assert!(count > 0, "shard {shard} owns no keys out of 4000");
        }
        // With 32 vnodes the spread should be within a factor ~4 of uniform.
        let max = *hit.iter().max().unwrap();
        let min = *hit.iter().min().unwrap();
        assert!(max < min * 6, "spread too skewed: {hit:?}");
    }

    #[test]
    fn more_vnodes_balance_better() {
        let skew = |vnodes: usize| {
            let map = ShardMap::new(4, vnodes);
            let mut hit = [0usize; 4];
            for i in 0..8000 {
                hit[map.shard_of(format!("obj/{i}").as_bytes())] += 1;
            }
            *hit.iter().max().unwrap() as f64 / (8000.0 / 4.0)
        };
        assert!(skew(64) <= skew(1) + 0.05, "vnodes should not hurt balance");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        ShardMap::new(0, 4);
    }

    #[test]
    fn single_shard_owns_everything() {
        let map = ShardMap::new(1, 4);
        assert_eq!(map.shard_of(b"anything"), 0);
        assert_eq!(map.shard_of(b""), 0);
    }
}
