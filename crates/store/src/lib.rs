//! A sharded, multi-object atomic KV store layered over the register
//! protocols.
//!
//! The paper (and the rest of this workspace) emulates a *single* atomic
//! register per cluster. A store serving a real keyspace needs the layer this
//! crate provides — the layering CASGC's multi-object composition argument
//! (Cadambe et al.) and RADON-style deployments assume:
//!
//! * [`ShardMap`] — a byte-string keyspace placed onto `S` shards by
//!   consistent hashing over an explicit ring of virtual nodes (inspectable,
//!   so a future rebalancing PR can move ring points without rehashing the
//!   world).
//! * [`StoreBuilder`] / [`ShardSpec`] — each shard is a register-cluster
//!   fleet with its *own* protocol choice ([`soda_registry::ProtocolKind`]
//!   per shard; mixed SODA/ABD/CAS fleets in one store are legal), fault
//!   plan, network model and client-handle shape. Every key placed on a
//!   shard gets its own register cluster built from the shard's spec —
//!   atomic objects compose, so per-key registers give per-key atomicity by
//!   construction, and the store machine-checks it after the fact.
//! * [`ShardedStore`] — the batched, async-flavored client API: [`put`],
//!   [`get`], [`multi_get`] and [`put_batch`] return [`Ticket`]s immediately;
//!   [`run_until_quiescent`] drains every shard (serially under
//!   [`StoreRuntime::Simulation`]; one pool task per shard under
//!   [`StoreRuntime::Threaded`]; one pool task per **key cluster** under
//!   [`StoreRuntime::WorkStealing`], so a single hot shard scales with
//!   cores); [`poll`] redeems tickets. Histories are bit-identical across
//!   all three runtimes — the parallel ones run on a persistent
//!   work-stealing worker pool created at build time, with [`PoolMetrics`]
//!   exposing its scheduling counters.
//! * [`StoreMetrics`] — per-shard and aggregate op counts, message/storage
//!   cost and latency histograms, assembled from the clusters'
//!   [`soda_simnet::Stats`] and operation records.
//! * [`ShardedStore::check_per_key_atomicity`] — projects the store-wide
//!   history per key ([`soda_consistency::KeyedHistory`]) and runs the
//!   tag-based atomicity checker over every projection.
//!
//! [`put`]: ShardedStore::put
//! [`get`]: ShardedStore::get
//! [`multi_get`]: ShardedStore::multi_get
//! [`put_batch`]: ShardedStore::put_batch
//! [`run_until_quiescent`]: ShardedStore::run_until_quiescent
//! [`poll`]: ShardedStore::poll
//!
//! # Quick start
//!
//! ```
//! use soda_registry::ProtocolKind;
//! use soda_store::{StoreBuilder, StoreRuntime};
//!
//! // 4 shards: two SODA, one ABD, one CASGC — a mixed fleet.
//! let mut store = StoreBuilder::new(4, ProtocolKind::Soda, 5, 2)
//!     .with_shard_kind(2, ProtocolKind::Abd)
//!     .with_shard_kind(3, ProtocolKind::Casgc { gc: 2 })
//!     .with_seed(42)
//!     .build()
//!     .unwrap();
//!
//! let tickets = store.put_batch(vec![
//!     (b"user:1".to_vec(), b"ada".to_vec()),
//!     (b"user:2".to_vec(), b"grace".to_vec()),
//! ]);
//! store.run_until_quiescent();
//! assert!(tickets.iter().all(|&t| store.poll(t).is_done()));
//!
//! let get = store.get(b"user:2".to_vec());
//! store.run_until_quiescent();
//! assert_eq!(store.poll(get).value(), Some(b"grace".as_slice()));
//!
//! store.check_per_key_atomicity().unwrap();
//! let metrics = store.metrics();
//! assert_eq!(metrics.aggregate.completed_ops(), 3);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod builder;
mod map;
mod metrics;
mod pool;
mod store;

pub use builder::{ShardPartition, ShardSpec, StoreBuildError, StoreBuilder, StoreRuntime};
pub use map::ShardMap;
pub use metrics::{LatencyHistogram, PoolMetrics, ShardMetrics, StoreMetrics, StoreTotals};
pub use store::{OpOutcome, ShardedStore, StoreError, StoreRunOutcome, Ticket, TicketStatus};
