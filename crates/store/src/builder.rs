//! Validated construction of a [`ShardedStore`].

use crate::map::ShardMap;
use crate::store::ShardedStore;
use soda_registry::{BuildError, ClusterBuilder, ProtocolKind};
use soda_simnet::{NetFaultPlan, NetworkConfig, Partition, ProcessId, SimTime};
use std::error::Error;
use std::fmt;

/// Which backend drives the shards when the store runs.
///
/// All three produce **bit-identical** per-key histories and
/// [`StoreMetrics`](crate::StoreMetrics): every key's cluster is a
/// self-contained deterministic simulation, so the runtimes only decide
/// *where* each cluster executes, never what it computes. The
/// runtime-conformance tests in `crates/store/tests` assert this under
/// crashes, partitions and repairs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StoreRuntime {
    /// Every shard is stepped serially on the calling thread, in shard order.
    /// Fully deterministic: the same store, seed and operation sequence
    /// reproduce the same histories, which is what tests and the adversarial
    /// exploration campaigns need.
    #[default]
    Simulation,
    /// Each shard is one task on the store's persistent worker pool, so
    /// disjoint shards drain in parallel (shards are independent, so this is
    /// safe parallelism). Degrades to the serial loop on single-shard stores
    /// and single-hardware-thread hosts, where threads buy nothing. A
    /// hot-shard workload (few shards, many keys) stays serial *within* each
    /// shard — that is what [`StoreRuntime::WorkStealing`] is for.
    Threaded,
    /// Schedules at `(shard, key cluster)` granularity: every key's cluster
    /// is its own task on the persistent work-stealing pool, so throughput
    /// scales with cores even on a **single** shard — the hot-shard shape the
    /// per-shard threaded runtime serializes. Workers steal tasks from each
    /// other when their own queues run dry, so skewed key populations still
    /// balance. See [`crate::PoolMetrics`] for the pool counters.
    WorkStealing {
        /// Worker threads in the pool. `0` means one per hardware thread
        /// (degrading to the serial loop on single-threaded hosts); an
        /// explicit count is honored as given, which lets tests exercise the
        /// pool machinery regardless of the host's core count.
        workers: usize,
    },
}

/// A scheduled partition window on one shard: the named server `ranks` are
/// unreachable from **every other process** of each key's cluster (surviving
/// servers and all client handles, both directions) during `[start, end)`
/// simulated ticks, after which the links heal.
///
/// Converted into [`soda_simnet::Partition::split`] link windows when each
/// key's cluster is built, so the cuts are deterministic — they consume no
/// randomness and leave the rest of the schedule untouched (see
/// [`soda_simnet::LinkWindow`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPartition {
    /// Server ranks isolated by the window.
    pub ranks: Vec<usize>,
    /// First tick of the outage (inclusive).
    pub start: u64,
    /// First tick after the heal (exclusive end).
    pub end: u64,
}

impl ShardPartition {
    /// A window isolating `ranks` during `[start, end)`.
    pub fn new(ranks: Vec<usize>, start: u64, end: u64) -> Self {
        ShardPartition { ranks, start, end }
    }
}

/// Per-shard configuration: the register-cluster shape every key placed on
/// the shard is built with.
#[derive(Clone, Debug)]
pub struct ShardSpec {
    /// The register protocol this shard runs.
    pub kind: ProtocolKind,
    /// Servers per register cluster.
    pub n: usize,
    /// Tolerated server crashes per register cluster.
    pub f: usize,
    /// Writer handles per key.
    pub writers_per_key: usize,
    /// Reader handles per key.
    pub readers_per_key: usize,
    /// Message delay model for the shard's clusters.
    pub network: NetworkConfig,
    /// Network adversary applied to every cluster of the shard.
    pub net_faults: NetFaultPlan,
    /// Byzantine (element-corrupting) server ranks (SODA family only).
    pub byzantine_servers: Vec<usize>,
    /// Scheduled partition windows applied to every cluster of the shard.
    pub partitions: Vec<ShardPartition>,
    /// **Test-only.** Sub-majority quorum override for ABD shards (rejected
    /// at `build` for every other kind) — deliberately breaks atomicity so
    /// the store-level exploration harness and its shrinker can be validated
    /// against a known-broken protocol.
    pub unsound_quorum: Option<usize>,
}

impl ShardSpec {
    /// How many of the shard's servers may be simultaneously dead or under
    /// repair without wedging the shard: the declared crash tolerance `f`.
    ///
    /// This is the *dynamic* budget — repairing a server returns it to the
    /// budget once the repair completes, so a long-lived shard can survive
    /// far more than `f` crashes in total. For SODAerr the corruption budget
    /// `e` is already priced into the code dimension (`k = n − f − 2e`), so
    /// its crash budget is still `f`: reads need `k + 2e = n − f` responders,
    /// and corrupting servers keep responding.
    pub fn crash_budget(&self) -> usize {
        self.f
    }

    /// The representative [`ClusterBuilder`] for this spec (used both for
    /// validation and for building each key's cluster).
    pub(crate) fn cluster_builder(&self, seed: u64) -> ClusterBuilder {
        let mut plan = self.net_faults.clone();
        if !self.partitions.is_empty() {
            // Servers are ProcessId(0..n), client handles follow — true for
            // all five protocols' process layouts.
            let total = self.n + self.writers_per_key + self.readers_per_key;
            for window in &self.partitions {
                let isolated: Vec<ProcessId> =
                    window.ranks.iter().map(|&r| ProcessId(r as u32)).collect();
                let rest: Vec<ProcessId> = (0..total as u32)
                    .map(ProcessId)
                    .filter(|pid| !isolated.contains(pid))
                    .collect();
                plan = plan.with_partition(Partition::split(
                    &[isolated, rest],
                    SimTime::from_ticks(window.start),
                    SimTime::from_ticks(window.end),
                ));
            }
        }
        let mut builder = ClusterBuilder::new(self.kind, self.n, self.f)
            .with_seed(seed)
            .with_clients(self.writers_per_key, self.readers_per_key)
            .with_network(self.network.clone())
            .with_net_faults(plan);
        if !self.byzantine_servers.is_empty() {
            builder = builder.with_byzantine_servers(self.byzantine_servers.clone());
        }
        if let Some(quorum) = self.unsound_quorum {
            builder = builder.with_unsound_quorum(quorum);
        }
        builder
    }
}

/// Why a [`StoreBuilder`] refused to build.
#[derive(Debug)]
pub enum StoreBuildError {
    /// The store has no shards.
    NoShards,
    /// `with_shard_kinds` was given a list whose length is not the shard
    /// count.
    ShardKindsLength {
        /// Number of shards the store was created with.
        shards: usize,
        /// Length of the provided kind list.
        kinds: usize,
    },
    /// A per-shard method named a shard that does not exist.
    ShardOutOfRange {
        /// The offending shard index.
        shard: usize,
        /// Number of shards.
        shards: usize,
    },
    /// A shard's cluster parameters failed [`ClusterBuilder`] validation.
    Shard {
        /// The offending shard index.
        shard: usize,
        /// The underlying cluster-builder error.
        source: BuildError,
    },
    /// A [`ShardPartition`] names a server rank the shard does not have.
    PartitionRankOutOfRange {
        /// The offending shard index.
        shard: usize,
        /// The out-of-range rank.
        rank: usize,
        /// Servers per cluster on that shard.
        n: usize,
    },
    /// A [`ShardPartition`] window is empty (`start >= end`) or isolates no
    /// ranks — it could never cut a link, so it is almost certainly a typo.
    PartitionEmptyWindow {
        /// The offending shard index.
        shard: usize,
        /// The window's start tick.
        start: u64,
        /// The window's end tick.
        end: u64,
    },
}

impl fmt::Display for StoreBuildError {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreBuildError::NoShards => write!(out, "store needs at least one shard"),
            StoreBuildError::ShardKindsLength { shards, kinds } => write!(
                out,
                "with_shard_kinds got {kinds} kinds for {shards} shards (lengths must match)"
            ),
            StoreBuildError::ShardOutOfRange { shard, shards } => {
                write!(out, "shard {shard} out of range for {shards} shards")
            }
            StoreBuildError::Shard { shard, source } => {
                write!(out, "shard {shard}: {source}")
            }
            StoreBuildError::PartitionRankOutOfRange { shard, rank, n } => write!(
                out,
                "shard {shard}: partition isolates rank {rank} but clusters have {n} servers"
            ),
            StoreBuildError::PartitionEmptyWindow { shard, start, end } => write!(
                out,
                "shard {shard}: partition window [{start}, {end}) isolates nothing"
            ),
        }
    }
}

impl Error for StoreBuildError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreBuildError::Shard { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Builds a [`ShardedStore`]: `S` shards, each a register-cluster fleet with
/// its own protocol choice, placed under one consistent-hash keyspace.
///
/// ```
/// use soda_registry::ProtocolKind;
/// use soda_store::StoreBuilder;
///
/// let mut store = StoreBuilder::new(4, ProtocolKind::Soda, 5, 2)
///     .with_seed(7)
///     .build()
///     .unwrap();
/// let put = store.put(b"user:1".to_vec(), b"ada".to_vec());
/// let get = store.get(b"user:1".to_vec());
/// store.run_until_quiescent();
/// assert!(store.poll(put).is_done());
/// assert_eq!(store.poll(get).value(), Some(b"ada".as_slice()));
/// store.check_per_key_atomicity().unwrap();
/// ```
#[derive(Clone, Debug)]
pub struct StoreBuilder {
    specs: Vec<ShardSpec>,
    vnodes_per_shard: usize,
    seed: u64,
    runtime: StoreRuntime,
    errors: Vec<StoreBuildErrorKind>,
}

/// Deferred-error bookkeeping so the chained builder methods stay infallible
/// (errors surface at `build`, like `ClusterBuilder`).
#[derive(Clone, Debug)]
enum StoreBuildErrorKind {
    ShardKindsLength { kinds: usize },
    ShardOutOfRange { shard: usize },
}

impl StoreBuilder {
    /// A store of `shards` shards, all running `kind` clusters of `n` servers
    /// tolerating `f` crashes, with one writer and one reader handle per key,
    /// 16 virtual nodes per shard, seed 0 and the deterministic
    /// [`StoreRuntime::Simulation`] backend.
    pub fn new(shards: usize, kind: ProtocolKind, n: usize, f: usize) -> Self {
        let spec = ShardSpec {
            kind,
            n,
            f,
            writers_per_key: 1,
            readers_per_key: 1,
            network: NetworkConfig::uniform(10),
            net_faults: NetFaultPlan::none(),
            byzantine_servers: Vec::new(),
            partitions: Vec::new(),
            unsound_quorum: None,
        };
        StoreBuilder {
            specs: vec![spec; shards],
            vnodes_per_shard: 16,
            seed: 0,
            runtime: StoreRuntime::Simulation,
            errors: Vec::new(),
        }
    }

    /// Sets the store seed (mixed with each key's hash to derive per-cluster
    /// simulation seeds).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of virtual nodes per shard on the placement ring.
    pub fn with_vnodes(mut self, vnodes_per_shard: usize) -> Self {
        self.vnodes_per_shard = vnodes_per_shard.max(1);
        self
    }

    /// Selects the execution backend.
    pub fn with_runtime(mut self, runtime: StoreRuntime) -> Self {
        self.runtime = runtime;
        self
    }

    /// Gives every shard its own protocol (`kinds[i]` for shard `i`) — mixed
    /// fleets in one store. The list length must equal the shard count.
    pub fn with_shard_kinds(mut self, kinds: Vec<ProtocolKind>) -> Self {
        if kinds.len() != self.specs.len() {
            self.errors
                .push(StoreBuildErrorKind::ShardKindsLength { kinds: kinds.len() });
            return self;
        }
        for (spec, kind) in self.specs.iter_mut().zip(kinds) {
            spec.kind = kind;
        }
        self
    }

    /// Overrides one shard's protocol.
    pub fn with_shard_kind(mut self, shard: usize, kind: ProtocolKind) -> Self {
        match self.specs.get_mut(shard) {
            Some(spec) => spec.kind = kind,
            None => self
                .errors
                .push(StoreBuildErrorKind::ShardOutOfRange { shard }),
        }
        self
    }

    /// Sets writer/reader handles per key, for every shard.
    pub fn with_clients_per_key(mut self, writers: usize, readers: usize) -> Self {
        for spec in &mut self.specs {
            spec.writers_per_key = writers;
            spec.readers_per_key = readers;
        }
        self
    }

    /// Sets the message delay model for every shard.
    pub fn with_network(mut self, network: NetworkConfig) -> Self {
        for spec in &mut self.specs {
            spec.network = network.clone();
        }
        self
    }

    /// Installs a network adversary on every shard.
    pub fn with_net_faults(mut self, plan: NetFaultPlan) -> Self {
        for spec in &mut self.specs {
            spec.net_faults = plan.clone();
        }
        self
    }

    /// Installs a network adversary on one shard only.
    pub fn with_shard_net_faults(mut self, shard: usize, plan: NetFaultPlan) -> Self {
        match self.specs.get_mut(shard) {
            Some(spec) => spec.net_faults = plan,
            None => self
                .errors
                .push(StoreBuildErrorKind::ShardOutOfRange { shard }),
        }
        self
    }

    /// Schedules a partition window on one shard: the named server ranks are
    /// cut off from every other process of each key's cluster during
    /// `[start, end)` ticks, healing at `end`. Windows may be stacked (call
    /// repeatedly) and overlap freely. Rejected at `build` if a rank is out
    /// of range or the window is empty.
    pub fn with_shard_partition(
        mut self,
        shard: usize,
        ranks: Vec<usize>,
        start: u64,
        end: u64,
    ) -> Self {
        match self.specs.get_mut(shard) {
            Some(spec) => spec.partitions.push(ShardPartition::new(ranks, start, end)),
            None => self
                .errors
                .push(StoreBuildErrorKind::ShardOutOfRange { shard }),
        }
        self
    }

    /// Marks byzantine servers on one shard (SODA-family shards only;
    /// rejected at `build` otherwise).
    pub fn with_shard_byzantine(mut self, shard: usize, ranks: Vec<usize>) -> Self {
        match self.specs.get_mut(shard) {
            Some(spec) => spec.byzantine_servers = ranks,
            None => self
                .errors
                .push(StoreBuildErrorKind::ShardOutOfRange { shard }),
        }
        self
    }

    /// **Test-only.** Overrides the ABD quorum size on every shard, below
    /// majority if asked (see [`ShardSpec::unsound_quorum`]). Rejected at
    /// `build` unless every shard runs ABD.
    pub fn with_unsound_quorum(mut self, quorum: usize) -> Self {
        for spec in &mut self.specs {
            spec.unsound_quorum = Some(quorum);
        }
        self
    }

    /// Checks every shard's parameters without building anything.
    pub fn validate(&self) -> Result<(), StoreBuildError> {
        if let Some(err) = self.errors.first() {
            return Err(match *err {
                StoreBuildErrorKind::ShardKindsLength { kinds } => {
                    StoreBuildError::ShardKindsLength {
                        shards: self.specs.len(),
                        kinds,
                    }
                }
                StoreBuildErrorKind::ShardOutOfRange { shard } => {
                    StoreBuildError::ShardOutOfRange {
                        shard,
                        shards: self.specs.len(),
                    }
                }
            });
        }
        if self.specs.is_empty() {
            return Err(StoreBuildError::NoShards);
        }
        for (shard, spec) in self.specs.iter().enumerate() {
            for window in &spec.partitions {
                if window.start >= window.end || window.ranks.is_empty() {
                    return Err(StoreBuildError::PartitionEmptyWindow {
                        shard,
                        start: window.start,
                        end: window.end,
                    });
                }
                if let Some(&rank) = window.ranks.iter().find(|&&r| r >= spec.n) {
                    return Err(StoreBuildError::PartitionRankOutOfRange {
                        shard,
                        rank,
                        n: spec.n,
                    });
                }
            }
            spec.cluster_builder(0)
                .validate()
                .map_err(|source| StoreBuildError::Shard { shard, source })?;
        }
        Ok(())
    }

    /// Builds the store.
    pub fn build(self) -> Result<ShardedStore, StoreBuildError> {
        self.validate()?;
        let map = ShardMap::new(self.specs.len(), self.vnodes_per_shard);
        Ok(ShardedStore::new(map, self.specs, self.seed, self.runtime))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build() {
        let store = StoreBuilder::new(4, ProtocolKind::Soda, 5, 2)
            .build()
            .unwrap();
        assert_eq!(store.num_shards(), 4);
    }

    #[test]
    fn rejects_zero_shards() {
        let err = StoreBuilder::new(0, ProtocolKind::Soda, 5, 2)
            .build()
            .unwrap_err();
        assert!(matches!(err, StoreBuildError::NoShards), "{err}");
    }

    #[test]
    fn rejects_invalid_shard_parameters_with_the_shard_index() {
        let err = StoreBuilder::new(3, ProtocolKind::Soda, 5, 2)
            .with_shard_kind(1, ProtocolKind::SodaErr { e: 3 }) // k = 5-2-6 < 1
            .build()
            .unwrap_err();
        match err {
            StoreBuildError::Shard { shard, source } => {
                assert_eq!(shard, 1);
                assert!(matches!(source, BuildError::InvalidCodeDimension { .. }));
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn rejects_mismatched_kind_lists_and_bad_shard_indices() {
        let err = StoreBuilder::new(2, ProtocolKind::Soda, 5, 2)
            .with_shard_kinds(vec![ProtocolKind::Abd])
            .build()
            .unwrap_err();
        assert!(
            matches!(err, StoreBuildError::ShardKindsLength { .. }),
            "{err}"
        );

        let err = StoreBuilder::new(2, ProtocolKind::Soda, 5, 2)
            .with_shard_net_faults(5, NetFaultPlan::none())
            .build()
            .unwrap_err();
        assert!(
            matches!(
                err,
                StoreBuildError::ShardOutOfRange {
                    shard: 5,
                    shards: 2
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn byzantine_servers_are_rejected_on_non_soda_shards() {
        let err = StoreBuilder::new(2, ProtocolKind::Abd, 5, 2)
            .with_shard_byzantine(0, vec![1])
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            StoreBuildError::Shard {
                shard: 0,
                source: BuildError::ByzantineUnsupported { .. }
            }
        ));
    }

    #[test]
    fn errors_render_helpfully() {
        let msg = StoreBuildError::Shard {
            shard: 2,
            source: BuildError::TooManyFaults { n: 4, f: 2 },
        }
        .to_string();
        assert!(msg.contains("shard 2"), "{msg}");
        assert!(msg.contains("n > 2f"), "{msg}");
    }
}
