//! Randomized tests for the GF(2^8) field axioms, polynomial ring laws and
//! matrix identities. These are the invariants the Reed–Solomon layer relies
//! on, so they are checked over many seeded-random inputs rather than
//! hand-picked cases (formerly a proptest suite; now driven by the
//! deterministic `rand` shim).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use soda_gf::{Gf256, Matrix, Poly};

const CASES: usize = 256;

fn rng(salt: u64) -> StdRng {
    StdRng::seed_from_u64(0x6f64_a000 ^ salt)
}

fn random_poly(rng: &mut StdRng, max_len: usize) -> Poly {
    let len = rng.gen_range(0usize..max_len);
    let bytes: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
    Poly::from_bytes(&bytes)
}

#[test]
fn field_axioms_hold() {
    let mut rng = rng(1);
    for _ in 0..CASES {
        let a = Gf256::new(rng.gen());
        let b = Gf256::new(rng.gen());
        let c = Gf256::new(rng.gen());
        // Commutativity and associativity of both operations.
        assert_eq!(a + b, b + a);
        assert_eq!((a + b) + c, a + (b + c));
        assert_eq!(a * b, b * a);
        assert_eq!((a * b) * c, a * (b * c));
        // Distributivity.
        assert_eq!(a * (b + c), a * b + a * c);
        // Characteristic 2: every element is its own additive inverse.
        assert_eq!(a + a, Gf256::ZERO);
        assert_eq!(a - a, Gf256::ZERO);
    }
}

#[test]
fn multiplicative_inverse_and_division() {
    let mut rng = rng(2);
    for _ in 0..CASES {
        let a = Gf256::new(rng.gen());
        let b = Gf256::new(rng.gen_range(1u8..=255));
        assert_eq!(b * b.inverse(), Gf256::ONE);
        assert_eq!(a / b, a * b.inverse());
    }
}

#[test]
fn pow_adds_exponents() {
    let mut rng = rng(3);
    for _ in 0..CASES {
        let a = Gf256::new(rng.gen_range(1u8..=255));
        let e1 = rng.gen_range(0u64..500);
        let e2 = rng.gen_range(0u64..500);
        assert_eq!(a.pow(e1) * a.pow(e2), a.pow(e1 + e2));
    }
}

#[test]
fn poly_ring_laws() {
    let mut rng = rng(4);
    for _ in 0..CASES {
        let a = random_poly(&mut rng, 12);
        let b = random_poly(&mut rng, 12);
        let c = random_poly(&mut rng, 12);
        assert_eq!(&a + &b, &b + &a);
        assert_eq!(&a * &b, &b * &a);
        assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }
}

#[test]
fn poly_div_rem_invariant() {
    let mut rng = rng(5);
    let mut checked = 0usize;
    while checked < CASES {
        let a = random_poly(&mut rng, 20);
        let b = random_poly(&mut rng, 10);
        if b.is_zero() {
            continue;
        }
        checked += 1;
        let (q, r) = a.div_rem(&b);
        assert_eq!(&(&q * &b) + &r, a);
        if let (Some(rd), Some(bd)) = (r.degree(), b.degree()) {
            assert!(rd < bd);
        }
    }
}

#[test]
fn poly_eval_is_ring_homomorphism() {
    let mut rng = rng(6);
    for _ in 0..CASES {
        let a = random_poly(&mut rng, 10);
        let b = random_poly(&mut rng, 10);
        let x = Gf256::new(rng.gen());
        let sum = &a + &b;
        let prod = &a * &b;
        assert_eq!(sum.eval(x), a.eval(x) + b.eval(x));
        assert_eq!(prod.eval(x), a.eval(x) * b.eval(x));
    }
}

#[test]
fn vandermonde_submatrix_invertible() {
    let mut rng = rng(7);
    for _ in 0..CASES {
        let k = rng.gen_range(1usize..6);
        let extra = rng.gen_range(0usize..6);
        let n = k + extra;
        let v = Matrix::vandermonde(n, k);
        let mut indices: Vec<usize> = (0..n).collect();
        indices.shuffle(&mut rng);
        indices.truncate(k);
        let sub = v.select_rows(&indices);
        let inv = sub.inverse();
        assert!(
            inv.is_ok(),
            "Vandermonde submatrix {indices:?} not invertible"
        );
        assert_eq!(sub.mul(&inv.unwrap()).unwrap(), Matrix::identity(k));
    }
}

#[test]
fn matrix_inverse_round_trips() {
    let mut rng = rng(8);
    for _ in 0..CASES {
        let m = Matrix::from_rows(
            (0..4)
                .map(|_| (0..4).map(|_| Gf256::new(rng.gen())).collect())
                .collect(),
        );
        if let Ok(inv) = m.inverse() {
            assert_eq!(m.mul(&inv).unwrap(), Matrix::identity(4));
            assert_eq!(inv.mul(&m).unwrap(), Matrix::identity(4));
        }
    }
}
