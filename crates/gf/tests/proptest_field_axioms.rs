//! Property-based tests for the GF(2^8) field axioms, polynomial ring laws and
//! matrix identities. These are the invariants the Reed–Solomon layer relies
//! on, so they are checked over randomized inputs rather than hand-picked
//! cases.

use proptest::prelude::*;
use soda_gf::{Gf256, Matrix, Poly};

fn gf() -> impl Strategy<Value = Gf256> {
    any::<u8>().prop_map(Gf256::new)
}

fn nonzero_gf() -> impl Strategy<Value = Gf256> {
    (1u8..=255).prop_map(Gf256::new)
}

fn poly(max_len: usize) -> impl Strategy<Value = Poly> {
    proptest::collection::vec(any::<u8>(), 0..max_len).prop_map(|v| Poly::from_bytes(&v))
}

proptest! {
    #[test]
    fn addition_commutative(a in gf(), b in gf()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn addition_associative(a in gf(), b in gf(), c in gf()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn additive_inverse_is_self(a in gf()) {
        prop_assert_eq!(a + a, Gf256::ZERO);
        prop_assert_eq!(a - a, Gf256::ZERO);
    }

    #[test]
    fn multiplication_commutative(a in gf(), b in gf()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn multiplication_associative(a in gf(), b in gf(), c in gf()) {
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn distributivity(a in gf(), b in gf(), c in gf()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn multiplicative_inverse(a in nonzero_gf()) {
        prop_assert_eq!(a * a.inverse(), Gf256::ONE);
    }

    #[test]
    fn division_is_multiplication_by_inverse(a in gf(), b in nonzero_gf()) {
        prop_assert_eq!(a / b, a * b.inverse());
    }

    #[test]
    fn pow_adds_exponents(a in nonzero_gf(), e1 in 0u64..500, e2 in 0u64..500) {
        prop_assert_eq!(a.pow(e1) * a.pow(e2), a.pow(e1 + e2));
    }

    #[test]
    fn poly_add_commutative(a in poly(16), b in poly(16)) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn poly_mul_commutative(a in poly(12), b in poly(12)) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn poly_mul_distributes_over_add(a in poly(8), b in poly(8), c in poly(8)) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn poly_div_rem_invariant(a in poly(20), b in poly(10)) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert_eq!(&(&q * &b) + &r, a);
        if let (Some(rd), Some(bd)) = (r.degree(), b.degree()) {
            prop_assert!(rd < bd);
        }
    }

    #[test]
    fn poly_eval_is_ring_homomorphism(a in poly(10), b in poly(10), x in gf()) {
        let sum = &a + &b;
        let prod = &a * &b;
        prop_assert_eq!(sum.eval(x), a.eval(x) + b.eval(x));
        prop_assert_eq!(prod.eval(x), a.eval(x) * b.eval(x));
    }

    #[test]
    fn vandermonde_submatrix_invertible(
        k in 1usize..6,
        extra in 0usize..6,
        seed in any::<u64>(),
    ) {
        use rand::{seq::SliceRandom, SeedableRng};
        let n = k + extra;
        let v = Matrix::vandermonde(n, k);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut indices: Vec<usize> = (0..n).collect();
        indices.shuffle(&mut rng);
        indices.truncate(k);
        let sub = v.select_rows(&indices);
        let inv = sub.inverse();
        prop_assert!(inv.is_ok(), "Vandermonde submatrix {:?} not invertible", indices);
        prop_assert_eq!(sub.mul(&inv.unwrap()).unwrap(), Matrix::identity(k));
    }

    #[test]
    fn matrix_inverse_round_trips(rows in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 4), 4)
    ) {
        let m = Matrix::from_rows(
            rows.iter().map(|r| r.iter().map(|&b| Gf256::new(b)).collect()).collect());
        if let Ok(inv) = m.inverse() {
            prop_assert_eq!(m.mul(&inv).unwrap(), Matrix::identity(4));
            prop_assert_eq!(inv.mul(&m).unwrap(), Matrix::identity(4));
        }
    }
}
