//! Randomized equivalence of the wide split-nibble slice kernels against the
//! scalar `Gf256` reference loops, so the kernels can never silently diverge
//! from the field definition.
//!
//! Coverage axes:
//! * **all 256 constants** — every row of the nibble tables is exercised,
//!   including the `c = 0` and `c = 1` fast paths;
//! * **ragged lengths** — slices shorter than, equal to, and not a multiple
//!   of the 8-byte word the kernels process per iteration;
//! * **unaligned offsets** — kernels run on sub-slices starting at every
//!   offset in `0..8` of a larger buffer, so word assembly is checked at
//!   every alignment.
//!
//! Tier-1 runs a fixed budget; the nightly fuzz job scales it with
//! `KERNEL_EQ_CASES` (see `.github/workflows/ci.yml`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use soda_gf::{mul_slice, mul_slice_xor, xor_slice, Gf256};

fn cases() -> usize {
    std::env::var("KERNEL_EQ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

fn rng(salt: u64) -> StdRng {
    StdRng::seed_from_u64(0x6b65_7200 ^ salt)
}

/// Random length that lands on both sides of the 8-byte word boundary.
fn ragged_len(rng: &mut StdRng) -> usize {
    match rng.gen_range(0u8..4) {
        0 => rng.gen_range(0usize..8),     // below one word
        1 => 8 * rng.gen_range(1usize..9), // whole words
        2 => 8 * rng.gen_range(1usize..9) + rng.gen_range(1usize..8), // ragged tail
        _ => rng.gen_range(0usize..300),   // anything
    }
}

#[test]
fn mul_slice_equals_scale_slice_for_all_constants() {
    let mut rng = rng(1);
    for round in 0..cases() {
        let len = ragged_len(&mut rng);
        let data: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        // Sweep every constant on this buffer; rounds vary length/content.
        for c in 0..=255u8 {
            let mut kernel = data.clone();
            let mut scalar = data.clone();
            mul_slice(Gf256::new(c), &mut kernel);
            Gf256::scale_slice(Gf256::new(c), &mut scalar);
            assert_eq!(kernel, scalar, "round={round} c={c} len={len}");
        }
    }
}

#[test]
fn mul_slice_xor_equals_mul_acc_slice_for_all_constants() {
    let mut rng = rng(2);
    for round in 0..cases() {
        let len = ragged_len(&mut rng);
        let src: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        let dst: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        for c in 0..=255u8 {
            let mut kernel = dst.clone();
            let mut scalar = dst.clone();
            mul_slice_xor(Gf256::new(c), &src, &mut kernel);
            Gf256::mul_acc_slice(Gf256::new(c), &src, &mut scalar);
            assert_eq!(kernel, scalar, "round={round} c={c} len={len}");
        }
    }
}

#[test]
fn kernels_are_correct_at_every_alignment_offset() {
    let mut rng = rng(3);
    for round in 0..cases() {
        let buf_len = 64 + rng.gen_range(0usize..64);
        let src: Vec<u8> = (0..buf_len).map(|_| rng.gen()).collect();
        let dst: Vec<u8> = (0..buf_len).map(|_| rng.gen()).collect();
        let c = Gf256::new(rng.gen());
        for offset in 0..8usize {
            for tail in 0..8usize {
                let end = buf_len - tail;
                let mut kernel = dst.clone();
                let mut scalar = dst.clone();
                mul_slice_xor(c, &src[offset..end], &mut kernel[offset..end]);
                Gf256::mul_acc_slice(c, &src[offset..end], &mut scalar[offset..end]);
                assert_eq!(kernel, scalar, "round={round} offset={offset} tail={tail}");
                // Bytes outside the sub-slice must be untouched.
                assert_eq!(kernel[..offset], dst[..offset]);
                assert_eq!(kernel[end..], dst[end..]);

                let mut kernel = src.clone();
                let mut scalar = src.clone();
                mul_slice(c, &mut kernel[offset..end]);
                Gf256::scale_slice(c, &mut scalar[offset..end]);
                assert_eq!(kernel, scalar, "round={round} offset={offset} tail={tail}");
            }
        }
    }
}

#[test]
fn xor_slice_equals_elementwise_xor() {
    let mut rng = rng(4);
    for _ in 0..cases() {
        let len = ragged_len(&mut rng);
        let src: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        let mut dst: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        let expected: Vec<u8> = src.iter().zip(dst.iter()).map(|(a, b)| a ^ b).collect();
        xor_slice(&src, &mut dst);
        assert_eq!(dst, expected);
    }
}

#[test]
fn kernel_linearity_cross_check() {
    // c·(a ⊕ b) == c·a ⊕ c·b computed entirely through the kernels — an
    // internal consistency check independent of the scalar reference.
    let mut rng = rng(5);
    for _ in 0..cases() {
        let len = ragged_len(&mut rng);
        let a: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        let b: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        let c = Gf256::new(rng.gen());

        let mut sum_then_mul: Vec<u8> = a.clone();
        xor_slice(&b, &mut sum_then_mul);
        mul_slice(c, &mut sum_then_mul);

        let mut mul_then_sum = vec![0u8; len];
        mul_slice_xor(c, &a, &mut mul_then_sum);
        mul_slice_xor(c, &b, &mut mul_then_sum);

        assert_eq!(sum_then_mul, mul_then_sum);
    }
}
