//! Wide slice kernels for GF(2^8) multiply and multiply-accumulate.
//!
//! The scalar loops in [`Gf256`] ([`Gf256::scale_slice`],
//! [`Gf256::mul_acc_slice`]) walk one byte at a time through the log/exp
//! tables, with a data-dependent branch per byte for the zero case. The
//! kernels here use the classic *split-nibble* technique instead: for a fixed
//! constant `c`, the products `c·x` for all 256 values of `x` decompose as
//!
//! ```text
//! c·x = c·(x_lo ⊕ (x_hi << 4)) = c·x_lo ⊕ c·(x_hi << 4)
//! ```
//!
//! by linearity of GF(2^8) multiplication over XOR, so two 16-entry tables
//! per constant (one indexed by the low nibble, one by the high nibble)
//! replace the log/exp lookups and the zero branch entirely. Both tables for
//! one constant fit in a single 32-byte row — one cache line — and the whole
//! table set for all 256 constants is 8 KiB, built at compile time.
//!
//! Slices are processed eight bytes per iteration over `u64` words: one load
//! of the source word, eight table lookups assembled into a product word, one
//! XOR against the destination word, one store. The scalar `Gf256` loops are
//! kept untouched as the *reference implementation*; randomized equivalence
//! tests in `tests/kernel_equivalence.rs` pin the kernels to them for every
//! constant, ragged lengths and unaligned offsets.

use crate::Gf256;

/// Carry-less multiply modulo the primitive polynomial, usable in const
/// context (the log/exp tables of `gf256.rs` are private and not needed
/// here — this runs only at compile time).
const fn const_mul(a: u8, b: u8) -> u8 {
    let mut result: u16 = 0;
    let mut a16 = a as u16;
    let mut b16 = b as u16;
    while b16 != 0 {
        if b16 & 1 != 0 {
            result ^= a16;
        }
        b16 >>= 1;
        a16 <<= 1;
        if a16 & 0x100 != 0 {
            a16 ^= crate::gf256::PRIMITIVE_POLY;
        }
    }
    result as u8
}

/// Split-nibble product tables: `NIB[c][x] = c·x` for `x < 16` (low nibble)
/// and `NIB[c][16 + x] = c·(x << 4)` (high nibble). Row `c` is 32 bytes —
/// one cache line per constant.
static NIB: [[u8; 32]; 256] = build_nibble_tables();

const fn build_nibble_tables() -> [[u8; 32]; 256] {
    let mut tables = [[0u8; 32]; 256];
    let mut c = 0usize;
    while c < 256 {
        let mut x = 0usize;
        while x < 16 {
            tables[c][x] = const_mul(c as u8, x as u8);
            tables[c][16 + x] = const_mul(c as u8, (x << 4) as u8);
            x += 1;
        }
        c += 1;
    }
    tables
}

/// Number of bytes processed per wide iteration.
const WORD: usize = 8;

/// Looks up the product word for eight source bytes packed in `s`.
#[inline(always)]
fn product_word(tab: &[u8; 32], s: u64) -> u64 {
    let bytes = s.to_le_bytes();
    let mut out = [0u8; WORD];
    let mut i = 0;
    while i < WORD {
        let b = bytes[i] as usize;
        out[i] = tab[b & 0xf] ^ tab[16 + (b >> 4)];
        i += 1;
    }
    u64::from_le_bytes(out)
}

/// Multiplies every byte of `data` (as a GF(2^8) element) by the constant
/// `c`, in place: `data[i] = c * data[i]`.
///
/// Wide split-nibble kernel; equivalent to [`Gf256::scale_slice`].
pub fn mul_slice(c: Gf256, data: &mut [u8]) {
    if c.is_zero() {
        data.fill(0);
        return;
    }
    if c == Gf256::ONE {
        return;
    }
    let tab = &NIB[c.value() as usize];
    let mut chunks = data.chunks_exact_mut(WORD);
    for chunk in chunks.by_ref() {
        let s = u64::from_le_bytes(chunk.try_into().expect("exact chunk"));
        chunk.copy_from_slice(&product_word(tab, s).to_le_bytes());
    }
    for byte in chunks.into_remainder() {
        let b = *byte as usize;
        *byte = tab[b & 0xf] ^ tab[16 + (b >> 4)];
    }
}

/// Multiply-accumulate over whole slices: `dst[i] ^= c * src[i]`.
///
/// Wide split-nibble kernel; equivalent to [`Gf256::mul_acc_slice`]. This is
/// the inner loop of every Reed–Solomon matrix × shard product.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn mul_slice_xor(c: Gf256, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "mul_slice_xor length mismatch");
    if c.is_zero() {
        return;
    }
    if c == Gf256::ONE {
        xor_slice(src, dst);
        return;
    }
    let tab = &NIB[c.value() as usize];
    let mut dst_chunks = dst.chunks_exact_mut(WORD);
    let mut src_chunks = src.chunks_exact(WORD);
    for (d, s) in dst_chunks.by_ref().zip(src_chunks.by_ref()) {
        let sw = u64::from_le_bytes(s.try_into().expect("exact chunk"));
        let dw = u64::from_le_bytes((&*d).try_into().expect("exact chunk"));
        d.copy_from_slice(&(dw ^ product_word(tab, sw)).to_le_bytes());
    }
    for (d, &s) in dst_chunks
        .into_remainder()
        .iter_mut()
        .zip(src_chunks.remainder())
    {
        let b = s as usize;
        *d ^= tab[b & 0xf] ^ tab[16 + (b >> 4)];
    }
}

/// XOR of whole slices, eight bytes per iteration: `dst[i] ^= src[i]` (the
/// `c = 1` case of [`mul_slice_xor`], also useful on its own for parity).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn xor_slice(src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "xor_slice length mismatch");
    let mut dst_chunks = dst.chunks_exact_mut(WORD);
    let mut src_chunks = src.chunks_exact(WORD);
    for (d, s) in dst_chunks.by_ref().zip(src_chunks.by_ref()) {
        let sw = u64::from_le_bytes(s.try_into().expect("exact chunk"));
        let dw = u64::from_le_bytes((&*d).try_into().expect("exact chunk"));
        d.copy_from_slice(&(dw ^ sw).to_le_bytes());
    }
    for (d, &s) in dst_chunks
        .into_remainder()
        .iter_mut()
        .zip(src_chunks.remainder())
    {
        *d ^= s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nibble_tables_match_field_multiplication() {
        for c in 0..=255u8 {
            for x in 0..16u8 {
                assert_eq!(
                    Gf256::new(NIB[c as usize][x as usize]),
                    Gf256::new(c) * Gf256::new(x),
                    "lo table c={c} x={x}"
                );
                assert_eq!(
                    Gf256::new(NIB[c as usize][16 + x as usize]),
                    Gf256::new(c) * Gf256::new(x << 4),
                    "hi table c={c} x={x}"
                );
            }
        }
    }

    #[test]
    fn mul_slice_matches_scalar_reference() {
        let data: Vec<u8> = (0..=255).cycle().take(300).collect();
        for c in [0u8, 1, 2, 0x1d, 0x80, 0xff] {
            let mut kernel = data.clone();
            let mut scalar = data.clone();
            mul_slice(Gf256::new(c), &mut kernel);
            Gf256::scale_slice(Gf256::new(c), &mut scalar);
            assert_eq!(kernel, scalar, "c={c}");
        }
    }

    #[test]
    fn mul_slice_xor_matches_scalar_reference() {
        let src: Vec<u8> = (0..=255).cycle().take(300).collect();
        let base: Vec<u8> = (0..=255).rev().cycle().take(300).collect();
        for c in [0u8, 1, 3, 0x1d, 0x80, 0xff] {
            let mut kernel = base.clone();
            let mut scalar = base.clone();
            mul_slice_xor(Gf256::new(c), &src, &mut kernel);
            Gf256::mul_acc_slice(Gf256::new(c), &src, &mut scalar);
            assert_eq!(kernel, scalar, "c={c}");
        }
    }

    #[test]
    fn short_and_ragged_lengths() {
        for len in 0..=17usize {
            let src: Vec<u8> = (0..len as u8).map(|i| i.wrapping_mul(37)).collect();
            let mut kernel = vec![0xAB; len];
            let mut scalar = vec![0xAB; len];
            mul_slice_xor(Gf256::new(0x57), &src, &mut kernel);
            Gf256::mul_acc_slice(Gf256::new(0x57), &src, &mut scalar);
            assert_eq!(kernel, scalar, "len={len}");
        }
    }

    #[test]
    fn xor_slice_is_plain_xor() {
        let src: Vec<u8> = (0..100).collect();
        let mut dst: Vec<u8> = (100..200).collect();
        let expected: Vec<u8> = src.iter().zip(dst.iter()).map(|(a, b)| a ^ b).collect();
        xor_slice(&src, &mut dst);
        assert_eq!(dst, expected);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let src = [1u8, 2];
        let mut dst = [0u8; 3];
        mul_slice_xor(Gf256::ONE, &src, &mut dst);
    }
}
