//! Dense polynomials over GF(2^8).
//!
//! Coefficients are stored lowest-degree first (`coeffs[i]` is the coefficient
//! of `x^i`). The representation is kept normalized: the highest-degree
//! coefficient is non-zero, except for the zero polynomial which is an empty
//! vector.
//!
//! These polynomials back the error-correcting Reed–Solomon decoder in
//! `soda-rs-code`: syndrome polynomials, the Berlekamp–Massey error-locator,
//! Chien search and Forney's formula all operate on [`Poly`] values.

use crate::Gf256;
use std::fmt;
use std::ops::{Add, Mul};

/// A polynomial over GF(2^8), lowest-degree coefficient first.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Poly {
    coeffs: Vec<Gf256>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly { coeffs: Vec::new() }
    }

    /// The constant polynomial `1`.
    pub fn one() -> Self {
        Poly {
            coeffs: vec![Gf256::ONE],
        }
    }

    /// Builds a polynomial from coefficients, lowest degree first, and
    /// normalizes away trailing zeros.
    pub fn from_coeffs(coeffs: Vec<Gf256>) -> Self {
        let mut p = Poly { coeffs };
        p.normalize();
        p
    }

    /// Builds a polynomial from raw bytes, lowest degree first.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        Poly::from_coeffs(bytes.iter().map(|&b| Gf256::new(b)).collect())
    }

    /// The monomial `c * x^degree`.
    pub fn monomial(degree: usize, c: Gf256) -> Self {
        if c.is_zero() {
            return Poly::zero();
        }
        let mut coeffs = vec![Gf256::ZERO; degree + 1];
        coeffs[degree] = c;
        Poly { coeffs }
    }

    /// Returns `true` if this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Degree of the polynomial. The zero polynomial reports `None`.
    pub fn degree(&self) -> Option<usize> {
        if self.coeffs.is_empty() {
            None
        } else {
            Some(self.coeffs.len() - 1)
        }
    }

    /// Coefficient of `x^i` (zero if beyond the stored degree).
    pub fn coeff(&self, i: usize) -> Gf256 {
        self.coeffs.get(i).copied().unwrap_or(Gf256::ZERO)
    }

    /// Borrow the coefficient vector (lowest degree first, normalized).
    pub fn coeffs(&self) -> &[Gf256] {
        &self.coeffs
    }

    /// Leading (highest-degree) coefficient; zero for the zero polynomial.
    pub fn leading_coeff(&self) -> Gf256 {
        self.coeffs.last().copied().unwrap_or(Gf256::ZERO)
    }

    fn normalize(&mut self) {
        while let Some(last) = self.coeffs.last() {
            if last.is_zero() {
                self.coeffs.pop();
            } else {
                break;
            }
        }
    }

    /// Evaluates the polynomial at `x` using Horner's rule.
    pub fn eval(&self, x: Gf256) -> Gf256 {
        let mut acc = Gf256::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// Formal derivative. Over characteristic 2, the derivative of `c x^i` is
    /// `c x^{i-1}` when `i` is odd and `0` when `i` is even.
    pub fn derivative(&self) -> Poly {
        if self.coeffs.len() <= 1 {
            return Poly::zero();
        }
        let coeffs = self
            .coeffs
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, &c)| if i % 2 == 1 { c } else { Gf256::ZERO })
            .collect();
        Poly::from_coeffs(coeffs)
    }

    /// Multiplies by the scalar `c`.
    pub fn scale(&self, c: Gf256) -> Poly {
        if c.is_zero() {
            return Poly::zero();
        }
        Poly::from_coeffs(self.coeffs.iter().map(|&a| a * c).collect())
    }

    /// Multiplies by `x^k` (shifts coefficients up by `k`).
    pub fn shift(&self, k: usize) -> Poly {
        if self.is_zero() {
            return Poly::zero();
        }
        let mut coeffs = vec![Gf256::ZERO; k];
        coeffs.extend_from_slice(&self.coeffs);
        Poly { coeffs }
    }

    /// Truncates the polynomial modulo `x^k` (keeps coefficients of degree < k).
    pub fn truncate(&self, k: usize) -> Poly {
        Poly::from_coeffs(self.coeffs.iter().take(k).copied().collect())
    }

    /// Euclidean division: returns `(quotient, remainder)` with
    /// `self = quotient * divisor + remainder` and `deg(remainder) < deg(divisor)`.
    ///
    /// # Panics
    /// Panics if `divisor` is the zero polynomial.
    pub fn div_rem(&self, divisor: &Poly) -> (Poly, Poly) {
        assert!(!divisor.is_zero(), "polynomial division by zero");
        if self.is_zero() {
            return (Poly::zero(), Poly::zero());
        }
        let d_deg = divisor.degree().unwrap();
        let n_deg = match self.degree() {
            Some(d) if d >= d_deg => d,
            _ => return (Poly::zero(), self.clone()),
        };
        let inv_lead = divisor.leading_coeff().inverse();
        let mut rem = self.coeffs.clone();
        let mut quot = vec![Gf256::ZERO; n_deg - d_deg + 1];
        for i in (d_deg..=n_deg).rev() {
            let c = rem[i];
            if c.is_zero() {
                continue;
            }
            let q = c * inv_lead;
            quot[i - d_deg] = q;
            for (j, &dc) in divisor.coeffs.iter().enumerate() {
                rem[i - d_deg + j] -= q * dc;
            }
        }
        (Poly::from_coeffs(quot), Poly::from_coeffs(rem))
    }

    /// Product of monomials `∏ (1 - root_i * x)` — the standard form of a
    /// Reed–Solomon error locator with the given "roots" (which are really the
    /// reciprocals of the polynomial's actual roots).
    pub fn from_error_locators<I: IntoIterator<Item = Gf256>>(locators: I) -> Poly {
        let mut acc = Poly::one();
        for loc in locators {
            let factor = Poly::from_coeffs(vec![Gf256::ONE, loc]);
            acc = &acc * &factor;
        }
        acc
    }

    /// Generator polynomial `∏_{i=first..first+count} (x - α^i)` used by the
    /// classical (non-systematic BCH view) Reed–Solomon encoder and by the
    /// syndrome computation.
    pub fn rs_generator(first_consecutive_root: usize, count: usize) -> Poly {
        let mut g = Poly::one();
        for i in 0..count {
            let root = Gf256::alpha_pow(first_consecutive_root + i);
            // (x - α^i) == (x + α^i) in characteristic 2
            let factor = Poly::from_coeffs(vec![root, Gf256::ONE]);
            g = &g * &factor;
        }
        g
    }
}

impl fmt::Debug for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "Poly(0)");
        }
        write!(f, "Poly(")?;
        let mut first = true;
        for (i, c) in self.coeffs.iter().enumerate().rev() {
            if c.is_zero() {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            match i {
                0 => write!(f, "{:02x}", c.value())?,
                1 => write!(f, "{:02x}·x", c.value())?,
                _ => write!(f, "{:02x}·x^{}", c.value(), i)?,
            }
        }
        write!(f, ")")
    }
}

impl Add for &Poly {
    type Output = Poly;
    fn add(self, rhs: &Poly) -> Poly {
        let len = self.coeffs.len().max(rhs.coeffs.len());
        let coeffs = (0..len).map(|i| self.coeff(i) + rhs.coeff(i)).collect();
        Poly::from_coeffs(coeffs)
    }
}

impl Add for Poly {
    type Output = Poly;
    fn add(self, rhs: Poly) -> Poly {
        &self + &rhs
    }
}

impl Mul for &Poly {
    type Output = Poly;
    fn mul(self, rhs: &Poly) -> Poly {
        if self.is_zero() || rhs.is_zero() {
            return Poly::zero();
        }
        let mut coeffs = vec![Gf256::ZERO; self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a.is_zero() {
                continue;
            }
            for (j, &b) in rhs.coeffs.iter().enumerate() {
                coeffs[i + j] += a * b;
            }
        }
        Poly::from_coeffs(coeffs)
    }
}

impl Mul for Poly {
    type Output = Poly;
    fn mul(self, rhs: Poly) -> Poly {
        &self * &rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(bytes: &[u8]) -> Poly {
        Poly::from_bytes(bytes)
    }

    #[test]
    fn zero_and_one_basics() {
        assert!(Poly::zero().is_zero());
        assert_eq!(Poly::zero().degree(), None);
        assert_eq!(Poly::one().degree(), Some(0));
        assert_eq!(Poly::one().eval(Gf256::new(42)), Gf256::ONE);
    }

    #[test]
    fn normalization_strips_leading_zeros() {
        let q = p(&[1, 2, 0, 0]);
        assert_eq!(q.degree(), Some(1));
        assert_eq!(q.coeffs().len(), 2);
        let z = p(&[0, 0, 0]);
        assert!(z.is_zero());
    }

    #[test]
    fn addition_is_coefficientwise_xor() {
        let a = p(&[1, 2, 3]);
        let b = p(&[5, 2]);
        let s = &a + &b;
        assert_eq!(s, p(&[4, 0, 3]));
        // addition is its own inverse
        assert!((&s + &b).eq(&a));
    }

    #[test]
    fn multiplication_by_zero_and_one() {
        let a = p(&[7, 0, 9]);
        assert!((&a * &Poly::zero()).is_zero());
        assert_eq!(&a * &Poly::one(), a);
    }

    #[test]
    fn multiplication_degree_adds() {
        let a = p(&[1, 1]); // x + 1
        let b = p(&[2, 0, 1]); // x^2 + 2
        let c = &a * &b;
        assert_eq!(c.degree(), Some(3));
    }

    #[test]
    fn eval_horner_matches_naive() {
        let q = p(&[3, 1, 4, 1, 5, 9, 2, 6]);
        for x in [0u8, 1, 2, 17, 255] {
            let x = Gf256::new(x);
            let naive: Gf256 = q
                .coeffs()
                .iter()
                .enumerate()
                .map(|(i, &c)| c * x.pow(i as u64))
                .sum();
            assert_eq!(q.eval(x), naive);
        }
    }

    #[test]
    fn div_rem_round_trip() {
        let a = p(&[1, 2, 3, 4, 5, 6, 7]);
        let b = p(&[3, 1, 1]);
        let (q, r) = a.div_rem(&b);
        let recombined = &(&q * &b) + &r;
        assert_eq!(recombined, a);
        assert!(r.degree().unwrap_or(0) < b.degree().unwrap());
    }

    #[test]
    fn div_rem_smaller_dividend() {
        let a = p(&[1, 2]);
        let b = p(&[3, 1, 1]);
        let (q, r) = a.div_rem(&b);
        assert!(q.is_zero());
        assert_eq!(r, a);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = p(&[1, 2]).div_rem(&Poly::zero());
    }

    #[test]
    fn generator_polynomial_has_alpha_powers_as_roots() {
        let g = Poly::rs_generator(0, 6);
        assert_eq!(g.degree(), Some(6));
        for i in 0..6 {
            assert_eq!(
                g.eval(Gf256::alpha_pow(i)),
                Gf256::ZERO,
                "root α^{i} missing"
            );
        }
        // and α^6 is not a root
        assert_ne!(g.eval(Gf256::alpha_pow(6)), Gf256::ZERO);
    }

    #[test]
    fn derivative_characteristic_two() {
        // d/dx (c0 + c1 x + c2 x^2 + c3 x^3) = c1 + c3 x^2  (even-index terms vanish)
        let q = p(&[9, 7, 5, 3]);
        let d = q.derivative();
        assert_eq!(d, p(&[7, 0, 3]));
        assert!(Poly::one().derivative().is_zero());
        assert!(Poly::zero().derivative().is_zero());
    }

    #[test]
    fn error_locator_product_has_reciprocal_roots() {
        let locs = [Gf256::alpha_pow(3), Gf256::alpha_pow(10)];
        let sigma = Poly::from_error_locators(locs.iter().copied());
        assert_eq!(sigma.degree(), Some(2));
        for loc in locs {
            // σ(X) = ∏ (1 - X_i x): zero at x = X_i^{-1}
            assert_eq!(sigma.eval(loc.inverse()), Gf256::ZERO);
        }
    }

    #[test]
    fn scale_and_shift() {
        let q = p(&[1, 2, 3]);
        assert_eq!(q.scale(Gf256::ZERO), Poly::zero());
        assert_eq!(q.scale(Gf256::ONE), q);
        let shifted = q.shift(2);
        assert_eq!(shifted.degree(), Some(4));
        assert_eq!(shifted.coeff(0), Gf256::ZERO);
        assert_eq!(shifted.coeff(2), Gf256::new(1));
        assert_eq!(shifted.coeff(4), Gf256::new(3));
    }

    #[test]
    fn truncate_keeps_low_order_terms() {
        let q = p(&[1, 2, 3, 4, 5]);
        let t = q.truncate(3);
        assert_eq!(t, p(&[1, 2, 3]));
        assert_eq!(q.truncate(0), Poly::zero());
        assert_eq!(q.truncate(10), q);
    }

    #[test]
    fn monomial_constructor() {
        let m = Poly::monomial(3, Gf256::new(5));
        assert_eq!(m.degree(), Some(3));
        assert_eq!(m.coeff(3), Gf256::new(5));
        assert_eq!(m.coeff(1), Gf256::ZERO);
        assert!(Poly::monomial(4, Gf256::ZERO).is_zero());
    }
}
