//! The finite field GF(2^8).
//!
//! Elements are bytes; addition is XOR; multiplication is carry-less
//! polynomial multiplication modulo the primitive polynomial
//! `x^8 + x^4 + x^3 + x^2 + 1` (0x11d). The generator `α = 0x02` is primitive
//! for this modulus, so every non-zero element is `α^i` for a unique
//! `i ∈ [0, 254]`, which lets multiplication and division run off a pair of
//! 256/512-entry lookup tables.

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// The primitive (irreducible) polynomial used for GF(2^8): `x^8+x^4+x^3+x^2+1`.
pub const PRIMITIVE_POLY: u16 = 0x11d;

/// Order of the multiplicative group of GF(2^8).
const GROUP_ORDER: usize = 255;

/// Precomputed tables for GF(2^8) arithmetic.
struct Tables {
    /// `exp[i] = α^i` for `i` in `0..512` (doubled to avoid a modular
    /// reduction when adding logarithms).
    exp: [u8; 512],
    /// `log[x] = i` such that `α^i = x`, for `x != 0`. `log[0]` is unused.
    log: [u16; 256],
}

impl Tables {
    const fn build() -> Tables {
        let mut exp = [0u8; 512];
        let mut log = [0u16; 256];
        let mut x: u16 = 1;
        let mut i = 0;
        while i < GROUP_ORDER {
            exp[i] = x as u8;
            log[x as usize] = i as u16;
            // multiply x by the generator α = 2 in GF(2^8)
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= PRIMITIVE_POLY;
            }
            i += 1;
        }
        // Duplicate the exponent table so exp[log a + log b] never needs a
        // `% 255` reduction (log a + log b <= 508).
        let mut j = GROUP_ORDER;
        while j < 512 {
            exp[j] = exp[j - GROUP_ORDER];
            j += 1;
        }
        Tables { exp, log }
    }
}

/// Compile-time constructed exp/log tables.
static TABLES: Tables = Tables::build();

/// An element of the finite field GF(2^8).
///
/// The representation is a single byte. All arithmetic operators are
/// implemented; division by zero panics (mirroring integer division).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Gf256(pub u8);

impl Gf256 {
    /// The additive identity.
    pub const ZERO: Gf256 = Gf256(0);
    /// The multiplicative identity.
    pub const ONE: Gf256 = Gf256(1);
    /// The canonical generator α = 2 of the multiplicative group.
    pub const GENERATOR: Gf256 = Gf256(2);

    /// Wraps a byte as a field element.
    #[inline]
    pub const fn new(value: u8) -> Self {
        Gf256(value)
    }

    /// Returns the underlying byte.
    #[inline]
    pub const fn value(self) -> u8 {
        self.0
    }

    /// Returns `true` if this is the additive identity.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns `α^power` where α is the canonical generator.
    #[inline]
    pub fn alpha_pow(power: usize) -> Self {
        Gf256(TABLES.exp[power % GROUP_ORDER])
    }

    /// Discrete logarithm base α. Returns `None` for zero.
    #[inline]
    pub fn log(self) -> Option<u16> {
        if self.is_zero() {
            None
        } else {
            Some(TABLES.log[self.0 as usize])
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if `self` is zero.
    #[inline]
    pub fn inverse(self) -> Self {
        assert!(!self.is_zero(), "attempt to invert zero in GF(2^8)");
        let l = TABLES.log[self.0 as usize] as usize;
        Gf256(TABLES.exp[GROUP_ORDER - l])
    }

    /// Raises the element to the given power (with `0^0 == 1`).
    pub fn pow(self, mut exp: u64) -> Self {
        if exp == 0 {
            return Gf256::ONE;
        }
        if self.is_zero() {
            return Gf256::ZERO;
        }
        let l = TABLES.log[self.0 as usize] as u64;
        exp %= GROUP_ORDER as u64;
        let idx = (l * exp) % GROUP_ORDER as u64;
        Gf256(TABLES.exp[idx as usize])
    }

    /// Multiplies a slice of bytes (interpreted as field elements) by a scalar
    /// in place. This is the hot loop of Reed–Solomon encoding.
    pub fn scale_slice(scalar: Gf256, data: &mut [u8]) {
        if scalar.is_zero() {
            data.fill(0);
            return;
        }
        if scalar == Gf256::ONE {
            return;
        }
        let ls = TABLES.log[scalar.0 as usize] as usize;
        for byte in data.iter_mut() {
            if *byte != 0 {
                let lb = TABLES.log[*byte as usize] as usize;
                *byte = TABLES.exp[ls + lb];
            } else {
                *byte = 0;
            }
        }
    }

    /// Computes `dst[i] ^= scalar * src[i]` over whole slices, the
    /// multiply-accumulate kernel used by matrix-vector products on shards.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn mul_acc_slice(scalar: Gf256, src: &[u8], dst: &mut [u8]) {
        assert_eq!(src.len(), dst.len(), "mul_acc_slice length mismatch");
        if scalar.is_zero() {
            return;
        }
        let ls = TABLES.log[scalar.0 as usize] as usize;
        for (d, &s) in dst.iter_mut().zip(src.iter()) {
            if s != 0 {
                let lb = TABLES.log[s as usize] as usize;
                *d ^= TABLES.exp[ls + lb];
            }
        }
    }

    /// Iterator over all 256 field elements.
    pub fn all_elements() -> impl Iterator<Item = Gf256> {
        (0u16..=255).map(|v| Gf256(v as u8))
    }
}

impl fmt::Debug for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf256(0x{:02x})", self.0)
    }
}

impl fmt::Display for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02x}", self.0)
    }
}

impl From<u8> for Gf256 {
    fn from(value: u8) -> Self {
        Gf256(value)
    }
}

impl From<Gf256> for u8 {
    fn from(value: Gf256) -> Self {
        value.0
    }
}

impl Add for Gf256 {
    type Output = Gf256;
    // GF(2^8) addition IS xor (characteristic 2), not a disguised bit trick.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn add(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

impl AddAssign for Gf256 {
    #[allow(clippy::suspicious_op_assign_impl)]
    #[inline]
    fn add_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl Sub for Gf256 {
    type Output = Gf256;
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn sub(self, rhs: Gf256) -> Gf256 {
        // In characteristic 2, subtraction equals addition.
        Gf256(self.0 ^ rhs.0)
    }
}

impl SubAssign for Gf256 {
    #[allow(clippy::suspicious_op_assign_impl)]
    #[inline]
    fn sub_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl Neg for Gf256 {
    type Output = Gf256;
    #[inline]
    fn neg(self) -> Gf256 {
        self
    }
}

impl Mul for Gf256 {
    type Output = Gf256;
    #[inline]
    fn mul(self, rhs: Gf256) -> Gf256 {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf256::ZERO;
        }
        let la = TABLES.log[self.0 as usize] as usize;
        let lb = TABLES.log[rhs.0 as usize] as usize;
        Gf256(TABLES.exp[la + lb])
    }
}

impl MulAssign for Gf256 {
    #[inline]
    fn mul_assign(&mut self, rhs: Gf256) {
        *self = *self * rhs;
    }
}

impl Div for Gf256 {
    type Output = Gf256;
    #[inline]
    fn div(self, rhs: Gf256) -> Gf256 {
        assert!(!rhs.is_zero(), "attempt to divide by zero in GF(2^8)");
        if self.0 == 0 {
            return Gf256::ZERO;
        }
        let la = TABLES.log[self.0 as usize] as usize;
        let lb = TABLES.log[rhs.0 as usize] as usize;
        Gf256(TABLES.exp[la + GROUP_ORDER - lb])
    }
}

impl DivAssign for Gf256 {
    #[inline]
    fn div_assign(&mut self, rhs: Gf256) {
        *self = *self / rhs;
    }
}

impl Sum for Gf256 {
    fn sum<I: Iterator<Item = Gf256>>(iter: I) -> Gf256 {
        iter.fold(Gf256::ZERO, |acc, x| acc + x)
    }
}

impl Product for Gf256 {
    fn product<I: Iterator<Item = Gf256>>(iter: I) -> Gf256 {
        iter.fold(Gf256::ONE, |acc, x| acc * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Schoolbook carry-less multiplication used as an oracle for the
    /// table-based implementation.
    fn slow_mul(a: u8, b: u8) -> u8 {
        let mut result: u16 = 0;
        let mut a16 = a as u16;
        let mut b16 = b as u16;
        while b16 != 0 {
            if b16 & 1 != 0 {
                result ^= a16;
            }
            b16 >>= 1;
            a16 <<= 1;
            if a16 & 0x100 != 0 {
                a16 ^= PRIMITIVE_POLY;
            }
        }
        result as u8
    }

    #[test]
    fn addition_is_xor() {
        assert_eq!(Gf256::new(0b1010) + Gf256::new(0b0110), Gf256::new(0b1100));
        assert_eq!(Gf256::new(0xff) + Gf256::new(0xff), Gf256::ZERO);
    }

    #[test]
    fn subtraction_equals_addition() {
        for a in 0..=255u8 {
            let x = Gf256::new(a);
            assert_eq!(x - x, Gf256::ZERO);
            assert_eq!(x + x, Gf256::ZERO);
            assert_eq!(-x, x);
        }
    }

    #[test]
    fn multiplication_matches_schoolbook_oracle() {
        for a in 0..=255u16 {
            for b in 0..=255u16 {
                let fast = Gf256::new(a as u8) * Gf256::new(b as u8);
                let slow = slow_mul(a as u8, b as u8);
                assert_eq!(fast.value(), slow, "mismatch at {a} * {b}");
            }
        }
    }

    #[test]
    fn multiplicative_identity_and_zero() {
        for a in Gf256::all_elements() {
            assert_eq!(a * Gf256::ONE, a);
            assert_eq!(a * Gf256::ZERO, Gf256::ZERO);
        }
    }

    #[test]
    fn inverse_round_trip() {
        for a in 1..=255u8 {
            let x = Gf256::new(a);
            assert_eq!(x * x.inverse(), Gf256::ONE);
            assert_eq!(x / x, Gf256::ONE);
        }
    }

    #[test]
    #[should_panic(expected = "invert zero")]
    fn inverse_of_zero_panics() {
        let _ = Gf256::ZERO.inverse();
    }

    #[test]
    #[should_panic(expected = "divide by zero")]
    fn division_by_zero_panics() {
        let _ = Gf256::ONE / Gf256::ZERO;
    }

    #[test]
    fn division_inverts_multiplication() {
        for a in 0..=255u8 {
            for b in 1..=255u8 {
                let x = Gf256::new(a);
                let y = Gf256::new(b);
                assert_eq!((x * y) / y, x);
            }
        }
    }

    #[test]
    fn generator_is_primitive() {
        // α must generate all 255 non-zero elements.
        let mut seen = [false; 256];
        let mut x = Gf256::ONE;
        for _ in 0..255 {
            assert!(!seen[x.value() as usize], "generator has order < 255");
            seen[x.value() as usize] = true;
            x *= Gf256::GENERATOR;
        }
        assert_eq!(x, Gf256::ONE);
        assert!(!seen[0]);
        assert_eq!(seen.iter().filter(|&&s| s).count(), 255);
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        for a in 0..=255u8 {
            let x = Gf256::new(a);
            let mut acc = Gf256::ONE;
            for e in 0..20u64 {
                assert_eq!(x.pow(e), acc, "a={a} e={e}");
                acc *= x;
            }
        }
    }

    #[test]
    fn pow_zero_exponent_is_one() {
        assert_eq!(Gf256::ZERO.pow(0), Gf256::ONE);
        assert_eq!(Gf256::new(17).pow(0), Gf256::ONE);
    }

    #[test]
    fn alpha_pow_wraps_at_group_order() {
        assert_eq!(Gf256::alpha_pow(0), Gf256::ONE);
        assert_eq!(Gf256::alpha_pow(255), Gf256::ONE);
        assert_eq!(Gf256::alpha_pow(256), Gf256::GENERATOR);
        assert_eq!(Gf256::alpha_pow(1), Gf256::GENERATOR);
    }

    #[test]
    fn log_exp_round_trip() {
        for a in 1..=255u8 {
            let x = Gf256::new(a);
            let l = x.log().unwrap();
            assert_eq!(Gf256::alpha_pow(l as usize), x);
        }
        assert_eq!(Gf256::ZERO.log(), None);
    }

    #[test]
    fn scale_slice_matches_elementwise() {
        let data: Vec<u8> = (0..=255).collect();
        for s in [0u8, 1, 2, 3, 0x1d, 0xff] {
            let scalar = Gf256::new(s);
            let mut scaled = data.clone();
            Gf256::scale_slice(scalar, &mut scaled);
            for (i, &orig) in data.iter().enumerate() {
                assert_eq!(Gf256::new(scaled[i]), Gf256::new(orig) * scalar);
            }
        }
    }

    #[test]
    fn mul_acc_slice_matches_elementwise() {
        let src: Vec<u8> = (0..=255).collect();
        let mut dst: Vec<u8> = (0..=255).rev().collect();
        let expected: Vec<u8> = src
            .iter()
            .zip(dst.iter())
            .map(|(&s, &d)| (Gf256::new(d) + Gf256::new(s) * Gf256::new(0x57)).value())
            .collect();
        Gf256::mul_acc_slice(Gf256::new(0x57), &src, &mut dst);
        assert_eq!(dst, expected);
    }

    #[test]
    fn mul_acc_slice_with_zero_scalar_is_noop() {
        let src = vec![1u8, 2, 3, 4];
        let mut dst = vec![9u8, 8, 7, 6];
        let before = dst.clone();
        Gf256::mul_acc_slice(Gf256::ZERO, &src, &mut dst);
        assert_eq!(dst, before);
    }

    #[test]
    fn sum_and_product_fold_correctly() {
        let elems = [Gf256::new(3), Gf256::new(5), Gf256::new(7)];
        let s: Gf256 = elems.iter().copied().sum();
        assert_eq!(s, Gf256::new(3 ^ 5 ^ 7));
        let p: Gf256 = elems.iter().copied().product();
        assert_eq!(p, Gf256::new(3) * Gf256::new(5) * Gf256::new(7));
    }

    #[test]
    fn distributivity_exhaustive_sample() {
        // a*(b+c) == a*b + a*c over a structured sample of triples.
        for a in (0..=255u16).step_by(7) {
            for b in (0..=255u16).step_by(11) {
                for c in (0..=255u16).step_by(13) {
                    let (a, b, c) = (
                        Gf256::new(a as u8),
                        Gf256::new(b as u8),
                        Gf256::new(c as u8),
                    );
                    assert_eq!(a * (b + c), a * b + a * c);
                }
            }
        }
    }
}
